"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (which need ``bdist_wheel``) fail; this shim lets
``pip install -e . --no-build-isolation`` take the legacy
``setup.py develop`` path.  Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
