"""IA32 host cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.ia32 import CpuExecution, CpuWork, Ia32Cpu
from repro.cpu.timing import CpuTimingConfig


class TestCpuWork:
    def test_validation(self):
        with pytest.raises(ValueError):
            CpuWork(pixels=-1, cycles_per_pixel=1, bytes_touched=0)
        with pytest.raises(ValueError):
            CpuWork(pixels=1, cycles_per_pixel=-1, bytes_touched=0)


class TestExecution:
    def test_compute_bound(self):
        cpu = Ia32Cpu()
        execution = cpu.execute(CpuWork(1000, 10.0, 100))
        assert execution.bound == "compute"
        assert execution.cycles == 10000
        assert execution.seconds == pytest.approx(10000 / 2.33e9)

    def test_bandwidth_bound(self):
        cpu = Ia32Cpu()
        execution = cpu.execute(CpuWork(1000, 0.1, 100000))
        assert execution.bound == "bandwidth"
        assert execution.cycles == 100000 / cpu.config.mem_bytes_per_cycle

    def test_fraction_scales_linearly(self):
        cpu = Ia32Cpu()
        work = CpuWork(1000, 10.0, 100)
        full = cpu.execute(work)
        half = cpu.execute(work, fraction=0.5)
        assert half.seconds == pytest.approx(full.seconds / 2)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            Ia32Cpu().execute(CpuWork(1, 1, 1), fraction=1.5)

    def test_custom_config(self):
        cpu = Ia32Cpu(CpuTimingConfig(frequency=1e9, mem_bytes_per_cycle=1.0))
        execution = cpu.execute(CpuWork(10, 1.0, 100))
        assert execution.cycles == 100  # bandwidth bound at 1 B/cycle
        assert execution.seconds == pytest.approx(100e-9)

    def test_config_defaults_match_core2(self):
        config = CpuTimingConfig()
        assert config.frequency == pytest.approx(2.33e9)
        assert config.sse_lanes_32bit == 4


@given(st.integers(min_value=0, max_value=10 ** 7),
       st.floats(min_value=0.0, max_value=100.0),
       st.integers(min_value=0, max_value=10 ** 8))
def test_time_is_max_of_bounds(pixels, cpp, nbytes):
    cpu = Ia32Cpu()
    execution = cpu.execute(CpuWork(pixels, cpp, nbytes))
    assert execution.cycles == pytest.approx(
        max(execution.compute_cycles, execution.bandwidth_cycles))
    assert execution.seconds >= 0
