"""ATR shootdown coherence: host-side unmap/protect reaches every view.

Without the broadcast, a device view keeps the stale TLB/GTT entry after
``free`` and reads whatever the recycled physical frame now holds — the
classic use-after-free through a stale translation.
"""

import numpy as np
import pytest

from repro.errors import ProtectionFault, TlbMiss
from repro.exo.atr import AtrService
from repro.memory.address_space import AddressSpace, SequencerView
from repro.memory.physical import PAGE_SIZE


@pytest.fixture
def space():
    return AddressSpace()


def warm(service, view, base, pages, write=True):
    return service.service_batch(
        view, [base + i * PAGE_SIZE for i in range(pages)], write=write)


class TestFreeShootdown:
    def test_free_invalidates_tlb_and_gtt(self, space):
        base = space.alloc(2 * PAGE_SIZE, eager=True)
        service = AtrService(space)
        view = SequencerView(space)
        warm(service, view, base, 2)
        assert (base >> 12) in view.tlb and (base >> 12) in view.gtt
        space.free(base)
        assert (base >> 12) not in view.tlb
        assert (base >> 12) not in view.gtt
        assert (base >> 12) + 1 not in view.tlb
        assert (base >> 12) + 1 not in view.gtt
        with pytest.raises(TlbMiss):
            view.translate(base)

    def test_counters_and_event_log(self, space):
        base = space.alloc(3 * PAGE_SIZE, eager=True)
        service = AtrService(space)
        view = SequencerView(space)
        warm(service, view, base, 3)
        space.free(base)
        assert space.shootdowns == 1
        assert view.shootdowns_received == 1
        assert service.stats.shootdowns == 1
        assert service.stats.shootdown_pages == 3
        event = space.shootdown_events[-1]
        assert event["reason"] == "free"
        assert event["pages"] == 3
        assert event["views"] == 1

    def test_stale_translation_cannot_see_recycled_frame(self, space):
        """free + realloc recycles the physical frame; the old view
        translation must not leak the new allocation's contents."""
        base = space.alloc(PAGE_SIZE, eager=True)
        space.write_bytes(base, np.full(8, 0xAA, dtype=np.uint8))
        service = AtrService(space)
        view = SequencerView(space)
        warm(service, view, base, 1)
        old_paddr = view.translate(base)
        space.free(base)
        sentinel = space.alloc(PAGE_SIZE, eager=True)
        space.write_bytes(sentinel, np.full(8, 0x5C, dtype=np.uint8))
        # the recycled frame really does hold the sentinel...
        assert space.translate(sentinel) == old_paddr
        # ...but the view's stale path is gone: the access faults instead
        # of silently reading 0x5C through the dead translation
        with pytest.raises(TlbMiss):
            view.read_bytes(base, 8)

    def test_free_reaches_every_registered_view(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        service = AtrService(space)
        views = [SequencerView(space, name=f"gma{i}") for i in range(3)]
        for view in views:
            warm(service, view, base, 1)
        space.free(base)
        for view in views:
            assert (base >> 12) not in view.tlb
            assert (base >> 12) not in view.gtt
            assert view.shootdowns_received == 1

    def test_shared_cache_invalidated_too(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        service = AtrService(space)
        view = SequencerView(space)
        warm(service, view, base, 1)
        assert (base >> 12) in service.shared_cache
        space.free(base)
        assert (base >> 12) not in service.shared_cache


class TestProtectShootdown:
    def test_protect_forces_refault_and_honours_new_bits(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        service = AtrService(space)
        view = SequencerView(space)
        warm(service, view, base, 1)
        changed = space.protect(base, writable=False)
        assert changed == 1
        assert (base >> 12) not in view.tlb  # must re-fault through ATR
        with pytest.raises(ProtectionFault):
            service.service(view, base, write=True)
        # reads re-translate fine under the weakened mapping
        service.service(view, base, write=False)
        assert view.translate(base) == space.translate(base)

    def test_protect_event_logged(self, space):
        base = space.alloc(2 * PAGE_SIZE, eager=True)
        space.protect(base, writable=False)
        assert space.shootdown_events[-1]["reason"] == "protect"
        assert space.shootdown_events[-1]["pages"] == 2

    def test_unregistered_view_left_alone(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        service = AtrService(space)
        view = SequencerView(space)
        warm(service, view, base, 1)
        space.unregister_view(view)
        space.free(base)
        # no longer in the shootdown domain: the stale entry survives
        # (this is exactly why views auto-register)
        assert (base >> 12) in view.tlb
        assert view.shootdowns_received == 0


class TestVectorizedPathShootdown:
    """The batched gather/scatter path caches translations in two sorted
    snapshots (the TLB's and the view's GTT mirror); both are part of the
    shootdown domain and must fault exactly like the scalar path after
    ``free``/``protect``."""

    def _warm_batched(self, space, service, view, base, pages):
        warm(service, view, base, pages)
        addrs = np.arange(pages, dtype=np.int64) * PAGE_SIZE + base
        view.gather(addrs, np.uint8)  # builds both vector snapshots
        return addrs

    def test_gather_after_free_faults(self, space):
        base = space.alloc(2 * PAGE_SIZE, eager=True)
        service = AtrService(space)
        view = SequencerView(space)
        addrs = self._warm_batched(space, service, view, base, 2)
        space.free(base)
        with pytest.raises(TlbMiss):
            view.gather(addrs, np.uint8)

    def test_gather_after_free_translation_fault_on_space(self):
        """Without demand paging the host-side batched path surfaces the
        dead mapping as TranslationFault, same as scalar translate."""
        from repro.errors import TranslationFault
        space = AddressSpace(demand_paging=False)
        base = space.alloc(PAGE_SIZE, eager=True)
        addrs = np.array([base, base + 8], dtype=np.int64)
        assert space.gather(addrs, np.uint8).size == 2
        space.free(base)
        with pytest.raises(TranslationFault):
            space.gather(addrs, np.uint8)

    def test_scatter_after_protect_faults(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        service = AtrService(space)
        view = SequencerView(space)
        addrs = self._warm_batched(space, service, view, base, 1)
        values = np.full(1, 0x5C, dtype=np.uint8)
        view.scatter(addrs[:1], values)  # writable: goes through
        space.protect(base, writable=False)
        # the stale snapshot is gone: the device access re-faults and ATR
        # enforces the weakened bits, exactly like the scalar path
        with pytest.raises(TlbMiss):
            view.scatter(addrs[:1], values)
        with pytest.raises(ProtectionFault):
            service.service(view, base, write=True)
        with pytest.raises(ProtectionFault):
            space.scatter(addrs[:1], values)

    def test_snapshot_length_collision(self, space):
        """free K pages then map K other pages: the GTT dict length is
        unchanged, so only the explicit shootdown invalidation keeps the
        sorted snapshot from serving the dead translation."""
        victim = space.alloc(PAGE_SIZE, eager=True)
        keeper = space.alloc(PAGE_SIZE, eager=True)
        service = AtrService(space)
        view = SequencerView(space)
        warm(service, view, victim, 1)
        warm(service, view, keeper, 1)
        addrs = np.array([victim, keeper], dtype=np.int64)
        view.gather(addrs, np.uint8)  # snapshot now holds both pages
        before = len(view.gtt)
        space.free(victim)
        fresh = space.alloc(PAGE_SIZE, eager=True)
        warm(service, view, fresh, 1)
        assert len(view.gtt) == before  # same length, different pages
        with pytest.raises(TlbMiss):
            view.gather(np.array([victim], dtype=np.int64), np.uint8)
        # the surviving and the fresh page still translate fine
        view.gather(np.array([keeper, fresh], dtype=np.int64), np.uint8)

    def test_refault_after_shootdown_resumes_batched(self, space):
        """After ATR re-services the pages the batched path works again
        (the snapshots rebuild lazily)."""
        base = space.alloc(PAGE_SIZE, eager=True)
        service = AtrService(space)
        view = SequencerView(space)
        addrs = self._warm_batched(space, service, view, base, 1)
        space.protect(base, writable=False)
        with pytest.raises(TlbMiss):
            view.gather(addrs, np.uint8)
        service.service(view, base, write=False)
        assert view.gather(addrs, np.uint8).size == 1
