"""Flush scheduling policies (section 5.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.bandwidth import BandwidthModel
from repro.memory.flushing import FlushPolicy, schedule_flush

BW = BandwidthModel()


def test_upfront_exposes_everything():
    plan = schedule_flush(FlushPolicy.UPFRONT, 1_000_000, 1.0, 100, 32, BW)
    assert plan.exposed_seconds == plan.total_flush_seconds
    assert plan.overlapped_seconds == 0.0
    assert plan.hidden_fraction == 0.0


def test_interleaved_hides_behind_execution():
    # plenty of accelerator time: everything after the first wave hides
    plan = schedule_flush(FlushPolicy.INTERLEAVED, 1_000_000, 10.0, 1000,
                          32, BW)
    assert plan.exposed_seconds == pytest.approx(
        plan.total_flush_seconds * 32 / 1000)
    assert plan.hidden_fraction > 0.9


def test_interleaved_with_short_execution_exposes_residual():
    plan = schedule_flush(FlushPolicy.INTERLEAVED, 10_000_000, 1e-9, 1000,
                          32, BW)
    # almost nothing can hide behind a 1 ns region
    assert plan.exposed_seconds == pytest.approx(plan.total_flush_seconds,
                                                 rel=1e-3)


def test_zero_bytes_is_free():
    plan = schedule_flush(FlushPolicy.INTERLEAVED, 0, 1.0, 10, 32, BW)
    assert plan.total_flush_seconds == 0.0
    assert plan.hidden_fraction == 1.0


def test_unoptimized_rate_is_slower():
    fast = schedule_flush(FlushPolicy.UPFRONT, 1_000_000, 1.0, 10, 32, BW)
    slow = schedule_flush(FlushPolicy.UPFRONT, 1_000_000, 1.0, 10, 32, BW,
                          optimized=False)
    assert slow.total_flush_seconds > fast.total_flush_seconds
    assert slow.total_flush_seconds == pytest.approx(1_000_000 / 2e9)


def test_fewer_shreds_than_contexts():
    plan = schedule_flush(FlushPolicy.INTERLEAVED, 1000, 1.0, 8, 32, BW)
    # first wave is the whole queue: everything is exposed up front
    assert plan.exposed_seconds == pytest.approx(plan.total_flush_seconds)


@given(st.integers(min_value=0, max_value=10 ** 8),
       st.floats(min_value=0.0, max_value=10.0),
       st.integers(min_value=1, max_value=10000))
def test_invariants(nbytes, accel_seconds, shreds):
    for policy in FlushPolicy:
        plan = schedule_flush(policy, nbytes, accel_seconds, shreds, 32, BW)
        assert plan.exposed_seconds >= 0
        assert plan.overlapped_seconds >= 0
        assert plan.exposed_seconds + plan.overlapped_seconds == \
            pytest.approx(plan.total_flush_seconds)
    up = schedule_flush(FlushPolicy.UPFRONT, nbytes, accel_seconds, shreds,
                        32, BW)
    inter = schedule_flush(FlushPolicy.INTERLEAVED, nbytes, accel_seconds,
                           shreds, 32, BW)
    # interleaving never exposes more than flushing up front
    assert inter.exposed_seconds <= up.exposed_seconds + 1e-12


def test_bandwidth_model_rates():
    bw = BandwidthModel()
    assert bw.copy_seconds(3.1e9) == pytest.approx(1.0)
    assert bw.flush_seconds(8e9) == pytest.approx(1.0)
    assert bw.flush_seconds(2e9, optimized=False) == pytest.approx(1.0)
    assert bw.stream_seconds(10.7e9) == pytest.approx(1.0)
