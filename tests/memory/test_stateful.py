"""Stateful property testing of the shared address space.

A hypothesis rule-based machine drives random allocate/write/read/free
sequences against :class:`~repro.memory.address_space.AddressSpace`,
checking it against a plain-dictionary memory model.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.memory.address_space import AddressSpace
from repro.memory.physical import PAGE_SIZE, PhysicalMemory


class AddressSpaceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.space = AddressSpace(
            physical=PhysicalMemory(size=256 * PAGE_SIZE))
        self.model = {}  # base -> numpy bytes (the oracle)
        self.live = {}  # base -> size

    allocations = Bundle("allocations")

    @rule(target=allocations, nbytes=st.integers(min_value=1,
                                                 max_value=3 * PAGE_SIZE))
    def alloc(self, nbytes):
        base = self.space.alloc(nbytes)
        self.live[base] = nbytes
        self.model[base] = np.zeros(nbytes, dtype=np.uint8)
        return base

    @rule(base=allocations,
          offset=st.integers(min_value=0, max_value=PAGE_SIZE),
          payload=st.binary(min_size=1, max_size=200))
    def write(self, base, offset, payload):
        if base not in self.live:
            return  # freed in this run
        size = self.live[base]
        data = np.frombuffer(payload, dtype=np.uint8)
        if offset + data.size > size:
            return
        self.space.write_bytes(base + offset, data)
        self.model[base][offset : offset + data.size] = data

    @rule(base=allocations,
          offset=st.integers(min_value=0, max_value=PAGE_SIZE),
          count=st.integers(min_value=1, max_value=200))
    def read_matches_model(self, base, offset, count):
        if base not in self.live:
            return
        size = self.live[base]
        if offset + count > size:
            return
        got = self.space.read_bytes(base + offset, count)
        want = self.model[base][offset : offset + count]
        assert np.array_equal(got, want)

    @rule(base=allocations)
    def free(self, base):
        if base not in self.live:
            return
        self.space.free(base)
        del self.live[base]
        del self.model[base]

    @invariant()
    def frames_bounded_by_live_bytes(self):
        # demand paging never maps more frames than live pages could need
        max_pages = sum(-(-size // PAGE_SIZE) for size in self.live.values())
        assert self.space.physical.frames_in_use <= max_pages

    @invariant()
    def allocations_do_not_overlap(self):
        spans = sorted((b, b + s) for b, s in self.live.items())
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start


TestAddressSpaceStateful = AddressSpaceMachine.TestCase
TestAddressSpaceStateful.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None)
