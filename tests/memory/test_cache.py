"""Write-back cache dirty tracking and the coherence point."""

import pytest

from repro.errors import CoherenceViolation
from repro.memory.cache import LINE_SIZE, CoherencePoint, WritebackCache


class TestWritebackCache:
    def test_dirty_lines_accumulate(self):
        cache = WritebackCache("cpu")
        cache.note_write(0, 1)
        cache.note_write(10, 1)  # same line
        assert cache.dirty_bytes == LINE_SIZE
        cache.note_write(LINE_SIZE, 1)
        assert cache.dirty_bytes == 2 * LINE_SIZE

    def test_span_covers_multiple_lines(self):
        cache = WritebackCache("cpu")
        cache.note_write(LINE_SIZE - 1, 2)  # straddles two lines
        assert cache.dirty_bytes == 2 * LINE_SIZE

    def test_flush_returns_and_clears(self):
        cache = WritebackCache("cpu")
        cache.note_write(0, 200)
        flushed = cache.flush()
        assert flushed == cache.bytes_flushed
        assert cache.dirty_bytes == 0
        assert cache.flush_count == 1

    def test_flush_range_is_selective(self):
        cache = WritebackCache("cpu")
        cache.note_write(0, 1)
        cache.note_write(10 * LINE_SIZE, 1)
        flushed = cache.flush_range(0, LINE_SIZE)
        assert flushed == LINE_SIZE
        assert cache.dirty_in_range(10 * LINE_SIZE, 1)
        assert not cache.dirty_in_range(0, LINE_SIZE)

    def test_dirty_in_range(self):
        cache = WritebackCache("cpu")
        cache.note_write(100, 4)
        assert cache.dirty_in_range(64, 64)
        assert not cache.dirty_in_range(256, 64)

    def test_line_size_validation(self):
        with pytest.raises(ValueError):
            WritebackCache("x", line_size=0)


class TestCoherencePoint:
    def test_coherent_mode_tracks_nothing(self):
        point = CoherencePoint(coherent=True, strict=True)
        point.note_write("cpu", 0, 100)
        point.check_read("gma", 0, 100)  # never raises
        assert point.total_bytes_flushed() == 0

    def test_strict_noncoherent_detects_missing_flush(self):
        point = CoherencePoint(coherent=False, strict=True)
        point.note_write("cpu", 0, 100)
        with pytest.raises(CoherenceViolation, match="cpu holds dirty"):
            point.check_read("gma", 50, 4)

    def test_flush_resolves_violation(self):
        point = CoherencePoint(coherent=False, strict=True)
        point.note_write("cpu", 0, 100)
        point.flush("cpu")
        point.check_read("gma", 50, 4)

    def test_own_dirty_lines_are_fine(self):
        point = CoherencePoint(coherent=False, strict=True)
        point.note_write("gma", 0, 100)
        point.check_read("gma", 0, 100)

    def test_non_strict_only_accounts(self):
        point = CoherencePoint(coherent=False, strict=False)
        point.note_write("cpu", 0, 100)
        point.check_read("gma", 0, 100)  # stale in reality, tolerated here
        assert point.flush("cpu") > 0

    def test_disjoint_ranges_no_violation(self):
        point = CoherencePoint(coherent=False, strict=True)
        point.note_write("cpu", 0, 10)
        point.check_read("gma", 4096, 10)

    def test_flush_range(self):
        point = CoherencePoint(coherent=False, strict=True)
        point.note_write("cpu", 0, 10)
        point.note_write("cpu", 4096, 10)
        point.flush_range("cpu", 0, 64)
        point.check_read("gma", 0, 10)
        with pytest.raises(CoherenceViolation):
            point.check_read("gma", 4096, 10)
