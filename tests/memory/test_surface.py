"""2-D surfaces: layouts, clamped blocks, sampling."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemorySystemError
from repro.isa.types import DataType
from repro.memory.surface import Surface, TileMode


@pytest.fixture
def img():
    rng = np.random.default_rng(3)
    return rng.integers(0, 256, size=(12, 16)).astype(np.float64)


def make_surface(space, img, dtype=DataType.UB, tiling=TileMode.LINEAR):
    surf = Surface.alloc(space, "S", img.shape[1], img.shape[0], dtype,
                         tiling=tiling)
    surf.upload(space, img)
    return surf


class TestGeometry:
    def test_defaults(self, space):
        surf = Surface.alloc(space, "S", 10, 4, DataType.UB)
        assert surf.pitch == 10
        assert surf.nbytes == 40
        assert surf.nelems == 40
        assert surf.esize == 1

    def test_dword_sizes(self, space):
        surf = Surface.alloc(space, "S", 10, 4, DataType.DW)
        assert surf.nbytes == 160

    def test_tiled_pitch_alignment(self, space):
        surf = Surface.alloc(space, "S", 10, 4, DataType.UB,
                             tiling=TileMode.TILED)
        assert surf.pitch == 12  # aligned to the 4-wide tile

    def test_invalid_geometry(self):
        with pytest.raises(MemorySystemError):
            Surface(name="S", base=0, width=0, height=4, dtype=DataType.UB)

    def test_pitch_smaller_than_width(self):
        with pytest.raises(MemorySystemError):
            Surface(name="S", base=0, width=8, height=2, dtype=DataType.UB,
                    pitch=4)

    def test_linear_addressing(self, space):
        surf = Surface.alloc(space, "S", 8, 4, DataType.UB, pitch=10)
        assert surf.element_addr(3, 2) == surf.base + 2 * 10 + 3

    def test_tiled_addressing(self, space):
        surf = Surface.alloc(space, "S", 8, 8, DataType.UB,
                             tiling=TileMode.TILED)
        # element (0,0) is first in tile 0; (4,0) starts tile 1
        assert surf.element_addr(0, 0) == surf.base
        assert surf.element_addr(4, 0) == surf.base + 16
        # (1,1) is offset 4*1+1 = 5 inside tile 0
        assert surf.element_addr(1, 1) == surf.base + 5


class TestUploadDownload:
    def test_roundtrip_linear(self, space, img):
        surf = make_surface(space, img)
        assert np.array_equal(surf.download(space), img)

    def test_roundtrip_tiled(self, space, img):
        surf = make_surface(space, img, tiling=TileMode.TILED)
        assert np.array_equal(surf.download(space), img)

    def test_tiled_and_linear_differ_in_memory(self, space, img):
        lin = make_surface(space, img)
        til = make_surface(space, img, tiling=TileMode.TILED)
        raw_lin = space.read_bytes(lin.base, 64)
        raw_til = space.read_bytes(til.base, 64)
        assert not np.array_equal(raw_lin, raw_til)

    def test_upload_shape_check(self, space, img):
        surf = make_surface(space, img)
        with pytest.raises(MemorySystemError):
            surf.upload(space, img.T)

    def test_float_surface(self, space):
        img = np.array([[1.25, -2.5], [3.75, 0.125]])
        surf = Surface.alloc(space, "F", 2, 2, DataType.F)
        surf.upload(space, img)
        assert np.array_equal(surf.download(space), img)


class TestLinearAccess:
    def test_read_write(self, space, img):
        surf = make_surface(space, img)
        got = surf.read_linear(space, 5, 4)
        assert np.array_equal(got, img.reshape(-1)[5:9])
        surf.write_linear(space, 0, np.array([9.0, 8.0]))
        assert surf.read_linear(space, 0, 2).tolist() == [9.0, 8.0]

    def test_out_of_bounds(self, space, img):
        surf = make_surface(space, img)
        with pytest.raises(MemorySystemError):
            surf.read_linear(space, surf.nelems - 1, 2)
        with pytest.raises(MemorySystemError):
            surf.write_linear(space, -1, np.zeros(1))

    def test_linear_on_tiled_surface(self, space, img):
        surf = make_surface(space, img, tiling=TileMode.TILED)
        flat = img.reshape(-1)
        assert np.array_equal(surf.read_linear(space, 17, 5), flat[17:22])


class TestBlocks:
    def test_interior_block(self, space, img):
        surf = make_surface(space, img)
        got = surf.read_block(space, 2, 3, 4, 2)
        assert np.array_equal(got, img[3:5, 2:6].reshape(-1))

    def test_edge_clamping_left_top(self, space, img):
        surf = make_surface(space, img)
        got = surf.read_block(space, -1, -1, 3, 3).reshape(3, 3)
        padded = np.pad(img, 1, mode="edge")
        assert np.array_equal(got, padded[0:3, 0:3])

    def test_edge_clamping_right_bottom(self, space, img):
        surf = make_surface(space, img)
        h, w = img.shape
        got = surf.read_block(space, w - 2, h - 2, 4, 4).reshape(4, 4)
        padded = np.pad(img, ((0, 2), (0, 2)), mode="edge")
        assert np.array_equal(got, padded[h - 2 : h + 2, w - 2 : w + 2])

    def test_write_block(self, space, img):
        surf = make_surface(space, img)
        block = np.arange(6.0).reshape(2, 3)
        surf.write_block(space, 4, 5, block, 3, 2)
        assert np.array_equal(surf.download(space)[5:7, 4:7], block)

    def test_write_block_out_of_bounds(self, space, img):
        surf = make_surface(space, img)
        with pytest.raises(MemorySystemError):
            surf.write_block(space, 15, 0, np.zeros(4), 2, 2)

    def test_blocks_on_tiled(self, space, img):
        surf = make_surface(space, img, tiling=TileMode.TILED)
        got = surf.read_block(space, 1, 2, 5, 3)
        assert np.array_equal(got, img[2:5, 1:6].reshape(-1))
        surf.write_block(space, 0, 0, np.full(4, 9.0), 2, 2)
        assert surf.download(space)[0, 0] == 9.0


class TestSampling:
    def test_exact_texel(self, space, img):
        surf = make_surface(space, img)
        got = surf.sample_bilinear(space, np.array([3.0]), np.array([2.0]))
        assert got[0] == img[2, 3]

    def test_midpoint(self, space):
        img = np.array([[0.0, 10.0], [20.0, 30.0]])
        surf = make_surface(space, img)
        got = surf.sample_bilinear(space, np.array([0.5]), np.array([0.5]))
        assert got[0] == 15.0

    def test_clamped_outside(self, space, img):
        surf = make_surface(space, img)
        got = surf.sample_bilinear(space, np.array([-5.0, 100.0]),
                                   np.array([-5.0, 100.0]))
        assert got[0] == img[0, 0]
        assert got[1] == img[-1, -1]

    @given(st.floats(min_value=0.0, max_value=14.9),
           st.floats(min_value=0.0, max_value=10.9))
    def test_matches_numpy_oracle(self, x, y):
        img = np.arange(12.0 * 16.0).reshape(12, 16)
        from repro.memory.address_space import AddressSpace
        space = AddressSpace()
        surf = Surface.alloc(space, "S", 16, 12, DataType.F)
        surf.upload(space, img)
        got = surf.sample_bilinear(space, np.array([x]), np.array([y]))[0]
        x0, y0 = int(np.floor(x)), int(np.floor(y))
        fx, fy = x - x0, y - y0
        top = img[y0, x0] * (1 - fx) + img[y0, x0 + 1] * fx
        bot = img[y0 + 1, x0] * (1 - fx) + img[y0 + 1, x0 + 1] * fx
        assert got == pytest.approx(top * (1 - fy) + bot * fy, rel=1e-12)

    def test_sampling_tiled_surface_uses_element_path(self, space, img):
        surf = make_surface(space, img, tiling=TileMode.TILED)
        got = surf.sample_bilinear(space, np.array([1.5]), np.array([1.5]))
        expected = img[1:3, 1:3].mean()
        assert got[0] == pytest.approx(expected)
