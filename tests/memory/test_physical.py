"""Physical memory and frame allocation."""

import numpy as np
import pytest

from repro.errors import OutOfPhysicalMemory
from repro.memory.physical import PAGE_SIZE, PhysicalMemory


class TestAllocation:
    def test_frames_are_distinct(self):
        mem = PhysicalMemory(size=16 * PAGE_SIZE)
        frames = [mem.alloc_frame() for _ in range(16)]
        assert len(set(frames)) == 16

    def test_exhaustion(self):
        mem = PhysicalMemory(size=2 * PAGE_SIZE)
        mem.alloc_frame()
        mem.alloc_frame()
        with pytest.raises(OutOfPhysicalMemory):
            mem.alloc_frame()

    def test_free_recycles(self):
        mem = PhysicalMemory(size=2 * PAGE_SIZE)
        a = mem.alloc_frame()
        mem.alloc_frame()
        mem.free_frame(a)
        assert mem.alloc_frame() == a

    def test_free_zeroes_frame(self):
        mem = PhysicalMemory(size=2 * PAGE_SIZE)
        pfn = mem.alloc_frame()
        mem.write(pfn * PAGE_SIZE, np.full(8, 0xAB, dtype=np.uint8))
        mem.free_frame(pfn)
        pfn2 = mem.alloc_frame()
        assert not mem.read(pfn2 * PAGE_SIZE, 8).any()

    def test_frames_in_use(self):
        mem = PhysicalMemory(size=4 * PAGE_SIZE)
        assert mem.frames_in_use == 0
        a = mem.alloc_frame()
        mem.alloc_frame()
        assert mem.frames_in_use == 2
        mem.free_frame(a)
        assert mem.frames_in_use == 1

    def test_bad_free(self):
        mem = PhysicalMemory(size=PAGE_SIZE)
        with pytest.raises(ValueError):
            mem.free_frame(99)

    def test_size_must_be_page_multiple(self):
        with pytest.raises(ValueError):
            PhysicalMemory(size=PAGE_SIZE + 1)


class TestAccess:
    def test_write_read_roundtrip(self):
        mem = PhysicalMemory(size=PAGE_SIZE)
        data = np.arange(64, dtype=np.uint8)
        mem.write(100, data)
        assert np.array_equal(mem.read(100, 64), data)

    def test_view_is_mutable(self):
        mem = PhysicalMemory(size=PAGE_SIZE)
        view = mem.view(0, 4)
        view[:] = 7
        assert mem.read(0, 4).tolist() == [7, 7, 7, 7]

    def test_out_of_range(self):
        mem = PhysicalMemory(size=PAGE_SIZE)
        with pytest.raises(ValueError):
            mem.read(PAGE_SIZE - 2, 4)
        with pytest.raises(ValueError):
            mem.write(-1, np.zeros(2, dtype=np.uint8))
