"""Per-sequencer TLBs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TlbMiss
from repro.memory.tlb import Tlb


def test_miss_then_hit():
    tlb = Tlb(capacity=4, name="t")
    with pytest.raises(TlbMiss):
        tlb.lookup(5)
    tlb.insert(5, 0xAA)
    assert tlb.lookup(5) == 0xAA
    assert tlb.hits == 1 and tlb.misses == 1


def test_miss_reports_address_and_sequencer():
    tlb = Tlb(name="gma")
    with pytest.raises(TlbMiss) as info:
        tlb.lookup(3)
    assert info.value.vaddr == 3 << 12
    assert info.value.sequencer == "gma"


def test_lru_eviction():
    tlb = Tlb(capacity=2)
    tlb.insert(1, 11)
    tlb.insert(2, 22)
    tlb.lookup(1)  # 1 becomes most recent
    tlb.insert(3, 33)  # evicts 2
    assert 1 in tlb and 3 in tlb and 2 not in tlb


def test_reinsert_updates_value():
    tlb = Tlb(capacity=2)
    tlb.insert(1, 11)
    tlb.insert(1, 99)
    assert tlb.lookup(1) == 99
    assert len(tlb) == 1


def test_invalidate_single_and_all():
    tlb = Tlb(capacity=4)
    tlb.insert(1, 1)
    tlb.insert(2, 2)
    tlb.invalidate(1)
    assert 1 not in tlb and 2 in tlb
    tlb.invalidate()
    assert len(tlb) == 0


def test_probe_does_not_count():
    tlb = Tlb()
    assert tlb.probe(9) is None
    tlb.insert(9, 1)
    assert tlb.probe(9) == 1
    assert tlb.hits == 0 and tlb.misses == 0


def test_probe_does_not_perturb_lru():
    """probe is a diagnostic peek: unlike lookup, it must not freshen
    the entry's recency (or the debugger would change eviction order)."""
    tlb = Tlb(capacity=2)
    tlb.insert(1, 11)
    tlb.insert(2, 22)
    assert tlb.probe(1) == 11  # does NOT make 1 most-recent
    tlb.insert(3, 33)  # still evicts 1, the true LRU victim
    assert 1 not in tlb and 2 in tlb and 3 in tlb
    assert tlb.hits == 0 and tlb.misses == 0


def test_invalidate_none_is_full_flush():
    tlb = Tlb(capacity=4)
    tlb.insert(1, 1)
    tlb.insert(2, 2)
    tlb.invalidate(None)  # explicit None, same as no-arg
    assert len(tlb) == 0
    with pytest.raises(TlbMiss):
        tlb.lookup(1)


def test_invalidate_absent_vpn_is_noop():
    tlb = Tlb(capacity=2)
    tlb.insert(1, 1)
    tlb.invalidate(7)
    assert 1 in tlb and len(tlb) == 1


def test_capacity_one():
    """Degenerate single-entry TLB: every new page displaces the last."""
    tlb = Tlb(capacity=1)
    tlb.insert(1, 11)
    assert tlb.lookup(1) == 11
    tlb.insert(2, 22)
    assert 1 not in tlb and len(tlb) == 1
    assert tlb.lookup(2) == 22
    with pytest.raises(TlbMiss):
        tlb.lookup(1)
    # re-inserting the resident page must not evict it
    tlb.insert(2, 99)
    assert tlb.lookup(2) == 99 and len(tlb) == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        Tlb(capacity=0)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=200))
def test_capacity_never_exceeded(vpns):
    tlb = Tlb(capacity=8)
    for vpn in vpns:
        tlb.insert(vpn, vpn)
        assert len(tlb) <= 8
    # most recently inserted is always resident
    assert vpns[-1] in tlb


class _CountingEntries(dict):
    """Stand-in for the TLB's backing OrderedDict that counts probes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.probes = 0

    def get(self, key, default=None):
        self.probes += 1
        return super().get(key, default)

    def move_to_end(self, key):
        pass  # plain dict: insertion order is fine for these tests

    def popitem(self, last=True):
        key = next(iter(self)) if not last else next(reversed(self))
        return key, self.pop(key)


class TestLastPageMru:
    def test_repeat_page_skips_dict_probe(self):
        """Consecutive same-page lookups must be absorbed by the
        one-entry MRU: exactly one dict probe, hit accounting unchanged."""
        tlb = Tlb(capacity=4)
        tlb.insert(7, 0x77)
        counting = _CountingEntries(tlb._entries)
        tlb._entries = counting
        tlb._mru_vpn = -1  # force the first lookup through the dict
        for _ in range(16):
            assert tlb.lookup(7) == 0x77
        assert counting.probes == 1
        assert tlb.hits == 16
        assert tlb.mru_hits == 15

    def test_insert_primes_mru(self):
        tlb = Tlb(capacity=4)
        tlb.insert(3, 0x33)
        counting = _CountingEntries(tlb._entries)
        tlb._entries = counting
        assert tlb.lookup(3) == 0x33  # insert already primed the MRU
        assert counting.probes == 0

    def test_invalidate_clears_mru(self):
        tlb = Tlb(capacity=4)
        tlb.insert(5, 0x55)
        tlb.lookup(5)
        tlb.invalidate(5)
        with pytest.raises(TlbMiss):
            tlb.lookup(5)  # the MRU must not serve the dead entry

    def test_full_flush_clears_mru(self):
        tlb = Tlb(capacity=4)
        tlb.insert(5, 0x55)
        tlb.invalidate()
        with pytest.raises(TlbMiss):
            tlb.lookup(5)

    def test_eviction_clears_mru(self):
        tlb = Tlb(capacity=1)
        tlb.insert(1, 11)
        tlb.lookup(1)
        tlb.insert(2, 22)  # evicts vpn 1, which is also the MRU
        with pytest.raises(TlbMiss):
            tlb.lookup(1)

    def test_reinsert_updates_mru_value(self):
        tlb = Tlb(capacity=4)
        tlb.insert(1, 11)
        tlb.lookup(1)
        tlb.insert(1, 99)
        assert tlb.lookup(1) == 99

    def test_mru_hit_preserves_lru_order(self):
        """An MRU hit skips move_to_end; that is only sound because the
        MRU entry is by construction already at the LRU tail."""
        tlb = Tlb(capacity=2)
        tlb.insert(1, 11)
        tlb.insert(2, 22)
        tlb.lookup(2)  # MRU hit: 2 is already most recent
        tlb.insert(3, 33)  # must evict 1, the true LRU victim
        assert 2 in tlb and 3 in tlb and 1 not in tlb


class TestVectorSnapshot:
    def test_translate_batch_hits_and_misses(self):
        import numpy as np
        tlb = Tlb(capacity=8)
        tlb.insert(1, 0x11)
        tlb.insert(3, 0x33)
        vaddrs = np.array([1 << 12, (3 << 12) + 40, 2 << 12])
        entries, hit = tlb.translate_batch(vaddrs)
        assert hit.tolist() == [True, True, False]
        assert entries.tolist() == [0x11, 0x33, 0]
        assert tlb.vector_hits == 2
        # the wide probe is architecturally one access, not per-lane
        assert tlb.hits == 0 and tlb.misses == 0

    def test_empty_tlb_all_miss(self):
        import numpy as np
        tlb = Tlb()
        entries, hit = tlb.translate_batch(np.array([0, 1 << 12]))
        assert not hit.any() and not entries.any()

    def test_snapshot_tracks_insert_and_invalidate(self):
        import numpy as np
        tlb = Tlb(capacity=8)
        tlb.insert(1, 0x11)
        _, hit = tlb.translate_batch(np.array([1 << 12]))
        assert hit.all()
        tlb.insert(2, 0x22)  # must dirty the snapshot
        _, hit = tlb.translate_batch(np.array([2 << 12]))
        assert hit.all()
        tlb.invalidate(1)
        _, hit = tlb.translate_batch(np.array([1 << 12]))
        assert not hit.any()
