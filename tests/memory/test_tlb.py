"""Per-sequencer TLBs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TlbMiss
from repro.memory.tlb import Tlb


def test_miss_then_hit():
    tlb = Tlb(capacity=4, name="t")
    with pytest.raises(TlbMiss):
        tlb.lookup(5)
    tlb.insert(5, 0xAA)
    assert tlb.lookup(5) == 0xAA
    assert tlb.hits == 1 and tlb.misses == 1


def test_miss_reports_address_and_sequencer():
    tlb = Tlb(name="gma")
    with pytest.raises(TlbMiss) as info:
        tlb.lookup(3)
    assert info.value.vaddr == 3 << 12
    assert info.value.sequencer == "gma"


def test_lru_eviction():
    tlb = Tlb(capacity=2)
    tlb.insert(1, 11)
    tlb.insert(2, 22)
    tlb.lookup(1)  # 1 becomes most recent
    tlb.insert(3, 33)  # evicts 2
    assert 1 in tlb and 3 in tlb and 2 not in tlb


def test_reinsert_updates_value():
    tlb = Tlb(capacity=2)
    tlb.insert(1, 11)
    tlb.insert(1, 99)
    assert tlb.lookup(1) == 99
    assert len(tlb) == 1


def test_invalidate_single_and_all():
    tlb = Tlb(capacity=4)
    tlb.insert(1, 1)
    tlb.insert(2, 2)
    tlb.invalidate(1)
    assert 1 not in tlb and 2 in tlb
    tlb.invalidate()
    assert len(tlb) == 0


def test_probe_does_not_count():
    tlb = Tlb()
    assert tlb.probe(9) is None
    tlb.insert(9, 1)
    assert tlb.probe(9) == 1
    assert tlb.hits == 0 and tlb.misses == 0


def test_probe_does_not_perturb_lru():
    """probe is a diagnostic peek: unlike lookup, it must not freshen
    the entry's recency (or the debugger would change eviction order)."""
    tlb = Tlb(capacity=2)
    tlb.insert(1, 11)
    tlb.insert(2, 22)
    assert tlb.probe(1) == 11  # does NOT make 1 most-recent
    tlb.insert(3, 33)  # still evicts 1, the true LRU victim
    assert 1 not in tlb and 2 in tlb and 3 in tlb
    assert tlb.hits == 0 and tlb.misses == 0


def test_invalidate_none_is_full_flush():
    tlb = Tlb(capacity=4)
    tlb.insert(1, 1)
    tlb.insert(2, 2)
    tlb.invalidate(None)  # explicit None, same as no-arg
    assert len(tlb) == 0
    with pytest.raises(TlbMiss):
        tlb.lookup(1)


def test_invalidate_absent_vpn_is_noop():
    tlb = Tlb(capacity=2)
    tlb.insert(1, 1)
    tlb.invalidate(7)
    assert 1 in tlb and len(tlb) == 1


def test_capacity_one():
    """Degenerate single-entry TLB: every new page displaces the last."""
    tlb = Tlb(capacity=1)
    tlb.insert(1, 11)
    assert tlb.lookup(1) == 11
    tlb.insert(2, 22)
    assert 1 not in tlb and len(tlb) == 1
    assert tlb.lookup(2) == 22
    with pytest.raises(TlbMiss):
        tlb.lookup(1)
    # re-inserting the resident page must not evict it
    tlb.insert(2, 99)
    assert tlb.lookup(2) == 99 and len(tlb) == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        Tlb(capacity=0)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=200))
def test_capacity_never_exceeded(vpns):
    tlb = Tlb(capacity=8)
    for vpn in vpns:
        tlb.insert(vpn, vpn)
        assert len(tlb) <= 8
    # most recently inserted is always resident
    assert vpns[-1] in tlb
