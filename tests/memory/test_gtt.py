"""GPU-format (GTT) page-table entries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.memory.gtt import (
    GttMemType,
    gtt_memtype,
    gtt_pfn,
    gtt_valid,
    make_gtt_entry,
)


def test_valid_bit():
    assert gtt_valid(make_gtt_entry(5))
    assert not gtt_valid(0)


def test_memtype_roundtrip():
    for memtype in GttMemType:
        entry = make_gtt_entry(3, memtype)
        assert gtt_memtype(entry) is memtype


def test_default_memtype_is_writeback():
    assert gtt_memtype(make_gtt_entry(1)) is GttMemType.WRITE_BACK


def test_pfn_too_large():
    with pytest.raises(EncodingError):
        make_gtt_entry(1 << 24)


def test_layout_differs_from_ia32():
    """The whole point of ATR: the same PFN encodes differently."""
    from repro.memory.paging import make_pte

    pfn = 0x123
    assert make_gtt_entry(pfn) != make_pte(pfn)


@given(st.integers(min_value=0, max_value=(1 << 24) - 1))
def test_pfn_roundtrip(pfn):
    for memtype in GttMemType:
        assert gtt_pfn(make_gtt_entry(pfn, memtype)) == pfn
