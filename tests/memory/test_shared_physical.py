"""Shared-memory backing for PhysicalMemory: lifecycle and visibility."""

import multiprocessing

import numpy as np
import pytest

from repro.errors import MemorySystemError
from repro.memory.physical import PAGE_SIZE, PhysicalMemory

SIZE = 4 * 1024 * 1024


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    shm.close()
    return True


class TestBacking:
    def test_local_backing_has_no_segment(self):
        mem = PhysicalMemory(size=SIZE)
        assert mem.backing == "local"
        assert mem.shm_name is None
        mem.close()  # no-op for local

    def test_unknown_backing_rejected(self):
        with pytest.raises(ValueError, match="unknown physical backing"):
            PhysicalMemory(size=SIZE, backing="mmap")

    def test_shared_backing_zeroed_and_usable(self):
        mem = PhysicalMemory(size=SIZE, backing="shared")
        try:
            assert mem.shm_name is not None
            pfn = mem.alloc_frame()
            assert not mem.read(pfn * PAGE_SIZE, PAGE_SIZE).any()
            mem.write(pfn * PAGE_SIZE, np.arange(16, dtype=np.uint8))
            assert mem.read(pfn * PAGE_SIZE, 16).tolist() == list(range(16))
        finally:
            mem.close()


class TestLifecycle:
    def test_owner_close_unlinks_segment(self):
        mem = PhysicalMemory(size=SIZE, backing="shared")
        name = mem.shm_name
        assert _segment_exists(name)
        mem.close()
        assert not _segment_exists(name)

    def test_close_is_idempotent(self):
        mem = PhysicalMemory(size=SIZE, backing="shared")
        mem.close()
        mem.close()

    def test_attacher_close_leaves_segment(self):
        owner = PhysicalMemory(size=SIZE, backing="shared")
        name = owner.shm_name
        try:
            attached = PhysicalMemory.attach(name, SIZE)
            attached.close()
            assert _segment_exists(name)
        finally:
            owner.close()
        assert not _segment_exists(name)

    def test_attach_too_small_segment_rejected(self):
        owner = PhysicalMemory(size=SIZE, backing="shared")
        try:
            with pytest.raises(MemorySystemError, match="bytes"):
                PhysicalMemory.attach(owner.shm_name, 2 * SIZE)
        finally:
            owner.close()

    def test_unlink_reaps_orphaned_segment(self):
        mem = PhysicalMemory(size=SIZE, backing="shared")
        name = mem.shm_name
        mem.unlink()
        assert not _segment_exists(name)
        mem.close()  # must not raise or double-unlink

    def test_no_leak_after_aborted_attacher(self):
        """A killed attacher process must not leak the segment: the owner
        still holds it and still reaps it on close."""
        owner = PhysicalMemory(size=SIZE, backing="shared")
        name = owner.shm_name

        def _attach_and_hang(seg_name, size):
            PhysicalMemory.attach(seg_name, size)
            import time

            time.sleep(60)

        proc = multiprocessing.Process(target=_attach_and_hang,
                                       args=(name, SIZE), daemon=True)
        proc.start()
        try:
            assert _segment_exists(name)
        finally:
            proc.kill()
            proc.join(timeout=10)
        owner.close()
        assert not _segment_exists(name)


class TestCrossProcessVisibility:
    @staticmethod
    def _child_write(name, size, paddr):
        mem = PhysicalMemory.attach(name, size)
        mem.write(paddr, np.full(8, 0xAB, dtype=np.uint8))
        mem.close()

    def test_child_writes_visible_to_owner(self):
        owner = PhysicalMemory(size=SIZE, backing="shared")
        try:
            pfn = owner.alloc_frame()
            paddr = pfn * PAGE_SIZE
            proc = multiprocessing.Process(
                target=self._child_write,
                args=(owner.shm_name, SIZE, paddr))
            proc.start()
            proc.join(timeout=30)
            assert proc.exitcode == 0
            assert owner.read(paddr, 8).tolist() == [0xAB] * 8
        finally:
            owner.close()
