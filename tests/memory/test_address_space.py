"""The shared virtual address space and sequencer views."""

import numpy as np
import pytest

from repro.errors import MemorySystemError, TlbMiss
from repro.memory.address_space import HEAP_BASE, AddressSpace, SequencerView
from repro.memory.gtt import make_gtt_entry
from repro.memory.physical import PAGE_SIZE


class TestAllocation:
    def test_alloc_returns_heap_addresses(self, space):
        a = space.alloc(100)
        b = space.alloc(100)
        assert a == HEAP_BASE
        assert b >= a + PAGE_SIZE  # page-granular carving

    def test_alloc_size_positive(self, space):
        with pytest.raises(ValueError):
            space.alloc(0)

    def test_eager_maps_immediately(self, space):
        base = space.alloc(2 * PAGE_SIZE, eager=True)
        assert space.page_table.entry(base >> 12)
        assert space.page_table.entry((base >> 12) + 1)

    def test_lazy_maps_on_touch(self, space):
        base = space.alloc(PAGE_SIZE)
        assert not space.page_table.entry(base >> 12)
        space.write_bytes(base, np.array([1], dtype=np.uint8))
        assert space.page_table.entry(base >> 12)
        assert space.faults_serviced == 1

    def test_free_releases_frames(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        used = space.physical.frames_in_use
        space.free(base)
        assert space.physical.frames_in_use == used - 1

    def test_free_unknown(self, space):
        with pytest.raises(MemorySystemError):
            space.free(0x999)

    def test_allocation_size(self, space):
        base = space.alloc(123)
        assert space.allocation_size(base) == 123


class TestHostAccess:
    def test_roundtrip_across_pages(self, space):
        base = space.alloc(3 * PAGE_SIZE)
        data = np.arange(2 * PAGE_SIZE, dtype=np.uint8)  # wraps mod 256
        space.write_bytes(base + 100, data)
        assert np.array_equal(space.read_bytes(base + 100, data.size), data)

    def test_typed_arrays(self, space):
        base = space.alloc(64)
        values = np.array([1.5, -2.5, 3.5], dtype=np.float32)
        space.write_array(base, values)
        assert np.array_equal(space.read_array(base, 3, np.float32), values)

    def test_demand_paging_disabled(self):
        space = AddressSpace(demand_paging=False)
        base = space.alloc(PAGE_SIZE)
        from repro.errors import TranslationFault
        with pytest.raises(TranslationFault):
            space.read_bytes(base, 1)


class TestSequencerView:
    def test_view_misses_without_translation(self, space):
        view = SequencerView(space, name="gma")
        base = space.alloc(PAGE_SIZE, eager=True)
        with pytest.raises(TlbMiss):
            view.read_bytes(base, 4)

    def test_view_reads_after_fill(self, space):
        view = SequencerView(space)
        base = space.alloc(PAGE_SIZE, eager=True)
        space.write_bytes(base, np.array([9, 8, 7], dtype=np.uint8))
        pfn = space.page_table.walk(base >> 12).pfn
        view.tlb.insert(base >> 12, make_gtt_entry(pfn))
        assert view.read_bytes(base, 3).tolist() == [9, 8, 7]

    def test_gtt_refills_tlb_without_fault(self, space):
        view = SequencerView(space)
        base = space.alloc(PAGE_SIZE, eager=True)
        pfn = space.page_table.walk(base >> 12).pfn
        view.gtt[base >> 12] = make_gtt_entry(pfn)
        # TLB is empty, but the hardware walker finds the GTT entry
        view.read_bytes(base, 1)
        assert view.gtt_walks == 1
        assert (base >> 12) in view.tlb

    def test_same_physical_data_both_sides(self, space):
        """The EXO property: one vaddr, one physical page, two formats."""
        view = SequencerView(space)
        base = space.alloc(PAGE_SIZE, eager=True)
        pfn = space.page_table.walk(base >> 12).pfn
        view.tlb.insert(base >> 12, make_gtt_entry(pfn))
        view.write_bytes(base + 5, np.array([42], dtype=np.uint8))
        assert space.read_bytes(base + 5, 1)[0] == 42

    def test_prepare_range_is_atomic(self, space):
        """A multi-page access raises before moving any byte if any page
        is unmapped in the view."""
        view = SequencerView(space)
        base = space.alloc(2 * PAGE_SIZE, eager=True)
        pfn = space.page_table.walk(base >> 12).pfn
        view.tlb.insert(base >> 12, make_gtt_entry(pfn))
        # second page not visible to the view: whole write must fail
        data = np.full(PAGE_SIZE + 10, 7, dtype=np.uint8)
        before = space.read_bytes(base, 8).copy()
        with pytest.raises(TlbMiss):
            view.write_bytes(base, data)
        assert np.array_equal(space.read_bytes(base, 8), before)

    def test_view_typed_arrays(self, space):
        view = SequencerView(space)
        base = space.alloc(PAGE_SIZE, eager=True)
        pfn = space.page_table.walk(base >> 12).pfn
        view.tlb.insert(base >> 12, make_gtt_entry(pfn))
        view.write_array(base, np.array([3, -4], dtype=np.int32))
        assert view.read_array(base, 2, np.int32).tolist() == [3, -4]
