"""The performance effect of surface tiling (paper section 4.4).

"Configuring surface information such as the tiling format is important
for achieving the best possible performance in media acceleration code."
With line-granular demand traffic, a tiled layout keeps a tall narrow
block's bytes together, where a linear layout pulls one cache line per
row — the mechanism behind the descriptor's tiling attribute.
"""

import numpy as np
import pytest

from repro.exo.shred import ShredDescriptor
from repro.gma.device import GmaDevice
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.memory.address_space import AddressSpace
from repro.memory.surface import Surface, TileMode

COLUMN_READER = """
    ldblk.4x16.ub [vr10..vr13] = (S, 0, by)
    hadd.64.f vr20 = [vr10..vr13]
    st.1.dw (O, sidx, 0) = vr20
    end
"""


def run_column_workload(tiling: TileMode):
    space = AddressSpace()
    device = GmaDevice(space)
    src = Surface.alloc(space, "S", 512, 64, DataType.UB, tiling=tiling)
    out = Surface.alloc(space, "O", 8, 1, DataType.DW)
    image = (np.arange(512 * 64).reshape(64, 512) % 256).astype(np.float64)
    src.upload(space, image)
    program = assemble(COLUMN_READER)
    shreds = [
        ShredDescriptor(program=program,
                        bindings={"by": float(i * 16), "sidx": float(i)},
                        surfaces={"S": src, "O": out})
        for i in range(4)
    ]
    result = device.run(shreds)
    sums = out.download(space).reshape(-1)[:4]
    expected = np.array([image[i * 16 : (i + 1) * 16, 0:4].sum()
                         for i in range(4)])
    assert np.array_equal(sums, expected)  # layout never changes results
    return result


def test_tiled_columns_pull_fewer_lines():
    linear = run_column_workload(TileMode.LINEAR)
    tiled = run_column_workload(TileMode.TILED)
    # linear pulls one 64-byte line per touched row; tiling packs the
    # column strip into 4x4 tiles, cutting demand traffic ~4x here
    assert tiled.bytes_read * 3 < linear.bytes_read


def test_full_surface_reads_are_layout_neutral():
    """When every byte is consumed anyway, tiling cannot reduce traffic."""

    full_reader = """
        ldblk.64x1.ub [vr10..vr13] = (S, 0, row)
        stblk.64x1.ub (O, 0, row) = [vr10..vr13]
        end
    """
    totals = {}
    for tiling in (TileMode.LINEAR, TileMode.TILED):
        space = AddressSpace()
        device = GmaDevice(space)
        src = Surface.alloc(space, "S", 64, 16, DataType.UB, tiling=tiling)
        out = Surface.alloc(space, "O", 64, 16, DataType.UB, tiling=tiling)
        src.upload(space, np.zeros((16, 64)))
        program = assemble(full_reader)
        shreds = [ShredDescriptor(program=program,
                                  bindings={"row": float(r)},
                                  surfaces={"S": src, "O": out})
                  for r in range(16)]
        totals[tiling] = device.run(shreds).bytes_read
    assert totals[TileMode.LINEAR] == totals[TileMode.TILED]


def test_descriptor_tiling_switch_changes_traffic(runtime):
    """The chi_modify_desc(TILING) path ends in real traffic changes."""
    from repro.chi.descriptors import AccessMode, DescriptorAttrib

    space = runtime.platform.space
    src = Surface.alloc(space, "S", 512, 64, DataType.UB)
    desc = runtime.chi_alloc_desc("X3000", src, AccessMode.CHI_INPUT)
    runtime.chi_modify_desc("X3000", desc, DescriptorAttrib.TILING,
                            TileMode.TILED)
    assert src.tiling is TileMode.TILED
