"""IA32 page tables: bit-level entry format and walks."""

import pytest

from repro.errors import ProtectionFault, TranslationFault
from repro.memory.paging import (
    PTE_ACCESSED,
    PTE_CACHE_DISABLE,
    PTE_DIRTY,
    PTE_PRESENT,
    PTE_WRITABLE,
    IA32PageTable,
    make_pte,
    pte_pfn,
)


class TestPteFormat:
    def test_present_and_pfn(self):
        pte = make_pte(0x1234)
        assert pte & PTE_PRESENT
        assert pte_pfn(pte) == 0x1234

    def test_flags(self):
        pte = make_pte(1, writable=False, cache_disable=True)
        assert not pte & PTE_WRITABLE
        assert pte & PTE_CACHE_DISABLE
        pte = make_pte(1, writable=True)
        assert pte & PTE_WRITABLE

    def test_pfn_occupies_high_bits(self):
        # low 12 bits are flags; PFN starts at bit 12 (IA32 non-PAE)
        assert make_pte(1) & 0xFFF == PTE_PRESENT | PTE_WRITABLE | 0b100


class TestWalks:
    def test_map_then_walk(self):
        table = IA32PageTable()
        table.map(0x400, 0x77)
        tr = table.walk(0x400)
        assert tr.pfn == 0x77
        assert tr.writable

    def test_unmapped_faults(self):
        table = IA32PageTable()
        with pytest.raises(TranslationFault) as info:
            table.walk(0x500)
        assert info.value.vaddr == 0x500 << 12

    def test_write_to_readonly_faults(self):
        table = IA32PageTable()
        table.map(1, 2, writable=False)
        table.walk(1, write=False)
        with pytest.raises(ProtectionFault):
            table.walk(1, write=True)

    def test_accessed_and_dirty_bits(self):
        table = IA32PageTable()
        table.map(1, 2)
        assert not table.entry(1) & PTE_ACCESSED
        table.walk(1)
        assert table.entry(1) & PTE_ACCESSED
        assert not table.entry(1) & PTE_DIRTY
        table.walk(1, write=True)
        assert table.entry(1) & PTE_DIRTY

    def test_unmap(self):
        table = IA32PageTable()
        table.map(7, 8)
        table.unmap(7)
        with pytest.raises(TranslationFault):
            table.walk(7)
        with pytest.raises(TranslationFault):
            table.unmap(7)

    def test_vpn_out_of_space(self):
        table = IA32PageTable()
        with pytest.raises(TranslationFault):
            table.walk(1 << 21)  # beyond the 32-bit space

    def test_mapped_vpns(self):
        table = IA32PageTable()
        for vpn in (5, 1029, 3):  # spans two directory entries
            table.map(vpn, vpn + 1)
        assert table.mapped_vpns() == [3, 5, 1029]

    def test_two_level_structure(self):
        # vpns in distinct directories do not interfere
        table = IA32PageTable()
        table.map(0, 10)
        table.map(1024, 20)
        assert table.walk(0).pfn == 10
        assert table.walk(1024).pfn == 20

    def test_entry_returns_zero_when_absent(self):
        assert IA32PageTable().entry(3) == 0
