"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.chi.platform import ExoPlatform
from repro.chi.runtime import ChiRuntime
from repro.gma.device import GmaDevice
from repro.memory.address_space import AddressSpace

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def space() -> AddressSpace:
    return AddressSpace()


@pytest.fixture
def device(space) -> GmaDevice:
    return GmaDevice(space)


@pytest.fixture
def platform() -> ExoPlatform:
    return ExoPlatform()


@pytest.fixture
def runtime(platform) -> ChiRuntime:
    return ChiRuntime(platform)
