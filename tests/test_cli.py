"""The chicc / chirun / chidump command-line toolchain."""

import pytest

from repro.cli import chicc, chidump, chirun

PROGRAM = """
int main() {
    int OUT[8];
    #pragma omp parallel target(X3000) shared(OUT) num_threads(8)
    {
        __asm {
            mul.1.dw vr1 = tid, 3
            st.1.dw (OUT, tid, 0) = vr1
            end
        }
    }
    printf("OUT[7]=%d\\n", OUT[7]);
    return 0;
}
"""


@pytest.fixture
def source(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return path


class TestChicc:
    def test_compiles_to_fatbin(self, source, capsys):
        assert chicc([str(source)]) == 0
        out = source.with_suffix(".fatbin")
        assert out.exists()
        assert out.read_bytes()[:4] == b"FATB"
        assert "1 accelerator section" in capsys.readouterr().out

    def test_explicit_output_and_sections(self, source, tmp_path, capsys):
        target = tmp_path / "custom.fatbin"
        assert chicc([str(source), "-o", str(target), "--sections"]) == 0
        assert target.exists()
        assert "X3000" in capsys.readouterr().out

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main() { return x; }")
        assert chicc([str(bad)]) == 1
        assert "chicc:" in capsys.readouterr().err


class TestChirun:
    def test_runs_c_directly(self, source, capsys):
        assert chirun([str(source)]) == 0
        assert "OUT[7]=21" in capsys.readouterr().out

    def test_runs_fatbin(self, source, capsys):
        chicc([str(source)])
        capsys.readouterr()
        assert chirun([str(source.with_suffix(".fatbin"))]) == 0
        assert "OUT[7]=21" in capsys.readouterr().out

    def test_exit_value_propagates(self, tmp_path):
        path = tmp_path / "seven.c"
        path.write_text("int main() { return 7; }")
        assert chirun([str(path)]) == 7

    def test_stats_flag(self, source, capsys):
        assert chirun([str(source), "--stats"]) == 0
        captured = capsys.readouterr()
        assert "shreds=8" in captured.err

    def test_fatbin_without_host_source(self, tmp_path, capsys):
        from repro.chi.fatbinary import FatBinary

        path = tmp_path / "empty.fatbin"
        path.write_bytes(FatBinary(name="empty").serialize())
        assert chirun([str(path)]) == 1
        assert "no host code" in capsys.readouterr().err


class TestChidump:
    def test_lists_and_disassembles(self, source, capsys):
        chicc([str(source)])
        capsys.readouterr()
        assert chidump([str(source.with_suffix(".fatbin"))]) == 0
        out = capsys.readouterr().out
        assert "X3000" in out
        assert "st.1.dw (OUT, tid, 0) = vr1" in out

    def test_no_disassembly_flag(self, source, capsys):
        chicc([str(source)])
        capsys.readouterr()
        assert chidump([str(source.with_suffix(".fatbin")),
                        "--no-disassembly"]) == 0
        assert "st.1.dw" not in capsys.readouterr().out

    def test_bad_image(self, tmp_path, capsys):
        path = tmp_path / "junk.fatbin"
        path.write_bytes(b"not a fat binary")
        assert chidump([str(path)]) == 1
        assert "chidump:" in capsys.readouterr().err


class TestFatbinHostSourceIntegrity:
    def test_mismatched_sections_detected(self, source, tmp_path, capsys):
        """A fat binary whose host source disagrees with its code sections
        (e.g. hand-edited) is rejected rather than silently misrun."""
        from repro.chi.fatbinary import FatBinary
        from repro.isa.assembler import assemble

        chicc([str(source)])
        fat = FatBinary.deserialize(source.with_suffix(".fatbin").read_bytes())
        fat.add_section("X3000", assemble("end", "extra"))
        tampered = tmp_path / "tampered.fatbin"
        tampered.write_bytes(fat.serialize())
        capsys.readouterr()
        assert chirun([str(tampered)]) == 1
        assert "disagree" in capsys.readouterr().err
