"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError), name


def test_assembly_error_line_prefix():
    err = errors.AssemblyError("bad operand", line=12)
    assert "line 12" in str(err)
    assert err.line == 12
    assert "line" not in str(errors.AssemblyError("bad operand"))


def test_tlb_miss_carries_context():
    err = errors.TlbMiss(0x1234, sequencer="gma")
    assert err.vaddr == 0x1234
    assert err.sequencer == "gma"
    assert issubclass(errors.TlbMiss, errors.MemorySystemError)


def test_translation_and_protection_fault_kinds():
    read = errors.TranslationFault(0x1000)
    write = errors.TranslationFault(0x1000, write=True)
    assert "read" in str(read) and "write" in str(write)
    prot = errors.ProtectionFault(0x2000, write=True)
    assert prot.vaddr == 0x2000


def test_execution_fault_family():
    for klass in (errors.DivideByZeroFault, errors.FpOverflowFault,
                  errors.UnsupportedOperationFault,
                  errors.IllegalInstructionFault):
        fault = klass("boom", instruction="fake", lane=3)
        assert isinstance(fault, errors.ExecutionFault)
        assert fault.lane == 3
        assert fault.instruction == "fake"


def test_frontend_error_positions():
    assert "3:7" in str(errors.ParseError("oops", line=3, col=7))
    assert str(errors.LexError("oops", line=3)).startswith("3:")
    assert issubclass(errors.SemanticError, errors.FrontendError)


def test_chi_error_family():
    for klass in (errors.DescriptorError, errors.SchedulingError,
                  errors.PragmaError, errors.DebuggerError):
        assert issubclass(klass, errors.ChiError)


def test_catch_all_boundary():
    """Library code never needs to catch bare Exception for its own errors."""
    with pytest.raises(errors.ReproError):
        raise errors.CoherenceViolation("stale read")
