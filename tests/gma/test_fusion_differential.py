"""Differential suite: the fused engine must be bit-identical to scalar.

Mirrors ``test_gang_differential`` with ``engine="fused"``: every
scenario runs on a scalar device and a fused device over fresh address
spaces, then compares outputs, per-shred ``ShredRun`` records (including
the ``(issue, latency)`` traces the timing model replays) and every
aggregate counter.  The targeted scenarios aim at the fusion-specific
seams: divergence *inside* a compiled block's loop, guarded ALU steps in
a block body, a TLB miss interrupting a chained trace, and a CEH fault
raised by a block's batched step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exo.shred import ShredDescriptor
from repro.gma.device import GmaDevice
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.kernels import ALL_KERNELS, run_kernel_on_gma
from repro.memory.address_space import AddressSpace
from repro.memory.surface import Surface
from repro.perf import SMOKE_GEOMETRIES

RUN_FIELDS = ("instructions", "issue_cycles", "bytes_read", "bytes_written",
              "sampler_samples", "atr_events", "ceh_events", "spawned")
AGG_FIELDS = ("shreds_executed", "instructions", "bytes_read",
              "bytes_written", "atr_events", "ceh_events", "spawned_shreds")


def run_engines(asm: str, bindings_list, surfaces_spec=None, inputs=None,
                prepare_surfaces: bool = True):
    """The same launch on scalar and fused, each on a fresh device."""
    program = assemble(asm, name="fusion-differential")
    out = {}
    for engine in ("scalar", "fused"):
        space = AddressSpace()
        device = GmaDevice(space, engine=engine)
        surfaces = {
            name: Surface.alloc(space, name, width, height, DataType.F)
            for name, (width, height) in (surfaces_spec or {}).items()
        }
        for name, image in (inputs or {}).items():
            surfaces[name].upload(space, np.asarray(image))
        shreds = [ShredDescriptor(program=program, bindings=dict(bindings),
                                  surfaces=surfaces)
                  for bindings in bindings_list]
        result = device.run(shreds, prepare_surfaces=prepare_surfaces)
        downloads = {name: surf.download(space)
                     for name, surf in surfaces.items()}
        out[engine] = (result, downloads)
    return out["scalar"], out["fused"]


def assert_identical(scalar, fused):
    result_s, surfaces_s = scalar
    result_f, surfaces_f = fused
    for fieldname in AGG_FIELDS:
        assert getattr(result_s, fieldname) == getattr(result_f, fieldname), \
            fieldname
    assert result_s.cycles == result_f.cycles
    assert len(result_s.runs) == len(result_f.runs)
    for position, (run_s, run_f) in enumerate(
            zip(result_s.runs, result_f.runs)):
        for fieldname in RUN_FIELDS:
            assert getattr(run_s, fieldname) == getattr(run_f, fieldname), \
                f"shred {position}: {fieldname}"
        assert run_s.trace == run_f.trace, f"shred {position}: trace"
    assert set(surfaces_s) == set(surfaces_f)
    for name in surfaces_s:
        assert np.array_equal(surfaces_s[name], surfaces_f[name]), name


# -- the whole kernel suite ------------------------------------------------------------


@pytest.mark.parametrize("kernel_cls", ALL_KERNELS,
                         ids=[cls.abbrev for cls in ALL_KERNELS])
def test_kernel_bit_identical(kernel_cls):
    kernel = kernel_cls()
    geom = SMOKE_GEOMETRIES[kernel.abbrev]
    outcomes = {}
    for engine in ("scalar", "fused"):
        device = GmaDevice(AddressSpace(), engine=engine)
        outcomes[engine] = run_kernel_on_gma(
            kernel, geom, device=device, space=device.space, max_frames=1)
    scalar, fused = outcomes["scalar"], outcomes["fused"]
    for fieldname in ("instructions", "shreds", "bytes_read",
                      "bytes_written", "atr_events", "ceh_events",
                      "sampler_samples", "gma_cycles"):
        assert getattr(scalar, fieldname) == getattr(fused, fieldname), \
            fieldname
    for name in scalar.outputs:
        assert np.array_equal(scalar.outputs[name], fused.outputs[name]), \
            name


# -- fusion-specific seams -------------------------------------------------------------


def test_homogeneous_loop_chains_traces():
    """The counted-loop fast path: every back edge is a chained trace."""
    asm = """
    iota.16.f vr1
    mov.1.dw vr2 = 0
    loop:
    mad.16.f vr3 = vr1, vr1, vr1
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    scalar, fused = run_engines(asm, [{"iters": 6.0}] * 8)
    assert_identical(scalar, fused)
    result = fused[0]
    assert result.scalar_fallbacks == 0
    assert result.gang_lanes_retired == result.instructions
    assert result.fused_blocks_retired > 0
    # 5 back edges + the loop-exit fall-through are all uniform
    assert result.trace_chains >= 6
    assert result.fusion_compiles > 0


def test_divergence_inside_loop():
    """A branch that splits mid-loop: the fused divergence path parks the
    minority toward the reconvergence point, the majority keeps chaining
    blocks, and the merge at the join stays bit-identical to scalar."""
    asm = """
    mov.1.dw vr2 = 0
    loop:
    add.16.f vr3 = vr2, vr2
    mul.16.f vr4 = vr3, vr3
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    bindings = [{"iters": 9.0}] * 5 + [{"iters": 3.0}] * 3
    scalar, fused = run_engines(asm, bindings)
    assert_identical(scalar, fused)
    assert fused[0].scalar_fallbacks == 0  # repacked, not peeled
    assert fused[0].gang_repacks == 1
    assert fused[0].lanes_readmitted == 3
    assert fused[0].fused_blocks_retired > 0


def test_guarded_alu_inside_block():
    """Predicated ALU steps inside a block body blend against old
    register lanes exactly as the scalar engine does."""
    asm = """
    iota.16.f vr1
    mov.16.f vr3 = vr1
    cmp.gt.16.f p2 = vr1, thresh
    (p2) mul.16.f vr3 = vr1, 2.0
    (!p2) add.16.f vr3 = vr3, 100.0
    add.16.f vr4 = vr3, vr1
    end
    """
    bindings = [{"thresh": float(t)} for t in (4.0, 4.0, 8.0, 8.0)]
    scalar, fused = run_engines(asm, bindings)
    assert_identical(scalar, fused)
    assert fused[0].scalar_fallbacks == 0


def test_tlb_miss_interrupts_chained_trace():
    """An unprepared surface faults a store mid-program: the fused run
    must abandon the chain before any state changes and preserve ATR
    service order through the deferred peel."""
    asm = """
    mov.1.dw vr2 = base
    iota.16.f vr1
    mad.16.f vr3 = vr1, vr1, vr1
    st.16.f (OUT, vr2, 0) = vr3
    end
    """
    bindings = [{"base": float(16 * i)} for i in range(4)]
    scalar, fused = run_engines(asm, bindings,
                                surfaces_spec={"OUT": (64, 1)},
                                prepare_surfaces=False)
    assert_identical(scalar, fused)
    assert scalar[0].atr_events == 1  # first store faults, rest hit
    assert fused[0].scalar_fallbacks == 4


def test_ceh_fault_mid_block():
    """A divide-by-zero inside a block body: the failing step commits
    nothing, earlier steps commit exactly once, and the faulting shreds
    ride the CEH proxy path in scalar order."""
    asm = """
    bcast.16.f vr1 = d
    mov.16.f vr2 = vr1
    add.16.f vr4 = vr2, 1.0
    div.16.f vr3 = vr4, vr1
    end
    """
    bindings = [{"d": 0.0 if i in (1, 4) else 2.0} for i in range(6)]
    scalar, fused = run_engines(asm, bindings)
    assert_identical(scalar, fused)
    assert scalar[0].ceh_events == 2
    assert fused[0].scalar_fallbacks == 2  # only the faulting shreds peel


def test_spawn_boundary_stops_fusion():
    """SPAWN is never part of a block; the whole gang peels at the spawn
    point and children join the queue in scalar order."""
    asm = """
    mov.1.dw vr2 = __spawn_arg
    cmp.gt.1.dw p1 = vr2, 0
    (!p1) jmp done
    spawn 0
    done:
    end
    """
    bindings = [{"__spawn_arg": 1.0}] * 2 + [{"__spawn_arg": 0.0}] * 2
    scalar, fused = run_engines(asm, bindings)
    assert_identical(scalar, fused)
    assert scalar[0].spawned_shreds == 2
    assert scalar[0].shreds_executed == 6  # 4 parents + 2 children


def test_fused_matches_gang_counters():
    """Fused and plain gang agree on every shared engine counter (the
    fusion counters are the only addition)."""
    asm = """
    iota.16.f vr1
    mov.1.dw vr2 = 0
    loop:
    add.16.f vr3 = vr1, vr1
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    program = assemble(asm, name="fused-vs-gang")
    results = {}
    for engine in ("gang", "fused"):
        device = GmaDevice(AddressSpace(), engine=engine)
        shreds = [ShredDescriptor(program=program,
                                  bindings={"iters": 5.0})
                  for _ in range(8)]
        results[engine] = device.run(shreds)
    gang, fused = results["gang"], results["fused"]
    assert gang.instructions == fused.instructions
    assert gang.cycles == fused.cycles
    assert gang.gang_lanes_retired == fused.gang_lanes_retired
    assert gang.scalar_fallbacks == fused.scalar_fallbacks
    assert gang.fused_blocks_retired == 0 and gang.trace_chains == 0
    assert fused.fused_blocks_retired > 0 and fused.trace_chains > 0
