"""Batched-memory edge cases: the lockstep BATCH_MEM step vs scalar.

Rides the same differential harness as ``test_gang_differential``; every
scenario must be bit-identical between engines, and the happy paths must
actually retire lanes through the batched gather/scatter pipeline
(``batched_mem_lanes > 0``) rather than silently falling back.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exo.shred import ShredDescriptor
from repro.gma.device import GmaDevice
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.memory.address_space import AddressSpace
from repro.memory.physical import PAGE_SIZE
from repro.memory.surface import Surface, TileMode

from .test_gang_differential import (RUN_FIELDS, assert_identical,
                                     run_engines)

#: Elements per page for the F (4-byte float) surfaces used throughout.
ELEMS_PER_PAGE = PAGE_SIZE // DataType.F.size


COPY_ASM = """
mov.1.dw vr2 = base
ld.16.f vr1 = (IN, vr2, 0)
add.16.f vr1 = vr1, vr1
st.16.f (OUT, vr2, 0) = vr1
end
"""


def _image(width, height, seed=7):
    rng = np.random.default_rng(seed)
    return rng.uniform(-64.0, 64.0, size=(height, width))


def test_row_spans_page_boundary():
    """A 16-wide access straddling a page boundary must translate both
    pages and stay batched (elements never cross pages; the *span* does)."""
    width = 2 * ELEMS_PER_PAGE  # exactly two pages per row
    image = _image(width, 1)
    bases = [ELEMS_PER_PAGE - 8,  # straddles the boundary
             ELEMS_PER_PAGE - 16,  # flush against it, page 0
             ELEMS_PER_PAGE,       # flush against it, page 1
             ELEMS_PER_PAGE + 24]
    scalar, gang = run_engines(
        COPY_ASM, [{"base": float(b)} for b in bases],
        surfaces_spec={"IN": (width, 1), "OUT": (width, 1)},
        inputs={"IN": image})
    assert_identical(scalar, gang)
    assert gang[0].scalar_fallbacks == 0
    assert gang[0].batched_mem_lanes > 0
    assert gang[0].batched_translations > 0


def test_duplicate_store_indices_last_writer_wins():
    """All lanes store to the same elements: the batched scatter must
    resolve duplicates exactly like scalar queue order (last shred wins)."""
    asm = """
    mov.1.dw vr2 = 0
    bcast.16.f vr1 = rank
    st.16.f (OUT, vr2, 0) = vr1
    end
    """
    scalar, gang = run_engines(
        asm, [{"rank": float(i)} for i in range(6)],
        surfaces_spec={"OUT": (64, 1)})
    assert_identical(scalar, gang)
    out = gang[1]["OUT"]
    assert np.all(out[0, :16] == 5.0)  # queue-last shred won every lane
    assert gang[0].batched_mem_lanes > 0


def test_unaligned_strides():
    """Lane bases on a stride that never aligns to the access width."""
    width = 256
    image = _image(width, 1)
    bases = [7 * i + 3 for i in range(8)]
    scalar, gang = run_engines(
        COPY_ASM, [{"base": float(b)} for b in bases],
        surfaces_spec={"IN": (width, 1), "OUT": (width, 1)},
        inputs={"IN": image})
    assert_identical(scalar, gang)
    assert gang[0].scalar_fallbacks == 0
    assert gang[0].batched_mem_lanes > 0


def test_overlapping_load_stores_interleave():
    """Overlapping unpredicated ranges: every lane's full span is written,
    later lanes overwrite earlier ones element-by-element."""
    asm = """
    mov.1.dw vr2 = base
    bcast.16.f vr1 = rank
    st.16.f (OUT, vr2, 0) = vr1
    end
    """
    bindings = [{"base": float(8 * i), "rank": float(i)} for i in range(4)]
    scalar, gang = run_engines(asm, bindings,
                               surfaces_spec={"OUT": (64, 1)})
    assert_identical(scalar, gang)
    assert gang[0].batched_mem_lanes > 0


def test_masked_store_overlap_falls_back():
    """A predicated store whose lanes overlap cannot be batched (scalar
    read-modify-write lets later lanes observe earlier writes); the gang
    must take the per-shred reference step and still match bit-for-bit."""
    asm = """
    mov.1.dw vr2 = 0
    iota.16.f vr1
    bcast.16.f vr4 = rank
    add.16.f vr1 = vr1, vr4
    cmp.lt.16.f p1 = vr1, 10
    (p1) st.16.f (OUT, vr2, 0) = vr1
    end
    """
    scalar, gang = run_engines(
        asm, [{"rank": float(i)} for i in range(4)],
        surfaces_spec={"OUT": (32, 1)})
    assert_identical(scalar, gang)


def test_masked_store_disjoint_stays_batched():
    """Predicated stores on disjoint ranges keep the batched path (the
    pre-read merge is then equivalent to scalar RMW)."""
    asm = """
    mov.1.dw vr2 = base
    iota.16.f vr1
    cmp.lt.16.f p1 = vr1, 10
    (p1) st.16.f (OUT, vr2, 0) = vr1
    end
    """
    bindings = [{"base": float(16 * i)} for i in range(4)]
    scalar, gang = run_engines(asm, bindings,
                               surfaces_spec={"OUT": (64, 1)})
    assert_identical(scalar, gang)
    assert gang[0].batched_mem_lanes > 0


def test_mid_batch_miss_peels_trailing_lanes():
    """Half the gang hits a page the first launch already mapped; the
    other half misses.  The batched translate is side-effect free, so the
    fallback reproduces scalar exactly: the first missing lane and every
    lane behind it peel in queue order."""
    program = assemble(COPY_ASM, name="gang-mem-miss")
    width = 2 * ELEMS_PER_PAGE
    image = _image(width, 1)
    out = {}
    for engine in ("scalar", "gang"):
        space = AddressSpace()
        device = GmaDevice(space, engine=engine)
        surfaces = {
            "IN": Surface.alloc(space, "IN", width, 1, DataType.F,
                                eager=True),
            "OUT": Surface.alloc(space, "OUT", width, 1, DataType.F,
                                 eager=True),
        }
        surfaces["IN"].upload(space, image)
        results = []
        for bases in ([0, 16, 32, 48],
                      [64, 80, ELEMS_PER_PAGE, ELEMS_PER_PAGE + 16]):
            shreds = [ShredDescriptor(program=program,
                                      bindings={"base": float(b)},
                                      surfaces=surfaces)
                      for b in bases]
            results.append(device.run(shreds, prepare_surfaces=False))
        out[engine] = (results, surfaces["OUT"].download(space))
    (first_s, second_s), out_s = out["scalar"]
    (first_g, second_g), out_g = out["gang"]
    assert np.array_equal(out_s, out_g)
    for result_s, result_g in ((first_s, first_g), (second_s, second_g)):
        for run_s, run_g in zip(result_s.runs, result_g.runs):
            for fieldname in RUN_FIELDS:
                assert (getattr(run_s, fieldname)
                        == getattr(run_g, fieldname)), fieldname
            assert run_s.trace == run_g.trace
    # second launch: lanes 0-1 translate, lane 2 misses (once on IN's
    # second page, once on OUT's), lane 3 trails it in queue order
    assert [run.atr_events for run in second_s.runs] == [0, 0, 2, 0]
    assert [run.atr_events for run in second_g.runs] == [0, 0, 2, 0]
    assert second_g.scalar_fallbacks == 2
    assert second_g.batched_mem_lanes > 0  # lanes 0-1 retired batched


def test_tiled_surface_stays_batched():
    """The 4KB-tile address formula vectorizes; tiled loads/stores keep
    the batched path and the linear-offset line charges of scalar."""
    width, height = 64, 32
    image = _image(width, height)
    program = assemble(COPY_ASM, name="gang-mem-tiled")
    out = {}
    for engine in ("scalar", "gang"):
        space = AddressSpace()
        device = GmaDevice(space, engine=engine)
        surf_in = Surface.alloc(space, "IN", width, height, DataType.F,
                                tiling=TileMode.TILED)
        surf_out = Surface.alloc(space, "OUT", width, height, DataType.F,
                                 tiling=TileMode.TILED)
        surf_in.upload(space, image)
        shreds = [ShredDescriptor(program=program,
                                  bindings={"base": float(64 * i)},
                                  surfaces={"IN": surf_in, "OUT": surf_out})
                  for i in range(8)]
        result = device.run(shreds)
        out[engine] = (result, surf_out.download(space))
    result_s, out_s = out["scalar"]
    result_g, out_g = out["gang"]
    assert np.array_equal(out_s, out_g)
    for run_s, run_g in zip(result_s.runs, result_g.runs):
        for fieldname in RUN_FIELDS:
            assert getattr(run_s, fieldname) == getattr(run_g, fieldname), \
                fieldname
        assert run_s.trace == run_g.trace
    assert result_g.batched_mem_lanes > 0


def test_block_loads_and_stores_batched():
    """ldblk/stblk with edge clamping: the clamped gather grid must cover
    the same lines scalar's row reads touch."""
    asm = """
    mov.1.dw vr8 = bx
    mov.1.dw vr9 = by
    ldblk.4x4.f [vr1..vr1] = (IN, vr8, vr9)
    stblk.4x4.f (OUT, vr8, vr9) = [vr1..vr1]
    end
    """
    width, height = 32, 16
    image = _image(width, height)
    # includes a block hanging off the left/top edge (clamped loads) but
    # inside bounds for the store
    coords = [(0, 0), (4, 4), (12, 8), (28, 12), (8, 0), (16, 4)]
    scalar, gang = run_engines(
        asm, [{"bx": float(x), "by": float(y)} for x, y in coords],
        surfaces_spec={"IN": (width, height), "OUT": (width, height)},
        inputs={"IN": image})
    assert_identical(scalar, gang)
    assert gang[0].scalar_fallbacks == 0
    assert gang[0].batched_mem_lanes > 0


def test_sampler_reads_batched():
    """Bilinear sampler taps gather through the vectorized path and stay
    bit-identical (same float64 lerp, same sample accounting)."""
    asm = """
    iota.16.f vr1
    mul.16.f vr2 = vr1, 0.73
    mul.16.f vr3 = vr1, 1.19
    sample.16.f vr4 = (TEX, vr2, vr3)
    mov.1.dw vr5 = base
    st.16.f (OUT, vr5, 0) = vr4
    end
    """
    width, height = 32, 32
    image = _image(width, height)
    bindings = [{"base": float(16 * i)} for i in range(4)]
    scalar, gang = run_engines(
        asm, bindings,
        surfaces_spec={"TEX": (width, height), "OUT": (64, 1)},
        inputs={"TEX": image})
    assert_identical(scalar, gang)
    assert scalar[0].runs[0].sampler_samples > 0
    assert gang[0].scalar_fallbacks == 0
    assert gang[0].batched_mem_lanes > 0
