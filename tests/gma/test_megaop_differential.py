"""Differential suite: the megaop engine must be bit-identical to scalar.

Mirrors ``test_fusion_differential`` with ``engine="megaop"`` and a low
promotion threshold so short test loops actually promote: every scenario
runs on a scalar device and a megaop device over fresh address spaces,
then compares outputs, per-shred ``ShredRun`` records (including the
``(issue, latency)`` traces the timing model replays) and every
aggregate counter.  The targeted scenarios aim at the megaop-specific
seams: divergence *inside* a promoted trace, a TLB miss raised by a mem
step mid-megaop, a CEH-proxied fault mid-megaop, spawn boundaries, the
promotion threshold itself, and promotion/eviction interplay with the
``PredecodeCache``'s GC-driven eviction.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.exo.shred import ShredDescriptor
from repro.gma.device import GmaDevice
from repro.isa import predecode
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.kernels import ALL_KERNELS, run_kernel_on_gma
from repro.memory.address_space import AddressSpace
from repro.memory.surface import Surface
from repro.perf import SMOKE_GEOMETRIES

RUN_FIELDS = ("instructions", "issue_cycles", "bytes_read", "bytes_written",
              "sampler_samples", "atr_events", "ceh_events", "spawned")
AGG_FIELDS = ("shreds_executed", "instructions", "bytes_read",
              "bytes_written", "atr_events", "ceh_events", "spawned_shreds")

#: Low enough that a handful of loop traversals promotes the cycle.
THRESHOLD = 3


def run_engines(asm: str, bindings_list, surfaces_spec=None, inputs=None,
                prepare_surfaces: bool = True, threshold: int = THRESHOLD):
    """The same launch on scalar and megaop, each on a fresh device."""
    program = assemble(asm, name="megaop-differential")
    out = {}
    for engine in ("scalar", "megaop"):
        space = AddressSpace()
        device = GmaDevice(space, engine=engine,
                           megaop_threshold=threshold)
        surfaces = {
            name: Surface.alloc(space, name, width, height, DataType.F)
            for name, (width, height) in (surfaces_spec or {}).items()
        }
        for name, image in (inputs or {}).items():
            surfaces[name].upload(space, np.asarray(image))
        shreds = [ShredDescriptor(program=program, bindings=dict(bindings),
                                  surfaces=surfaces)
                  for bindings in bindings_list]
        result = device.run(shreds, prepare_surfaces=prepare_surfaces)
        downloads = {name: surf.download(space)
                     for name, surf in surfaces.items()}
        out[engine] = (result, downloads)
    return out["scalar"], out["megaop"]


def assert_identical(scalar, megaop):
    result_s, surfaces_s = scalar
    result_m, surfaces_m = megaop
    for fieldname in AGG_FIELDS:
        assert getattr(result_s, fieldname) == getattr(result_m, fieldname), \
            fieldname
    assert result_s.cycles == result_m.cycles
    assert len(result_s.runs) == len(result_m.runs)
    for position, (run_s, run_m) in enumerate(
            zip(result_s.runs, result_m.runs)):
        for fieldname in RUN_FIELDS:
            assert getattr(run_s, fieldname) == getattr(run_m, fieldname), \
                f"shred {position}: {fieldname}"
        assert run_s.trace == run_m.trace, f"shred {position}: trace"
    assert set(surfaces_s) == set(surfaces_m)
    for name in surfaces_s:
        assert np.array_equal(surfaces_s[name], surfaces_m[name]), name


# -- the whole kernel suite ------------------------------------------------------------


@pytest.mark.parametrize("kernel_cls", ALL_KERNELS,
                         ids=[cls.abbrev for cls in ALL_KERNELS])
def test_kernel_bit_identical(kernel_cls):
    kernel = kernel_cls()
    geom = SMOKE_GEOMETRIES[kernel.abbrev]
    outcomes = {}
    for engine in ("scalar", "megaop"):
        device = GmaDevice(AddressSpace(), engine=engine,
                           megaop_threshold=THRESHOLD)
        outcomes[engine] = run_kernel_on_gma(
            kernel, geom, device=device, space=device.space, max_frames=1)
    scalar, megaop = outcomes["scalar"], outcomes["megaop"]
    for fieldname in ("instructions", "shreds", "bytes_read",
                      "bytes_written", "atr_events", "ceh_events",
                      "sampler_samples", "gma_cycles"):
        assert getattr(scalar, fieldname) == getattr(megaop, fieldname), \
            fieldname
    for name in scalar.outputs:
        assert np.array_equal(scalar.outputs[name], megaop.outputs[name]), \
            name


# -- megaop-specific seams -------------------------------------------------------------


def test_homogeneous_loop_promotes_and_retires():
    """The counted-loop fast path: the hot cycle promotes once and the
    steady state retires whole traversals per dispatch."""
    asm = """
    iota.16.f vr1
    mov.1.dw vr2 = 0
    loop:
    mad.16.f vr3 = vr1, vr1, vr1
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    scalar, megaop = run_engines(asm, [{"iters": 40.0}] * 8)
    assert_identical(scalar, megaop)
    result = megaop[0]
    assert result.scalar_fallbacks == 0
    assert result.gang_lanes_retired == result.instructions
    assert result.megaop_compiles == 1
    # threshold traversals profile, the rest retire inside the megaop
    # (minus the final traversal, whose branch exits the cycle)
    assert result.megaops_retired >= 30
    assert result.megaop_deopts == 0


def test_divergence_mid_megaop_deopts():
    """A promoted trace whose guard branch splits: the megaop charges
    only completed traversals, deopts, and the fused/gang machinery
    defers the minority at the exact exit ip."""
    asm = """
    mov.1.dw vr2 = 0
    loop:
    add.16.f vr3 = vr2, vr2
    mul.16.f vr4 = vr3, vr3
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    bindings = [{"iters": 30.0}] * 5 + [{"iters": 9.0}] * 3
    scalar, megaop = run_engines(asm, bindings)
    assert_identical(scalar, megaop)
    result = megaop[0]
    assert result.megaop_compiles == 1
    assert result.megaops_retired > 0
    assert result.megaop_deopts >= 1  # the iters=9 split mid-trace
    assert result.scalar_fallbacks == 0  # repacked, not peeled
    assert result.gang_repacks == 1
    assert result.lanes_readmitted == 3


def test_readmitted_gang_repromotes_from_join():
    """Divergence inside a hot trace: a two-phase kernel whose first
    loop splits trip counts, then a long convergent tail loop.  The
    re-admitted gang is a fresh trace head, so the tail must promote
    and retire megaops *after* the reconvergence merge — the repack
    must not deopt the tier for the rest of the launch."""
    asm = """
    mov.1.dw vr2 = 0
    mov.16.f vr4 = 1.0
    warm:
    add.16.f vr4 = vr4, vr4
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, warm
    mov.1.dw vr3 = 0
    tail:
    mul.16.f vr4 = vr4, 0.5
    add.1.dw vr3 = vr3, 1
    cmp.lt.1.dw p2 = vr3, 24
    br p2, tail
    end
    """
    bindings = [{"iters": 12.0}] * 6 + [{"iters": 4.0}] * 2
    scalar, megaop = run_engines(asm, bindings)
    assert_identical(scalar, megaop)
    result = megaop[0]
    assert result.gang_repacks == 1
    assert result.lanes_readmitted == 2
    assert result.scalar_fallbacks == 0
    # both the warm loop (pre-split) and the tail loop (post-merge,
    # recorded from the fresh trace head) promoted and retired
    assert result.megaop_compiles == 2
    assert result.megaops_retired > 0


def test_tlb_miss_mid_megaop_deopts():
    """A cached megaop meets an unmapped page: a prepared first launch
    promotes the store loop; a second launch on a *fresh* space with
    unprepared surfaces dispatches the cached megaop, whose mem step
    raises ``TlbMiss`` mid-trace — the megaop charges only the retired
    prefix, deopts at the store ip, and the peel services the ATR proxy
    in scalar order."""
    asm = """
    mov.1.dw vr2 = 0
    mov.1.dw vr4 = base
    iota.16.f vr1
    loop:
    mad.16.f vr3 = vr1, vr2, vr1
    st.16.f (OUT, vr4, 0) = vr3
    add.1.dw vr4 = vr4, 16
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    program = assemble(asm, name="megaop-tlb-miss")

    def launch(engine, prepare):
        space = AddressSpace()
        device = GmaDevice(space, engine=engine, megaop_threshold=THRESHOLD)
        surfaces = {"OUT": Surface.alloc(space, "OUT", 800, 1, DataType.F)}
        shreds = [ShredDescriptor(program=program,
                                  bindings={"base": float(64 * i),
                                            "iters": 12.0},
                                  surfaces=surfaces)
                  for i in range(4)]
        result = device.run(shreds, prepare_surfaces=prepare)
        return result, {"OUT": surfaces["OUT"].download(space)}

    prime = launch("megaop", True)
    assert prime[0].megaop_compiles == 1
    assert prime[0].megaops_retired > 0
    scalar = launch("scalar", False)
    megaop = launch("megaop", False)
    assert_identical(scalar, megaop)
    assert scalar[0].atr_events > 0
    assert megaop[0].megaop_compiles == 0  # reused the cached megaop
    assert megaop[0].megaop_deopts >= 1    # unmapped page mid-trace


def test_ceh_fault_mid_megaop_deopts():
    """A divide whose divisor reaches zero mid-loop: the ALU guard fails
    inside the promoted trace, the megaop deopts at the precise ip, and
    the faulting shreds ride the CEH proxy path in scalar order."""
    asm = """
    iota.16.f vr1
    mov.16.f vr5 = 12.0
    mov.1.dw vr2 = 0
    loop:
    div.16.f vr6 = vr1, vr5
    sub.16.f vr5 = vr5, 1.0
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    scalar, megaop = run_engines(asm, [{"iters": 20.0}] * 6)
    assert_identical(scalar, megaop)
    result = megaop[0]
    assert scalar[0].ceh_events > 0  # divisor hits zero at iteration 12
    assert result.megaop_compiles == 1
    assert result.megaops_retired > 0
    assert result.megaop_deopts >= 1


def test_spawn_boundary_never_promotes():
    """SPAWN is never part of a block, so no cycle containing it can
    promote; children join the queue in scalar order."""
    asm = """
    mov.1.dw vr2 = __spawn_arg
    cmp.gt.1.dw p1 = vr2, 0
    (!p1) jmp done
    spawn 0
    done:
    end
    """
    bindings = [{"__spawn_arg": 1.0}] * 2 + [{"__spawn_arg": 0.0}] * 2
    scalar, megaop = run_engines(asm, bindings, threshold=1)
    assert_identical(scalar, megaop)
    assert scalar[0].spawned_shreds == 2
    assert scalar[0].shreds_executed == 6  # 4 parents + 2 children
    assert megaop[0].megaop_compiles == 0


def test_promotion_threshold_knob():
    """The device threshold gates promotion: a loop hotter than the
    threshold promotes, one colder never compiles."""
    asm = """
    iota.16.f vr1
    mov.1.dw vr2 = 0
    loop:
    add.16.f vr3 = vr1, vr1
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """

    def run(threshold):
        program = assemble(asm, name=f"threshold-{threshold}")
        device = GmaDevice(AddressSpace(), engine="megaop",
                           megaop_threshold=threshold)
        shreds = [ShredDescriptor(program=program, bindings={"iters": 20.0})
                  for _ in range(4)]
        return device.run(shreds)

    hot = run(2)
    assert hot.megaop_compiles == 1
    assert hot.megaops_retired > 0
    cold = run(1000)
    assert cold.megaop_compiles == 0
    assert cold.megaops_retired == 0
    assert hot.instructions == cold.instructions
    assert hot.cycles == cold.cycles


def test_megaop_matches_fused_counters():
    """Megaop and fused agree on every shared counter (the megaop
    counters are the only addition) and on all architectural state."""
    asm = """
    iota.16.f vr1
    mov.1.dw vr2 = 0
    loop:
    add.16.f vr3 = vr1, vr1
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    program = assemble(asm, name="megaop-vs-fused")
    results = {}
    for engine in ("fused", "megaop"):
        device = GmaDevice(AddressSpace(), engine=engine,
                           megaop_threshold=THRESHOLD)
        shreds = [ShredDescriptor(program=program,
                                  bindings={"iters": 25.0})
                  for _ in range(8)]
        results[engine] = device.run(shreds)
    fused, megaop = results["fused"], results["megaop"]
    assert fused.instructions == megaop.instructions
    assert fused.cycles == megaop.cycles
    assert fused.gang_lanes_retired == megaop.gang_lanes_retired
    assert fused.scalar_fallbacks == megaop.scalar_fallbacks
    assert fused.megaops_retired == 0 and fused.megaop_compiles == 0
    assert megaop.megaops_retired > 0 and megaop.megaop_compiles == 1
    for run_f, run_m in zip(fused.runs, megaop.runs):
        assert run_f.trace == run_m.trace


def test_promotion_survives_across_runs_and_evicts_with_program():
    """Megaops live in the PredecodeCache beside the predecode entry: a
    second run of the same program reuses the compiled megaop (no
    recompile), and dropping the program evicts it with GC."""
    asm = """
    iota.16.f vr1
    mov.1.dw vr2 = 0
    loop:
    mul.16.f vr3 = vr1, vr1
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    program = assemble(asm, name="megaop-eviction")

    def launch():
        device = GmaDevice(AddressSpace(), engine="megaop",
                           megaop_threshold=THRESHOLD)
        shreds = [ShredDescriptor(program=program, bindings={"iters": 20.0})
                  for _ in range(4)]
        return device.run(shreds)

    first = launch()
    assert first.megaop_compiles == 1
    assert predecode.CACHE.stats()["megaops"] >= 1
    second = launch()
    assert second.megaop_compiles == 0  # cache hit: already promoted
    assert second.megaops_retired > 0
    assert first.instructions == second.instructions
    before = predecode.CACHE.stats()["megaops"]
    # drop every reference to the program (results hold it via their
    # shred descriptors) so the weakref eviction can fire
    del program, first, second
    gc.collect()
    assert predecode.CACHE.stats()["megaops"] < before


def test_clear_cache_mid_profile_recompiles():
    """A ``PredecodeCache.clear`` between runs (the eviction race seam)
    drops megaops and counts; the next run re-profiles and re-promotes
    without corrupting results."""
    asm = """
    iota.16.f vr1
    mov.1.dw vr2 = 0
    loop:
    add.16.f vr3 = vr1, 1.0
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    program = assemble(asm, name="megaop-clear")

    def launch():
        device = GmaDevice(AddressSpace(), engine="megaop",
                           megaop_threshold=THRESHOLD)
        shreds = [ShredDescriptor(program=program, bindings={"iters": 15.0})
                  for _ in range(4)]
        return device.run(shreds)

    first = launch()
    assert first.megaop_compiles == 1
    predecode.CACHE.clear()
    assert predecode.CACHE.stats()["megaops"] == 0
    second = launch()
    assert second.megaop_compiles == 1  # profiled from scratch
    assert first.instructions == second.instructions
    assert first.cycles == second.cycles
