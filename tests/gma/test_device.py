"""GMA device: execution, sendreg routing, spawning, ATR/CEH integration."""

import numpy as np
import pytest

from repro.errors import ExecutionFault
from repro.exo.shred import ShredDescriptor, ShredState
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.memory.surface import Surface


def alloc_dw(space, name, n):
    return Surface.alloc(space, name, n, 1, DataType.DW)


def upload(space, surf, values):
    surf.upload(space, np.asarray(values, dtype=np.float64).reshape(1, -1))


class TestBasicExecution:
    def test_single_shred(self, device, space):
        out = alloc_dw(space, "OUT", 4)
        program = assemble("""
            mov.4.dw vr1 = 7
            st.4.dw (OUT, 0, 0) = vr1
            end
        """)
        result = device.run_single(
            ShredDescriptor(program=program, surfaces={"OUT": out}))
        assert result.shreds_executed == 1
        assert out.download(space).reshape(-1).tolist() == [7.0] * 4

    def test_many_shreds_fill_sequencers(self, device, space):
        out = alloc_dw(space, "OUT", 64)
        program = assemble("""
            st.1.dw (OUT, i, 0) = i
            end
        """)
        shreds = [ShredDescriptor(program=program, bindings={"i": i},
                                  surfaces={"OUT": out}) for i in range(64)]
        result = device.run(shreds)
        assert result.shreds_executed == 64
        got = out.download(space).reshape(-1)
        assert np.array_equal(got, np.arange(64.0))
        retired = sum(s.shreds_retired for s in device.sequencers)
        assert retired == 64

    def test_shreds_marked_done(self, device, space):
        out = alloc_dw(space, "OUT", 1)
        program = assemble("st.1.dw (OUT, 0, 0) = 1\nend")
        shred = ShredDescriptor(program=program, surfaces={"OUT": out})
        device.run_single(shred)
        assert shred.state is ShredState.DONE

    def test_32_sequencers(self, device):
        assert len(device.sequencers) == 32
        assert device.sequencers[0].name == "exo-0.0"
        assert device.sequencers[-1].name == "exo-7.3"


class TestAtrIntegration:
    def test_prepared_surfaces_avoid_runtime_faults(self, device, space):
        out = alloc_dw(space, "OUT", 1024)
        program = assemble("st.1.dw (OUT, i, 0) = i\nend")
        shreds = [ShredDescriptor(program=program, bindings={"i": i},
                                  surfaces={"OUT": out}) for i in range(4)]
        result = device.run(shreds)
        assert result.pages_prepared > 0
        assert result.atr_events == 0

    def test_unprepared_run_faults_and_recovers(self, device, space):
        out = alloc_dw(space, "OUT", 4)
        program = assemble("st.4.dw (OUT, 0, 0) = 5\nend")
        shred = ShredDescriptor(program=program, surfaces={"OUT": out})
        result = device.run([shred], prepare_surfaces=False)
        assert result.atr_events >= 1
        assert out.download(space).reshape(-1).tolist() == [5.0] * 4

    def test_gtt_persists_across_runs(self, device, space):
        out = alloc_dw(space, "OUT", 4)
        program = assemble("st.4.dw (OUT, 0, 0) = 5\nend")
        device.run([ShredDescriptor(program=program, surfaces={"OUT": out})],
                   prepare_surfaces=False)
        result = device.run(
            [ShredDescriptor(program=program, surfaces={"OUT": out})],
            prepare_surfaces=False)
        assert result.atr_events == 0  # second run hits the GTT


class TestCehIntegration:
    def test_double_precision_shred_completes(self, device, space):
        x = Surface.alloc(space, "X", 4, 1, DataType.DF)
        y = Surface.alloc(space, "Y", 4, 1, DataType.DF)
        x.upload(space, np.array([[1.5, 2.5, 1e200, -3.0]]))
        program = assemble("""
            ld.4.df [vr1..vr4] = (X, 0, 0)
            mul.4.df [vr5..vr8] = [vr1..vr4], [vr1..vr4]
            st.4.df (Y, 0, 0) = [vr5..vr8]
            end
        """)
        result = device.run_single(
            ShredDescriptor(program=program, surfaces={"X": x, "Y": y}))
        assert result.ceh_events == 1
        got = y.download(space).reshape(-1)
        assert got[2] == 1e400 or got[2] == pytest.approx(1e400)


class TestSendreg:
    def test_producer_to_later_consumer(self, device, space):
        out = alloc_dw(space, "OUT", 1)
        producer_prog = assemble("""
            mov.1.dw vr1 = 123
            sendreg.1.dw (peer, vr5) = vr1
            end
        """)
        consumer_prog = assemble("""
            st.1.dw (OUT, 0, 0) = vr5
            end
        """)
        consumer = ShredDescriptor(program=consumer_prog,
                                   surfaces={"OUT": out})
        producer = ShredDescriptor(
            program=producer_prog,
            bindings={"peer": float(consumer.shred_id)},
            surfaces={"OUT": out})
        consumer.depends_on = (producer.shred_id,)
        device.run([producer, consumer])
        assert out.download(space)[0, 0] == 123.0

    def test_sendreg_to_retired_shred_faults(self, device, space):
        out = alloc_dw(space, "OUT", 1)
        first = ShredDescriptor(program=assemble("end"), surfaces={})
        late_prog = assemble("""
            sendreg.1.dw (peer, vr5) = vr0
            end
        """)
        late = ShredDescriptor(program=late_prog,
                               bindings={"peer": float(first.shred_id)},
                               surfaces={"OUT": out})
        late.depends_on = (first.shred_id,)
        with pytest.raises(ExecutionFault, match="retired"):
            device.run([first, late])

    def test_undelivered_mailbox_detected(self, device, space):
        prog = assemble("sendreg.1.dw (peer, vr5) = vr0\nend")
        shred = ShredDescriptor(program=prog, bindings={"peer": 999999.0})
        with pytest.raises(ExecutionFault, match="never"):
            device.run([shred])


class TestSpawn:
    def test_spawned_child_executes(self, device, space):
        out = alloc_dw(space, "OUT", 2)
        # parent writes OUT[0] and spawns; child observes __spawn_arg
        program = assemble("""
            mov.1.dw vr1 = __spawn_arg
            cmp.eq.1.dw p1 = vr1, 0
            (!p1) jmp child
            st.1.dw (OUT, 0, 0) = 1
            spawn 7
            end
        child:
            st.1.dw (OUT, 1, 0) = vr1
            end
        """)
        shred = ShredDescriptor(program=program,
                                bindings={"__spawn_arg": 0.0},
                                surfaces={"OUT": out})
        result = device.run([shred])
        assert result.shreds_executed == 2
        assert result.spawned_shreds == 1
        assert out.download(space).reshape(-1).tolist() == [1.0, 7.0]


class TestMaintenance:
    def test_flush_cache_delegates_to_coherence(self, space):
        from repro.gma.device import GmaDevice
        from repro.memory.cache import CoherencePoint

        point = CoherencePoint(coherent=False)
        device = GmaDevice(space, coherence=point)
        point.note_write("gma", 0, 100)
        assert device.flush_cache() > 0

    def test_invalidate_tlb(self, device, space):
        out = alloc_dw(space, "OUT", 1)
        program = assemble("st.1.dw (OUT, 0, 0) = 1\nend")
        device.run([ShredDescriptor(program=program, surfaces={"OUT": out})])
        device.invalidate_tlb()
        assert len(device.view.tlb) == 0

    def test_reset_counters(self, device):
        device.sampler.samples = 10
        device.reset_counters()
        assert device.sampler.samples == 0
