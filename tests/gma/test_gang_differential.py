"""Differential suite: the gang engine must be bit-identical to scalar.

Every scenario runs the same program twice — once on a
``GmaDevice(engine="scalar")``, once on ``engine="gang"`` — over fresh
address spaces, then compares outputs, per-shred ``ShredRun`` records
(including the ``(issue, latency)`` traces the timing model replays) and
every aggregate counter.  Shred ids differ numerically between the two
runs (the global descriptor counter keeps counting), so records are
compared per queue position, never by id.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exo.shred import ShredDescriptor
from repro.gma.device import GmaDevice
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.kernels import ALL_KERNELS, run_kernel_on_gma
from repro.memory.address_space import AddressSpace
from repro.memory.surface import Surface
from repro.perf import SMOKE_GEOMETRIES

RUN_FIELDS = ("instructions", "issue_cycles", "bytes_read", "bytes_written",
              "sampler_samples", "atr_events", "ceh_events", "spawned")
AGG_FIELDS = ("shreds_executed", "instructions", "bytes_read",
              "bytes_written", "atr_events", "ceh_events", "spawned_shreds")


def run_engines(asm: str, bindings_list, surfaces_spec=None, inputs=None,
                prepare_surfaces: bool = True,
                engines=("scalar", "gang")):
    """The same launch on every engine, each on a fresh device + space."""
    program = assemble(asm, name="differential")
    out = {}
    for engine in engines:
        space = AddressSpace()
        device = GmaDevice(space, engine=engine)
        surfaces = {
            name: Surface.alloc(space, name, width, height, DataType.F)
            for name, (width, height) in (surfaces_spec or {}).items()
        }
        for name, image in (inputs or {}).items():
            surfaces[name].upload(space, np.asarray(image))
        shreds = [ShredDescriptor(program=program, bindings=dict(bindings),
                                  surfaces=surfaces)
                  for bindings in bindings_list]
        result = device.run(shreds, prepare_surfaces=prepare_surfaces)
        downloads = {name: surf.download(space)
                     for name, surf in surfaces.items()}
        out[engine] = (result, downloads)
    return [out[engine] for engine in engines]


def assert_identical(scalar, gang):
    result_s, surfaces_s = scalar
    result_g, surfaces_g = gang
    for fieldname in AGG_FIELDS:
        assert getattr(result_s, fieldname) == getattr(result_g, fieldname), \
            fieldname
    assert result_s.cycles == result_g.cycles
    assert len(result_s.runs) == len(result_g.runs)
    for position, (run_s, run_g) in enumerate(
            zip(result_s.runs, result_g.runs)):
        for fieldname in RUN_FIELDS:
            assert getattr(run_s, fieldname) == getattr(run_g, fieldname), \
                f"shred {position}: {fieldname}"
        assert run_s.trace == run_g.trace, f"shred {position}: trace"
    assert set(surfaces_s) == set(surfaces_g)
    for name in surfaces_s:
        assert np.array_equal(surfaces_s[name], surfaces_g[name]), name


# -- the whole kernel suite ------------------------------------------------------------


@pytest.mark.parametrize("kernel_cls", ALL_KERNELS,
                         ids=[cls.abbrev for cls in ALL_KERNELS])
def test_kernel_bit_identical(kernel_cls):
    kernel = kernel_cls()
    geom = SMOKE_GEOMETRIES[kernel.abbrev]
    outcomes = {}
    for engine in ("scalar", "gang"):
        device = GmaDevice(AddressSpace(), engine=engine)
        outcomes[engine] = run_kernel_on_gma(
            kernel, geom, device=device, space=device.space, max_frames=1)
    scalar, gang = outcomes["scalar"], outcomes["gang"]
    for fieldname in ("instructions", "shreds", "bytes_read",
                      "bytes_written", "atr_events", "ceh_events",
                      "sampler_samples", "gma_cycles"):
        assert getattr(scalar, fieldname) == getattr(gang, fieldname), \
            fieldname
    for name in scalar.outputs:
        assert np.array_equal(scalar.outputs[name], gang.outputs[name]), name


# -- targeted divergence scenarios -----------------------------------------------------


def test_homogeneous_launch_fully_ganged():
    asm = """
    iota.16.f vr1
    mov.1.dw vr2 = 0
    loop:
    add.16.f vr3 = vr1, vr1
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    scalar, gang = run_engines(asm, [{"iters": 6.0}] * 8)
    assert_identical(scalar, gang)
    assert gang[0].scalar_fallbacks == 0
    assert gang[0].gang_lanes_retired == gang[0].instructions


def test_divergent_branch_repacks_minority():
    """Different trip counts split the gang; the loop-exit region is
    pure, so the short-trip minority parks at the reconvergence point
    and is re-admitted instead of peeling to the scalar interpreter."""
    asm = """
    mov.1.dw vr2 = 0
    loop:
    add.16.f vr3 = vr2, vr2
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    bindings = [{"iters": 8.0}] * 5 + [{"iters": 4.0}] * 3
    scalar, gang = run_engines(asm, bindings)
    assert_identical(scalar, gang)
    assert gang[0].scalar_fallbacks == 0  # nobody retires on scalar
    assert gang[0].gang_repacks == 1
    assert gang[0].lanes_readmitted == 3  # the short-trip minority
    assert gang[0].gang_lanes_retired > 0


def test_nested_divergence_repacks_both_levels():
    """A diamond inside a diamond: the inner split parks and merges at
    the inner join while the outer arm is still parked, then everything
    reconverges at the outer join — two repack merges, zero peels."""
    asm = """
    bcast.16.f vr1 = x
    mov.16.f vr3 = 0.0
    cmp.gt.1.dw p1 = vr1, 5
    br p1, big
    cmp.gt.1.dw p2 = vr1, 2
    br p2, mid
    add.16.f vr3 = vr1, 1.0
    jmp ijoin
    mid:
    add.16.f vr3 = vr1, 2.0
    ijoin:
    mul.16.f vr3 = vr3, 2.0
    jmp ojoin
    big:
    add.16.f vr3 = vr1, 3.0
    ojoin:
    add.16.f vr4 = vr3, vr1
    end
    """
    bindings = [{"x": float(i)} for i in range(8)]
    scalar, gang = run_engines(asm, bindings)
    assert_identical(scalar, gang)
    assert gang[0].scalar_fallbacks == 0
    assert gang[0].gang_repacks == 2          # inner join, then outer
    assert gang[0].lanes_readmitted == 5      # {3,4,5} inner + {6,7} outer
    assert gang[0].gang_lanes_retired == gang[0].instructions


def test_ordered_side_effect_arm_still_peels():
    """A SPAWN inside the divergent region defeats repacking: the region
    is not pure, so both sides of the split take the deferred peel and
    children enter the global queue in scalar-identical order."""
    asm = """
    mov.1.dw vr2 = __spawn_arg
    cmp.gt.1.dw p1 = vr2, 0
    br p1, noisy
    add.16.f vr3 = vr2, vr2
    jmp done
    noisy:
    add.16.f vr3 = vr2, 1.0
    spawn 0
    done:
    end
    """
    bindings = [{"__spawn_arg": 1.0}] * 2 + [{"__spawn_arg": 0.0}] * 2
    scalar, gang = run_engines(asm, bindings)
    assert_identical(scalar, gang)
    assert scalar[0].spawned_shreds == 2
    assert gang[0].gang_repacks == 0          # impure region: no parking
    assert gang[0].lanes_readmitted == 0
    # the quiet minority defers at the split; the noisy majority peels
    # at the spawn itself; the two children gang the pure path
    assert gang[0].scalar_fallbacks == 4


def test_randomized_divergence_fuzz_all_engines():
    """Seeded fuzz over data-dependent diamonds nested in a variable
    trip-count loop: every engine tier must stay bit-identical to scalar
    for every divergence pattern the draw produces."""
    asm = """
    mov.1.dw vr2 = 0
    bcast.16.f vr1 = x
    mov.16.f vr4 = 0.0
    loop:
    cmp.gt.1.dw p2 = vr1, 8
    br p2, high
    add.16.f vr4 = vr4, vr1
    jmp next
    high:
    mad.16.f vr4 = vr4, vr1, vr1
    next:
    add.1.dw vr2 = vr2, 1
    add.16.f vr1 = vr1, step
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    end
    """
    rng = np.random.default_rng(0xD1CE)
    for _trial in range(4):
        bindings = [{"x": float(rng.integers(0, 7)),
                     "step": float(rng.integers(1, 4)),
                     "iters": float(rng.integers(1, 9))}
                    for _ in range(8)]
        scalar, gang, fused, megaop = run_engines(
            asm, bindings, engines=("scalar", "gang", "fused", "megaop"))
        assert_identical(scalar, gang)
        assert_identical(scalar, fused)
        assert_identical(scalar, megaop)


def test_ceh_fault_peels_faulting_shreds():
    """Division by zero rides the CEH proxy path on both engines."""
    asm = """
    bcast.16.f vr1 = d
    mov.16.f vr2 = vr1
    div.16.f vr3 = vr2, vr1
    end
    """
    bindings = [{"d": 0.0 if i in (1, 4) else 2.0} for i in range(6)]
    scalar, gang = run_engines(asm, bindings)
    assert_identical(scalar, gang)
    assert scalar[0].ceh_events == 2
    assert gang[0].scalar_fallbacks == 2  # only the faulting shreds peel


def test_atr_miss_peels_in_queue_order():
    """An unprepared surface faults the gang's first store; the peel must
    preserve ATR service order, so every shred behind the miss peels."""
    asm = """
    mov.1.dw vr2 = base
    iota.16.f vr1
    st.16.f (OUT, vr2, 0) = vr1
    end
    """
    bindings = [{"base": float(16 * i)} for i in range(4)]
    scalar, gang = run_engines(asm, bindings,
                               surfaces_spec={"OUT": (64, 1)},
                               prepare_surfaces=False)
    assert_identical(scalar, gang)
    assert scalar[0].atr_events == 1  # first store faults, rest hit
    assert gang[0].scalar_fallbacks == 4


def test_spawn_peels_and_matches_child_order():
    """SPAWN peels the whole gang so children join the global queue in
    scalar-identical order."""
    asm = """
    mov.1.dw vr2 = __spawn_arg
    cmp.gt.1.dw p1 = vr2, 0
    (!p1) jmp done
    spawn 0
    done:
    end
    """
    bindings = [{"__spawn_arg": 1.0}] * 2 + [{"__spawn_arg": 0.0}] * 2
    scalar, gang = run_engines(asm, bindings)
    assert_identical(scalar, gang)
    assert scalar[0].spawned_shreds == 2
    assert scalar[0].shreds_executed == 6  # 4 parents + 2 children
    assert gang[0].scalar_fallbacks >= 4


def test_divergent_spawn_assigns_children_in_queue_order():
    """A divergent branch must not let the peeled side spawn ahead of
    earlier-queue shreds still ganged: children have to enter the global
    queue in scalar-identical order (peels are deferred and replayed in
    queue order after the gang drains)."""
    asm = """
    mov.1.dw vr2 = rank
    cmp.lt.1.dw p1 = vr2, 2
    br p1, extra
    jmp fork
    extra:
    add.16.f vr3 = vr2, vr2
    fork:
    mov.1.dw vr4 = __spawn_arg
    cmp.ge.1.dw p2 = vr4, 0
    br p2, out
    spawn rank
    out:
    end
    """
    bindings = [{"rank": float(i), "__spawn_arg": -1.0} for i in range(4)]
    scalar, gang = run_engines(asm, bindings)
    assert_identical(scalar, gang)
    assert scalar[0].spawned_shreds == 4
    assert scalar[0].shreds_executed == 8  # 4 parents + 4 children
    # children (queue positions 4..7) were spawned in parent queue order
    for result, _ in (scalar, gang):
        child_args = [run.shred.bindings["__spawn_arg"]
                      for run in result.runs[4:]]
        assert child_args == [0.0, 1.0, 2.0, 3.0]


def test_deferred_peel_keeps_atr_first_touch_order():
    """The peeled side of a divergence reaches a shared unmapped page
    early in program order; the ganged side reaches it late.  Scalar
    order says the *earliest-queue* shred services the miss, so the
    peeled shreds must wait for the gang to drain before running."""
    asm = """
    mov.1.dw vr2 = early
    iota.16.f vr1
    cmp.gt.1.dw p1 = vr2, 0
    br p1, fast
    add.16.f vr3 = vr1, vr1
    add.16.f vr3 = vr3, vr1
    st.16.f (OUT, idx, 0) = vr1
    jmp done
    fast:
    st.16.f (OUT, idx, 0) = vr1
    done:
    end
    """
    # shreds 0,1 store late; shreds 2,3 branch off and store early —
    # every store lands on the same unmapped page of OUT
    bindings = [{"early": 0.0 if i < 2 else 1.0, "idx": float(16 * i)}
                for i in range(4)]
    scalar, gang = run_engines(asm, bindings,
                               surfaces_spec={"OUT": (64, 1)},
                               prepare_surfaces=False)
    assert_identical(scalar, gang)
    # queue-first shred 0 takes the one ATR miss on both engines
    assert [run.atr_events for run in scalar[0].runs] == [1, 0, 0, 0]
    assert [run.atr_events for run in gang[0].runs] == [1, 0, 0, 0]


def test_single_shred_runs_scalar():
    """A one-shred launch is not gangable; it counts as a fallback."""
    asm = "iota.16.f vr1\nend\n"
    scalar, gang = run_engines(asm, [{}])
    assert_identical(scalar, gang)
    assert gang[0].gang_lanes_retired == 0
    assert gang[0].scalar_fallbacks == 1
