"""Shred interpreter: stepping, faults, accounting."""

import numpy as np
import pytest

from repro.errors import ExecutionFault
from repro.exo.shred import ShredDescriptor, ShredState
from repro.gma.context import ShredContext
from repro.gma.interpreter import ShredInterpreter
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.memory.surface import Surface


def make_interp(device, program, bindings=None, surfaces=None):
    shred = ShredDescriptor(program=program, bindings=bindings or {},
                            surfaces=surfaces or {})
    ctx = ShredContext(shred, device.view, device.space, device=device)
    return ShredInterpreter(shred, ctx, device.exoskeleton, device.config)


class TestStepping:
    def test_step_until_end(self, device):
        interp = make_interp(device, assemble("nop\nnop\nend"))
        assert interp.step() is True
        assert interp.step() is True
        assert interp.step() is False
        assert interp.finished
        assert interp.step() is False  # idempotent after completion

    def test_run_returns_record(self, device):
        interp = make_interp(device, assemble("nop\nnop\nnop\nend"))
        record = interp.run()
        assert record.instructions == 4
        assert interp.shred.state is ShredState.DONE

    def test_falls_off_the_end(self, device):
        interp = make_interp(device, assemble("nop\nnop"))
        record = interp.run()
        assert record.instructions == 2

    def test_runaway_guard(self, device):
        interp = make_interp(device, assemble("loop:\njmp loop"))
        interp.max_instructions = 100
        with pytest.raises(ExecutionFault, match="runaway"):
            interp.run()


class TestAccounting:
    def test_issue_cycles_accumulate(self, device):
        interp = make_interp(device, assemble("""
            add.16.f vr1 = vr1, 1.0
            add.32.f [vr2..vr3] = [vr2..vr3], 1.0
            end
        """))
        record = interp.run()
        # 16-wide = 1 issue; 32-wide = 2 issue beats; end = 1
        assert record.issue_cycles == 1 + 2 + 1
        assert len(record.trace) == 3

    def test_memory_bytes_counted(self, device, space):
        out = Surface.alloc(space, "OUT", 64, 1, DataType.DW)
        device._prepare_surfaces([ShredDescriptor(
            program=assemble("end"), surfaces={"OUT": out})])
        device.touched_read_lines = set()
        device.touched_write_lines = set()
        interp = make_interp(device, assemble("""
            st.16.dw (OUT, 0, 0) = vr1
            end
        """), surfaces={"OUT": out})
        record = interp.run()
        assert record.bytes_written == 64  # 16 dwords, one 64-byte line

    def test_cache_dedup_second_read_free(self, device, space):
        src = Surface.alloc(space, "S", 16, 1, DataType.DW)
        device._prepare_surfaces([ShredDescriptor(
            program=assemble("end"), surfaces={"S": src})])
        device.touched_read_lines = set()
        device.touched_write_lines = set()
        interp = make_interp(device, assemble("""
            ld.16.dw vr1 = (S, 0, 0)
            ld.16.dw vr2 = (S, 0, 0)
            end
        """), surfaces={"S": src})
        record = interp.run()
        assert record.bytes_read == 64  # second load hits the device cache

    def test_sampler_samples_counted(self, device, space):
        tex = Surface.alloc(space, "T", 8, 8, DataType.UB)
        tex.upload(space, np.zeros((8, 8)))
        device._prepare_surfaces([ShredDescriptor(
            program=assemble("end"), surfaces={"T": tex})])
        interp = make_interp(device, assemble("""
            sample.16.f vr1 = (T, vr2, vr3)
            end
        """), surfaces={"T": tex})
        record = interp.run()
        assert record.sampler_samples == 16


class TestFaultPaths:
    def test_atr_event_recorded(self, device, space):
        out = Surface.alloc(space, "OUT", 4, 1, DataType.DW)
        interp = make_interp(device, assemble("""
            st.4.dw (OUT, 0, 0) = vr1
            end
        """), surfaces={"OUT": out})
        record = interp.run()
        assert record.atr_events == 1
        # the ATR penalty shows in the trace as extra issue cycles
        assert any(issue == device.config.atr_penalty_cycles
                   for issue, _ in record.trace)

    def test_ceh_event_resumes_after_instruction(self, device):
        interp = make_interp(device, assemble("""
            mov.1.dw vr1 = 6
            mov.1.dw vr2 = 0
            div.1.dw vr3 = vr1, vr2
            mov.1.dw vr4 = 77
            end
        """))
        record = interp.run()
        assert record.ceh_events == 1
        assert interp.ctx.regs.read_scalar(4) == 77.0
        assert interp.ctx.regs.read_scalar(3) == 2 ** 31 - 1
