"""EU timing model: switch-on-stall multithreading over shred traces."""

import pytest

from repro.exo.shred import ShredDescriptor
from repro.gma.eu import simulate_device
from repro.gma.interpreter import ShredRun
from repro.gma.timing import GmaTimingConfig
from repro.isa.assembler import assemble

CONFIG = GmaTimingConfig()

_program = assemble("end")


def make_run(trace, bytes_total=0, samples=0):
    shred = ShredDescriptor(program=_program)
    run = ShredRun(shred=shred, trace=list(trace))
    run.issue_cycles = sum(i for i, _ in trace)
    run.bytes_read = bytes_total
    run.sampler_samples = samples
    return run


class TestSingleShred:
    def test_pure_issue_time(self):
        run = make_run([(1, 0)] * 10)
        timing = simulate_device([run], CONFIG)
        assert timing.compute_cycles == 10

    def test_exposed_latency_when_alone(self):
        # a lone shred cannot hide its latencies
        run = make_run([(1, 9)] * 5)
        timing = simulate_device([run], CONFIG)
        assert timing.compute_cycles == 5 * 10

    def test_finish_time_recorded(self):
        run = make_run([(2, 3)])
        timing = simulate_device([run], CONFIG)
        assert timing.finish_times[run.shred.shred_id] == 5


class TestMultithreading:
    def test_four_threads_hide_stalls(self):
        """The paper's switch-on-stall claim: with enough co-resident
        shreds per EU, stall cycles vanish behind other threads' issue."""
        # 4 shreds land on the same EU (one per context, EU-major RR
        # needs 32+ shreds for the next row; use exactly 32 then compare)
        lone = simulate_device([make_run([(1, 3)] * 50)], CONFIG)
        crowd = simulate_device(
            [make_run([(1, 3)] * 50) for _ in range(32)], CONFIG)
        # 32 shreds = 4 per EU; each EU issues 200 cycles of work, and the
        # 3-cycle latencies hide behind the other three contexts
        assert lone.compute_cycles == pytest.approx(200, rel=0.02)
        assert crowd.compute_cycles <= 215
        per_eu = crowd.eu_reports[0]
        assert per_eu.exposed_stall_cycles < 0.05 * per_eu.busy_cycles

    def test_utilization_metric(self):
        timing = simulate_device([make_run([(1, 0)] * 10)], CONFIG)
        busy_eu = timing.eu_reports[0]
        assert busy_eu.utilization == pytest.approx(1.0)
        assert timing.eu_reports[1].utilization == 0.0

    def test_eu_major_balance(self):
        # 9 identical shreds: EU-major round robin puts at most 2 per EU
        runs = [make_run([(1, 0)] * 100) for _ in range(9)]
        timing = simulate_device(runs, CONFIG)
        assert timing.compute_cycles == 200  # 2 shreds on EU0, serialized
        assert timing.eu_reports[1].cycles == 100


class TestResourceBounds:
    def test_bandwidth_bound(self):
        run = make_run([(1, 0)], bytes_total=0)
        run.bytes_read = 10_000_000
        timing = simulate_device([run], CONFIG)
        assert timing.bandwidth_cycles == pytest.approx(
            10_000_000 / CONFIG.mem_bytes_per_cycle)
        assert timing.bound == "bandwidth"
        assert timing.cycles == timing.bandwidth_cycles

    def test_sampler_bound(self):
        run = make_run([(1, 0)], samples=1_000_000)
        timing = simulate_device([run], CONFIG)
        assert timing.sampler_cycles == pytest.approx(
            1_000_000 / CONFIG.sampler_throughput)
        assert timing.bound == "sampler"

    def test_extra_bytes_share_bandwidth(self):
        run = make_run([(1, 0)])
        base = simulate_device([run], CONFIG)
        loaded = simulate_device([run], CONFIG, extra_bytes=1_000_000)
        assert loaded.bandwidth_cycles > base.bandwidth_cycles


class TestDependencies:
    def test_not_before_gates_start(self):
        a = make_run([(10, 0)])
        b = make_run([(10, 0)])
        gates = {b.shred.shred_id: 100.0}
        timing = simulate_device([a, b], CONFIG, not_before=gates)
        assert timing.finish_times[b.shred.shred_id] >= 110
        assert timing.finish_times[a.shred.shred_id] == 10

    def test_chain_serializes(self):
        runs = [make_run([(10, 0)]) for _ in range(3)]
        gates = {}
        # emulate the firmware's fixed point: b after a, c after b
        timing = simulate_device(runs, CONFIG)
        gates[runs[1].shred.shred_id] = timing.finish_times[
            runs[0].shred.shred_id]
        gates[runs[2].shred.shred_id] = 999.0
        timing = simulate_device(runs, CONFIG, not_before=gates)
        assert timing.compute_cycles >= 999 + 10


class TestEmpty:
    def test_no_shreds(self):
        timing = simulate_device([], CONFIG)
        assert timing.cycles == 0
        assert timing.bound in ("compute", "bandwidth", "sampler")

    def test_config_sequencer_count(self):
        assert CONFIG.num_sequencers == 32
        assert CONFIG.seconds(667e6) == pytest.approx(1.0)


from hypothesis import given
from hypothesis import strategies as st


@given(st.lists(st.lists(st.tuples(st.integers(1, 8), st.integers(0, 40)),
                         min_size=1, max_size=20),
                min_size=1, max_size=40))
def test_eu_simulation_invariants(traces):
    """Property: makespan is bounded below by per-EU issue work and by the
    longest single shred's serial chain, and above by full serialization."""
    runs = [make_run(trace) for trace in traces]
    timing = simulate_device(runs, CONFIG)
    total_issue = sum(r.issue_cycles for r in runs)
    longest_chain = max(sum(i + l for i, l in r.trace) for r in runs)
    assert timing.compute_cycles >= total_issue / CONFIG.num_eus - 1e-9
    assert timing.compute_cycles >= max(
        (r.issue_cycles for r in runs), default=0)
    serial_bound = sum(sum(i + l for i, l in r.trace) for r in runs)
    assert timing.compute_cycles <= serial_bound + 1e-9
    assert timing.compute_cycles >= longest_chain - max(
        l for r in runs for _, l in r.trace + [(0, 0)]) - 1e-9
    for run in runs:
        assert run.shred.shred_id in timing.finish_times


class TestLockstepClosedForm:
    """The identical-trace fast path must be cycle-exact with the event
    loop it replaces — reports, finish times and spans included."""

    def _both(self, trace, n):
        from repro.gma.eu import _Context, _simulate_eu, _simulate_eu_ungated
        outs = []
        for force_slow in (True, False):
            ctxs = [_Context([make_run(trace)], slot=k) for k in range(n)]
            finish, spans = {}, {}
            if force_slow:
                report = _simulate_eu_ungated(ctxs, finish, spans, 0)
            else:
                report = _simulate_eu(ctxs, {}, finish, spans, 0)
            outs.append((report.cycles, report.busy_cycles,
                         report.exposed_stall_cycles,
                         sorted(finish.values()),
                         sorted(v[:2] for v in spans.values())))
        return outs

    def test_fast_path_fires_for_covered_latencies(self):
        from repro.gma import eu
        trace = [(1, 3), (1, 1), (1, 0)] * 5
        report = eu._try_lockstep_closed_form(
            [eu._Context([make_run(trace)], slot=k) for k in range(4)],
            {}, {}, 0)
        assert report is not None
        assert report.exposed_stall_cycles == 0.0
        assert report.busy_cycles == 4 * 15

    def test_declines_when_latency_outlives_cover(self):
        from repro.gma import eu
        trace = [(1, 9)] * 4  # 9 > (n-1)*1: stalls are exposed
        assert eu._try_lockstep_closed_form(
            [eu._Context([make_run(trace)], slot=k) for k in range(4)],
            {}, {}, 0) is None

    def test_declines_on_divergent_traces(self):
        from repro.gma import eu
        ctxs = [eu._Context([make_run([(1, 0)] * 3)], slot=0),
                eu._Context([make_run([(1, 1)] * 3)], slot=1)]
        assert eu._try_lockstep_closed_form(ctxs, {}, {}, 0) is None

    @given(st.integers(2, 4),
           st.lists(st.tuples(st.integers(1, 3), st.integers(0, 12)),
                    min_size=1, max_size=30))
    def test_exact_against_event_loop(self, n, trace):
        fast, slow = None, None
        slow, fast = self._both(trace, n)
        assert fast == slow
