"""Firmware: queue draining, dependency timing, sampler accounting."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.exo.shred import ShredDescriptor
from repro.gma.sampler import TextureSampler
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.memory.surface import Surface


class TestDependencyTiming:
    def test_chain_serializes_in_time(self, device, space):
        out = Surface.alloc(space, "OUT", 4, 1, DataType.DW)
        program = assemble("""
            ld.1.dw vr1 = (OUT, 0, 0)
            add.1.dw vr1 = vr1, 1
            st.1.dw (OUT, 0, 0) = vr1
            end
        """)
        out.upload(space, np.zeros((1, 4)))
        independent = [ShredDescriptor(program=program,
                                       surfaces={"OUT": out})
                       for _ in range(4)]
        parallel_time = device.run(independent).cycles

        chained = [ShredDescriptor(program=program, surfaces={"OUT": out})
                   for _ in range(4)]
        for prev, cur in zip(chained, chained[1:]):
            cur.depends_on = (prev.shred_id,)
        serial_time = device.run(chained).cycles
        assert serial_time > parallel_time * 2

    def test_dependency_cycle_detected(self, device, space):
        a = ShredDescriptor(program=assemble("end"))
        b = ShredDescriptor(program=assemble("end"))
        a.depends_on = (b.shred_id,)
        b.depends_on = (a.shred_id,)
        with pytest.raises(SchedulingError, match="deadlock"):
            device.run([a, b])

    def test_finish_times_respect_gates(self, device, space):
        producer = ShredDescriptor(program=assemble("nop\nnop\nend"))
        consumer = ShredDescriptor(program=assemble("end"),
                                   depends_on=(producer.shred_id,))
        result = device.run([producer, consumer])
        times = result.timing.finish_times
        assert times[consumer.shred_id] >= times[producer.shred_id]


class TestAggregates:
    def test_run_result_totals(self, device, space):
        out = Surface.alloc(space, "OUT", 64, 1, DataType.DW)
        program = assemble("st.1.dw (OUT, i, 0) = i\nend")
        result = device.run([
            ShredDescriptor(program=program, bindings={"i": i},
                            surfaces={"OUT": out}) for i in range(6)])
        assert result.shreds_executed == 6
        assert result.instructions == 12  # st + end each
        assert result.bytes_total == result.bytes_read + result.bytes_written
        assert result.cycles == result.timing.cycles


class TestSampler:
    def test_cycles_from_throughput(self):
        sampler = TextureSampler(samples=800)
        assert sampler.cycles(8.0) == 100.0

    def test_reset(self):
        sampler = TextureSampler(samples=5)
        sampler.reset()
        assert sampler.samples == 0

    def test_throughput_validation(self):
        with pytest.raises(ValueError):
            TextureSampler(samples=1).cycles(0)
