"""Work queue: FIFO order and dependency gating."""

import pytest

from repro.errors import SchedulingError
from repro.exo.shred import ShredDescriptor, ShredState
from repro.gma.workqueue import WorkQueue
from repro.isa.assembler import assemble

_program = assemble("end")


def shred(**kwargs):
    return ShredDescriptor(program=_program, **kwargs)


def test_fifo_order():
    items = [shred() for _ in range(3)]
    queue = WorkQueue(items)
    assert [queue.pop_ready() for _ in range(3)] == items


def test_push_sets_state():
    queue = WorkQueue()
    s = shred()
    queue.push(s)
    assert s.state is ShredState.QUEUED
    assert len(queue) == 1
    assert queue.enqueued == 1


def test_dependency_gates_pop():
    producer = shred()
    consumer = shred(depends_on=(producer.shred_id,))
    queue = WorkQueue([consumer, producer])
    first = queue.pop_ready()
    assert first is producer  # consumer skipped while producer pending
    queue.mark_done(producer.shred_id)
    assert queue.pop_ready() is consumer


def test_pop_ready_returns_none_when_all_blocked():
    consumer = shred(depends_on=(99999,))
    queue = WorkQueue([consumer])
    assert queue.pop_ready() is None
    assert len(queue) == 1  # still queued


def test_drain_order_respects_dependencies():
    a = shred()
    b = shred(depends_on=(a.shred_id,))
    c = shred(depends_on=(b.shred_id,))
    queue = WorkQueue([c, b, a])
    assert queue.drain_order() == [a, b, c]


def test_drain_order_detects_deadlock():
    a = shred()
    b = shred(depends_on=(a.shred_id,))
    a.depends_on = (b.shred_id,)  # cycle
    queue = WorkQueue([a, b])
    with pytest.raises(SchedulingError, match="deadlock"):
        queue.drain_order()


def test_is_done():
    queue = WorkQueue()
    assert not queue.is_done(5)
    queue.mark_done(5)
    assert queue.is_done(5)
