"""Congruent-surface ganging: different bindings, one batched datapath.

Cross-launch coalescing hands the gang engine shreds whose surface
*names* match but whose objects differ per lane (each request allocated
its own).  When the bindings are congruent — same width/height/pitch/
tiling/dtype, only the base differs — the batched memory pipeline
applies per-lane base deltas and stays engaged; results must remain
bit-identical to scalar.  Non-congruent bindings must fall back.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exo.shred import ShredDescriptor
from repro.gma.device import GmaDevice
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.memory.address_space import AddressSpace
from repro.memory.surface import Surface, TileMode

LD_ST_ASM = """
mov.1.dw vr1 = off
ld.4.dw [vr2..vr5] = (SRC, vr1, 0)
add.4.dw [vr6..vr9] = [vr2..vr5], [vr2..vr5]
st.4.dw (DST, vr1, 0) = [vr6..vr9]
end
"""

BLK_ASM = """
mov.1.dw vr1 = 0
ldblk.8x1.dw vr2 = (SRC, vr1, row)
stblk.8x1.dw (DST, vr1, row) = vr2
end
"""

SAMPLE_ASM = """
mov.1.f vr1 = x
mov.1.f vr2 = y
sample.4.f vr3 = (SRC, vr1, vr2)
mov.1.dw vr4 = 0
st.4.f (DST, vr4, 0) = [vr3..vr6]
end
"""


def _run(engine: str, asm: str, make_surfaces, bindings_for, lanes=4):
    """One launch of ``lanes`` shreds, each with its own surface dict."""
    space = AddressSpace()
    device = GmaDevice(space, engine=engine)
    program = assemble(asm, name="congruent")
    surfaces = [make_surfaces(space, lane) for lane in range(lanes)]
    shreds = [
        ShredDescriptor(program=program, bindings=bindings_for(lane),
                        surfaces=surfaces[lane])
        for lane in range(lanes)
    ]
    result = device.run(shreds)
    outs = [
        {name: surf.download(space) for name, surf in bound.items()}
        for bound in surfaces
    ]
    return result, outs


def _congruent_pair(space, lane):
    """Per-lane SRC/DST: distinct objects, identical geometry."""
    src = Surface.alloc(space, f"SRC{lane}", 16, 2, DataType.DW)
    dst = Surface.alloc(space, f"DST{lane}", 16, 2, DataType.DW)
    img = (np.arange(32, dtype=np.int64).reshape(2, 16) + 100 * lane)
    src.upload(space, img)
    dst.upload(space, np.zeros((2, 16), dtype=np.int64))
    return {"SRC": src, "DST": dst}


@pytest.mark.parametrize("asm,bindings_for", [
    (LD_ST_ASM, lambda lane: {"off": float((lane % 2) * 4)}),
    (BLK_ASM, lambda lane: {"row": float(lane % 2)}),
])
def test_congruent_surfaces_gang_bit_identical(asm, bindings_for):
    scalar, scalar_outs = _run("scalar", asm, _congruent_pair, bindings_for)
    gang, gang_outs = _run("gang", asm, _congruent_pair, bindings_for)
    assert gang.instructions == scalar.instructions
    assert gang.scalar_fallbacks == 0  # congruence kept the gang engaged
    assert gang.gang_lanes_retired > 0
    assert gang.batched_mem_lanes > 0  # deltas rode the batched datapath
    for lane, (want, got) in enumerate(zip(scalar_outs, gang_outs)):
        for name in want:
            np.testing.assert_array_equal(
                want[name], got[name],
                err_msg=f"lane {lane} surface {name!r}")


def test_congruent_sample_bit_identical():
    def bindings(lane):
        return {"x": float(lane * 2), "y": 0.5}

    def make(space, lane):
        src = Surface.alloc(space, f"SRC{lane}", 16, 4, DataType.F)
        dst = Surface.alloc(space, f"DST{lane}", 16, 1, DataType.F)
        rng = np.random.default_rng(lane)
        src.upload(space, rng.random((4, 16)).astype(np.float32))
        dst.upload(space, np.zeros((1, 16), dtype=np.float32))
        return {"SRC": src, "DST": dst}

    scalar, scalar_outs = _run("scalar", SAMPLE_ASM, make, bindings)
    gang, gang_outs = _run("gang", SAMPLE_ASM, make, bindings)
    assert gang.instructions == scalar.instructions
    assert gang.scalar_fallbacks == 0
    for lane, (want, got) in enumerate(zip(scalar_outs, gang_outs)):
        for name in want:
            np.testing.assert_array_equal(
                want[name], got[name],
                err_msg=f"lane {lane} surface {name!r}")


def test_incongruent_surfaces_fall_back():
    """A lane binding a different-width SRC forces the per-shred path —
    results still correct, just not batched."""
    def make(space, lane):
        width = 16 if lane != 2 else 32  # lane 2 is the odd one out
        src = Surface.alloc(space, f"SRC{lane}", width, 2, DataType.DW)
        dst = Surface.alloc(space, f"DST{lane}", 16, 2, DataType.DW)
        img = np.arange(2 * width, dtype=np.int64).reshape(2, width)
        src.upload(space, img + 100 * lane)
        dst.upload(space, np.zeros((2, 16), dtype=np.int64))
        return {"SRC": src, "DST": dst}

    scalar, scalar_outs = _run("scalar", LD_ST_ASM, make,
                               lambda lane: {"off": 0.0})
    gang, gang_outs = _run("gang", LD_ST_ASM, make,
                           lambda lane: {"off": 0.0})
    assert gang.instructions == scalar.instructions
    for lane, (want, got) in enumerate(zip(scalar_outs, gang_outs)):
        for name in want:
            np.testing.assert_array_equal(
                want[name], got[name],
                err_msg=f"lane {lane} surface {name!r}")


def test_mixed_tiling_falls_back():
    """Same shape but different tiling is not congruent."""
    def make(space, lane):
        tiling = TileMode.LINEAR if lane != 1 else TileMode.TILED
        src = Surface.alloc(space, f"SRC{lane}", 16, 4, DataType.DW,
                            tiling=tiling)
        dst = Surface.alloc(space, f"DST{lane}", 16, 4, DataType.DW)
        img = np.arange(64, dtype=np.int64).reshape(4, 16)
        src.upload(space, img + lane)
        dst.upload(space, np.zeros((4, 16), dtype=np.int64))
        return {"SRC": src, "DST": dst}

    scalar, scalar_outs = _run("scalar", LD_ST_ASM, make,
                               lambda lane: {"off": 0.0})
    gang, gang_outs = _run("gang", LD_ST_ASM, make,
                           lambda lane: {"off": 0.0})
    assert gang.instructions == scalar.instructions
    for want, got in zip(scalar_outs, gang_outs):
        for name in want:
            np.testing.assert_array_equal(want[name], got[name])
