"""ShredContext: surface binding, type checks, proxy-mode routing."""

import numpy as np
import pytest

from repro.errors import ExecutionFault
from repro.exo.shred import ShredDescriptor
from repro.gma.context import ShredContext
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.memory.surface import Surface


@pytest.fixture
def ctx(device, space):
    surf = Surface.alloc(space, "S", 16, 4, DataType.UB)
    surf.upload(space, np.arange(64.0).reshape(4, 16) % 256)
    shred = ShredDescriptor(program=assemble("end"),
                            bindings={"k": 7.0},
                            surfaces={"S": surf})
    device._prepare_surfaces([shred])
    return ShredContext(shred, device.view, device.space, device=device)


class TestBindings:
    def test_shred_id_in_vr0(self, ctx):
        assert ctx.regs.read_scalar(0) == float(ctx.shred.shred_id)

    def test_symbol_resolution(self, ctx):
        assert ctx.resolve_symbol("k") == 7.0

    def test_unbound_symbol_lists_available(self, ctx):
        with pytest.raises(ExecutionFault, match=r"\['k'\]"):
            ctx.resolve_symbol("missing")

    def test_unbound_surface_lists_available(self, ctx):
        with pytest.raises(ExecutionFault, match=r"\['S'\]"):
            ctx.surface_read("T", 0, 1, DataType.UB)


class TestTypeChecking:
    def test_size_mismatch_rejected(self, ctx):
        with pytest.raises(ExecutionFault, match="incompatible"):
            ctx.surface_read("S", 0, 1, DataType.DW)

    def test_float_int_mismatch_rejected(self, device, space):
        surf = Surface.alloc(space, "F", 4, 1, DataType.F)
        shred = ShredDescriptor(program=assemble("end"),
                                surfaces={"F": surf})
        device._prepare_surfaces([shred])
        ctx = ShredContext(shred, device.view, device.space, device=device)
        with pytest.raises(ExecutionFault, match="incompatible"):
            ctx.surface_read("F", 0, 1, DataType.DW)

    def test_same_size_same_kind_accepted(self, ctx):
        # signed/unsigned bytes are layout-compatible
        ctx.surface_read("S", 0, 4, DataType.B)


class TestProxyMode:
    def test_accessor_switches(self, ctx, device):
        assert ctx.accessor is device.view
        ctx.proxy_mode = True
        assert ctx.accessor is device.space

    def test_proxy_reads_bypass_device_tlb(self, device, space):
        surf = Surface.alloc(space, "P", 8, 1, DataType.UB, eager=True)
        surf.upload(space, np.arange(8.0).reshape(1, 8))
        shred = ShredDescriptor(program=assemble("end"),
                                surfaces={"P": surf})
        ctx = ShredContext(shred, device.view, device.space, device=device)
        ctx.proxy_mode = True  # no GTT entries exist: only proxy can read
        got = ctx.surface_read("P", 0, 8, DataType.UB)
        assert got.tolist() == list(range(8))

    def test_proxy_mode_skips_traffic_charges(self, ctx):
        ctx.proxy_mode = True
        ctx.pop_read_charge()
        ctx.surface_read("S", 0, 4, DataType.UB)
        # proxy accesses run on the IA32 side: full bytes, no line dedup
        assert ctx.pop_read_charge() == 4


class TestTrafficCharges:
    def test_first_touch_charges_a_line(self, ctx):
        ctx.pop_read_charge()
        ctx.surface_read("S", 0, 4, DataType.UB)
        assert ctx.pop_read_charge() == 64  # one 64-byte line

    def test_second_touch_is_free(self, ctx):
        ctx.surface_read("S", 0, 4, DataType.UB)
        ctx.pop_read_charge()
        ctx.surface_read("S", 4, 4, DataType.UB)
        assert ctx.pop_read_charge() == 0

    def test_write_charges_separately(self, ctx):
        ctx.surface_read("S", 0, 4, DataType.UB)
        ctx.pop_read_charge()
        ctx.surface_write("S", 0, np.zeros(4), DataType.UB)
        assert ctx.pop_write_charge() == 64
