"""Every example script runs to completion (integration smoke tests).

The examples double as end-to-end integration tests of the public API —
each one asserts its own correctness conditions internally and prints an
"... OK" line on success.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_are_present():
    assert len(SCRIPTS) >= 3  # the deliverable floor; we ship more
    assert "quickstart.py" in SCRIPTS


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600,
        cwd=str(EXAMPLES_DIR.parent))
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}")
    assert "OK" in result.stdout
