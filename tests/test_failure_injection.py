"""Failure injection: the system detects and contains misuse.

Three families: coherence-protocol violations under the strict Non-CC
model, shreds that fault unrecoverably, and corrupted binaries.
"""

import numpy as np
import pytest

from repro.chi.platform import ExoPlatform
from repro.chi.runtime import ChiRuntime
from repro.errors import (
    CoherenceViolation,
    EncodingError,
    ExecutionFault,
    FatBinaryError,
)
from repro.exo.shred import ShredDescriptor
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.memory.surface import Surface


class TestCoherenceProtocolViolations:
    def test_skipping_the_flush_is_detected(self):
        """Launching shreds below the runtime (no pre-dispatch flush)
        after host writes must trip the strict checker — on real hardware
        the shreds would read stale data."""
        platform = ExoPlatform(coherent=False, strict_coherence=True)
        src = Surface.alloc(platform.space, "S", 16, 1, DataType.DW)
        src.upload(platform.host, np.arange(16).reshape(1, 16))  # dirties
        program = assemble("ld.8.dw [vr1..vr8] = (S, 0, 0)\nend")
        shred = ShredDescriptor(program=program, surfaces={"S": src})
        with pytest.raises(CoherenceViolation, match="cpu holds dirty"):
            platform.device.run([shred])

    def test_runtime_flush_prevents_the_violation(self):
        platform = ExoPlatform(coherent=False, strict_coherence=True)
        runtime = ChiRuntime(platform)
        src = Surface.alloc(platform.space, "S", 16, 1, DataType.DW)
        src.upload(platform.host, np.arange(16).reshape(1, 16))
        runtime.parallel("ld.8.dw [vr1..vr8] = (S, 0, 0)\nend",
                         shared={"S": src}, num_threads=1)  # flushes first

    def test_host_readback_before_device_flush_detected(self):
        platform = ExoPlatform(coherent=False, strict_coherence=True)
        out = Surface.alloc(platform.space, "O", 16, 1, DataType.DW)
        program = assemble("st.8.dw (O, 0, 0) = [vr1..vr8]\nend")
        platform.device.run([ShredDescriptor(program=program,
                                             surfaces={"O": out})])
        # the device finished but never flushed: the host must not read
        with pytest.raises(CoherenceViolation, match="gma holds dirty"):
            out.download(platform.host)
        platform.coherence.flush("gma")
        out.download(platform.host)

    def test_shred_level_flush_instruction_releases_lines(self):
        platform = ExoPlatform(coherent=False, strict_coherence=True)
        out = Surface.alloc(platform.space, "O", 16, 1, DataType.DW)
        program = assemble("""
            st.8.dw (O, 0, 0) = [vr1..vr8]
            flush
            end
        """)
        platform.device.run([ShredDescriptor(program=program,
                                             surfaces={"O": out})])
        out.download(platform.host)  # no violation: the shred flushed


class TestFaultingShreds:
    def test_unbound_symbol_aborts_cleanly(self, device, space):
        program = assemble("mov.1.dw vr1 = ghost\nend")
        with pytest.raises(ExecutionFault, match="unbound symbol"):
            device.run([ShredDescriptor(program=program)])
        # the device is reusable afterwards
        device.run([ShredDescriptor(program=assemble("end"))])

    def test_missing_surface_aborts_cleanly(self, device, space):
        program = assemble("ld.1.dw vr1 = (GONE, 0, 0)\nend")
        with pytest.raises(ExecutionFault, match="no surface"):
            device.run([ShredDescriptor(program=program)])

    def test_out_of_bounds_store_is_contained(self, device, space):
        out = Surface.alloc(space, "O", 8, 1, DataType.DW)
        program = assemble("st.4.dw (O, 6, 0) = vr1\nend")
        from repro.errors import MemorySystemError

        with pytest.raises(MemorySystemError, match="outside surface"):
            device.run([ShredDescriptor(program=program,
                                        surfaces={"O": out})])

    def test_ceh_handler_that_raises_fails_the_shred(self, device):
        from repro.errors import DivideByZeroFault

        def angry_handler(program, ip, ctx, fault):
            raise RuntimeError("handler exploded")

        device.exoskeleton.ceh.register_handler(DivideByZeroFault,
                                                angry_handler)
        program = assemble("""
            mov.1.dw vr1 = 1
            mov.1.dw vr2 = 0
            div.1.dw vr3 = vr1, vr2
            end
        """)
        with pytest.raises(RuntimeError, match="handler exploded"):
            device.run([ShredDescriptor(program=program)])

    def test_runaway_shred_killed_by_instruction_budget(self, device,
                                                        monkeypatch):
        import repro.gma.firmware as firmware
        from repro.gma.interpreter import ShredInterpreter

        original = ShredInterpreter.__init__

        def tight_budget(self, *args, **kwargs):
            kwargs["max_instructions"] = 50
            original(self, *args, **kwargs)

        monkeypatch.setattr(ShredInterpreter, "__init__", tight_budget)
        program = assemble("loop:\njmp loop")
        with pytest.raises(ExecutionFault, match="runaway"):
            device.run([ShredDescriptor(program=program)])


class TestCorruptedBinaries:
    def test_truncated_section_rejected(self):
        blob = bytearray(__import__("repro.isa.encoding",
                                    fromlist=["encode_program"])
                         .encode_program(assemble("nop\nend")))
        from repro.isa.encoding import decode_program

        with pytest.raises((EncodingError, IndexError, Exception)):
            decode_program(bytes(blob[: len(blob) // 2]))

    def test_fatbinary_flipped_bytes(self):
        from repro.chi.fatbinary import FatBinary

        fat = FatBinary(name="x")
        fat.add_section("X3000", assemble("nop\nend"))
        blob = bytearray(fat.serialize())
        blob[0] ^= 0xFF
        with pytest.raises(FatBinaryError):
            FatBinary.deserialize(bytes(blob))
