"""Address Translation Remapping: the heart of EXO's shared memory."""

import pytest

from repro.exo.atr import AtrService, transcode_pte
from repro.memory.address_space import SequencerView
from repro.memory.gtt import GttMemType, gtt_memtype, gtt_pfn, gtt_valid
from repro.memory.paging import make_pte
from repro.memory.physical import PAGE_SIZE


class TestTranscode:
    def test_same_pfn_different_format(self):
        pte = make_pte(0x321)
        entry = transcode_pte(pte)
        assert gtt_valid(entry)
        assert gtt_pfn(entry) == 0x321
        assert entry != pte  # genuinely different encodings

    def test_cache_attribute_carries_over(self):
        entry = transcode_pte(make_pte(1, cache_disable=True))
        assert gtt_memtype(entry) is GttMemType.UNCACHED
        entry = transcode_pte(make_pte(1, cache_disable=False))
        assert gtt_memtype(entry) is GttMemType.WRITE_BACK

    def test_non_present_rejected(self):
        with pytest.raises(ValueError):
            transcode_pte(0)


class TestAtrService:
    def test_miss_on_mapped_page_transcodes_without_fault(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        view = SequencerView(space)
        service = AtrService(space)
        entry = service.service(view, base, write=False)
        assert gtt_valid(entry)
        assert service.stats.tlb_misses == 1
        assert service.stats.page_faults_proxied == 0
        assert service.stats.entries_transcoded == 1

    def test_miss_on_unmapped_page_proxies_the_fault(self, space):
        base = space.alloc(PAGE_SIZE)  # lazy: no frame yet
        view = SequencerView(space)
        service = AtrService(space)
        service.service(view, base, write=True)
        assert service.stats.page_faults_proxied == 1
        # the OS page table now has the page too (proxy touched it)
        assert space.page_table.entry(base >> 12)

    def test_entry_lands_in_tlb_and_gtt(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        view = SequencerView(space)
        AtrService(space).service(view, base, write=False)
        assert (base >> 12) in view.tlb
        assert (base >> 12) in view.gtt

    def test_both_sequencers_reach_same_frame(self, space):
        """'The exo-sequencer's TLB will point to the same physical page
        as the IA32's TLB' (section 3.2)."""
        base = space.alloc(PAGE_SIZE, eager=True)
        view = SequencerView(space)
        AtrService(space).service(view, base, write=True)
        host_paddr = space.translate(base)
        exo_paddr = view.translate(base)
        assert host_paddr == exo_paddr

    def test_faulting_addresses_recorded(self, space):
        base = space.alloc(2 * PAGE_SIZE, eager=True)
        view = SequencerView(space)
        service = AtrService(space)
        service.service(view, base, write=False)
        service.service(view, base + PAGE_SIZE, write=False)
        assert service.stats.faulting_vaddrs == [base, base + PAGE_SIZE]
