"""Address Translation Remapping: the heart of EXO's shared memory."""

import pytest

from repro.errors import ProtectionFault, TranslationFault
from repro.exo.atr import (
    FAULT_RING_CAPACITY,
    AtrService,
    SharedTranslationCache,
    transcode_pte,
)
from repro.memory.address_space import AddressSpace, SequencerView
from repro.memory.gtt import GttMemType, gtt_memtype, gtt_pfn, gtt_valid
from repro.memory.paging import make_pte
from repro.memory.physical import PAGE_SIZE


class TestTranscode:
    def test_same_pfn_different_format(self):
        pte = make_pte(0x321)
        entry = transcode_pte(pte)
        assert gtt_valid(entry)
        assert gtt_pfn(entry) == 0x321
        assert entry != pte  # genuinely different encodings

    def test_cache_attribute_carries_over(self):
        entry = transcode_pte(make_pte(1, cache_disable=True))
        assert gtt_memtype(entry) is GttMemType.UNCACHED
        entry = transcode_pte(make_pte(1, cache_disable=False))
        assert gtt_memtype(entry) is GttMemType.WRITE_BACK

    def test_non_present_rejected(self):
        with pytest.raises(ValueError):
            transcode_pte(0)


class TestAtrService:
    def test_miss_on_mapped_page_transcodes_without_fault(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        view = SequencerView(space)
        service = AtrService(space)
        entry = service.service(view, base, write=False)
        assert gtt_valid(entry)
        assert service.stats.tlb_misses == 1
        assert service.stats.page_faults_proxied == 0
        assert service.stats.entries_transcoded == 1

    def test_miss_on_unmapped_page_proxies_the_fault(self, space):
        base = space.alloc(PAGE_SIZE)  # lazy: no frame yet
        view = SequencerView(space)
        service = AtrService(space)
        service.service(view, base, write=True)
        assert service.stats.page_faults_proxied == 1
        # the OS page table now has the page too (proxy touched it)
        assert space.page_table.entry(base >> 12)

    def test_entry_lands_in_tlb_and_gtt(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        view = SequencerView(space)
        AtrService(space).service(view, base, write=False)
        assert (base >> 12) in view.tlb
        assert (base >> 12) in view.gtt

    def test_both_sequencers_reach_same_frame(self, space):
        """'The exo-sequencer's TLB will point to the same physical page
        as the IA32's TLB' (section 3.2)."""
        base = space.alloc(PAGE_SIZE, eager=True)
        view = SequencerView(space)
        AtrService(space).service(view, base, write=True)
        host_paddr = space.translate(base)
        exo_paddr = view.translate(base)
        assert host_paddr == exo_paddr

    def test_faulting_addresses_recorded(self, space):
        base = space.alloc(2 * PAGE_SIZE, eager=True)
        view = SequencerView(space)
        service = AtrService(space)
        service.service(view, base, write=False)
        service.service(view, base + PAGE_SIZE, write=False)
        assert service.stats.faulting_vaddrs == [base, base + PAGE_SIZE]

    def test_faulting_addresses_ring_is_bounded(self, space):
        """The fault log keeps the newest FAULT_RING_CAPACITY addresses;
        the counters stay exact."""
        pages = FAULT_RING_CAPACITY + 7
        base = space.alloc(pages * PAGE_SIZE, eager=True)
        view = SequencerView(space)
        service = AtrService(space)
        for i in range(pages):
            service.service(view, base + i * PAGE_SIZE, write=False)
        assert service.stats.tlb_misses == pages
        assert len(service.stats.faulting_vaddrs) == FAULT_RING_CAPACITY
        # oldest entries dropped, newest kept
        assert service.stats.faulting_vaddrs[0] == base + 7 * PAGE_SIZE
        assert service.stats.faulting_vaddrs[-1] == (
            base + (pages - 1) * PAGE_SIZE)

    def test_unmapped_without_demand_paging_is_translation_fault(self):
        space = AddressSpace(demand_paging=False)
        base = space.alloc(PAGE_SIZE)  # lazy: no frame, and no proxy paging
        view = SequencerView(space)
        service = AtrService(space)
        with pytest.raises(TranslationFault):
            service.service(view, base, write=False)
        assert service.stats.page_faults_proxied == 0

    def test_write_to_read_only_page_is_protection_fault(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        space.protect(base, writable=False)
        view = SequencerView(space)
        service = AtrService(space)
        # reads still translate fine...
        entry = service.service(view, base, write=False)
        assert gtt_valid(entry)
        # ...but the write flag is honoured against the RO PTE
        with pytest.raises(ProtectionFault):
            service.service(view, base, write=True)


class TestBatchedService:
    def test_batch_coalesces_duplicate_pages(self, space):
        base = space.alloc(2 * PAGE_SIZE, eager=True)
        view = SequencerView(space)
        service = AtrService(space)
        installed = service.service_batch(
            view, [base, base + 8, base + PAGE_SIZE, base + PAGE_SIZE + 16])
        assert sorted(installed) == [base >> 12, (base >> 12) + 1]
        assert service.stats.batches == 1
        assert service.stats.batched_misses == 2  # distinct pages only
        assert service.stats.tlb_misses == 2
        for vpn in installed:
            assert vpn in view.tlb and vpn in view.gtt

    def test_empty_batch_is_a_no_op(self, space):
        view = SequencerView(space)
        service = AtrService(space)
        assert service.service_batch(view, []) == {}
        assert service.stats.batches == 0

    def test_batch_proxies_unmapped_pages_once_each(self, space):
        base = space.alloc(3 * PAGE_SIZE)  # lazy
        view = SequencerView(space)
        service = AtrService(space)
        vaddrs = [base + i * PAGE_SIZE for i in range(3)]
        service.service_batch(view, vaddrs, write=True)
        assert service.stats.page_faults_proxied == 3
        for vaddr in vaddrs:
            assert view.translate(vaddr) == space.translate(vaddr)


class TestSharedTranslationCache:
    def test_second_view_hits_shared_cache(self, space):
        """Two exo-sequencers missing on the same pages share one
        second-level translation cache: the second batch needs no
        proxy walk at all."""
        base = space.alloc(4 * PAGE_SIZE)
        service = AtrService(space)
        view_a = SequencerView(space, name="gma0")
        view_b = SequencerView(space, name="gma1")
        vaddrs = [base + i * PAGE_SIZE for i in range(4)]
        service.service_batch(view_a, vaddrs, write=True)
        proxied = service.stats.page_faults_proxied
        service.service_batch(view_b, vaddrs, write=True)
        assert service.stats.page_faults_proxied == proxied  # no new walks
        assert service.stats.shared_cache_hits >= 4
        for vaddr in vaddrs:
            assert view_b.translate(vaddr) == view_a.translate(vaddr)

    def test_write_miss_on_read_only_cached_entry_falls_through(self, space):
        """The cache stores protection alongside the entry: a cached RO
        translation must not satisfy a write."""
        base = space.alloc(PAGE_SIZE, eager=True)
        space.protect(base, writable=False)
        service = AtrService(space)
        view = SequencerView(space)
        service.service(view, base, write=False)  # caches the RO entry
        view.tlb.invalidate(None)
        view.gtt.pop(base >> 12, None)
        with pytest.raises(ProtectionFault):
            service.service(view, base, write=True)

    def test_disabled_shared_cache(self, space):
        base = space.alloc(PAGE_SIZE, eager=True)
        service = AtrService(space, use_shared_cache=False)
        view = SequencerView(space)
        service.service(view, base, write=False)
        assert service.stats.shared_cache_hits == 0
        assert service.stats.shared_cache_misses == 0

    def test_lru_eviction(self):
        cache = SharedTranslationCache(capacity=2)
        cache.put(1, 0x11, True)
        cache.put(2, 0x22, True)
        assert cache.get(1) is not None  # freshens 1
        cache.put(3, 0x33, True)  # evicts 2
        assert 1 in cache and 3 in cache
        assert cache.get(2) is None
        assert len(cache) == 2
