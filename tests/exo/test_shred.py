"""Shred descriptors and lifecycle."""

from repro.exo.shred import ShredDescriptor, ShredState
from repro.isa.assembler import assemble


def test_ids_are_unique():
    program = assemble("end")
    a = ShredDescriptor(program=program)
    b = ShredDescriptor(program=program)
    assert a.shred_id != b.shred_id


def test_initial_state():
    shred = ShredDescriptor(program=assemble("end"))
    assert shred.state is ShredState.NEW
    assert shred.depends_on == ()


def test_spawn_child_inherits_everything_plus_arg():
    program = assemble("end")
    parent = ShredDescriptor(program=program, bindings={"x": 1.0},
                             surfaces={}, entry=0)
    child = parent.spawn_child(42.0)
    assert child.parent_id == parent.shred_id
    assert child.program is parent.program
    assert child.bindings["x"] == 1.0
    assert child.bindings["__spawn_arg"] == 42.0
    # parent bindings are not mutated
    assert "__spawn_arg" not in parent.bindings


def test_repr_mentions_program_and_state():
    shred = ShredDescriptor(program=assemble("end", name="prog"))
    text = repr(shred)
    assert "prog" in text and "new" in text
