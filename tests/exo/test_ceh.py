"""Collaborative Exception Handling."""

import numpy as np
import pytest

from repro.errors import (
    DivideByZeroFault,
    ExecutionFault,
    FpOverflowFault,
    UnsupportedOperationFault,
)
from repro.exo.ceh import CehService
from repro.isa import semantics
from repro.isa.assembler import assemble
from repro.isa.instructions import Effect
from tests.helpers import FakeContext


def catch_fault(program, ip, ctx):
    try:
        semantics.execute(program, ip, ctx)
    except ExecutionFault as fault:
        return fault
    raise AssertionError("expected a fault")


class TestDoublePrecision:
    def test_emulation_computes_full_precision(self):
        program = assemble("mul.2.df vr3 = vr1, vr2\nend")
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([1.5, 1e200]))
        ctx.regs.write_lanes(2, np.array([2.0, 1e100]))
        fault = catch_fault(program, 0, ctx)
        assert isinstance(fault, UnsupportedOperationFault)
        CehService().service(program, 0, ctx, fault)
        got = ctx.regs.read_lanes(3, 2)
        assert got[0] == 3.0
        assert got[1] == 1e300  # needs double precision: would wrap in f32

    def test_context_restored_after_proxy(self):
        program = assemble("add.1.df vr1 = vr1, vr1\nend")
        ctx = FakeContext()
        fault = catch_fault(program, 0, ctx)
        CehService().service(program, 0, ctx, fault)
        assert ctx.supports_double is False
        assert ctx.proxy_mode is False

    def test_stats_by_type(self):
        program = assemble("add.1.df vr1 = vr1, vr1\nend")
        ctx = FakeContext()
        service = CehService()
        fault = catch_fault(program, 0, ctx)
        service.service(program, 0, ctx, fault)
        service.service(program, 0, ctx, fault)
        assert service.stats.exceptions_proxied == 2
        assert service.stats.by_type == {"UnsupportedOperationFault": 2}


class TestDivideByZero:
    def test_integer_saturation(self):
        program = assemble("div.4.dw vr3 = vr1, vr2\nend")
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([10.0, -10.0, 9.0, 7.0]))
        ctx.regs.write_lanes(2, np.array([2.0, 0.0, 0.0, 7.0]))
        fault = catch_fault(program, 0, ctx)
        assert isinstance(fault, DivideByZeroFault)
        CehService().service(program, 0, ctx, fault)
        got = ctx.regs.read_lanes(3, 4)
        assert got[0] == 5.0
        assert got[1] == -(2 ** 31)  # two's-complement minimum, not -(max)
        assert got[2] == 2 ** 31 - 1
        assert got[3] == 1.0

    def test_signed_saturation_lane_exact(self):
        """Negative saturation must land on the signed *minimum*
        -2^(bits-1), not -(2^(bits-1)-1): lane-level regression across a
        narrow signed type, mixed with lanes that divide normally."""
        program = assemble("div.4.w vr3 = vr1, vr2\nend")
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([-5.0, 5.0, -6.0, 6.0]))
        ctx.regs.write_lanes(2, np.array([0.0, 0.0, 3.0, 3.0]))
        fault = catch_fault(program, 0, ctx)
        assert isinstance(fault, DivideByZeroFault)
        CehService().service(program, 0, ctx, fault)
        got = ctx.regs.read_lanes(3, 4)
        assert got[0] == -(2 ** 15)  # int16 min
        assert got[1] == 2 ** 15 - 1  # int16 max
        assert got[2] == -2.0
        assert got[3] == 2.0

    def test_unsigned_saturation_floor_is_zero(self):
        """An unsigned divide by zero can never saturate negative."""
        program = assemble("div.2.uw vr3 = vr1, vr2\nend")
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([9.0, 8.0]))
        ctx.regs.write_lanes(2, np.array([0.0, 4.0]))
        fault = catch_fault(program, 0, ctx)
        CehService().service(program, 0, ctx, fault)
        got = ctx.regs.read_lanes(3, 2)
        assert got[0] == 2 ** 16 - 1
        assert got[1] == 2.0

    def test_float_ieee_infinity(self):
        program = assemble("div.2.f vr3 = vr1, vr2\nend")
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([1.0, -1.0]))
        ctx.regs.write_lanes(2, np.array([0.0, 0.0]))
        fault = catch_fault(program, 0, ctx)
        CehService().service(program, 0, ctx, fault)
        got = ctx.regs.read_lanes(3, 2)
        assert got[0] == np.inf and got[1] == -np.inf


class TestOverflow:
    def test_overflow_emulated_in_double(self):
        program = assemble("mul.1.f vr3 = vr1, vr2\nend")
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([3e38]))
        ctx.regs.write_lanes(2, np.array([2.0]))
        fault = catch_fault(program, 0, ctx)
        assert isinstance(fault, FpOverflowFault)
        CehService().service(program, 0, ctx, fault)
        # written back through the f32 register type: saturates to inf,
        # which is the IEEE single-precision answer
        assert ctx.regs.read_lanes(3, 1)[0] == np.inf


class TestHandlers:
    def test_custom_handler_overrides_default(self):
        program = assemble("div.1.dw vr3 = vr1, vr2\nend")
        ctx = FakeContext()
        ctx.regs.write_lanes(2, np.array([0.0]))
        service = CehService()
        calls = []

        def handler(prog, ip, c, fault):
            calls.append(type(fault).__name__)
            c.regs.write_lanes(3, np.array([-7.0]))
            return Effect()

        service.register_handler(DivideByZeroFault, handler)
        fault = catch_fault(program, 0, ctx)
        service.service(program, 0, ctx, fault)
        assert calls == ["DivideByZeroFault"]
        assert ctx.regs.read_scalar(3) == -7.0

    def test_handler_registered_for_base_class_matches_subclass(self):
        service = CehService()
        seen = []
        service.register_handler(
            ExecutionFault, lambda *a: seen.append(1) or Effect())
        program = assemble("div.1.dw vr3 = vr1, vr2\nend")
        ctx = FakeContext()
        ctx.regs.write_lanes(2, np.array([0.0]))
        fault = catch_fault(program, 0, ctx)
        service.service(program, 0, ctx, fault)
        assert seen == [1]

    def test_unknown_fault_type_reraises(self):
        service = CehService()
        fault = ExecutionFault("mystery")
        program = assemble("nop\nend")
        with pytest.raises(ExecutionFault, match="mystery"):
            service.service(program, 0, FakeContext(), fault)
