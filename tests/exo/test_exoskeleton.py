"""The MISP exoskeleton: signalling, proxy dispatch, accounting."""

import pytest

from repro.errors import DivideByZeroFault
from repro.exo.exoskeleton import Exoskeleton, ProxyCosts
from repro.exo.shred import ShredDescriptor
from repro.exo.signals import InterruptVector, Signal, SignalKind, SignalLog
from repro.isa.assembler import assemble
from repro.memory.address_space import SequencerView
from repro.memory.physical import PAGE_SIZE
from tests.helpers import FakeContext
import numpy as np


@pytest.fixture
def exo(space):
    return Exoskeleton(space)


def make_shred():
    return ShredDescriptor(program=assemble("end"))


class TestDispatch:
    def test_signal_dispatch_logged(self, exo):
        shred = make_shred()
        exo.signal_dispatch(shred, target="exo-0.0")
        assert exo.log.count(SignalKind.DISPATCH) == 1
        event = exo.log.events[0]
        assert event.target == "exo-0.0"
        assert event.payload == shred.shred_id

    def test_dispatch_charges_host_time(self, exo):
        before = exo.host.proxy_seconds
        exo.signal_dispatch(make_shred(), "exo-0.0")
        assert exo.host.proxy_seconds > before


class TestAtrPath:
    def test_request_atr_services_and_logs(self, exo, space):
        base = space.alloc(PAGE_SIZE)
        view = SequencerView(space)
        entry = exo.request_atr(view, base, write=True, source="exo-0.0")
        assert entry != 0
        assert exo.log.count(SignalKind.ATR_REQUEST) == 1
        assert exo.host.proxy_events == 1
        assert view.translate(base) == space.translate(base)

    def test_atr_cost_accounting(self, space):
        costs = ProxyCosts(atr_seconds=1.0)
        exo = Exoskeleton(space, costs=costs)
        base = space.alloc(PAGE_SIZE)
        exo.request_atr(SequencerView(space), base, True, "x")
        assert exo.host.proxy_seconds >= 1.0


class TestCehPath:
    def test_request_ceh_emulates(self, exo):
        program = assemble("div.1.dw vr3 = vr1, vr2\nend")
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([5.0]))
        ctx.regs.write_lanes(2, np.array([0.0]))
        fault = DivideByZeroFault("dbz", instruction=program.instructions[0])
        effect = exo.request_ceh(program, 0, ctx, fault, source="exo-1.2")
        assert effect is not None
        assert exo.log.count(SignalKind.CEH_REQUEST) == 1
        assert ctx.regs.read_scalar(3) == 2 ** 31 - 1


class TestCompletion:
    def test_completion_notify(self, exo):
        shred = make_shred()
        exo.notify_completion(shred, source="exo-2.0")
        assert exo.completions == [shred.shred_id]
        assert exo.log.count(SignalKind.COMPLETION) == 1


class TestSignalPrimitives:
    def test_log_count_and_clear(self):
        log = SignalLog()
        log.record(Signal(SignalKind.DISPATCH, "a", "b"))
        log.record(Signal(SignalKind.DISPATCH, "a", "b"))
        log.record(Signal(SignalKind.COMPLETION, "b", "a"))
        assert log.count(SignalKind.DISPATCH) == 2
        log.clear()
        assert not log.events

    def test_vector_requires_handler(self):
        vector = InterruptVector()
        with pytest.raises(RuntimeError, match="no user-level interrupt"):
            vector.raise_signal(Signal(SignalKind.ATR_REQUEST, "a", "b"))

    def test_vector_dispatches_to_handler(self):
        vector = InterruptVector()
        vector.register(SignalKind.COMPLETION, lambda s: s.payload * 2)
        result = vector.raise_signal(
            Signal(SignalKind.COMPLETION, "a", "b", payload=21))
        assert result == 42
        assert vector.handler_for(SignalKind.COMPLETION) is not None
