"""MISP application-managed IA32 shreds (Shredlib-style pool)."""

import pytest

from repro.chi.runtime import Timeline
from repro.cpu.ia32 import CpuWork
from repro.errors import SchedulingError
from repro.exo.misp import MispPool
from repro.exo.signals import SignalKind

WORK = CpuWork(pixels=1000, cycles_per_pixel=10.0, bytes_touched=0)


class TestShredlibApi:
    def test_create_run_join(self):
        pool = MispPool()
        handle = pool.shred_create(lambda: 21 * 2, WORK)
        assert pool.pending == 1
        pool.run_all()
        assert pool.shred_join(handle) == 42
        assert pool.pending == 0

    def test_join_before_run_rejected(self):
        pool = MispPool()
        handle = pool.shred_create(lambda: 1, WORK)
        with pytest.raises(SchedulingError, match="not run yet"):
            pool.shred_join(handle)

    def test_unknown_handle(self):
        with pytest.raises(SchedulingError, match="unknown"):
            MispPool().shred_join(999999)

    def test_pool_size_validation(self):
        with pytest.raises(SchedulingError):
            MispPool(num_sequencers=0)


class TestScheduling:
    def test_single_ams_serializes(self):
        pool = MispPool(num_sequencers=1)
        for _ in range(4):
            pool.shred_create(lambda: None, WORK)
        elapsed = pool.run_all()
        per_shred = pool.cpu.execute(WORK).seconds
        assert elapsed == pytest.approx(4 * per_shred)

    def test_more_sequencers_shrink_elapsed(self):
        def run_with(n):
            pool = MispPool(num_sequencers=n)
            for _ in range(8):
                pool.shred_create(lambda: None, WORK)
            return pool.run_all()

        assert run_with(4) == pytest.approx(run_with(1) / 4)

    def test_greedy_balances_uneven_work(self):
        pool = MispPool(num_sequencers=2)
        heavy = CpuWork(pixels=3000, cycles_per_pixel=10.0, bytes_touched=0)
        pool.shred_create(lambda: None, heavy)
        for _ in range(3):
            pool.shred_create(lambda: None, WORK)
        elapsed = pool.run_all()
        # heavy alone on one AMS, the three light ones on the other
        assert elapsed == pytest.approx(pool.cpu.execute(heavy).seconds)

    def test_signals_logged_both_directions(self):
        pool = MispPool()
        pool.shred_create(lambda: None, WORK)
        pool.run_all()
        assert pool.log.count(SignalKind.DISPATCH) == 1
        assert pool.log.count(SignalKind.COMPLETION) == 1

    def test_timeline_integration(self):
        pool = MispPool()
        pool.shred_create(lambda: None, WORK)
        timeline = Timeline()
        elapsed = pool.run_all(timeline=timeline)
        assert timeline.now == pytest.approx(elapsed)

    def test_sequencers_are_application_managed_ia32(self):
        pool = MispPool(num_sequencers=2)
        assert all(s.isa == "IA32" for s in pool.sequencers)
        from repro.exo.sequencer import SequencerKind

        assert all(s.kind is SequencerKind.EXO for s in pool.sequencers)


class TestHeterogeneousComposition:
    def test_misp_shreds_overlap_gma_region(self, runtime):
        """Figure 1(b): IA32 AMS shreds + exo-sequencer shreds + the main
        shred all overlap on one timeline."""
        import numpy as np

        from repro.isa.types import DataType
        from repro.memory.surface import Surface

        out = Surface.alloc(runtime.platform.space, "OUT", 8, 1, DataType.DW)
        region = runtime.parallel("st.1.dw (OUT, tid, 0) = tid\nend",
                                  shared={"OUT": out}, num_threads=8,
                                  master_nowait=True)
        pool = MispPool(num_sequencers=1)
        results = []
        pool.shred_create(lambda: results.append("misp ran"), WORK)
        misp_elapsed = pool.run_all(timeline=runtime.timeline)
        region.wait()
        assert results == ["misp ran"]
        got = out.download(runtime.platform.host).reshape(-1)
        assert np.array_equal(got, np.arange(8.0))
        # the timeline reflects overlap, not the sum
        assert runtime.timeline.now <= misp_elapsed + region.gma_seconds
