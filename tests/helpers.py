"""Shared test helpers."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import ExecutionFault
from repro.isa.registers import RegisterFile
from repro.isa.types import DataType


class FakeContext:
    """A minimal ExecContext over plain dictionaries.

    Surfaces are 1-D numpy float64 arrays for linear access and 2-D arrays
    for block access; no translation, no device, no timing.  Used to test
    the functional semantics in isolation.
    """

    supports_double = False
    proxy_mode = False

    def __init__(self, bindings: Dict[str, float] = None,
                 surfaces: Dict[str, np.ndarray] = None):
        self.regs = RegisterFile()
        self.bindings = dict(bindings or {})
        self.surfaces = {k: np.array(v, dtype=np.float64, copy=True)
                         for k, v in (surfaces or {}).items()}
        self.sent = []
        self.spawned = []
        self.flushes = 0

    def resolve_symbol(self, name: str) -> float:
        try:
            return float(self.bindings[name])
        except KeyError:
            raise ExecutionFault(f"unbound symbol {name!r}") from None

    def _flat(self, name: str) -> np.ndarray:
        try:
            return self.surfaces[name].reshape(-1)
        except KeyError:
            raise ExecutionFault(f"no surface {name!r}") from None

    def surface_read(self, name, index, count, ty: DataType):
        flat = self._flat(name)
        if index < 0 or index + count > flat.size:
            raise ExecutionFault(f"linear OOB on {name}")
        return flat[index : index + count].copy()

    def surface_write(self, name, index, values, ty: DataType):
        flat = self._flat(name)
        if index < 0 or index + values.size > flat.size:
            raise ExecutionFault(f"linear OOB on {name}")
        flat[index : index + values.size] = values

    def surface_read_block(self, name, x, y, w, h, ty: DataType):
        img = self.surfaces[name]
        if img.ndim != 2:
            raise ExecutionFault(f"surface {name} is not 2-D")
        ih, iw = img.shape
        out = np.empty((h, w), dtype=np.float64)
        for r in range(h):
            yy = min(max(y + r, 0), ih - 1)
            for c in range(w):
                xx = min(max(x + c, 0), iw - 1)
                out[r, c] = img[yy, xx]
        return out.reshape(-1)

    def surface_write_block(self, name, x, y, values, w, h, ty: DataType):
        img = self.surfaces[name]
        img[y : y + h, x : x + w] = np.asarray(values).reshape(h, w)

    def sample(self, name, xs, ys):
        img = self.surfaces[name]
        ih, iw = img.shape
        out = np.empty(xs.size)
        for i in range(xs.size):
            x0 = int(np.clip(np.floor(xs[i]), 0, iw - 1))
            y0 = int(np.clip(np.floor(ys[i]), 0, ih - 1))
            x1, y1 = min(x0 + 1, iw - 1), min(y0 + 1, ih - 1)
            fx = min(max(xs[i] - x0, 0.0), 1.0)
            fy = min(max(ys[i] - y0, 0.0), 1.0)
            top = img[y0, x0] + (img[y0, x1] - img[y0, x0]) * fx
            bot = img[y1, x0] + (img[y1, x1] - img[y1, x0]) * fx
            out[i] = top + (bot - top) * fy
        return out

    def send_register(self, shred_id, reg, values):
        self.sent.append((shred_id, reg, np.asarray(values).copy()))

    def spawn_shred(self, arg):
        self.spawned.append(arg)

    def flush_device_cache(self):
        self.flushes += 1


def run_program(asm_text: str, bindings=None, surfaces=None,
                ctx: FakeContext = None, max_steps: int = 100000):
    """Assemble and functionally execute a program on a FakeContext."""
    from repro.isa.assembler import assemble
    from repro.isa import semantics

    program = assemble(asm_text, "test")
    ctx = ctx or FakeContext(bindings, surfaces)
    ip = 0
    steps = 0
    while ip < len(program.instructions):
        effect = semantics.execute(program, ip, ctx)
        if effect.ended:
            break
        ip = effect.next_ip if effect.next_ip is not None else ip + 1
        steps += 1
        if steps > max_steps:
            raise AssertionError("program did not terminate")
    return ctx
