"""Session isolation and quotas: tenants share frames, never mappings."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import QuotaExceeded, ServingError, SessionClosed
from repro.isa.types import DataType
from repro.serving import ExoServer, SessionQuotas


def _server(**kw):
    kw.setdefault("num_devices", 1)
    return ExoServer(**kw)


def test_sessions_have_isolated_address_spaces():
    server = _server()
    a = server.open_session("a")
    b = server.open_session("b")
    assert a.space is not b.space
    assert a.space.physical is b.space.physical  # one shared DRAM
    assert a.exoskeleton is not b.exoskeleton
    sa = a.alloc_surface("X", 16, 4, DataType.DW)
    sb = b.alloc_surface("X", 16, 4, DataType.DW)
    img = np.arange(64, dtype=np.int64).reshape(4, 16)
    sa.upload(a.space, img)
    sb.upload(b.space, img * 7)
    np.testing.assert_array_equal(sa.download(a.space), img)
    np.testing.assert_array_equal(sb.download(b.space), img * 7)


def test_shootdowns_never_cross_sessions():
    """One tenant's free/protect must not invalidate another tenant's
    device translations (the isolation the ISSUE names explicitly)."""
    server = _server()
    a = server.open_session("a")
    b = server.open_session("b")
    slot = server.slots[0]
    view_a = a.view_for(slot)
    view_b = b.view_for(slot)
    sa = a.alloc_surface("S", 64, 8, DataType.UB)
    sb = b.alloc_surface("S", 64, 8, DataType.UB)
    sa.upload(a.space, np.zeros((8, 64), dtype=np.int64))
    sb.upload(b.space, np.zeros((8, 64), dtype=np.int64))
    # warm both device views (ATR installs the GTT/TLB entries, exactly
    # as a launch's surface-preparation pass would)
    a.exoskeleton.request_atr_batch(view_a, [sa.base], write=True,
                                    source="test")
    b.exoskeleton.request_atr_batch(view_b, [sb.base], write=True,
                                    source="test")
    assert view_a.gtt and view_b.gtt
    before_a = dict(view_a.gtt)
    before_b = dict(view_b.gtt)
    shootdowns_b = view_b.shootdowns_received

    a.free_surface("S")  # broadcasts a shootdown in session a's space

    assert view_a.gtt != before_a  # a's own view was invalidated
    assert view_b.gtt == before_b  # b's translations survived untouched
    assert view_b.shootdowns_received == shootdowns_b

    b.space.protect(sb.base, writable=False)
    assert view_b.shootdowns_received > shootdowns_b  # b's own do arrive
    assert view_a.gtt != before_a and "S" not in a.surfaces


def test_surface_count_quota():
    server = _server()
    s = server.open_session("t", SessionQuotas(max_surfaces=2))
    s.alloc_surface("A", 8, 1, DataType.DW)
    s.alloc_surface("B", 8, 1, DataType.DW)
    with pytest.raises(QuotaExceeded):
        s.alloc_surface("C", 8, 1, DataType.DW)
    s.free_surface("A")
    s.alloc_surface("C", 8, 1, DataType.DW)  # freeing returns headroom


def test_surface_bytes_quota():
    server = _server()
    s = server.open_session(
        "t", SessionQuotas(max_surface_bytes=4096))
    s.alloc_surface("A", 1024, 1, DataType.UB)
    with pytest.raises(QuotaExceeded):
        s.alloc_surface("B", 4096, 1, DataType.UB)


def test_duplicate_surface_name_rejected():
    server = _server()
    s = server.open_session("t")
    s.alloc_surface("A", 8, 1, DataType.DW)
    with pytest.raises(QuotaExceeded):
        s.alloc_surface("A", 8, 1, DataType.DW)


def test_descriptor_quota_exhaustion():
    async def scenario():
        async with _server() as server:
            session = server.open_session(
                "t", SessionQuotas(max_descriptors=4, max_inflight=64))
            session.charge_descriptors(4)
            from repro.isa.assembler import assemble
            program = assemble("end", name="nop")
            with pytest.raises(QuotaExceeded):
                await server.submit(session, program,
                                    bindings=[{}])
    asyncio.run(scenario())


def test_closed_session_refuses_work():
    async def scenario():
        async with _server() as server:
            session = server.open_session("t")
            server.close_session(session)
            from repro.isa.assembler import assemble
            program = assemble("end", name="nop")
            with pytest.raises(SessionClosed):
                await server.submit(session, program, bindings=[{}])
            with pytest.raises(SessionClosed):
                session.alloc_surface("A", 8, 1, DataType.DW)
    asyncio.run(scenario())


def test_duplicate_session_name_rejected():
    server = _server()
    server.open_session("t")
    with pytest.raises(ServingError):
        server.open_session("t")
