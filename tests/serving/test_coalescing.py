"""Cross-launch gang formation must be invisible to every tenant.

For each of the four flat (single-shred) kernels: eight same-program
requests served one at a time (scalar fallback — one lane is no gang)
and eight queued together (one coalesced gang) must produce
bit-identical output surfaces and identical per-request ``ShredRun``
counters.  Inputs are seeded per request, so lane k of the gang and
solo request k see the same frame.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.kernels import kernel_by_abbrev
from repro.serving import ExoServer, SessionQuotas, TenantWorkload

FLAT_KERNELS = ("AlphaBlend", "BOB", "ADVDI", "ProcAmp")
LANES = 8

RUN_FIELDS = ("instructions", "issue_cycles", "bytes_read",
              "bytes_written", "sampler_samples", "atr_events",
              "ceh_events", "spawned")


async def _serve_kernel(abbrev: str, coalesce: bool, seed: int = 7):
    """Returns (results, outputs) for LANES seeded requests."""
    async with ExoServer(num_devices=1, engine="gang") as server:
        session = server.open_session(
            "t", SessionQuotas(max_inflight=LANES,
                               max_surfaces=8 * LANES,
                               max_surface_bytes=64 << 20,
                               max_descriptors=4 * LANES))
        workload = TenantWorkload(session, kernel_by_abbrev(abbrev),
                                  seed=seed)
        launches = [workload.new_launch() for _ in range(LANES)]
        if coalesce:
            results = await asyncio.gather(*[
                server.submit(session, launch.program,
                              bindings=launch.bindings,
                              surfaces=launch.surfaces)
                for launch in launches
            ])
        else:
            results = [
                await server.submit(session, launch.program,
                                    bindings=launch.bindings,
                                    surfaces=launch.surfaces)
                for launch in launches
            ]
        outputs = [
            {name: launch.surfaces[name].download(session.space)
             for name in launch.expected}
            for launch in launches
        ]
        for launch in launches:
            launch.verify(session)
        return results, outputs, server.stats


@pytest.mark.parametrize("abbrev", FLAT_KERNELS)
def test_coalesced_bit_identical_to_solo(abbrev):
    solo_results, solo_outputs, solo_stats = asyncio.run(
        _serve_kernel(abbrev, coalesce=False))
    gang_results, gang_outputs, gang_stats = asyncio.run(
        _serve_kernel(abbrev, coalesce=True))

    # the two modes really took different paths
    assert solo_stats.gangs_coalesced == 0
    assert gang_stats.gangs_coalesced >= 1
    assert gang_stats.coalesced_lanes == LANES

    for k in range(LANES):
        for name in solo_outputs[k]:
            np.testing.assert_array_equal(
                solo_outputs[k][name], gang_outputs[k][name],
                err_msg=f"{abbrev} request {k} output {name!r} diverged")
        solo, gang = solo_results[k], gang_results[k]
        assert solo.shreds == gang.shreds == 1
        assert gang.coalesced_requests > 1
        assert solo.coalesced_requests == 1
        for field in RUN_FIELDS:
            s = getattr(solo.runs[0], field)
            g = getattr(gang.runs[0], field)
            assert s == g, (f"{abbrev} request {k}: {field} "
                            f"solo={s} coalesced={g}")


def test_coalescing_respects_program_identity():
    """Launches of *different* kernels from one session never merge."""
    async def scenario():
        async with ExoServer(num_devices=1, engine="gang") as server:
            session = server.open_session(
                "t", SessionQuotas(max_inflight=8, max_surfaces=64,
                                   max_surface_bytes=64 << 20))
            wa = TenantWorkload(session, kernel_by_abbrev("AlphaBlend"))
            wb = TenantWorkload(session, kernel_by_abbrev("BOB"))
            launches = [wa.new_launch(), wb.new_launch(),
                        wa.new_launch(), wb.new_launch()]
            results = await asyncio.gather(*[
                server.submit(session, launch.program,
                              bindings=launch.bindings,
                              surfaces=launch.surfaces)
                for launch in launches
            ])
            for launch in launches:
                launch.verify(session)
            # AlphaBlend pair coalesced with itself, BOB with itself
            for result in results:
                assert result.coalesced_requests == 2
            assert server.stats.batches_dispatched == 2
    asyncio.run(scenario())


def test_gang_engine_engages_under_coalescing():
    """The point of the tentpole: coalesced flat kernels retire on the
    gang path (zero scalar fallbacks), solo ones cannot."""
    _, _, solo_stats = asyncio.run(
        _serve_kernel("AlphaBlend", coalesce=False))
    _, _, gang_stats = asyncio.run(
        _serve_kernel("AlphaBlend", coalesce=True))
    assert gang_stats.gangs_coalesced >= 1
    assert solo_stats.gangs_coalesced == 0
