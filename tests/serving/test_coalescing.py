"""Cross-launch gang formation must be invisible to every tenant.

For each of the four flat (single-shred) kernels: eight same-program
requests served one at a time (scalar fallback — one lane is no gang)
and eight queued together (one coalesced gang) must produce
bit-identical output surfaces and identical per-request ``ShredRun``
counters.  Inputs are seeded per request, so lane k of the gang and
solo request k see the same frame.
"""

from __future__ import annotations

import asyncio
from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ServingError
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.kernels import kernel_by_abbrev
from repro.serving import ExoServer, SessionQuotas, TenantWorkload
from repro.serving.coalescer import demux

FLAT_KERNELS = ("AlphaBlend", "BOB", "ADVDI", "ProcAmp")
LANES = 8

RUN_FIELDS = ("instructions", "issue_cycles", "bytes_read",
              "bytes_written", "sampler_samples", "atr_events",
              "ceh_events", "spawned")


async def _serve_kernel(abbrev: str, coalesce: bool, seed: int = 7):
    """Returns (results, outputs) for LANES seeded requests."""
    async with ExoServer(num_devices=1, engine="gang") as server:
        session = server.open_session(
            "t", SessionQuotas(max_inflight=LANES,
                               max_surfaces=8 * LANES,
                               max_surface_bytes=64 << 20,
                               max_descriptors=4 * LANES))
        workload = TenantWorkload(session, kernel_by_abbrev(abbrev),
                                  seed=seed)
        launches = [workload.new_launch() for _ in range(LANES)]
        if coalesce:
            results = await asyncio.gather(*[
                server.submit(session, launch.program,
                              bindings=launch.bindings,
                              surfaces=launch.surfaces)
                for launch in launches
            ])
        else:
            results = [
                await server.submit(session, launch.program,
                                    bindings=launch.bindings,
                                    surfaces=launch.surfaces)
                for launch in launches
            ]
        outputs = [
            {name: launch.surfaces[name].download(session.space)
             for name in launch.expected}
            for launch in launches
        ]
        for launch in launches:
            launch.verify(session)
        return results, outputs, server.stats


@pytest.mark.parametrize("abbrev", FLAT_KERNELS)
def test_coalesced_bit_identical_to_solo(abbrev):
    solo_results, solo_outputs, solo_stats = asyncio.run(
        _serve_kernel(abbrev, coalesce=False))
    gang_results, gang_outputs, gang_stats = asyncio.run(
        _serve_kernel(abbrev, coalesce=True))

    # the two modes really took different paths
    assert solo_stats.gangs_coalesced == 0
    assert gang_stats.gangs_coalesced >= 1
    assert gang_stats.coalesced_lanes == LANES

    for k in range(LANES):
        for name in solo_outputs[k]:
            np.testing.assert_array_equal(
                solo_outputs[k][name], gang_outputs[k][name],
                err_msg=f"{abbrev} request {k} output {name!r} diverged")
        solo, gang = solo_results[k], gang_results[k]
        assert solo.shreds == gang.shreds == 1
        assert gang.coalesced_requests > 1
        assert solo.coalesced_requests == 1
        for field in RUN_FIELDS:
            s = getattr(solo.runs[0], field)
            g = getattr(gang.runs[0], field)
            assert s == g, (f"{abbrev} request {k}: {field} "
                            f"solo={s} coalesced={g}")


def test_coalescing_respects_program_identity():
    """Launches of *different* kernels from one session never merge."""
    async def scenario():
        async with ExoServer(num_devices=1, engine="gang") as server:
            session = server.open_session(
                "t", SessionQuotas(max_inflight=8, max_surfaces=64,
                                   max_surface_bytes=64 << 20))
            wa = TenantWorkload(session, kernel_by_abbrev("AlphaBlend"))
            wb = TenantWorkload(session, kernel_by_abbrev("BOB"))
            launches = [wa.new_launch(), wb.new_launch(),
                        wa.new_launch(), wb.new_launch()]
            results = await asyncio.gather(*[
                server.submit(session, launch.program,
                              bindings=launch.bindings,
                              surfaces=launch.surfaces)
                for launch in launches
            ])
            for launch in launches:
                launch.verify(session)
            # AlphaBlend pair coalesced with itself, BOB with itself
            for result in results:
                assert result.coalesced_requests == 2
            assert server.stats.batches_dispatched == 2
    asyncio.run(scenario())


# -- demux attribution: transitive parent chains -----------------------------

def _run(shred_id, parent_id=None):
    return SimpleNamespace(
        shred=SimpleNamespace(shred_id=shred_id, parent_id=parent_id))


def _request(ident, *shred_ids):
    return SimpleNamespace(
        ident=ident,
        shreds=[SimpleNamespace(shred_id=s) for s in shred_ids])


class TestDemuxAttribution:
    def test_transitive_chain_when_descendants_retire_first(self):
        """Regression: a grandchild retiring before its parent.  The old
        single forward walk only knew launch-time shreds and already-
        attributed parents, so run order [grandchild, child, root] was
        unattributable and the whole batch failed."""
        requests = [_request(0, 1)]
        merged = SimpleNamespace(runs=[_run(3, 2), _run(2, 1), _run(1)])
        out = demux(requests, merged)
        assert [r.shred.shred_id for r in out[0]] == [3, 2, 1]

    def test_interleaved_generations_across_requests(self):
        requests = [_request(0, 1), _request(1, 10)]
        merged = SimpleNamespace(runs=[
            _run(12, 11), _run(3, 2), _run(11, 10),
            _run(2, 1), _run(10), _run(1),
        ])
        out = demux(requests, merged)
        assert [r.shred.shred_id for r in out[0]] == [3, 2, 1]
        assert [r.shred.shred_id for r in out[1]] == [12, 11, 10]

    def test_parent_cycle_raises(self):
        requests = [_request(0, 1)]
        merged = SimpleNamespace(runs=[_run(1), _run(5, 6), _run(6, 5)])
        with pytest.raises(ServingError, match="cycle"):
            demux(requests, merged)

    def test_orphan_run_raises(self):
        requests = [_request(0, 1)]
        merged = SimpleNamespace(runs=[_run(1), _run(9)])
        with pytest.raises(ServingError, match="cannot attribute"):
            demux(requests, merged)


#: Two generations of on-device spawns: the root stores 1 and spawns a
#: child (arg 1), the child stores 2 and spawns a grandchild (arg 2),
#: the grandchild stores 3.
NESTED_SPAWN_ASM = """
mov.1.dw vr1 = __spawn_arg
cmp.eq.1.dw p1 = vr1, 0
(!p1) jmp gen1
st.1.dw (OUT, 0, 0) = 1
spawn 1
end
gen1:
cmp.eq.1.dw p2 = vr1, 1
(!p2) jmp gen2
st.1.dw (OUT, 1, 0) = 2
spawn 2
end
gen2:
st.1.dw (OUT, 2, 0) = 3
end
"""


def test_coalesced_nested_spawns_attribute_per_request():
    """Regression: nested spawns inside a coalesced batch.  Each of the
    four riders must get back exactly its own three-generation lineage,
    with the spawned work landing on the spawning request's ledger."""
    async def scenario():
        async with ExoServer(num_devices=1, engine="gang") as server:
            session = server.open_session(
                "t", SessionQuotas(max_inflight=8, max_surfaces=16,
                                   max_surface_bytes=64 << 20,
                                   max_descriptors=32))
            program = assemble(NESTED_SPAWN_ASM, name="nested-spawn")
            surfs = [session.alloc_surface(f"OUT{k}", 4, 1, DataType.DW)
                     for k in range(4)]
            results = await asyncio.gather(*[
                server.submit(session, program,
                              bindings=[{"__spawn_arg": 0.0}],
                              surfaces={"OUT": surfs[k]})
                for k in range(4)
            ])
            for k, result in enumerate(results):
                assert result.shreds == 3, \
                    f"request {k}: root + child + grandchild"
                assert result.spawned == 2
                got = surfs[k].download(session.space).reshape(-1)
                np.testing.assert_array_equal(got, [1.0, 2.0, 3.0, 0.0])
            assert server.stats.launches_completed == 4
            return server.stats
    stats = asyncio.run(scenario())
    assert stats.gangs_coalesced >= 1  # the batch really merged


def test_gang_engine_engages_under_coalescing():
    """The point of the tentpole: coalesced flat kernels retire on the
    gang path (zero scalar fallbacks), solo ones cannot."""
    _, _, solo_stats = asyncio.run(
        _serve_kernel("AlphaBlend", coalesce=False))
    _, _, gang_stats = asyncio.run(
        _serve_kernel("AlphaBlend", coalesce=True))
    assert gang_stats.gangs_coalesced >= 1
    assert solo_stats.gangs_coalesced == 0


LOOP_ASM = """
iota.16.f vr1
mov.1.dw vr2 = 0
loop:
mad.16.f vr3 = vr1, vr1, vr1
add.1.dw vr2 = vr2, 1
cmp.lt.1.dw p1 = vr2, iters
br p1, loop
end
"""


def test_coalesced_batches_hit_promoted_megaops_across_launches():
    """The megaop cache is keyed by program, not by launch: the first
    coalesced batch profiles and promotes the hot loop, the second one
    reuses the compiled megaop without recompiling."""
    program = assemble(LOOP_ASM, name="serving-megaop-loop")

    async def scenario():
        async with ExoServer(num_devices=1, engine="megaop",
                             megaop_threshold=2) as server:
            session = server.open_session(
                "t", SessionQuotas(max_inflight=8, max_surfaces=8,
                                   max_surface_bytes=1 << 20,
                                   max_descriptors=32))
            snapshots = []
            for _ in range(2):
                await asyncio.gather(*[
                    server.submit(session, program,
                                  bindings=[{"iters": 40.0}])
                    for _ in range(4)
                ])
                stats = server.runtime_stats()
                snapshots.append((stats.megaop_compiles,
                                  stats.megaops_retired,
                                  stats.gangs_coalesced))
            return snapshots

    (compiles1, retired1, coalesced1), (compiles2, retired2, coalesced2) \
        = asyncio.run(scenario())
    assert coalesced1 >= 1 and coalesced2 >= 2  # both batches merged
    assert compiles1 == 1          # the first batch promotes the cycle
    assert retired1 > 0
    assert compiles2 == compiles1  # warm cache: no recompile
    assert retired2 > retired1     # ...but the second batch still hits it


def test_coalesced_gang_survives_request_divergence():
    """One rider's lanes exit the shared loop early: the gang splits at
    the loop-exit branch, compacts the survivors (still coalesced), and
    re-admits the early riders at the reconvergence point.  Demux must
    hand every request exactly its solo accounting, and the admission
    EWMAs must see one batch at the full coalesced width — not a
    scalar-fallback stampede."""
    program = assemble(LOOP_ASM, name="serving-divergent-loop")
    iters = [40.0] * 6 + [12.0] * 2

    async def scenario(coalesce):
        async with ExoServer(num_devices=1, engine="gang") as server:
            session = server.open_session(
                "t", SessionQuotas(max_inflight=8, max_surfaces=8,
                                   max_surface_bytes=1 << 20,
                                   max_descriptors=32))
            if coalesce:
                results = await asyncio.gather(*[
                    server.submit(session, program,
                                  bindings=[{"iters": it}])
                    for it in iters
                ])
            else:
                results = [await server.submit(session, program,
                                               bindings=[{"iters": it}])
                           for it in iters]
            return (results, server.runtime_stats(),
                    server.admission._width_ewma)

    solo_results, _, _ = asyncio.run(scenario(False))
    gang_results, gang_stats, width = asyncio.run(scenario(True))

    # the batch merged and stayed merged straight through the divergence
    assert gang_stats.gangs_coalesced >= 1
    assert gang_stats.gang_repacks >= 1
    assert gang_stats.lanes_readmitted == 2   # the two early riders
    assert gang_stats.scalar_fallbacks == 0   # nobody retired on scalar
    # admission saw one batch of eight riders, not eight narrow batches
    assert width == pytest.approx(8.0)
    # demux attribution: every rider gets back its exact solo accounting
    for k, (solo, gang) in enumerate(zip(solo_results, gang_results)):
        assert solo.shreds == gang.shreds == 1
        assert gang.coalesced_requests == 8
        for field in RUN_FIELDS:
            s = getattr(solo.runs[0], field)
            g = getattr(gang.runs[0], field)
            assert s == g, f"request {k}: {field} solo={s} coalesced={g}"
