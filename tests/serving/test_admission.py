"""Admission control: caps, retry-after, weighted fairness under load."""

from __future__ import annotations

import asyncio
import random
from types import SimpleNamespace

import pytest

from repro.errors import AdmissionRejected
from repro.fabric.queue import AdmissionPolicy
from repro.isa.assembler import assemble
from repro.serving import ExoServer, SessionQuotas
from repro.serving.admission import (
    UNSEEDED_RETRY_AFTER,
    AdmissionController,
)


#: A small but nontrivial shred: enough work that batches take real
#: (host) time, so contention actually queues.
LOOP_ASM = """
mov.1.dw vr1 = 0
loop:
add.1.dw vr1 = vr1, 1
cmp.lt.1.dw p1 = vr1, 40
br p1, loop
end
"""


def test_raise_policy_rejects_with_retry_after():
    async def scenario():
        async with ExoServer(num_devices=1,
                             admission_policy=AdmissionPolicy.RAISE,
                             coalesce_window=1) as server:
            session = server.open_session(
                "t", SessionQuotas(max_inflight=1))
            program = assemble(LOOP_ASM, name="loop")
            first = asyncio.ensure_future(
                server.submit(session, program, bindings=[{}]))
            await asyncio.sleep(0)  # first submit takes the inflight slot
            with pytest.raises(AdmissionRejected) as info:
                await server.submit(session, program, bindings=[{}])
            assert info.value.retry_after >= 0.0
            await first
            assert server.stats.launches_rejected == 1
            assert session.rejected == 1
    asyncio.run(scenario())


def test_block_policy_waits_instead_of_raising():
    async def scenario():
        async with ExoServer(num_devices=1,
                             admission_policy=AdmissionPolicy.BLOCK,
                             coalesce_window=1) as server:
            session = server.open_session(
                "t", SessionQuotas(max_inflight=1))
            program = assemble(LOOP_ASM, name="loop")
            results = await asyncio.gather(*[
                server.submit(session, program, bindings=[{}])
                for _ in range(4)
            ])
            assert len(results) == 4
            assert server.stats.launches_rejected == 0
            assert server.stats.launches_completed == 4
    asyncio.run(scenario())


def test_block_policy_fairness_under_contention():
    """With every tenant saturating one device, dequeue is weighted
    fair: equal weights drain interleaved, not one tenant first."""
    async def scenario():
        async with ExoServer(num_devices=1, coalesce_window=1,
                             admission_policy=AdmissionPolicy.BLOCK
                             ) as server:
            program = assemble(LOOP_ASM, name="loop")
            sessions = [
                server.open_session(f"t{i}",
                                    SessionQuotas(max_inflight=8))
                for i in range(3)
            ]
            await asyncio.gather(*[
                server.submit(session, program, bindings=[{}])
                for _ in range(6)
                for session in sessions
            ])
            order = [entry["session"] for entry in server.trace_log]
            # no tenant's whole stream drains before another starts:
            # within any window of 3 batches all tenants must appear
            # once the queue is saturated
            for start in range(3, len(order) - 3):
                window = set(order[start:start + 3])
                assert len(window) == 3, \
                    f"unfair window {order[start:start + 3]} in {order}"
    asyncio.run(scenario())


def test_weighted_tenant_gets_proportional_share():
    """Stride accounting: a weight-2 tenant's first K dispatches finish
    by the time a weight-1 tenant gets K/2 (2:1 interleave)."""
    async def scenario():
        async with ExoServer(num_devices=1, coalesce_window=1,
                             admission_policy=AdmissionPolicy.BLOCK
                             ) as server:
            program = assemble(LOOP_ASM, name="loop")
            heavy = server.open_session(
                "heavy", SessionQuotas(max_inflight=12, weight=2.0))
            light = server.open_session(
                "light", SessionQuotas(max_inflight=12, weight=1.0))
            await asyncio.gather(*[
                server.submit(session, program, bindings=[{}])
                for session in (heavy, light)
                for _ in range(9)
            ])
            order = [entry["session"] for entry in server.trace_log]
            # count heavy's dispatches among the first 9 steady-state
            # batches: 2:1 stride means at least 5
            steady = order[3:12]
            assert steady.count("heavy") >= 5, order
    asyncio.run(scenario())


def test_controller_retry_after_scales_with_backlog():
    ctrl = AdmissionController(max_pending=4)
    ctrl.note_service(1, 0.1)
    empty = ctrl.retry_after(slots=2)
    ctrl.pending = 4
    full = ctrl.retry_after(slots=2)
    assert full > empty > 0.0


def test_retry_after_unseeded_is_nominal_floor():
    ctrl = AdmissionController()
    assert ctrl.retry_after(slots=4) == UNSEEDED_RETRY_AFTER


def test_retry_after_tracks_batch_wall_under_coalescing():
    """Regression: the old model charged ``wall / len(requests)`` per
    request, so a 0.8 s drain carrying an 8-way coalesced gang looked
    like 0.1 s of service and retry_after collapsed ~8x below the time
    the next batch actually takes."""
    ctrl = AdmissionController()
    for _ in range(3):
        ctrl.note_service(8, 0.8)  # steady state: 8 riders per drain
    ctrl.pending = 0
    est = ctrl.retry_after(slots=1)
    # a retry lands behind at least one drain: within 2x of batch wall
    assert 0.8 / 2 <= est <= 0.8 * 2


def test_retry_after_grows_with_backlog_under_coalescing():
    ctrl = AdmissionController()
    for _ in range(3):
        ctrl.note_service(8, 0.8)
    estimates = []
    for pending in (0, 8, 32, 64):
        ctrl.pending = pending
        estimates.append(ctrl.retry_after(slots=1))
    assert estimates == sorted(estimates)
    assert estimates[3] > estimates[1] > 0.0
    # 64 queued requests at 8-wide is ~8 batches behind, not 64
    assert estimates[3] <= 0.8 * (65 / 8 + 1)


# -- heap-based pick: pinned against the old linear scan ---------------------

def _stub_session(name: str, weight: float = 1.0):
    return SimpleNamespace(name=name,
                           quotas=SimpleNamespace(weight=weight))


def _stub_request(session, lanes: int = 1):
    return SimpleNamespace(session=session, shreds=[None] * lanes)


def _reference_pick(ctrl: AdmissionController):
    """The pre-heap implementation, verbatim: linear scan for the
    backlogged session with the smallest ``(vtime, name)``."""
    best = None
    for name, queue in ctrl._queues.items():
        if not queue:
            continue
        vt = ctrl._vtime.get(name, 0.0)
        if best is None or (vt, name) < best:
            best = (vt, name)
    return best[1] if best else None


def test_pick_breaks_vtime_ties_by_name():
    ctrl = AdmissionController()
    for name in ("zeta", "alpha", "mid"):
        ctrl.enqueue(_stub_request(_stub_session(name)))
    assert ctrl.pick() == "alpha"


def test_heap_pick_matches_linear_scan_throughout():
    """Dequeue order is pinned: at every step of an interleaved
    enqueue/pop sequence over weighted sessions, the heap pick must
    equal the old linear scan's choice."""
    rng = random.Random(1234)
    sessions = [_stub_session(f"s{i}", weight=w)
                for i, w in enumerate((1.0, 2.0, 0.5, 1.0, 3.0))]
    ctrl = AdmissionController(max_pending=10_000)
    pops = 0
    for _ in range(400):
        assert ctrl.pick() == _reference_pick(ctrl)
        if rng.random() < 0.6:
            ctrl.enqueue(_stub_request(rng.choice(sessions),
                                       lanes=rng.randint(1, 4)))
        else:
            name = ctrl.pick()
            if name is not None:
                ctrl.pop_batch(name, window=8)
                pops += 1
    while True:
        name = ctrl.pick()
        assert name == _reference_pick(ctrl)
        if name is None:
            break
        ctrl.pop_batch(name, window=8)
        pops += 1
    assert pops > 50  # the interleave actually exercised both paths
    assert ctrl.pending == 0


def test_server_pending_bound_rejects():
    async def scenario():
        async with ExoServer(num_devices=1, max_pending=2,
                             coalesce_window=1,
                             admission_policy=AdmissionPolicy.RAISE
                             ) as server:
            session = server.open_session(
                "t", SessionQuotas(max_inflight=64))
            program = assemble(LOOP_ASM, name="loop")
            futures = [
                asyncio.ensure_future(
                    server.submit(session, program, bindings=[{}]))
                for _ in range(2)
            ]
            await asyncio.sleep(0)
            # both pending slots are taken and the dispatcher has not
            # drained them yet on this tick
            if server.admission.pending >= 2:
                with pytest.raises(AdmissionRejected):
                    await server.submit(session, program, bindings=[{}])
            await asyncio.gather(*futures)
    asyncio.run(scenario())
