"""Disassembler round trips: text -> program -> text -> same program."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble

CASES = [
    "shl.1.w vr1 = i, 3\nend",
    "ld.8.dw [vr2..vr9] = (A, vr1, 0)\nst.8.dw (C, vr1, 4) = [vr2..vr9]\nend",
    "loop:\ncmp.lt.1.dw p1 = vr1, 10\nbr p1, loop\nend",
    "(p3) add.16.f vr1 = vr1, 0.5\n(!p4) sub.16.f vr2 = vr2, vr1\nend",
    "ldblk.16x8.ub [vr10..vr17] = (SRC, vr1, by)\n"
    "stblk.16x8.ub (OUT, vr1, by) = [vr10..vr17]\nend",
    "sample.16.f vr5 = (TEX, vr1, vr2)\nend",
    "sendreg.2.dw (vr1, vr30) = vr6\nspawn vr1\nend",
    "iota.16.f vr1\nilv.32.f [vr4..vr5] = vr1, vr2\nend",
    "hadd.16.f vr2 = vr1\nhmax.16.f vr3 = vr1\nend",
    "mad.8.f vr1 = vr2, -0.0625, vr3\nend",
]


@pytest.mark.parametrize("source", CASES)
def test_disassemble_reassembles_identically(source):
    program = assemble(source)
    text = disassemble(program)
    again = assemble(text)
    assert tuple(p for p in again.instructions) == tuple(
        q for q in program.instructions) or _equivalent(again, program)
    assert again.labels == program.labels


def _equivalent(a, b):
    """Instructions may differ only in their source-line numbers."""
    if len(a) != len(b):
        return False
    for x, y in zip(a.instructions, b.instructions):
        if str(x) != str(y):
            return False
    return True


def test_labels_rendered_before_instruction():
    program = assemble("top:\nnop\njmp top\nend")
    text = disassemble(program)
    lines = [ln.strip() for ln in text.splitlines()]
    assert lines[0] == "top:"
    assert lines[1] == "nop"


def test_trailing_label_gets_nop_anchor():
    program = assemble("jmp out\nout:\nend")
    # move the label past the end by hand-building an equivalent case
    text = disassemble(program)
    assert "out:" in text


def test_disassembly_is_printable_per_instruction():
    program = assemble("add.8.dw [vr1..vr8] = [vr1..vr8], 1\nend")
    assert str(program.instructions[0]) == \
        "add.8.dw [vr1..vr8] = [vr1..vr8], 1"
    assert str(program.instructions[1]) == "end"
