"""Functional semantics of every opcode, on a bare fake context."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    DivideByZeroFault,
    ExecutionFault,
    FpOverflowFault,
    UnsupportedOperationFault,
)
from repro.isa import semantics
from repro.isa.assembler import assemble
from tests.helpers import FakeContext, run_program


def lanes(ctx, reg, n):
    return ctx.regs.read_lanes(reg, n).tolist()


class TestMovesAndAlu:
    def test_mov_imm_broadcast(self):
        ctx = run_program("mov.4.dw vr1 = 7\nend")
        assert lanes(ctx, 1, 4) == [7.0] * 4

    def test_bcast(self):
        ctx = FakeContext()
        ctx.regs.write_scalar(2, 3.5)
        run_program("bcast.8.f vr1 = vr2\nend", ctx=ctx)
        assert lanes(ctx, 1, 8) == [3.5] * 8

    def test_iota(self):
        ctx = run_program("iota.8.f vr1\nend")
        assert lanes(ctx, 1, 8) == list(map(float, range(8)))

    def test_add_sub_mul(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([1.0, 2.0, 3.0, 4.0]))
        ctx.regs.write_lanes(2, np.array([10.0, 20.0, 30.0, 40.0]))
        run_program("""
            add.4.dw vr3 = vr1, vr2
            sub.4.dw vr4 = vr2, vr1
            mul.4.dw vr5 = vr1, vr2
            end
        """, ctx=ctx)
        assert lanes(ctx, 3, 4) == [11.0, 22.0, 33.0, 44.0]
        assert lanes(ctx, 4, 4) == [9.0, 18.0, 27.0, 36.0]
        assert lanes(ctx, 5, 4) == [10.0, 40.0, 90.0, 160.0]

    def test_mad(self):
        ctx = run_program("""
            mov.4.f vr1 = 3
            mov.4.f vr2 = 4
            mov.4.f vr3 = 5
            mad.4.f vr4 = vr1, vr2, vr3
            end
        """)
        assert lanes(ctx, 4, 4) == [17.0] * 4

    def test_min_max_abs(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([-3.0, 5.0]))
        run_program("""
            min.2.dw vr2 = vr1, 0
            max.2.dw vr3 = vr1, 0
            abs.2.dw vr4 = vr1
            end
        """, ctx=ctx)
        assert lanes(ctx, 2, 2) == [-3.0, 0.0]
        assert lanes(ctx, 3, 2) == [0.0, 5.0]
        assert lanes(ctx, 4, 2) == [3.0, 5.0]

    def test_avg_rounds_up_for_integers(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([1.0, 2.0]))
        ctx.regs.write_lanes(2, np.array([2.0, 2.0]))
        run_program("avg.2.uw vr3 = vr1, vr2\nend", ctx=ctx)
        assert lanes(ctx, 3, 2) == [2.0, 2.0]  # (1+2+1)>>1 = 2

    def test_avg_float_is_exact_mean(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([1.0]))
        ctx.regs.write_lanes(2, np.array([2.0]))
        run_program("avg.1.f vr3 = vr1, vr2\nend", ctx=ctx)
        assert lanes(ctx, 3, 1) == [1.5]

    def test_shifts(self):
        ctx = run_program("""
            mov.1.dw vr1 = 5
            shl.1.dw vr2 = vr1, 3
            shr.1.dw vr3 = vr2, 2
            end
        """)
        assert ctx.regs.read_scalar(2) == 40.0
        assert ctx.regs.read_scalar(3) == 10.0

    def test_bitwise(self):
        ctx = run_program("""
            mov.1.udw vr1 = 12
            mov.1.udw vr2 = 10
            and.1.udw vr3 = vr1, vr2
            or.1.udw vr4 = vr1, vr2
            xor.1.udw vr5 = vr1, vr2
            not.1.ub vr6 = vr1
            end
        """)
        assert ctx.regs.read_scalar(3) == 8.0
        assert ctx.regs.read_scalar(4) == 14.0
        assert ctx.regs.read_scalar(5) == 6.0
        assert ctx.regs.read_scalar(6) == 243.0  # ~12 & 0xff

    def test_div_truncates_integers(self):
        ctx = run_program("mov.1.dw vr1 = 17\ndiv.1.dw vr2 = vr1, 5\nend")
        assert ctx.regs.read_scalar(2) == 3.0

    def test_cvt_applies_target_type(self):
        ctx = run_program("mov.1.dw vr1 = 300\ncvt.1.ub vr2 = vr1\nend")
        assert ctx.regs.read_scalar(2) == 44.0

    def test_hadd_hmax(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.arange(8.0))
        run_program("hadd.8.f vr2 = vr1\nhmax.8.f vr3 = vr1\nend", ctx=ctx)
        assert ctx.regs.read_scalar(2) == 28.0
        assert ctx.regs.read_scalar(3) == 7.0

    def test_ilv_interleaves(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([0.0, 2.0, 4.0, 6.0]))
        ctx.regs.write_lanes(2, np.array([1.0, 3.0, 5.0, 7.0]))
        run_program("ilv.8.f vr3 = vr1, vr2\nend", ctx=ctx)
        assert lanes(ctx, 3, 8) == list(map(float, range(8)))

    def test_ilv_odd_width_faults(self):
        with pytest.raises(ExecutionFault, match="even"):
            run_program("ilv.3.f vr3 = vr1, vr2\nend")

    def test_integer_wraparound_on_writeback(self):
        ctx = run_program("mov.1.ub vr1 = 250\nadd.1.ub vr2 = vr1, 10\nend")
        assert ctx.regs.read_scalar(2) == 4.0


class TestPredication:
    def test_cmp_writes_mask(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([1.0, 5.0, 3.0, 9.0]))
        run_program("cmp.gt.4.dw p1 = vr1, 3\nend", ctx=ctx)
        assert ctx.regs.read_pred(1, 4).tolist() == [False, True, False, True]

    def test_guarded_alu_merges(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([1.0, 2.0, 3.0, 4.0]))
        ctx.regs.write_pred(1, np.array([True, False, True, False]))
        run_program("(p1) add.4.dw vr1 = vr1, 10\nend", ctx=ctx)
        assert lanes(ctx, 1, 4) == [11.0, 2.0, 13.0, 4.0]

    def test_negated_guard(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([1.0, 2.0]))
        ctx.regs.write_pred(1, np.array([True, False]))
        run_program("(!p1) add.2.dw vr1 = vr1, 10\nend", ctx=ctx)
        assert lanes(ctx, 1, 2) == [1.0, 12.0]

    def test_sel(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([1.0, 2.0, 3.0]))
        ctx.regs.write_lanes(2, np.array([9.0, 8.0, 7.0]))
        ctx.regs.write_pred(2, np.array([True, False, True]))
        run_program("sel.3.f vr3 = p2, vr1, vr2\nend", ctx=ctx)
        assert lanes(ctx, 3, 3) == [1.0, 8.0, 3.0]

    def test_guarded_store_read_modify_write(self):
        surfaces = {"S": np.zeros(4)}
        ctx = FakeContext(surfaces=surfaces)
        ctx.regs.write_lanes(1, np.array([5.0, 6.0, 7.0, 8.0]))
        ctx.regs.write_pred(1, np.array([True, False, False, True]))
        run_program("(p1) st.4.dw (S, 0, 0) = vr1\nend", ctx=ctx)
        assert ctx.surfaces["S"].tolist() == [5.0, 0.0, 0.0, 8.0]


class TestControlFlow:
    def test_loop_executes_expected_iterations(self):
        ctx = run_program("""
            mov.1.dw vr1 = 0
            mov.1.dw vr2 = 0
        loop:
            add.1.dw vr2 = vr2, 5
            add.1.dw vr1 = vr1, 1
            cmp.lt.1.dw p1 = vr1, 4
            br p1, loop
            end
        """)
        assert ctx.regs.read_scalar(2) == 20.0

    def test_jmp_skips(self):
        ctx = run_program("""
            jmp skip
            mov.1.dw vr1 = 99
        skip:
            mov.1.dw vr2 = 1
            end
        """)
        assert ctx.regs.read_scalar(1) == 0.0
        assert ctx.regs.read_scalar(2) == 1.0

    def test_negated_branch(self):
        ctx = run_program("""
            cmp.eq.1.dw p1 = vr1, 99
            (!p1) br p1, out
            mov.1.dw vr2 = 42
        out:
            end
        """)
        # p1 is false, negated guard -> branch taken, mov skipped
        assert ctx.regs.read_scalar(2) == 0.0


class TestMemory:
    def test_ld_st_linear(self):
        ctx = run_program("""
            ld.4.dw [vr1..vr4] = (S, 2, 1)
            add.4.dw [vr5..vr8] = [vr1..vr4], 1
            st.4.dw (S, 0, 0) = [vr5..vr8]
            end
        """, surfaces={"S": np.arange(10.0)})
        # loaded S[3..7), stored +1 into S[0..4)
        assert ctx.surfaces["S"][:4].tolist() == [4.0, 5.0, 6.0, 7.0]

    def test_ld_index_from_symbol(self):
        ctx = run_program("ld.2.dw vr1 = (S, i, 0)\nend",
                          bindings={"i": 3},
                          surfaces={"S": np.arange(8.0)})
        assert lanes(ctx, 1, 2) == [3.0, 4.0]

    def test_block_roundtrip(self):
        img = np.arange(24.0).reshape(4, 6)
        ctx = run_program("""
            ldblk.3x2.ub [vr1..vr1] = (IMG, 1, 1)
            stblk.3x2.ub (IMG, 0, 0) = [vr1..vr1]
            end
        """, surfaces={"IMG": img.copy()})
        assert ctx.surfaces["IMG"][0, :3].tolist() == [7.0, 8.0, 9.0]
        assert ctx.surfaces["IMG"][1, :3].tolist() == [13.0, 14.0, 15.0]

    def test_sample(self):
        img = np.array([[0.0, 10.0], [20.0, 30.0]])
        ctx = FakeContext(surfaces={"T": img})
        ctx.regs.write_lanes(1, np.array([0.5]))
        ctx.regs.write_lanes(2, np.array([0.5]))
        run_program("sample.1.f vr3 = (T, vr1, vr2)\nend", ctx=ctx)
        assert ctx.regs.read_scalar(3) == 15.0

    def test_sendreg_and_spawn(self):
        ctx = run_program("""
            mov.1.dw vr1 = 7
            mov.1.dw vr2 = 42
            sendreg.1.dw (vr1, vr30) = vr2
            spawn vr2
            end
        """)
        assert ctx.sent[0][0] == 7 and ctx.sent[0][1] == 30
        assert ctx.sent[0][2].tolist() == [42.0]
        assert ctx.spawned == [42.0]

    def test_flush(self):
        ctx = run_program("flush\nend")
        assert ctx.flushes == 1


class TestFaults:
    def test_divide_by_zero(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([4.0, 8.0]))
        ctx.regs.write_lanes(2, np.array([2.0, 0.0]))
        with pytest.raises(DivideByZeroFault) as info:
            run_program("div.2.dw vr3 = vr1, vr2\nend", ctx=ctx)
        assert info.value.lane == 1

    def test_double_precision_faults_on_exo(self):
        ctx = FakeContext()
        with pytest.raises(UnsupportedOperationFault, match="double"):
            run_program("add.2.df vr1 = vr1, vr2\nend", ctx=ctx)

    def test_double_precision_moves_allowed(self):
        # moves don't touch the FP datapath even at .df
        run_program("mov.2.df vr1 = vr2\nend")

    def test_double_precision_allowed_in_proxy(self):
        ctx = FakeContext()
        ctx.supports_double = True
        run_program("add.2.df vr1 = vr1, vr2\nend", ctx=ctx)

    def test_float_overflow_faults(self):
        ctx = FakeContext()
        ctx.regs.write_lanes(1, np.array([3e38]))
        ctx.regs.write_lanes(2, np.array([3e38]))
        with pytest.raises(FpOverflowFault):
            run_program("add.1.f vr3 = vr1, vr2\nend", ctx=ctx)

    def test_unbound_symbol_faults(self):
        with pytest.raises(ExecutionFault, match="unbound symbol"):
            run_program("mov.1.dw vr1 = missing\nend")


@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=2, max_size=16),
       st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=2, max_size=16))
def test_add_matches_numpy(a, b):
    n = min(len(a), len(b))
    ctx = FakeContext()
    ctx.regs.write_lanes(1, np.array(a[:n], dtype=np.float64))
    ctx.regs.write_lanes(2, np.array(b[:n], dtype=np.float64))
    run_program(f"add.{n}.dw vr3 = vr1, vr2\nend", ctx=ctx)
    expected = np.array(a[:n]) + np.array(b[:n])
    assert ctx.regs.read_lanes(3, n).tolist() == expected.tolist()


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255))
def test_avg_matches_rounding_formula(x, y):
    ctx = FakeContext()
    ctx.regs.write_lanes(1, np.array([float(x)]))
    ctx.regs.write_lanes(2, np.array([float(y)]))
    run_program("avg.1.uw vr3 = vr1, vr2\nend", ctx=ctx)
    assert ctx.regs.read_scalar(3) == (x + y + 1) // 2
