"""The program predecode cache: classification, keying, invalidation."""

from __future__ import annotations

import gc

from repro.isa import predecode
from repro.isa.assembler import assemble


def _program(asm: str, name: str = "predecode-test"):
    return assemble(asm, name=name)


def test_batch_classes():
    program = _program("""
    iota.16.f vr1
    mov.1.dw vr2 = 0
    ld.16.f vr3 = (IN, vr2, 0)
    cmp.lt.1.dw p1 = vr2, n
    br p1, done
    done:
    end
    """)
    pre = predecode.predecode_program(program)
    classes = [p.batch_class for p in pre.instrs]
    assert classes == [predecode.BATCH_ALU, predecode.BATCH_ALU,
                       predecode.BATCH_MEM, predecode.BATCH_ALU,
                       predecode.BATCH_CONTROL, predecode.BATCH_CONTROL]
    assert pre.gangable


def test_memory_batchability():
    """Regular loads/stores gang; shapes the lockstep step can't honor
    bit-identically stay per-shred."""
    batchable = _program("""
    mov.1.dw vr2 = 0
    ld.16.f vr3 = (IN, vr2, 0)
    st.16.f (OUT, vr2, 0) = vr3
    ldblk.4x4.f [vr4..vr4] = (IN, vr1, vr2)
    sample.16.f vr5 = (TEX, vr6, vr7)
    end
    """)
    pre = predecode.predecode_program(batchable)
    for slot in pre.instrs[1:-1]:
        assert slot.batch_class == predecode.BATCH_MEM
    # sample.df has no DF sampler path: it must fault through the
    # per-shred reference step so the CEH event stays identical
    df = _program("sample.16.df vr5 = (TEX, vr6, vr7)\nend\n")
    pre_df = predecode.predecode_program(df)
    assert pre_df.instrs[0].batch_class == predecode.BATCH_PER_SHRED


def test_branch_targets_resolved():
    program = _program("""
    mov.1.dw vr1 = 0
    loop:
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p1 = vr1, n
    br p1, loop
    end
    """)
    pre = predecode.predecode_program(program)
    br = pre.instrs[3]
    assert br.batch_class == predecode.BATCH_CONTROL
    assert br.target == program.labels["loop"] == 1


def test_sendreg_poisons_gangability():
    program = _program("sendreg.1.dw (vr3, vr7) = vr5\nend\n")
    pre = predecode.predecode_program(program)
    assert not pre.gangable
    assert "sendreg" in pre.reason
    # spawn merely peels; the program stays gangable
    spawning = predecode.predecode_program(_program("spawn 0\nend\n"))
    assert spawning.gangable
    assert spawning.instrs[0].batch_class == predecode.BATCH_PEEL


def test_cache_hits_misses_and_eviction():
    cache = predecode.PredecodeCache()
    program = _program("iota.16.f vr1\nend\n")
    first = cache.lookup(program)
    again = cache.lookup(program)
    assert first is again
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == 0.5
    assert len(cache) == 1
    del program
    gc.collect()
    assert len(cache) == 0  # weakref eviction, no strong Program refs held
    assert cache.evictions == 1


def test_cache_survives_id_reuse():
    """A new Program landing on a dead program's id() must miss."""
    cache = predecode.PredecodeCache()
    asm = "iota.16.f vr1\nend\n"
    seen = set()
    for _ in range(8):
        program = _program(asm)
        pre = cache.lookup(program)
        assert pre.instrs[0].instr is program.instructions[0]
        seen.add(id(program))
        del program, pre
        gc.collect()
    # every lookup was against a fresh object: all misses, no false hits
    assert cache.hits == 0
    assert cache.misses == 8


def test_process_cache_used_by_execution():
    from repro.exo.shred import ShredDescriptor
    from repro.gma.device import GmaDevice
    from repro.memory.address_space import AddressSpace

    program = _program("iota.16.f vr1\nend\n")
    predecode.CACHE.clear()
    device = GmaDevice(AddressSpace(), engine="gang")
    shreds = [ShredDescriptor(program=program, bindings={})
              for _ in range(4)]
    first = device.run(shreds)
    assert first.predecode_misses == 1
    assert first.predecode_hits >= 1
    second = device.run([ShredDescriptor(program=program, bindings={})
                         for _ in range(4)])
    assert second.predecode_misses == 0
    assert second.predecode_hits >= 1


def test_cache_stats_snapshot():
    cache = predecode.PredecodeCache()
    program = _program("iota.16.f vr1\nend\n")
    cache.lookup(program)
    cache.lookup(program)
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["evictions"] == 0
    assert stats["fused_blocks"] == 0


def test_fused_entries_evict_with_the_program():
    """Compiled blocks ride the predecode entry's lifetime: when the
    program dies, its fused entry must go too (no id-reuse leak)."""
    from repro.gma.fusion import get_fused

    cache = predecode.PredecodeCache()
    program = _program("iota.16.f vr1\nadd.16.f vr2 = vr1, vr1\nend\n")
    pre = cache.lookup(program)

    # store/lookup against a private cache (get_fused uses the process
    # cache, so drive the private one directly with its own compile)
    from repro.isa.blocks import discover_blocks
    from repro.gma.fusion import CompiledBlock, FusedProgram

    blocks = discover_blocks(pre, program.labels)
    fused = FusedProgram({start: CompiledBlock(block, pre)
                          for start, block in blocks.items()})
    cache.store_fused(program, fused)
    assert cache.lookup_fused(program) is fused
    assert cache.stats()["fused_blocks"] == sum(
        1 for _ in fused.blocks)

    del program, pre, fused, blocks
    gc.collect()
    assert len(cache) == 0
    assert cache.stats()["fused_blocks"] == 0  # fused entry evicted too


def test_fused_store_requires_live_predecode_entry():
    """store_fused on an uncached program is a no-op: the fused entry
    would have no eviction anchor."""
    from repro.gma.fusion import FusedProgram

    cache = predecode.PredecodeCache()
    program = _program("iota.16.f vr1\nend\n")
    cache.store_fused(program, FusedProgram({}))
    assert cache.lookup_fused(program) is None


def test_transformed_program_gets_fresh_cache_entry():
    """A schedule transform emits a *new* Program object: the predecode
    cache must key source and transformed programs separately, and
    evicting one must not disturb the other."""
    from repro.isa import transforms

    cache = predecode.PredecodeCache()
    program = _program("""
    mov.16.f vr3 = 0.0
    mov.1.dw vr1 = 0
    loop:
    add.16.f vr3 = vr3, 1.0
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p1 = vr1, 8
    br p1, loop
    end
    """, name="xform-cache")
    unrolled = transforms.unroll(program, "loop", 2)
    assert unrolled is not program

    entry_src = cache.lookup(program)
    entry_new = cache.lookup(unrolled)
    assert entry_new is not entry_src
    assert len(cache) == 2 and cache.misses == 2
    # each entry decodes its own program's instructions, never aliases
    assert entry_src.instrs[0].instr is program.instructions[0]
    assert entry_new.instrs[0].instr is unrolled.instructions[0]

    # evicting the source leaves the transformed entry live and hot
    del program, entry_src
    gc.collect()
    assert len(cache) == 1
    assert cache.lookup(unrolled) is entry_new
    assert cache.hits == 1


def test_transformed_id_reuse_never_aliases():
    """Repeatedly transforming and dropping programs must never produce
    a stale predecode hit on a recycled id()."""
    from repro.isa import transforms

    cache = predecode.PredecodeCache()
    asm = """
    mov.1.dw vr1 = 0
    loop:
    add.16.f vr2 = vr2, 1.0
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p1 = vr1, 8
    br p1, loop
    end
    """
    for factor in (2, 4, 8, 2, 4, 8):
        program = _program(asm, name="xform-reuse")
        unrolled = transforms.unroll(program, "loop", factor)
        pre = cache.lookup(unrolled)
        assert pre.instrs[0].instr is unrolled.instructions[0]
        del program, unrolled, pre
        gc.collect()
    assert cache.hits == 0
    assert cache.misses == 6


def test_fused_id_reuse_never_leaks():
    """A new Program landing on a dead program's id() must not see the
    dead program's compiled blocks."""
    from repro.gma.fusion import get_fused

    asm = "iota.16.f vr1\nend\n"
    predecode.CACHE.clear()
    for _ in range(8):
        program = _program(asm)
        pre = predecode.CACHE.lookup(program)
        fused, compiled = get_fused(program, pre)
        # a stale hit would return the dead program's blocks: compiled
        # would be 0 without this program ever being compiled
        assert compiled == len(fused.blocks)
        del program, pre, fused
        gc.collect()
