"""Instruction scheduler: semantics preserved, latency hidden."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.opcodes import Opcode
from repro.isa.scheduler import (
    estimated_serial_cycles,
    schedule_program,
)
from tests.helpers import FakeContext
from repro.isa import semantics


def run_to_end(program, ctx, max_steps=10000):
    ip = 0
    steps = 0
    while ip < len(program.instructions):
        effect = semantics.execute(program, ip, ctx)
        if effect.ended:
            break
        ip = effect.next_ip if effect.next_ip is not None else ip + 1
        steps += 1
        assert steps < max_steps
    return ctx


def equivalent(source, bindings=None, surfaces=None):
    """Run original and scheduled; assert identical final state."""
    program = assemble(source)
    scheduled = schedule_program(program)
    a = FakeContext(bindings, surfaces)
    b = FakeContext(bindings, surfaces)
    run_to_end(program, a)
    run_to_end(scheduled, b)
    assert np.array_equal(a.regs.snapshot()["v"], b.regs.snapshot()["v"])
    assert np.array_equal(a.regs.snapshot()["p"], b.regs.snapshot()["p"])
    for name in a.surfaces:
        assert np.array_equal(a.surfaces[name], b.surfaces[name]), name
    return program, scheduled


INDEPENDENT_LOADS = """
    ld.4.dw [vr1..vr4] = (S, 0, 0)
    add.4.dw [vr5..vr8] = [vr1..vr4], 1
    ld.4.dw [vr9..vr12] = (S, 4, 0)
    add.4.dw [vr13..vr16] = [vr9..vr12], 2
    ld.4.dw [vr17..vr20] = (S, 8, 0)
    add.4.dw [vr21..vr24] = [vr17..vr20], 3
    end
"""


class TestSemanticPreservation:
    def test_independent_loads(self):
        equivalent(INDEPENDENT_LOADS, surfaces={"S": np.arange(16.0)})

    def test_raw_chain_not_broken(self):
        equivalent("""
            mov.1.dw vr1 = 1
            add.1.dw vr1 = vr1, 1
            add.1.dw vr1 = vr1, 1
            mul.1.dw vr2 = vr1, 10
            end
        """)

    def test_war_and_waw_respected(self):
        equivalent("""
            mov.1.dw vr1 = 5
            mov.1.dw vr2 = vr1
            mov.1.dw vr1 = 9
            mov.1.dw vr3 = vr1
            end
        """)

    def test_predicates_ordered(self):
        equivalent("""
            mov.4.dw vr1 = 3
            cmp.lt.4.dw p1 = vr1, 5
            (p1) add.4.dw vr2 = vr2, 7
            cmp.gt.4.dw p1 = vr1, 0
            (p1) add.4.dw vr3 = vr3, 9
            end
        """)

    def test_guarded_destination_merge_is_a_use(self):
        equivalent("""
            mov.4.dw vr2 = 100
            cmp.lt.4.dw p1 = vr2, 0
            (p1) mov.4.dw vr2 = 1
            add.4.dw vr3 = vr2, 0
            end
        """)

    def test_store_load_ordering_same_surface(self):
        equivalent("""
            ld.1.dw vr1 = (S, 0, 0)
            add.1.dw vr1 = vr1, 1
            st.1.dw (S, 0, 0) = vr1
            ld.1.dw vr2 = (S, 0, 0)
            add.1.dw vr3 = vr2, 1
            st.1.dw (S, 1, 0) = vr3
            end
        """, surfaces={"S": np.zeros(4)})

    def test_loops_and_labels_stable(self):
        program, scheduled = equivalent("""
            mov.1.dw vr1 = 0
            mov.1.dw vr2 = 0
        loop:
            ld.1.dw vr3 = (S, vr1, 0)
            add.1.dw vr2 = vr2, vr3
            add.1.dw vr1 = vr1, 1
            cmp.lt.1.dw p1 = vr1, 4
            br p1, loop
            st.1.dw (S, 0, 0) = vr2
            end
        """, surfaces={"S": np.arange(4.0) + 1})
        assert scheduled.labels == program.labels
        # the backward branch stays the last instruction of its block
        assert scheduled.instructions[6].opcode is Opcode.BR

    def test_barriers_pin_system_ops(self):
        program = assemble("""
            mov.1.dw vr1 = 3
            sendreg.1.dw (vr1, vr9) = vr1
            mov.1.dw vr2 = 4
            fence
            mov.1.dw vr3 = 5
            end
        """)
        scheduled = schedule_program(program)
        ops = [i.opcode for i in scheduled.instructions]
        assert ops.index(Opcode.SENDREG) == 1
        assert ops.index(Opcode.FENCE) == 3

    def test_instruction_multiset_preserved(self):
        program = assemble(INDEPENDENT_LOADS)
        scheduled = schedule_program(program)
        assert sorted(map(str, program.instructions)) == \
            sorted(map(str, scheduled.instructions))


class TestLatencyHiding:
    def test_loads_hoist_above_uses(self):
        program = assemble(INDEPENDENT_LOADS)
        scheduled = schedule_program(program)
        ops = [i.opcode for i in scheduled.instructions]
        # all three loads issue before the first dependent add
        first_add = ops.index(Opcode.ADD)
        assert ops[:first_add].count(Opcode.LD) == 3

    def test_estimated_cycles_improve(self):
        program = assemble(INDEPENDENT_LOADS)
        scheduled = schedule_program(program)
        assert estimated_serial_cycles(scheduled) < \
            estimated_serial_cycles(program)

    def test_single_context_eu_time_improves(self):
        """Ground truth: execute both versions on the device model with
        operand scoreboarding and a single thread context per EU (nothing
        to hide the stalls), then compare replayed timings."""
        from dataclasses import replace

        from repro.exo.shred import ShredDescriptor
        from repro.gma.device import GmaDevice
        from repro.gma.eu import simulate_device
        from repro.gma.timing import GmaTimingConfig
        from repro.isa.types import DataType
        from repro.memory.address_space import AddressSpace
        from repro.memory.surface import Surface

        config = replace(GmaTimingConfig(), threads_per_eu=1,
                         scoreboard=True)

        def cycles_for(program):
            space = AddressSpace()
            device = GmaDevice(space, config=config)
            surf = Surface.alloc(space, "S", 16, 1, DataType.DW)
            surf.upload(space, np.arange(16.0).reshape(1, 16))
            shred = ShredDescriptor(program=program, surfaces={"S": surf})
            result = device.run([shred])
            return simulate_device(result.runs, config).compute_cycles

        base = cycles_for(assemble(INDEPENDENT_LOADS))
        sched = cycles_for(schedule_program(assemble(INDEPENDENT_LOADS)))
        assert sched < base


_SAFE_LINES = st.lists(st.sampled_from([
    "mov.1.dw vr1 = 3",
    "add.1.dw vr2 = vr1, 1",
    "mul.1.dw vr3 = vr2, vr1",
    "ld.1.dw vr4 = (S, 0, 0)",
    "add.1.dw vr5 = vr4, vr3",
    "st.1.dw (S, 1, 0) = vr5",
    "cmp.lt.1.dw p1 = vr2, vr3",
    "(p1) add.1.dw vr6 = vr6, 1",
    "sub.1.dw vr1 = vr6, vr5",
    "ld.2.dw [vr7..vr8] = (S, 2, 0)",
    "st.2.dw (S, 2, 0) = [vr7..vr8]",
]), min_size=1, max_size=14)


@given(_SAFE_LINES)
def test_random_blocks_stay_equivalent(lines):
    source = "\n".join(lines) + "\nend"
    equivalent(source, surfaces={"S": np.arange(8.0)})
