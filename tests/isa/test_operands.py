"""Operand behaviours beyond what the assembler can express."""

import numpy as np
import pytest

from repro.errors import ExecutionFault
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import (
    BlockOperand,
    ImmOperand,
    LabelOperand,
    MemOperand,
    PredOperand,
    RangeOperand,
    RegOperand,
    ShredRegOperand,
    SymOperand,
)
from repro.isa.program import Program
from repro.isa import semantics
from repro.isa.types import DataType
from tests.helpers import FakeContext


class TestReadWriteProtocol:
    def test_immediates_are_not_writable(self):
        ctx = FakeContext()
        with pytest.raises(ExecutionFault, match="not writable"):
            ImmOperand(3.0).write(ctx, np.array([1.0]), DataType.DW)

    def test_labels_are_not_readable(self):
        with pytest.raises(ExecutionFault, match="not readable"):
            LabelOperand("x").read(FakeContext(), 1)

    def test_mem_operand_is_not_directly_readable(self):
        with pytest.raises(ExecutionFault, match="not readable"):
            MemOperand("S", ImmOperand(0), 0).read(FakeContext(), 4)

    def test_sym_read_broadcasts(self):
        ctx = FakeContext(bindings={"k": 2.5})
        assert SymOperand("k").read(ctx, 3).tolist() == [2.5] * 3

    def test_imm_read_broadcasts(self):
        assert ImmOperand(7).read(FakeContext(), 4).tolist() == [7.0] * 4

    def test_pred_read_as_floats(self):
        ctx = FakeContext()
        ctx.regs.write_pred(2, np.array([True, False, True]))
        assert PredOperand(2).read(ctx, 3).tolist() == [1.0, 0.0, 1.0]


class TestRangeDuality:
    def test_per_register_when_width_equals_count(self):
        ctx = FakeContext()
        op = RangeOperand(4, 7)
        op.write(ctx, np.array([1.0, 2.0, 3.0, 4.0]), DataType.DW)
        for i, expected in enumerate([1.0, 2.0, 3.0, 4.0]):
            assert ctx.regs.read_scalar(4 + i) == expected

    def test_packed_when_width_fills_lanes(self):
        ctx = FakeContext()
        op = RangeOperand(4, 5)
        values = np.arange(32.0)
        op.write(ctx, values, DataType.DW)
        assert np.array_equal(op.read(ctx, 32), values)
        assert ctx.regs.read_lanes(4, 16).tolist() == list(map(float,
                                                               range(16)))

    def test_ambiguous_width_faults(self):
        ctx = FakeContext()
        with pytest.raises(ExecutionFault, match="neither"):
            RangeOperand(0, 3).read(ctx, 7)

    def test_element_index_resolution(self):
        ctx = FakeContext(bindings={"i": 3.0})
        mem = MemOperand("S", SymOperand("i"), 10)
        assert mem.element_index(ctx) == 13

    def test_block_coords_resolution(self):
        ctx = FakeContext()
        ctx.regs.write_scalar(1, 5.0)
        blk = BlockOperand("S", RegOperand(1), ImmOperand(2))
        assert blk.coords(ctx) == (5, 2)


class TestHandConstructedInstructions:
    """Malformed instructions the assembler would reject must still fail
    cleanly if they reach execution (e.g. through a buggy decoder)."""

    def _run(self, instr):
        program = Program(name="x", instructions=(instr,))
        return semantics.execute(program, 0, FakeContext(
            surfaces={"S": np.zeros(16)}))

    def test_load_with_register_source(self):
        instr = Instruction(Opcode.LD, 4, DataType.DW,
                            dsts=(RegOperand(1),), srcs=(RegOperand(2),))
        with pytest.raises(ExecutionFault, match="memory operand"):
            self._run(instr)

    def test_store_with_register_target(self):
        instr = Instruction(Opcode.ST, 4, DataType.DW,
                            srcs=(RegOperand(1), RegOperand(2)))
        with pytest.raises(ExecutionFault, match="memory operand"):
            self._run(instr)

    def test_ldblk_without_shape(self):
        instr = Instruction(Opcode.LDBLK, 4, DataType.UB,
                            dsts=(RangeOperand(1, 1),),
                            srcs=(BlockOperand("S", ImmOperand(0),
                                               ImmOperand(0)),))
        with pytest.raises(ExecutionFault, match="WxH"):
            self._run(instr)

    def test_cmp_with_register_destination(self):
        instr = Instruction(Opcode.CMP, 4, DataType.DW,
                            dsts=(RegOperand(1),),
                            srcs=(RegOperand(2), RegOperand(3)))
        from repro.isa.opcodes import Condition

        instr = Instruction(Opcode.CMP, 4, DataType.DW,
                            dsts=(RegOperand(1),),
                            srcs=(RegOperand(2), RegOperand(3)),
                            cond=Condition.LT)
        with pytest.raises(ExecutionFault, match="predicate register"):
            self._run(instr)

    def test_sel_with_non_predicate_selector(self):
        instr = Instruction(Opcode.SEL, 4, DataType.DW,
                            dsts=(RegOperand(1),),
                            srcs=(RegOperand(0), RegOperand(2),
                                  RegOperand(3)))
        with pytest.raises(ExecutionFault, match="predicate register"):
            self._run(instr)

    def test_sendreg_with_plain_operand(self):
        instr = Instruction(Opcode.SENDREG, 1, DataType.DW,
                            srcs=(RegOperand(1), RegOperand(2)))
        with pytest.raises(ExecutionFault, match=r"\(shred, vrN\)"):
            self._run(instr)


class TestGuardedMemory:
    def test_masked_load_merges_lanes(self):
        ctx = FakeContext(surfaces={"S": np.arange(8.0) + 100})
        ctx.regs.write_lanes(1, np.array([1.0, 2.0, 3.0, 4.0]))
        ctx.regs.write_pred(1, np.array([True, False, True, False]))
        from tests.helpers import run_program

        run_program("(p1) ld.4.dw vr1 = (S, 0, 0)\nend", ctx=ctx)
        assert ctx.regs.read_lanes(1, 4).tolist() == [100.0, 2.0, 102.0, 4.0]

    def test_shredreg_string_form(self):
        op = ShredRegOperand(RegOperand(3), 7)
        assert str(op) == "(vr3, vr7)"
