"""Program container: validation, symbol discovery, debug info."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import LabelOperand, RangeOperand, RegOperand
from repro.isa.program import Program
from repro.isa.types import DataType


class TestValidation:
    def test_valid_program_passes(self):
        assemble("add.8.dw [vr1..vr8] = [vr1..vr8], 1\nend").validate()

    def test_undefined_label_rejected(self):
        program = Program(
            name="bad",
            instructions=(
                Instruction(Opcode.JMP, srcs=(LabelOperand("nowhere"),)),
            ),
            labels={},
        )
        with pytest.raises(AssemblyError, match="undefined label"):
            program.validate()

    def test_range_out_of_file(self):
        program = Program(
            name="bad",
            instructions=(
                Instruction(Opcode.MOV, width=8, dtype=DataType.DW,
                            dsts=(RangeOperand(125, 132),),
                            srcs=(RegOperand(0),)),
            ),
        )
        with pytest.raises(AssemblyError, match="out of bounds"):
            program.validate()

    def test_range_width_mismatch(self):
        program = Program(
            name="bad",
            instructions=(
                Instruction(Opcode.MOV, width=8, dtype=DataType.DW,
                            dsts=(RangeOperand(0, 2),),
                            srcs=(RegOperand(0),)),
            ),
        )
        with pytest.raises(AssemblyError, match="packed form"):
            program.validate()

    def test_packed_range_accepted(self):
        # 48 elements in 3 registers: ceil(48/16) == 3
        assemble("add.48.uw [vr1..vr3] = [vr4..vr6], 1\nend").validate()

    def test_wide_single_register_rejected(self):
        with pytest.raises(AssemblyError, match="register range"):
            assemble("add.32.dw vr1 = vr2, vr3\nend")

    def test_hadd_scalar_destination_ok(self):
        assemble("hadd.32.f vr1 = [vr2..vr3]\nend").validate()

    def test_ilv_half_width_sources_ok(self):
        assemble("ilv.32.f [vr1..vr2] = vr3, vr4\nend").validate()


class TestSymbols:
    def test_scalar_symbols_from_all_positions(self):
        program = assemble("""
            ld.1.dw vr1 = (S, i, 2)
            ldblk.2x2.ub [vr2..vr2] = (T, x0, y0)
            mov.1.dw vr3 = k
            sendreg.1.dw (tgt, vr9) = vr3
            end
        """)
        assert program.scalar_symbols() == {"i", "x0", "y0", "k", "tgt"}

    def test_surface_symbols(self):
        program = assemble("""
            ld.1.dw vr1 = (S, 0, 0)
            stblk.2x2.ub (T, 0, 0) = [vr1..vr1]
            sample.1.f vr2 = (U, vr1, vr1)
            end
        """)
        assert program.surface_symbols() == {"S", "T", "U"}

    def test_labels_are_not_symbols(self):
        program = assemble("top:\njmp top\nend")
        assert program.scalar_symbols() == set()


class TestDebugInfo:
    def test_source_line_lookup(self):
        source = "mov.1.dw vr1 = 1\nadd.1.dw vr1 = vr1, 2\nend"
        program = assemble(source)
        assert program.source_line(0) == "mov.1.dw vr1 = 1"
        assert program.source_line(1) == "add.1.dw vr1 = vr1, 2"
        assert program.source_line(99) == ""

    def test_source_line_without_source_text(self):
        program = assemble("nop\nend")
        program.source = ""
        assert program.source_line(0) == "nop"

    def test_target_lookup(self):
        program = assemble("x:\nnop\njmp x\nend")
        assert program.target("x") == 0
        with pytest.raises(AssemblyError, match="undefined"):
            program.target("y")

    def test_len(self):
        assert len(assemble("nop\nnop\nend")) == 3
