"""Assembler: syntax of the paper's listings plus error reporting."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble
from repro.isa.instructions import Predication
from repro.isa.opcodes import Condition, Opcode
from repro.isa.operands import (
    BlockOperand,
    ImmOperand,
    LabelOperand,
    MemOperand,
    PredOperand,
    RangeOperand,
    RegOperand,
    ShredRegOperand,
    SymOperand,
)
from repro.isa.types import DataType

FIGURE6 = """
    shl.1.w vr1 = i, 3
    ld.8.dw [vr2..vr9] = (A, vr1, 0)
    ld.8.dw [vr10..vr17] = (B, vr1, 0)
    add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
    st.8.dw (C, vr1, 0) = [vr18..vr25]
    end
"""


class TestFigure6:
    def test_assembles(self):
        program = assemble(FIGURE6, "vecadd")
        assert len(program) == 6
        ops = [i.opcode for i in program.instructions]
        assert ops == [Opcode.SHL, Opcode.LD, Opcode.LD, Opcode.ADD,
                       Opcode.ST, Opcode.END]

    def test_shl_operands(self):
        instr = assemble(FIGURE6).instructions[0]
        assert instr.width == 1 and instr.dtype is DataType.W
        assert instr.dsts == (RegOperand(1),)
        assert instr.srcs == (SymOperand("i"), ImmOperand(3.0))

    def test_load_memory_operand(self):
        instr = assemble(FIGURE6).instructions[1]
        mem = instr.srcs[0]
        assert isinstance(mem, MemOperand)
        assert mem.surface == "A"
        assert mem.index == RegOperand(1)
        assert mem.offset == 0
        assert instr.dsts == (RangeOperand(2, 9),)

    def test_store_carries_target_as_source(self):
        instr = assemble(FIGURE6).instructions[4]
        assert not instr.dsts
        assert isinstance(instr.srcs[0], MemOperand)
        assert instr.srcs[1] == RangeOperand(18, 25)

    def test_symbols(self):
        program = assemble(FIGURE6)
        assert program.scalar_symbols() == {"i"}
        assert program.surface_symbols() == {"A", "B", "C"}


class TestSyntaxForms:
    def test_labels_and_branches(self):
        program = assemble("""
        top:
            add.1.dw vr1 = vr1, 1
            cmp.lt.1.dw p1 = vr1, 10
            br p1, top
            jmp done
            nop
        done:
            end
        """)
        assert program.labels == {"top": 0, "done": 5}
        br = program.instructions[2]
        assert br.opcode is Opcode.BR
        assert br.pred == Predication(1)
        assert br.srcs[-1] == LabelOperand("top")

    def test_negated_branch_guard(self):
        program = assemble("""
        top:
            (!p2) add.1.dw vr1 = vr1, 1
            jmp top
        """)
        guarded = program.instructions[0]
        assert guarded.pred == Predication(2, negate=True)

    def test_cmp_conditions(self):
        for cond in Condition:
            program = assemble(f"cmp.{cond.value}.8.dw p3 = vr1, vr2\nend")
            instr = program.instructions[0]
            assert instr.cond is cond
            assert instr.dsts == (PredOperand(3),)

    def test_block_shapes(self):
        program = assemble("ldblk.8x6.ub [vr10..vr12] = (SRC, bx, by)\nend")
        instr = program.instructions[0]
        assert instr.block == (8, 6)
        assert instr.width == 48
        blk = instr.srcs[0]
        assert isinstance(blk, BlockOperand)
        assert (blk.surface, blk.x, blk.y) == ("SRC", SymOperand("bx"),
                                               SymOperand("by"))

    def test_sendreg(self):
        program = assemble("sendreg.1.dw (vr3, vr7) = vr5\nend")
        target = program.instructions[0].srcs[0]
        assert isinstance(target, ShredRegOperand)
        assert target.reg == 7
        assert target.target == RegOperand(3)

    def test_iota_and_spawn_and_flush(self):
        program = assemble("iota.16.f vr1\nspawn vr1\nflush\nfence\nend")
        assert [i.opcode for i in program.instructions] == [
            Opcode.IOTA, Opcode.SPAWN, Opcode.FLUSH, Opcode.FENCE, Opcode.END]

    def test_immediates(self):
        program = assemble("mov.1.f vr0 = -2.5\nmov.1.dw vr1 = 0x1f\nend")
        assert program.instructions[0].srcs[0] == ImmOperand(-2.5)
        assert program.instructions[1].srcs[0] == ImmOperand(31.0)

    def test_comments_and_blank_lines(self):
        program = assemble("""
        # full-line comment
            nop       // trailing comment
            nop       ; another style
            end
        """)
        assert len(program) == 3

    def test_mad_three_sources(self):
        program = assemble("mad.16.f vr1 = vr2, 0.5, vr3\nend")
        assert len(program.instructions[0].srcs) == 3

    def test_packed_alu_range(self):
        program = assemble("add.64.uw [vr40..vr43] = [vr10..vr13], 9\nend")
        instr = program.instructions[0]
        assert instr.width == 64
        assert instr.dsts[0] == RangeOperand(40, 43)


class TestErrors:
    @pytest.mark.parametrize("source,fragment", [
        ("bogus.8.dw vr1 = vr2", "unknown opcode"),
        ("add.x.dw vr1 = vr2, vr3", "bad SIMD width"),
        ("add.8.qq vr1 = vr2, vr3", "unknown data type"),
        ("add.8 vr1 = vr2, vr3", "data type suffix"),
        ("add vr1 = vr2, vr3", "requires .width.type"),
        ("add.0.dw vr1 = vr2, vr3", "must be positive"),
        ("end.8.dw", "takes no width"),
        ("add.8.dw vr1, vr2, vr3", "requires '='"),
        ("add.8.dw vr1 = vr2", "takes 2 source"),
        ("add.8.dw = vr2, vr3", "requires a destination"),
        ("cmp.8.dw p1 = vr1, vr2", "unknown cmp condition"),
        ("cmp.zz.8.dw p1 = vr1, vr2", "unknown cmp condition"),
        ("jmp one, two", "exactly one target"),
        ("br vr1, top", "guard must be a predicate"),
        ("ld.8.dw [vr2..vr9] = (A, vr1)", "must be .surface, index, offset."),
        ("ldblk.8x8.ub vr1 = (A, 0)", "must be .surface, x, y."),
        ("sendreg.1.dw (vr1) = vr2", "must be .shred, vrN."),
        ("add.8x8.dw vr1 = vr2, vr3", "does not accept WxH"),
        ("ld.8.dw [vr2..vr9] = (5, vr1, 0)", "surface must be a symbol"),
        ("add.8.dw vr1 = vr2, @3", "cannot parse operand"),
        ("iota.16.f vr1 = vr2", "exactly one destination"),
    ])
    def test_bad_syntax(self, source, fragment):
        with pytest.raises(AssemblyError, match=fragment):
            assemble(source)

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("a:\nnop\na:\nend")

    def test_undefined_branch_target(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble("jmp nowhere\nend")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("nop\nnop\nbogus.1.dw vr1 = vr2\nend")

    def test_register_range_width_mismatch(self):
        with pytest.raises(AssemblyError, match="per-register form"):
            assemble("add.8.dw [vr1..vr4] = [vr5..vr12], 1\nend")

    def test_register_out_of_file(self):
        with pytest.raises(AssemblyError, match="out of"):
            assemble("mov.1.dw vr200 = 0\nend")
