"""Binary encode/decode round trips for fat-binary code sections."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa.assembler import assemble
from repro.isa.encoding import MAGIC, decode_program, encode_program

EXAMPLES = [
    # the Figure 6 listing
    """
        shl.1.w vr1 = i, 3
        ld.8.dw [vr2..vr9] = (A, vr1, 0)
        add.8.dw [vr18..vr25] = [vr2..vr9], [vr2..vr9]
        st.8.dw (C, vr1, 0) = [vr18..vr25]
        end
    """,
    # control flow, predication, labels
    """
    loop:
        (p1) add.16.f vr1 = vr1, 1.5
        cmp.lt.16.f p1 = vr1, 100.0
        br p1, loop
        (!p2) mov.1.dw vr2 = 0
        jmp out
        nop
    out:
        end
    """,
    # blocks, sampler, system ops
    """
        ldblk.8x6.ub [vr10..vr12] = (SRC, bx, by)
        stblk.8x6.ub (DST, bx, by) = [vr10..vr12]
        sample.16.f vr5 = (TEX, vr3, vr4)
        sendreg.4.dw (vr6, vr9) = vr7
        spawn vr1
        iota.16.f vr8
        ilv.32.f [vr20..vr21] = vr8, vr5
        hadd.16.f vr9 = vr8
        sel.16.f vr10 = p3, vr8, vr5
        flush
        fence
        end
    """,
    # every ALU opcode
    """
        mov.8.dw vr1 = vr2
        bcast.16.f vr3 = vr1
        add.8.dw vr1 = vr1, vr2
        sub.8.dw vr1 = vr1, vr2
        mul.8.f vr1 = vr1, vr2
        mad.8.f vr1 = vr1, vr2, vr3
        div.8.dw vr1 = vr1, 3
        min.8.dw vr1 = vr1, vr2
        max.8.dw vr1 = vr1, vr2
        avg.8.uw vr1 = vr1, vr2
        abs.8.dw vr1 = vr1
        shl.8.dw vr1 = vr1, 2
        shr.8.dw vr1 = vr1, 2
        and.8.udw vr1 = vr1, vr2
        or.8.udw vr1 = vr1, vr2
        xor.8.udw vr1 = vr1, vr2
        not.8.udw vr1 = vr1
        cvt.8.ub vr1 = vr2
        hmax.8.f vr4 = vr1
        end
    """,
]


@pytest.mark.parametrize("source", EXAMPLES)
def test_roundtrip_preserves_instructions(source):
    original = assemble(source, "case")
    decoded = decode_program(encode_program(original), "case")
    assert len(decoded) == len(original)
    assert decoded.labels == original.labels
    for a, b in zip(original.instructions, decoded.instructions):
        assert a == b  # dataclass equality covers operands, pred, cond, block


def test_roundtrip_twice_is_stable():
    program = assemble(EXAMPLES[1])
    blob1 = encode_program(program)
    blob2 = encode_program(decode_program(blob1))
    assert blob1 == blob2


def test_bad_magic():
    with pytest.raises(EncodingError, match="bad magic"):
        decode_program(b"NOPE" + b"\x00" * 16)


def test_bad_version():
    blob = bytearray(encode_program(assemble("end")))
    blob[4] = 99
    with pytest.raises(EncodingError, match="version"):
        decode_program(bytes(blob))


def test_magic_constant():
    blob = encode_program(assemble("end"))
    assert blob[:4] == MAGIC


@given(st.lists(st.sampled_from([
    "nop", "end", "fence",
    "mov.1.dw vr1 = 7",
    "add.16.f vr2 = vr3, 1.25",
    "cmp.ge.8.dw p2 = vr1, vr4",
    "ld.4.dw [vr2..vr5] = (S, vr1, -2)",
    "st.4.dw (S, vr1, 8) = [vr2..vr5]",
    "(p1) mul.8.f vr9 = vr9, vr9",
]), min_size=1, max_size=12))
def test_random_instruction_sequences_roundtrip(lines):
    source = "\n".join(lines) + "\nend"
    program = assemble(source)
    decoded = decode_program(encode_program(program))
    assert tuple(decoded.instructions) == tuple(program.instructions)
