"""Data-type semantics: sizes, suffixes and wrap behaviour."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.types import LANE_BYTES, NUM_PREGS, NUM_VREGS, VLEN, DataType


class TestMetadata:
    def test_sizes(self):
        assert DataType.B.size == 1
        assert DataType.UB.size == 1
        assert DataType.W.size == 2
        assert DataType.UW.size == 2
        assert DataType.DW.size == 4
        assert DataType.UDW.size == 4
        assert DataType.F.size == 4
        assert DataType.DF.size == 8

    def test_float_flags(self):
        assert DataType.F.is_float and DataType.DF.is_float
        assert not DataType.DW.is_float
        assert not DataType.UB.is_float

    def test_signedness(self):
        assert DataType.B.is_signed and DataType.DW.is_signed
        assert not DataType.UB.is_signed and not DataType.UW.is_signed
        assert DataType.F.is_signed and DataType.DF.is_signed

    def test_from_suffix_roundtrip(self):
        for ty in DataType:
            assert DataType.from_suffix(ty.value) is ty

    def test_from_suffix_unknown(self):
        with pytest.raises(ValueError, match="unknown data type"):
            DataType.from_suffix("q")

    def test_np_dtypes(self):
        assert DataType.UB.np_dtype == np.uint8
        assert DataType.DW.np_dtype == np.int32
        assert DataType.F.np_dtype == np.float32
        assert DataType.DF.np_dtype == np.float64

    def test_architectural_constants(self):
        assert NUM_VREGS == 128  # "64 to 128 vector registers"
        assert VLEN == 16  # "up to 16 data elements in parallel"
        assert NUM_PREGS == 16
        assert LANE_BYTES == 4


class TestWrap:
    def test_ub_wraps_mod_256(self):
        out = DataType.UB.wrap(np.array([0.0, 255.0, 256.0, 300.0, -1.0]))
        assert out.tolist() == [0.0, 255.0, 0.0, 44.0, 255.0]

    def test_b_two_complement(self):
        out = DataType.B.wrap(np.array([127.0, 128.0, 255.0, -129.0]))
        assert out.tolist() == [127.0, -128.0, -1.0, 127.0]

    def test_w_and_uw(self):
        assert DataType.UW.wrap(np.array([65536.0]))[0] == 0.0
        assert DataType.W.wrap(np.array([32768.0]))[0] == -32768.0
        assert DataType.W.wrap(np.array([-32769.0]))[0] == 32767.0

    def test_dw_wraps(self):
        assert DataType.DW.wrap(np.array([2.0 ** 31]))[0] == -(2.0 ** 31)
        assert DataType.UDW.wrap(np.array([2.0 ** 32]))[0] == 0.0

    def test_integer_truncates_fraction(self):
        out = DataType.DW.wrap(np.array([3.9, -3.9]))
        assert out.tolist() == [3.0, -3.0]

    def test_f_rounds_to_single(self):
        value = 0.1  # not representable in binary32
        wrapped = DataType.F.wrap(np.array([value]))[0]
        assert wrapped == np.float64(np.float32(value))
        assert wrapped != value

    def test_df_passthrough(self):
        values = np.array([0.1, 1e300, -2.5])
        assert np.array_equal(DataType.DF.wrap(values), values)

    @given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    def test_wrap_is_idempotent(self, value):
        for ty in (DataType.B, DataType.UB, DataType.W, DataType.UW,
                   DataType.DW, DataType.UDW):
            once = ty.wrap(np.array([float(value)]))
            twice = ty.wrap(once)
            assert np.array_equal(once, twice)

    @given(st.integers(min_value=0, max_value=255))
    def test_in_range_values_unchanged(self, value):
        assert DataType.UB.wrap(np.array([float(value)]))[0] == value

    @given(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1))
    def test_dw_in_range_unchanged(self, value):
        assert DataType.DW.wrap(np.array([float(value)]))[0] == value

    @given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    def test_wrap_lands_in_range(self, value):
        for ty in (DataType.B, DataType.W, DataType.DW):
            bits = ty.size * 8
            out = ty.wrap(np.array([float(value)]))[0]
            assert -(2 ** (bits - 1)) <= out < 2 ** (bits - 1)
        for ty in (DataType.UB, DataType.UW, DataType.UDW):
            bits = ty.size * 8
            out = ty.wrap(np.array([float(value)]))[0]
            assert 0 <= out < 2 ** bits
