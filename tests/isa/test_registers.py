"""Register file behaviour."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.registers import RegisterFile
from repro.isa.types import NUM_PREGS, NUM_VREGS, VLEN


@pytest.fixture
def regs():
    return RegisterFile()


class TestLanes:
    def test_fresh_file_is_zero(self, regs):
        assert regs.read_lanes(0, VLEN).tolist() == [0.0] * VLEN

    def test_write_read_lanes(self, regs):
        regs.write_lanes(5, np.arange(4.0), lane=2)
        assert regs.read_lanes(5, 4, lane=2).tolist() == [0.0, 1.0, 2.0, 3.0]
        assert regs.read_lanes(5, 2).tolist() == [0.0, 0.0]

    def test_scalar_is_lane_zero(self, regs):
        regs.write_scalar(7, 42.0)
        assert regs.read_scalar(7) == 42.0
        assert regs.read_lanes(7, 1)[0] == 42.0

    def test_lane_overflow(self, regs):
        with pytest.raises(IndexError):
            regs.read_lanes(0, VLEN + 1)
        with pytest.raises(IndexError):
            regs.write_lanes(0, np.zeros(VLEN + 1))

    def test_reg_index_bounds(self, regs):
        with pytest.raises(IndexError):
            regs.read_scalar(NUM_VREGS)
        with pytest.raises(IndexError):
            regs.write_scalar(-1, 0.0)

    def test_custom_dimensions(self):
        small = RegisterFile(num_vregs=4, vlen=2)
        small.write_lanes(3, np.array([1.0, 2.0]))
        assert small.read_lanes(3, 2).tolist() == [1.0, 2.0]
        with pytest.raises(IndexError):
            small.read_scalar(4)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            RegisterFile(num_vregs=0)
        with pytest.raises(ValueError):
            RegisterFile(vlen=0)


class TestRanges:
    def test_range_one_element_per_register(self, regs):
        regs.write_range(2, 9, np.arange(8.0))
        # each named register holds one element in lane 0 (Figure 6 form)
        for i in range(8):
            assert regs.read_scalar(2 + i) == float(i)
        assert regs.read_range(2, 9).tolist() == list(map(float, range(8)))

    def test_range_size_mismatch(self, regs):
        with pytest.raises(ValueError, match="holds 3 elements"):
            regs.write_range(0, 2, np.zeros(4))

    def test_empty_range(self, regs):
        with pytest.raises(IndexError, match="empty register range"):
            regs.read_range(5, 4)

    def test_block_packing(self, regs):
        values = np.arange(40.0)
        regs.write_block(10, values)
        # 40 elements pack 16 lanes per register across 3 registers
        assert regs.read_lanes(10, VLEN).tolist() == list(map(float, range(16)))
        assert regs.read_lanes(11, VLEN).tolist() == list(map(float, range(16, 32)))
        assert regs.read_lanes(12, 8).tolist() == list(map(float, range(32, 40)))
        assert regs.read_block(10, 40).tolist() == values.tolist()

    def test_block_bounds(self, regs):
        with pytest.raises(IndexError):
            regs.write_block(NUM_VREGS - 1, np.zeros(VLEN * 2))


class TestPredicates:
    def test_write_read(self, regs):
        mask = np.array([True, False, True, False])
        regs.write_pred(3, mask)
        assert regs.read_pred(3, 4).tolist() == mask.tolist()
        # lanes beyond the written width are cleared
        assert not regs.read_pred(3, VLEN)[4:].any()

    def test_pred_any(self, regs):
        assert not regs.pred_any(0)
        regs.write_pred(0, np.array([False, True]))
        assert regs.pred_any(0)

    def test_pred_bounds(self, regs):
        with pytest.raises(IndexError):
            regs.read_pred(NUM_PREGS, 1)
        with pytest.raises(IndexError):
            regs.write_pred(0, np.zeros(VLEN + 1, dtype=bool))


class TestLifecycle:
    def test_reset(self, regs):
        regs.write_scalar(1, 5.0)
        regs.write_pred(1, np.array([True]))
        regs.reset()
        assert regs.read_scalar(1) == 0.0
        assert not regs.pred_any(1)

    def test_snapshot_restore(self, regs):
        regs.write_scalar(1, 5.0)
        regs.write_pred(2, np.array([True, True]))
        snap = regs.snapshot()
        regs.write_scalar(1, 9.0)
        regs.write_pred(2, np.array([False]))
        regs.restore(snap)
        assert regs.read_scalar(1) == 5.0
        assert regs.read_pred(2, 2).tolist() == [True, True]

    def test_snapshot_is_a_copy(self, regs):
        snap = regs.snapshot()
        regs.write_scalar(0, 1.0)
        assert snap["v"][0, 0] == 0.0


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          width=32), min_size=1, max_size=VLEN))
def test_lanes_roundtrip(values):
    regs = RegisterFile()
    arr = np.array(values, dtype=np.float64)
    regs.write_lanes(3, arr)
    assert np.array_equal(regs.read_lanes(3, arr.size), arr)


@given(st.integers(min_value=1, max_value=64))
def test_block_roundtrip(count):
    regs = RegisterFile()
    values = np.arange(float(count))
    regs.write_block(20, values)
    assert np.array_equal(regs.read_block(20, count), values)
