"""Differential suite for the schedule-transform layer.

Every primitive runs over all 10 media kernels (the transformed program
must reproduce the numpy reference bit-exactly) plus hand-written
divergent / CEH / spawn scenarios across all four execution engines.
The tuner, the Schedule API and the scheduler-composition property
(satellite: list scheduling after unroll) are covered at the end.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.helpers import run_program

from repro.errors import ReproError
from repro.exo.shred import ShredDescriptor
from repro.gma.device import GmaDevice
from repro.isa import transforms as T
from repro.isa import tuning
from repro.isa.assembler import assemble
from repro.isa.predecode import predecode_program
from repro.isa.scheduler import schedule_program
from repro.isa.types import DataType
from repro.kernels import ALL_KERNELS
from repro.kernels.harness import run_kernel_on_gma
from repro.memory.address_space import AddressSpace
from repro.memory.surface import Surface
from repro.perf import SMOKE_GEOMETRIES

ENGINES = ("scalar", "gang", "fused", "megaop")

#: Specs that exercise every primitive (unroll, split, reorder,
#: stage_mem, replace); a spec that does not apply to a kernel is a
#: documented no-op, which the harness treats as baseline.
ALL_SPECS = ("unroll4", "split2", "reorder", "stage_mem",
             "unroll8+stage_mem", "replace_avg+replace_mad")


def run_engines(program, bindings_list, surfaces_spec=None, inputs=None,
                engines=ENGINES):
    """One launch of ``program`` per engine, each on a fresh device."""
    out = []
    for engine in engines:
        space = AddressSpace()
        device = GmaDevice(space, engine=engine)
        surfaces = {
            name: Surface.alloc(space, name, width, height, DataType.F)
            for name, (width, height) in (surfaces_spec or {}).items()
        }
        for name, image in (inputs or {}).items():
            surfaces[name].upload(space, np.asarray(image))
        shreds = [ShredDescriptor(program=program, bindings=dict(bindings),
                                  surfaces=surfaces)
                  for bindings in bindings_list]
        result = device.run(shreds)
        downloads = {name: surf.download(space)
                     for name, surf in surfaces.items()}
        out.append((result, downloads))
    return out


def assert_engines_identical(runs):
    """Outputs and side-effect counters agree across all engine runs."""
    base_result, base_surfaces = runs[0]
    for result, surfaces in runs[1:]:
        for fieldname in ("shreds_executed", "instructions", "bytes_read",
                          "bytes_written", "atr_events", "ceh_events",
                          "spawned_shreds"):
            assert getattr(result, fieldname) == \
                getattr(base_result, fieldname), fieldname
        assert set(surfaces) == set(base_surfaces)
        for name in surfaces:
            assert np.array_equal(surfaces[name], base_surfaces[name]), name


# -- every primitive over every kernel -------------------------------------------------


@pytest.mark.parametrize("kernel_cls", ALL_KERNELS,
                         ids=[cls.abbrev for cls in ALL_KERNELS])
@pytest.mark.parametrize("spec", ALL_SPECS)
def test_kernel_schedules_match_reference(kernel_cls, spec):
    """A scheduled kernel must still match the numpy reference exactly
    (run_kernel_on_gma raises on the first mismatching pixel) and must
    be byte-identical to the unscheduled run's outputs."""
    kernel = kernel_cls()
    geom = SMOKE_GEOMETRIES[kernel.abbrev]
    baseline = run_kernel_on_gma(kernel, geom, max_frames=1)
    scheduled = run_kernel_on_gma(kernel, geom, max_frames=1, schedule=spec)
    for name in baseline.outputs:
        assert np.array_equal(baseline.outputs[name],
                              scheduled.outputs[name]), name
    # the kernel's observable memory traffic is engine-visible state the
    # transforms may legitimately reshape (merged block ops), but bytes
    # written must be conserved: every output pixel is still written
    assert scheduled.bytes_written == baseline.bytes_written


@pytest.mark.parametrize("kernel_cls", ALL_KERNELS,
                         ids=[cls.abbrev for cls in ALL_KERNELS])
def test_kernel_auto_schedule_verified(kernel_cls):
    """schedule='auto' runs the tuner with the frame-0 verify hook."""
    kernel = kernel_cls()
    geom = SMOKE_GEOMETRIES[kernel.abbrev]
    result = run_kernel_on_gma(kernel, geom, max_frames=1, schedule="auto")
    assert result.verified
    assert result.schedule != ""  # at minimum "baseline"


@pytest.mark.parametrize("engine", ENGINES[1:])
@pytest.mark.parametrize("kernel_cls", [ALL_KERNELS[7], ALL_KERNELS[8]],
                         ids=["BOB", "ADVDI"])
def test_scheduled_kernel_bit_identical_across_engines(kernel_cls, engine):
    """The tuner's pick flows into the gang/fused/megaop tiers unchanged
    and stays bit-identical to the scheduled scalar run."""
    kernel = kernel_cls()
    geom = SMOKE_GEOMETRIES[kernel.abbrev]
    outcomes = {}
    for eng in ("scalar", engine):
        device = GmaDevice(AddressSpace(), engine=eng)
        outcomes[eng] = run_kernel_on_gma(
            kernel, geom, device=device, space=device.space, max_frames=1,
            schedule="auto")
    scalar, other = outcomes["scalar"], outcomes[engine]
    assert scalar.schedule == other.schedule
    for name in scalar.outputs:
        assert np.array_equal(scalar.outputs[name], other.outputs[name])


# -- divergence / CEH / spawn scenarios under transforms -------------------------------


def test_unrolled_divergent_loop_all_engines():
    """Per-shred trip counts diverge; unroll(2) divides both trips, so
    the transformed program is legal for every lane and every engine
    tier must agree with scalar."""
    asm = """
    bcast.16.f vr3 = x
    mov.16.f vr4 = 0.0
    mov.1.dw vr2 = 0
    loop:
    add.16.f vr4 = vr4, vr3
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, iters
    br p1, loop
    mov.1.dw vr5 = base
    st.16.f (OUT, vr5, 0) = vr4
    end
    """
    program = assemble(asm, name="divergent-loop")
    unrolled = T.unroll(program, "loop", 2, bindings={"iters": 8.0})
    assert len(unrolled.instructions) > len(program.instructions)
    bindings = [{"iters": 8.0, "x": float(i), "base": float(16 * i)}
                for i in range(5)]
    bindings += [{"iters": 4.0, "x": float(i + 5), "base": float(16 * (i + 5))}
                 for i in range(3)]
    spec = {"OUT": (16 * 8, 1)}
    baseline = run_engines(program, bindings, spec, engines=("scalar",))
    runs = run_engines(unrolled, bindings, spec)
    assert_engines_identical(runs)
    assert np.array_equal(runs[0][1]["OUT"], baseline[0][1]["OUT"])


def test_unrolled_ceh_faults_all_engines():
    """Division by zero inside an unrolled loop: the CEH proxy fires the
    same number of times on every engine and results agree."""
    asm = """
    bcast.16.f vr1 = d
    mov.16.f vr4 = 4.0
    mov.1.dw vr2 = 0
    loop:
    div.16.f vr3 = vr4, vr1
    add.16.f vr4 = vr4, 1.0
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, 4
    br p1, loop
    mov.1.dw vr5 = base
    st.16.f (OUT, vr5, 0) = vr3
    end
    """
    program = assemble(asm, name="ceh-loop")
    unrolled = T.unroll(program, "loop", 2)
    bindings = [{"d": 0.0 if i in (1, 2) else 2.0, "base": float(16 * i)}
                for i in range(6)]
    spec = {"OUT": (16 * 6, 1)}
    baseline = run_engines(program, bindings, spec, engines=("scalar",))
    runs = run_engines(unrolled, bindings, spec)
    assert_engines_identical(runs)
    assert runs[0][0].ceh_events == baseline[0][0].ceh_events > 0
    assert np.array_equal(runs[0][1]["OUT"], baseline[0][1]["OUT"])


def test_unrolled_spawn_preserves_child_order():
    """SPAWN inside an unrolled loop: children must enter the global
    queue in scalar-identical order on every engine."""
    asm = """
    mov.1.dw vr3 = __spawn_arg
    mov.1.dw vr2 = 0
    cmp.lt.1.dw p2 = vr3, 1
    br p2, done
    loop:
    spawn 0
    add.1.dw vr2 = vr2, 1
    cmp.lt.1.dw p1 = vr2, 4
    br p1, loop
    done:
    end
    """
    program = assemble(asm, name="spawn-loop")
    unrolled = T.unroll(program, "loop", 4)
    # parents carry arg >= 1 and spawn; children get arg 0 and exit
    bindings = [{"__spawn_arg": float(i + 1)} for i in range(4)]
    baseline = run_engines(program, bindings, engines=("scalar",))
    runs = run_engines(unrolled, bindings)
    assert_engines_identical(runs)
    assert runs[0][0].spawned_shreds == baseline[0][0].spawned_shreds == 16


def test_stage_mem_never_crosses_spawn_barrier():
    """SPAWN is an ordering barrier: adjacent-row block loads straddling
    it must not merge."""
    asm = """
    mov.1.dw vr1 = 0
    mov.1.dw vr2 = 1
    ldblk.16x1.f [vr4..vr4] = (IN, vr1, vr1)
    spawn 0
    ldblk.16x1.f [vr5..vr5] = (IN, vr1, vr2)
    end
    """
    program = assemble(asm, name="spawn-barrier")
    assert T.stage_mem(program) is program  # no legal merge


# -- unit tests: the primitives on hand-written programs -------------------------------


LOOP_ASM = """
mov.16.f vr3 = 0.0
mov.1.dw vr1 = 0
loop:
add.16.f vr3 = vr3, 2.0
add.1.dw vr1 = vr1, 1
cmp.lt.1.dw p1 = vr1, 12
br p1, loop
end
"""


def _final_reg(ctx, reg: int):
    return ctx.regs.read_lanes(reg, 16)


def test_find_counted_loops_recognizes_idiom():
    program = assemble(LOOP_ASM, name="loop")
    loops = T.find_counted_loops(program)
    assert len(loops) == 1
    loop = loops[0]
    assert (loop.label, loop.trip, loop.init, loop.step) == ("loop", 12, 0, 1)
    assert loop.innermost and loop.depth == 0


def test_unroll_preserves_results_and_shrinks_branches():
    program = assemble(LOOP_ASM, name="loop")
    unrolled = T.unroll(program, "loop", 4)
    base = run_program(program.source)
    out = run_program(unrolled.source)
    assert np.array_equal(_final_reg(base, 3), _final_reg(out, 3))
    n_br = sum(1 for i in unrolled.instructions if i.opcode.value == "br")
    assert n_br == 1  # still one backedge, but 4 bodies per trip
    assert unrolled.labels != {}  # fresh labels recomputed


def test_unroll_rejects_nondividing_factor():
    program = assemble(LOOP_ASM, name="loop")
    with pytest.raises(T.ScheduleError):
        T.unroll(program, "loop", 5)  # 5 does not divide 12
    with pytest.raises(T.ScheduleError):
        T.unroll(program, "nope", 2)  # no such loop


def test_split_strip_mines_and_preserves_results():
    program = assemble(LOOP_ASM, name="loop")
    split = T.split(program, "loop", 3)
    assert len(T.find_counted_loops(split, None)) >= 1
    base = run_program(program.source)
    out = run_program(split.source)
    assert np.array_equal(_final_reg(base, 3), _final_reg(out, 3))


def test_reorder_is_list_scheduling():
    asm = """
    mov.16.f vr1 = 1.0
    mul.16.f vr2 = vr1, vr1
    mov.16.f vr3 = 3.0
    add.16.f vr4 = vr2, vr1
    end
    """
    program = assemble(asm, name="straight")
    reordered = T.reorder(program)
    assert sorted(str(i) for i in reordered.instructions) == \
        sorted(str(i) for i in program.instructions)
    base, out = run_program(program.source), run_program(reordered.source)
    for reg in (1, 2, 3, 4):
        assert np.array_equal(_final_reg(base, reg), _final_reg(out, reg))


def test_stage_mem_merges_adjacent_rows():
    asm = """
    mov.1.dw vr1 = 0
    mov.1.dw vr2 = 1
    ldblk.16x1.f [vr4..vr4] = (IN, vr1, vr1)
    ldblk.16x1.f [vr5..vr5] = (IN, vr1, vr2)
    add.16.f vr6 = vr4, vr5
    st.16.f (OUT, vr1, 0) = vr6
    end
    """
    program = assemble(asm, name="rows")
    staged = T.stage_mem(program)
    assert staged is not program
    merged = [i for i in staged.instructions
              if i.opcode.value == "ldblk"]
    assert len(merged) == 1 and "16x2" in str(merged[0])
    img = np.arange(64, dtype=np.float64).reshape(4, 16)
    base = run_program(program.source,
                       surfaces={"IN": img, "OUT": np.zeros((1, 16))})
    out = run_program(staged.source,
                      surfaces={"IN": img, "OUT": np.zeros((1, 16))})
    assert np.array_equal(base.surfaces["OUT"], out.surfaces["OUT"])


def test_stage_mem_merges_scalar_ld_chain():
    """Four scalar loads at consecutive offsets become one ld.4; the
    result is observed through memory because dead register state is
    not part of the transform contract (copy forwarding may delete
    writes nothing reads)."""
    asm = """
    mov.1.dw vr1 = 0
    ld.1.f vr4 = (IN, vr1, 0)
    ld.1.f vr5 = (IN, vr1, 1)
    ld.1.f vr6 = (IN, vr1, 2)
    ld.1.f vr7 = (IN, vr1, 3)
    add.1.f vr8 = vr4, vr7
    st.1.f (OUT, vr1, 0) = vr8
    end
    """
    program = assemble(asm, name="ld-chain")
    staged = T.stage_mem(program)
    assert staged is not program
    lds = [i for i in staged.instructions if i.opcode.value == "ld"]
    assert len(lds) == 1 and lds[0].width == 4
    img = np.arange(16, dtype=np.float64)
    base = run_program(program.source,
                       surfaces={"IN": img, "OUT": np.zeros(4)})
    out = run_program(staged.source,
                      surfaces={"IN": img, "OUT": np.zeros(4)})
    assert np.array_equal(base.surfaces["OUT"], out.surfaces["OUT"])


def test_stage_mem_forwards_and_deletes_staging_copies():
    """After block merging, consumers read the staged registers directly
    and the dead copies — plus the address arithmetic whose access was
    absorbed — are deleted, not just bypassed."""
    asm = """
    mov.1.dw vr1 = 0
    mov.1.dw vr2 = 1
    ldblk.16x1.f [vr4..vr4] = (IN, vr1, vr1)
    ldblk.16x1.f [vr7..vr7] = (IN, vr1, vr2)
    add.16.f vr6 = vr4, vr7
    stblk.16x1.f (OUT, vr1, vr1) = [vr6..vr6]
    end
    """
    program = assemble(asm, name="forward")
    staged = T.stage_mem(program)
    movs = [i for i in staged.instructions if i.opcode.value == "mov"]
    # non-contiguous destinations force the staged path; the two copies
    # died after forwarding, and so did the vr2 = 1 row index whose
    # only consumer was the merged-away ldblk
    assert len(movs) == 1 and movs[0].width == 1
    adds = [i for i in staged.instructions if i.opcode.value == "add"]
    used = {str(op) for i in adds for op in i.srcs}
    assert not used & {"vr4", "vr7"}  # consumers read the staged regs
    img = np.arange(32, dtype=np.float64).reshape(2, 16)
    base = run_program(program.source,
                       surfaces={"IN": img, "OUT": np.zeros((1, 16))})
    out = run_program(staged.source,
                      surfaces={"IN": img, "OUT": np.zeros((1, 16))})
    assert np.array_equal(base.surfaces["OUT"], out.surfaces["OUT"])


def test_replace_avg_idiom():
    asm = """
    mov.16.uw vr1 = 10
    mov.16.uw vr2 = 13
    add.16.uw vr3 = vr1, vr2
    add.16.uw vr3 = vr3, 1
    shr.16.uw vr4 = vr3, 1
    end
    """
    program = assemble(asm, name="avg-idiom")
    replaced = T.replace(program, "avg")
    assert any(i.opcode.value == "avg" for i in replaced.instructions)
    base, out = run_program(program.source), run_program(replaced.source)
    assert np.array_equal(base.regs.read_lanes(4, 16),
                          out.regs.read_lanes(4, 16))


def test_replace_mad_is_integer_only():
    """Float mul+add must NOT fuse (mad rounds once, mul+add twice)."""
    int_asm = """
    mov.16.dw vr1 = 3
    mov.16.dw vr2 = 5
    mul.16.dw vr3 = vr1, vr2
    add.16.dw vr4 = vr3, vr1
    end
    """
    float_asm = int_asm.replace(".dw", ".f")
    assert any(i.opcode.value == "mad"
               for i in T.replace(assemble(int_asm, name="i"),
                                  "mad").instructions)
    float_prog = assemble(float_asm, name="f")
    assert T.replace(float_prog, "mad") is float_prog


def test_transforms_return_fresh_programs():
    program = assemble(LOOP_ASM, name="loop")
    unrolled = T.unroll(program, "loop", 2)
    assert unrolled is not program
    assert unrolled.source != program.source
    # the new source round-trips through the assembler
    again = assemble(unrolled.source, name="again")
    assert [str(i) for i in again.instructions] == \
        [str(i) for i in unrolled.instructions]


# -- satellite: list scheduler composed after unroll -----------------------------------


def test_scheduler_composes_after_unroll():
    """Block-local reordering of an unrolled body preserves labels,
    reconvergence ipdoms and bit-identical outputs."""
    asm = """
    bcast.16.f vr3 = x
    mov.16.f vr4 = 0.0
    mov.1.dw vr1 = 0
    loop:
    mul.16.f vr5 = vr3, vr3
    add.16.f vr4 = vr4, vr5
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p1 = vr1, 8
    br p1, loop
    cmp.gt.1.dw p2 = vr4, 100
    br p2, big
    mov.1.dw vr6 = 0
    jmp join
    big:
    mov.1.dw vr6 = 1
    join:
    mov.1.dw vr7 = base
    st.16.f (OUT, vr7, 0) = vr4
    end
    """
    program = assemble(asm, name="compose")
    unrolled = T.unroll(program, "loop", 4)
    scheduled = schedule_program(unrolled)
    assert scheduled.labels == unrolled.labels

    def reconv_by_target(program):
        """branch-target label -> reconvergence ip, from predecode."""
        pre = predecode_program(program)
        out = {}
        for ip, slot in enumerate(pre.instrs):
            reconv = getattr(slot, "reconv", None)
            if reconv is not None:
                out[program.instructions[ip].srcs[-1].name] = reconv
        return out

    div_u = reconv_by_target(unrolled)
    div_s = reconv_by_target(scheduled)
    assert set(div_u) == set(div_s) != set()
    for label in div_u:
        # same reconvergence *point* (ips shift with reordering; the
        # label map gives the stable anchor)
        anchors_u = {lbl for lbl, ip in unrolled.labels.items()
                     if ip == div_u[label]}
        anchors_s = {lbl for lbl, ip in scheduled.labels.items()
                     if ip == div_s[label]}
        assert anchors_u == anchors_s

    bindings = [{"x": float(i), "base": float(16 * i)} for i in range(4)]
    spec = {"OUT": (64, 1)}
    base = run_engines(program, bindings, spec, engines=("scalar",))
    for candidate in (unrolled, scheduled):
        runs = run_engines(candidate, bindings, spec)
        assert_engines_identical(runs)
        assert np.array_equal(runs[0][1]["OUT"], base[0][1]["OUT"])


# -- the Schedule API and the tuner ----------------------------------------------------


def test_parse_schedule_round_trips():
    schedule = T.parse_schedule("unroll4+stage_mem+reorder")
    assert schedule.describe() == "unroll4+stage_mem+reorder"
    assert T.parse_schedule("baseline") == T.BASELINE
    assert T.parse_schedule("").describe() == "baseline"
    with pytest.raises(T.ScheduleError):
        T.parse_schedule("frobnicate")


def test_apply_schedule_noop_returns_same_object():
    program = assemble("iota.16.f vr1\nend\n", name="flat")
    assert T.apply_schedule(program, T.BASELINE) is program
    # stage_mem has nothing to do on a memless program
    assert T.apply_schedule(program, T.Schedule().stage_mem()) is program


def test_tuner_picks_and_caches():
    tuning.clear_cache()
    program = assemble(LOOP_ASM, name="tune-loop")
    first = tuning.tune_program(program)
    assert first.trials > 0 and not first.cached
    assert first.cost <= first.baseline_cost
    second = tuning.tune_program(program)
    assert second.cached and second.trials == 0
    assert second.program is first.program
    assert second.spec == first.spec


def test_tuner_verifier_can_veto_every_candidate():
    tuning.clear_cache()
    program = assemble(LOOP_ASM, name="veto-loop")
    result = tuning.tune_program(program, verifier=lambda p: False,
                                 use_cache=False)
    assert result.spec == "baseline"
    assert result.program is program


def test_tuner_cost_model_weights_loops():
    flat = assemble("add.16.f vr1 = vr1, vr1\nend\n", name="flat")
    loop = assemble(LOOP_ASM, name="loop")
    assert tuning.estimated_program_cost(loop) > \
        tuning.estimated_program_cost(flat)
    # an unrolled loop estimates cheaper: fewer cmp/br per element
    unrolled = T.unroll(loop, "loop", 4)
    assert tuning.estimated_program_cost(unrolled) < \
        tuning.estimated_program_cost(loop)


def test_resolve_schedule_rejects_garbage():
    program = assemble(LOOP_ASM, name="loop")
    with pytest.raises(ReproError):
        tuning.resolve_schedule(program, 42)
