"""Basic-block discovery: leaders, terminators, boundaries, edge shapes."""

from __future__ import annotations

from repro.isa import predecode
from repro.isa.assembler import assemble
from repro.isa.blocks import discover_blocks
from repro.isa.program import Program


def blocks_for(asm: str, name: str = "blocks-test"):
    program = assemble(asm, name=name)
    pre = predecode.lookup(program)
    return program, discover_blocks(pre, program.labels)


class TestStraightLine:
    def test_single_block_ending_in_end(self):
        _, blocks = blocks_for("""
        iota.16.f vr1
        add.16.f vr2 = vr1, vr1
        end
        """)
        assert set(blocks) == {0}
        block = blocks[0]
        assert (block.start, block.end) == (0, 3)
        assert block.body_len == 2
        assert block.term == 2
        assert block.ninstr == 3

    def test_memory_op_is_a_boundary(self):
        """A store splits the region; the per-instruction loop owns its
        ip, and the fall-through is a new leader."""
        _, blocks = blocks_for("""
        iota.16.f vr1
        st.16.f (OUT, 0, 0) = vr1
        add.16.f vr2 = vr1, vr1
        end
        """)
        assert set(blocks) == {0, 2}
        assert blocks[0] == type(blocks[0])(start=0, end=1, body_len=1)
        assert blocks[0].term is None  # stopped at the boundary
        assert blocks[2].term == 3

    def test_nop_and_fence_fuse_into_the_body(self):
        _, blocks = blocks_for("""
        iota.16.f vr1
        nop
        fence
        add.16.f vr2 = vr1, vr1
        end
        """)
        assert set(blocks) == {0}
        assert blocks[0].body_len == 4
        assert blocks[0].ninstr == 5


class TestBranches:
    def test_backward_branch_targets_are_leaders(self):
        program, blocks = blocks_for("""
        mov.1.dw vr2 = 0
        loop:
        add.1.dw vr2 = vr2, 1
        cmp.lt.1.dw p1 = vr2, iters
        br p1, loop
        end
        """)
        loop_ip = program.labels["loop"]
        assert loop_ip in blocks
        loop_block = blocks[loop_ip]
        assert loop_block.term == 3  # the br
        assert loop_block.body_len == 2
        # the entry block stops at the loop leader, without a terminator
        assert blocks[0].end == loop_ip
        assert blocks[0].term is None
        # the branch fall-through (the end) is its own block
        assert blocks[4].term == 4
        assert blocks[4].body_len == 0

    def test_self_loop_block(self):
        """A label on its own branch: a block that is just a terminator."""
        program, blocks = blocks_for("""
        mov.1.dw vr2 = 0
        loop:
        br p1, loop
        end
        """)
        loop_ip = program.labels["loop"]
        block = blocks[loop_ip]
        assert block.body_len == 0
        assert block.term == loop_ip
        assert block.ninstr == 1

    def test_unreachable_code_after_jmp_still_gets_a_block(self):
        """Block discovery is static: code after an unconditional jmp is
        a block too (its leader is the jmp's fall-through)."""
        _, blocks = blocks_for("""
        jmp out
        add.16.f vr2 = vr1, vr1
        out:
        end
        """)
        assert 1 in blocks  # the unreachable add
        assert blocks[1].body_len == 1
        assert blocks[2].term == 2

    def test_label_at_end(self):
        """A label pointing at the final end instruction."""
        program, blocks = blocks_for("""
        cmp.gt.1.dw p1 = a, 0
        br p1, done
        add.16.f vr2 = vr1, vr1
        done:
        end
        """)
        done_ip = program.labels["done"]
        assert blocks[done_ip].term == done_ip
        assert blocks[done_ip].body_len == 0


class TestEdgeShapes:
    def test_empty_program(self):
        program = Program(name="empty", instructions=(), labels={})
        pre = predecode.lookup(program)
        assert discover_blocks(pre, program.labels) == {}

    def test_boundary_at_leader_records_no_block(self):
        """A block that would be empty (boundary at its own leader) is
        not recorded; the per-instruction loop owns that ip."""
        _, blocks = blocks_for("""
        st.16.f (OUT, 0, 0) = vr1
        end
        """)
        assert 0 not in blocks
        assert blocks[1].term == 1

    def test_every_block_is_disjoint_and_covers_fusable_ips(self):
        program, blocks = blocks_for("""
        iota.16.f vr1
        mov.1.dw vr2 = 0
        loop:
        mad.16.f vr3 = vr1, vr1, vr1
        st.16.f (OUT, 0, 0) = vr3
        add.1.dw vr2 = vr2, 1
        cmp.lt.1.dw p1 = vr2, iters
        br p1, loop
        end
        """)
        covered = []
        for block in blocks.values():
            covered.extend(range(block.start, block.end))
        # no ip belongs to two blocks
        assert len(covered) == len(set(covered))
        # blocks never span a leader: each starts at its own key
        for start, block in blocks.items():
            assert block.start == start
            assert block.end > block.start


class TestReconvergence:
    """Immediate post-dominator discovery + region-purity annotation
    (predecode attaches ``reconv`` / ``repackable`` to every divergable
    branch of a gangable program)."""

    def pre_for(self, asm: str):
        program = assemble(asm, name="reconv-test")
        return predecode.lookup(program)

    def test_loop_exit_branch_reconverges_at_fall_through(self):
        pre = self.pre_for("""
        mov.1.dw vr2 = 0
        loop:
        add.16.f vr3 = vr2, vr2
        add.1.dw vr2 = vr2, 1
        cmp.lt.1.dw p1 = vr2, iters
        br p1, loop
        end
        """)
        branch = pre.instrs[4]
        assert branch.reconv == 5          # the `end` after the loop
        assert branch.repackable is True   # body is pure ALU

    def test_diamond_reconverges_at_join(self):
        pre = self.pre_for("""
        cmp.gt.1.dw p1 = vr1, 2
        br p1, other
        add.16.f vr3 = vr1, 1.0
        jmp join
        other:
        add.16.f vr3 = vr1, 2.0
        join:
        mul.16.f vr4 = vr3, vr3
        end
        """)
        branch = pre.instrs[1]
        assert branch.reconv == 5          # the join label's mul
        assert branch.repackable is True

    def test_nested_diamonds_get_their_own_joins(self):
        pre = self.pre_for("""
        cmp.gt.1.dw p1 = vr1, 5
        br p1, big
        cmp.gt.1.dw p2 = vr1, 2
        br p2, mid
        add.16.f vr3 = vr1, 1.0
        jmp ijoin
        mid:
        add.16.f vr3 = vr1, 2.0
        ijoin:
        mul.16.f vr3 = vr3, 2.0
        jmp ojoin
        big:
        add.16.f vr3 = vr1, 3.0
        ojoin:
        add.16.f vr4 = vr3, vr1
        end
        """)
        outer, inner = pre.instrs[1], pre.instrs[3]
        assert inner.reconv == 7           # ijoin's mul
        assert outer.reconv == 10          # ojoin's add
        assert inner.repackable and outer.repackable

    def test_spawn_in_region_defeats_repacking(self):
        pre = self.pre_for("""
        mov.1.dw vr2 = __spawn_arg
        cmp.gt.1.dw p1 = vr2, 0
        br p1, noisy
        add.16.f vr3 = vr2, vr2
        jmp done
        noisy:
        spawn 0
        done:
        end
        """)
        branch = pre.instrs[2]
        assert branch.reconv == 6          # arms still join at `done`
        assert branch.repackable is False  # SPAWN is globally ordered

    def test_arm_that_ends_without_joining_has_no_reconv(self):
        pre = self.pre_for("""
        cmp.gt.1.dw p1 = vr1, 0
        br p1, tail
        end
        tail:
        add.16.f vr3 = vr1, vr1
        end
        """)
        branch = pre.instrs[1]
        assert branch.reconv is None       # no common post-dominator
        assert branch.repackable is False

    def test_memory_in_region_stays_repackable(self):
        """BATCH_MEM effects are lane-local (batched path is already
        order-insensitive); only BATCH_PEEL poisons the region."""
        pre = self.pre_for("""
        iota.16.f vr1
        cmp.gt.1.dw p1 = vr1, 0
        br p1, fast
        st.16.f (OUT, 0, 0) = vr1
        fast:
        end
        """)
        branch = pre.instrs[2]
        assert branch.reconv == 4
        assert branch.repackable is True
