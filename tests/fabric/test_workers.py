"""Cross-process fabric workers: coherence, determinism, crash paths."""

import pickle

import numpy as np
import pytest

from repro.chi import ChiRuntime, ExoPlatform
from repro.errors import FabricError, TlbMiss
from repro.exo.shred import ShredDescriptor
from repro.fabric import FabricRunResult
from repro.fabric.workers import (
    WORKER_SHRED_ID_BASE,
    ProcessGmaFabricDevice,
    ProcessWorkerPool,
)
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.memory.address_space import AddressSpace
from repro.memory.physical import PhysicalMemory
from repro.memory.surface import Surface

SIZE = 16 * 1024 * 1024

KERNEL = """
    mul.1.dw vr1 = tid, 3
    add.1.dw vr2 = vr1, 1
    st.1.dw (OUT, tid, 0) = vr2
    end
"""


@pytest.fixture
def pool():
    physical = PhysicalMemory(size=SIZE, backing="shared")
    space = AddressSpace(physical=physical)
    pool = ProcessWorkerPool(physical, num_workers=2)
    pool.adopt_space(space)
    try:
        yield pool, space
    finally:
        pool.close()
        physical.close()


def _shreds(space, n=32, name="OUT"):
    out = Surface.alloc(space, name, n, 1, DataType.DW)
    program = assemble(KERNEL)
    return out, [ShredDescriptor(program=program, bindings={"tid": i},
                                 surfaces={name: out}) for i in range(n)]


class TestPoolSetup:
    def test_requires_shared_backing(self):
        physical = PhysicalMemory(size=SIZE)  # local
        with pytest.raises(FabricError, match="shared-memory"):
            ProcessWorkerPool(physical, num_workers=1)

    def test_requires_a_worker(self):
        physical = PhysicalMemory(size=SIZE, backing="shared")
        try:
            with pytest.raises(FabricError, match="at least one"):
                ProcessWorkerPool(physical, num_workers=0)
        finally:
            physical.close()

    def test_foreign_space_rejected(self, pool):
        workers, _ = pool
        other = AddressSpace()  # its own local physical
        with pytest.raises(FabricError, match="not backed"):
            workers.adopt_space(other)

    def test_ping(self, pool):
        workers, _ = pool
        assert all(w.ping() for w in workers.workers)


class TestRemoteExecution:
    def test_results_match_kernel_semantics(self, pool):
        workers, space = pool
        out, shreds = _shreds(space, n=64)
        dev = ProcessGmaFabricDevice("gma0", workers.worker_for(0), space,
                                     workers.gma_config)
        report = dev.run_shreds(shreds)
        assert report.shreds == 64
        assert report.worker == "worker0"
        assert report.seconds > 0.0
        got = out.download(space).reshape(-1)
        np.testing.assert_array_equal(got, np.arange(64) * 3 + 1)

    def test_remote_matches_local_bit_for_bit(self, pool):
        workers, space = pool
        out_r, shreds_r = _shreds(space, n=16)
        dev = ProcessGmaFabricDevice("gma0", workers.worker_for(0), space,
                                     workers.gma_config)
        dev.run_shreds(shreds_r)

        local_space = AddressSpace()
        out_l, shreds_l = _shreds(local_space, n=16)
        from repro.gma.device import GmaDevice

        GmaDevice(local_space, config=workers.gma_config).run(shreds_l)
        np.testing.assert_array_equal(out_r.download(space),
                                      out_l.download(local_space))

    def test_spawned_shreds_use_worker_id_band(self, pool):
        workers, space = pool
        out = Surface.alloc(space, "OUT", 2, 1, DataType.DW)
        program = assemble("""
            mov.1.dw vr1 = __spawn_arg
            cmp.eq.1.dw p1 = vr1, 0
            (!p1) jmp child
            st.1.dw (OUT, 0, 0) = 1
            spawn 7
            end
        child:
            st.1.dw (OUT, 1, 0) = vr1
            end
        """)
        shred = ShredDescriptor(program=program,
                                bindings={"__spawn_arg": 0.0},
                                surfaces={"OUT": out})
        worker = workers.worker_for(1)
        report = worker.launch("gma1", space, [shred])
        result = report.results[0]
        assert result.spawned_shreds == 1
        spawned_ids = [run.shred.shred_id for run in result.runs
                       if run.shred.parent_id is not None]
        assert spawned_ids
        assert all(sid >= WORKER_SHRED_ID_BASE for sid in spawned_ids)
        assert out.download(space).reshape(-1).tolist() == [1.0, 7.0]


class TestDescriptorPickling:
    def test_descriptor_round_trip_equality(self, pool):
        """What goes over the pipe is what arrives: every launch-relevant
        field of the descriptor survives pickling bit-for-bit."""
        _, space = pool
        out, shreds = _shreds(space, n=4)
        clones = pickle.loads(pickle.dumps(shreds))
        for orig, clone in zip(shreds, clones):
            assert clone.shred_id == orig.shred_id
            assert clone.parent_id == orig.parent_id
            assert clone.entry == orig.entry
            assert clone.bindings == orig.bindings
            assert clone.depends_on == orig.depends_on
            assert clone.program.name == orig.program.name
            assert clone.program.source == orig.program.source
            assert len(clone.program.instructions) == \
                len(orig.program.instructions)
            for name, surf in orig.surfaces.items():
                csurf = clone.surfaces[name]
                assert (csurf.base, csurf.nbytes) == (surf.base, surf.nbytes)

    def test_pickle_preserves_program_identity_within_batch(self, pool):
        """Gang eligibility needs one program *object* per batch; pickle
        memoization must keep shared identity across a batch's shreds."""
        _, space = pool
        _, shreds = _shreds(space, n=8)
        clones = pickle.loads(pickle.dumps(shreds))
        assert len({id(c.program) for c in clones}) == 1


class TestCrossProcessShootdown:
    def test_free_invalidates_remote_translations(self, pool):
        workers, space = pool
        out, shreds = _shreds(space, n=32)
        worker = workers.worker_for(0)
        dev = ProcessGmaFabricDevice("gma0", worker, space,
                                     workers.gma_config)
        dev.run_shreds(shreds)
        assert worker.translation_count("gma0", space) > 0
        probe = [out.base + 4 * i for i in range(4)]
        worker.probe_gather("gma0", space, probe, np.float32)  # warm: ok

        space.free(out.base)

        # the worker's mirror PTEs, GTT and TLB are gone before free()
        # returned; a stale-translation access now faults remotely
        assert worker.translation_count("gma0", space) == 0
        with pytest.raises(TlbMiss):
            worker.probe_gather("gma0", space, [out.base], np.float32)

    def test_shootdown_only_reaches_workers_that_saw_the_space(self, pool):
        workers, space = pool
        out, shreds = _shreds(space, n=32)
        dev = ProcessGmaFabricDevice("gma0", workers.worker_for(0), space,
                                     workers.gma_config)
        dev.run_shreds(shreds)
        w0, w1 = workers.workers
        assert w0.seen_keys and not w1.seen_keys
        space.free(out.base)  # must not hang on the idle worker


class TestFaultProxy:
    def test_resolve_fault_returns_pte_snapshot(self, pool):
        workers, space = pool
        out = Surface.alloc(space, "OUT", 8, 1, DataType.DW)
        key = workers.space_key(space)
        kind, ptes = workers.resolve_fault(key, [out.base], write=True)
        assert kind == "fault-ok"
        assert ptes  # the page is now mapped parent-side
        assert space.page_table.entry(out.base >> 12)

    def test_resolve_fault_unknown_key(self, pool):
        workers, _ = pool
        kind, payload = workers.resolve_fault(9999, [0x1000], write=False)
        assert kind == "fault-err"
        assert isinstance(payload, FabricError)


class TestStagedLaunchPayloads:
    def test_launches_ride_the_staging_segment(self, pool):
        """Default-size payloads go through shared memory; the pipe
        carries only the control message."""
        workers, space = pool
        _, shreds = _shreds(space, n=32)
        worker = workers.worker_for(0)
        worker.launch("gma0", space, shreds)
        assert worker.staged_launches == 1
        assert worker.piped_launches == 0
        assert workers.staged_launches == 1

    def test_oversized_payload_falls_back_to_pipe(self, pool):
        workers, space = pool
        _, shreds = _shreds(space, n=16)
        worker = workers.worker_for(1)

        class _TinySegment:
            size = 0  # nothing fits: every launch is "oversized"

        staging, worker.staging = worker.staging, _TinySegment()
        try:
            worker.launch("gma1", space, shreds)
        finally:
            worker.staging = staging
        assert worker.piped_launches == 1
        assert worker.staged_launches == 0

    def test_staged_and_piped_results_identical(self, pool):
        workers, space = pool
        out_s, shreds = _shreds(space, n=8, name="OUT")
        worker = workers.worker_for(0)
        staged = worker.launch("gma0", space, shreds[:4])
        staging, worker.staging = worker.staging, None
        try:
            piped = worker.launch("gma0", space, shreds[4:])
        finally:
            worker.staging = staging
        assert staged.results[0].instructions == \
            piped.results[0].instructions

    def test_crashed_worker_staging_is_unlinked(self, pool):
        """``_dead`` marks the worker closed, but ``close()`` must still
        reap the process and unlink the staging segment."""
        from multiprocessing import shared_memory

        workers, space = pool
        worker = workers.worker_for(1)
        name = worker.staging.name
        worker.kill()
        with pytest.raises(FabricError, match="died|closed"):
            worker.ping()
        worker.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)


class TestCrashRobustness:
    def test_killed_worker_raises_fabric_error_not_hang(self, pool):
        workers, space = pool
        _, shreds = _shreds(space, n=8)
        worker = workers.worker_for(1)
        worker.launch("gma1", space, shreds[:2])  # known-good first
        worker.kill()
        with pytest.raises(FabricError, match="died"):
            worker.launch("gma1", space, shreds[2:4])
        # subsequent use stays a clean error, not a broken pipe
        with pytest.raises(FabricError, match="closed"):
            worker.launch("gma1", space, shreds[4:6])

    def test_shootdown_skips_dead_worker(self, pool):
        workers, space = pool
        out, shreds = _shreds(space, n=8)
        worker = workers.worker_for(0)
        dev = ProcessGmaFabricDevice("gma0", worker, space,
                                     workers.gma_config)
        dev.run_shreds(shreds)
        worker.kill()
        space.free(out.base)  # dead worker holds no live translations

    def test_pool_close_is_idempotent(self, pool):
        workers, _ = pool
        workers.close()
        workers.close()


class TestPlatformIntegration:
    def test_fabric_workers_platform_end_to_end(self):
        with ExoPlatform(num_gma_devices=2, fabric_workers=2) as platform:
            rt = ChiRuntime(platform)
            out = Surface.alloc(platform.space, "OUT", 64, 1, DataType.DW)
            region = rt.parallel(KERNEL, num_threads=64,
                                 shared={"OUT": out})
            assert isinstance(region.result, FabricRunResult)
            assert region.result.shreds_executed == 64
            got = out.download(platform.space).reshape(-1)
            np.testing.assert_array_equal(got, np.arange(64) * 3 + 1)
            assert rt.stats.drains_process == 1
            assert rt.stats.drains_parallel == 0
            shreds = rt.stats.device_shreds
            assert shreds["gma0"] + shreds["gma1"] == 64

    def test_platform_close_reaps_segment(self):
        platform = ExoPlatform(fabric_workers=1)
        name = platform.space.physical.shm_name
        assert name is not None
        platform.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)

    def test_platform_close_is_idempotent(self):
        platform = ExoPlatform(fabric_workers=1)
        platform.close()
        platform.close()
