"""ChiRuntime routing parallel constructs through the device fabric."""

import pytest

from repro.chi import ChiRuntime, ExoPlatform
from repro.errors import SchedulingError
from repro.fabric import AdmissionPolicy, FabricRunResult
from repro.gma.firmware import GmaRunResult

KERNEL = """
    mul.1.dw vr1 = tid, 3
    add.1.dw vr2 = vr1, 1
    end
"""


def runtime(**platform_kwargs):
    return ChiRuntime(ExoPlatform(**platform_kwargs))


class TestMultiDeviceRouting:
    def test_single_device_keeps_gma_run_result(self):
        region = runtime().parallel(KERNEL, num_threads=8)
        assert isinstance(region.result, GmaRunResult)
        assert region.result.shreds_executed == 8

    def test_two_devices_split_the_batch(self):
        rt = runtime(num_gma_devices=2)
        region = rt.parallel(KERNEL, num_threads=64)
        assert isinstance(region.result, FabricRunResult)
        assert region.result.shreds_executed == 64
        shreds = rt.stats.device_shreds
        assert shreds["gma0"] + shreds["gma1"] == 64
        # identical devices, identical shreds: the split is balanced
        assert abs(shreds["gma0"] - shreds["gma1"]) <= 2

    def test_two_devices_strictly_faster_than_one(self):
        single = runtime().parallel(KERNEL, num_threads=128)
        dual = runtime(num_gma_devices=2).parallel(KERNEL, num_threads=128)
        assert dual.gma_seconds < single.gma_seconds

    def test_unknown_target_isa(self):
        with pytest.raises(SchedulingError, match="no accelerator"):
            runtime().parallel(KERNEL, num_threads=4, target="SPE")

    def test_per_device_stats_accumulate(self):
        rt = runtime(num_gma_devices=2)
        rt.parallel(KERNEL, num_threads=32)
        rt.parallel(KERNEL, num_threads=32)
        stats = rt.stats
        assert set(stats.device_seconds) == {"gma0", "gma1"}
        assert all(s > 0 for s in stats.device_seconds.values())
        assert sum(stats.device_shreds.values()) == 64
        # regions span their slowest device; per-device busy times sum
        assert stats.gma_seconds <= sum(stats.device_seconds.values())

    def test_timeline_gets_one_span_per_device(self):
        rt = runtime(num_gma_devices=2)
        rt.parallel(KERNEL, num_threads=64)
        labels = {label for _, _, label in rt.timeline.events}
        assert "gma-region:gma0" in labels
        assert "gma-region:gma1" in labels

    def test_single_device_label_unchanged(self):
        rt = runtime()
        rt.parallel(KERNEL, num_threads=8)
        labels = [label for _, _, label in rt.timeline.events]
        assert labels == ["gma-region"]


class TestDependenciesAcrossTheFabric:
    def chain(self, queue, program, length):
        handles = []
        for _ in range(length):
            depends = handles[-1:] if handles else []
            handles.append(queue.task(program, depends=depends))
        return handles

    def test_dependency_chains_stay_on_one_device(self):
        rt = runtime(num_gma_devices=2)
        program = "end"
        with rt.taskq() as q:
            chains = [self.chain(q, program, 3) for _ in range(4)]
        result = q.region.result
        reports = (result.reports if isinstance(result, FabricRunResult)
                   else None)
        assert reports is not None and len(reports) == 2
        located = {run.shred.shred_id: report.device
                   for report in reports
                   for res in report.results for run in res.runs}
        for chain in chains:
            devices = {located[h.shred_id] for h in chain}
            assert len(devices) == 1  # producer and consumers co-located

    def test_both_devices_used_for_independent_chains(self):
        rt = runtime(num_gma_devices=2)
        with rt.taskq() as q:
            for _ in range(6):
                self.chain(q, "end", 2)
        assert set(rt.stats.device_shreds) == {"gma0", "gma1"}


class TestBackpressureThroughTheRuntime:
    def test_overflow_raises_from_parallel(self):
        rt = runtime(queue_depth=4)
        with pytest.raises(SchedulingError, match="overflow on 'gma0'"):
            rt.parallel(KERNEL, num_threads=10)

    def test_block_policy_completes_but_pays(self):
        free = runtime().parallel(KERNEL, num_threads=32)
        blocked = runtime(
            queue_depth=8,
            admission_policy=AdmissionPolicy.BLOCK,
        ).parallel(KERNEL, num_threads=32)
        assert blocked.result.shreds_executed == 32
        assert len(blocked.result.timing.spans) == 32
        # four serialized sub-batch drains cost real simulated time
        assert blocked.gma_seconds > free.gma_seconds

    def test_string_policy_accepted_by_platform(self):
        rt = runtime(queue_depth=8, admission_policy="block")
        region = rt.parallel(KERNEL, num_threads=20)
        assert region.result.shreds_executed == 20


class TestFeatureFanOut:
    def test_sampler_filter_reaches_every_gma_device(self):
        rt = runtime(num_gma_devices=3)
        rt.chi_set_feature("X3000", "sampler_filter", "nearest")
        for device in rt.platform.gma_devices:
            assert device.gma.sampler.filter_mode == "nearest"

    def test_priority_orders_multi_device_dispatch(self):
        rt = runtime(num_gma_devices=2)
        with rt.taskq() as q:
            handles = [q.task("end") for _ in range(8)]
            rt.chi_set_feature_pershred("X3000", handles[-1].shred_id,
                                        "priority", 9)
        assert q.region.result.shreds_executed == 8
