"""The device registry and the pluggable compute backends behind it."""

import numpy as np
import pytest

from repro.cpu.ia32 import Ia32Cpu
from repro.errors import SchedulingError
from repro.fabric import (
    AdmissionPolicy,
    DeviceRegistry,
    DeviceWorkQueue,
    FabricRunResult,
    GmaFabricDevice,
    GpgpuFabricDevice,
    Ia32FabricDevice,
)
from repro.gma.device import GmaDevice
from repro.gpgpu import GpgpuDriver
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.exo.shred import ShredDescriptor
from repro.memory.address_space import AddressSpace
from repro.memory.surface import Surface

DOUBLE = """
    shl.1.dw vr1 = i, 3
    ld.8.dw [vr2..vr9] = (A, vr1, 0)
    add.8.dw [vr10..vr17] = [vr2..vr9], [vr2..vr9]
    st.8.dw (C, vr1, 0) = [vr10..vr17]
    end
"""


def gma_fabric_device(name="gma0", queue=None):
    return GmaFabricDevice(name, GmaDevice(AddressSpace()), queue=queue)


def make_shreds(n):
    program = assemble("end", name="noop")
    return [ShredDescriptor(program=program) for _ in range(n)]


class TestRegistry:
    def test_registration_and_lookup(self):
        registry = DeviceRegistry()
        device = registry.register(gma_fabric_device("gma0"))
        assert registry.get("gma0") is device
        assert "gma0" in registry
        assert len(registry) == 1
        assert registry.names() == ["gma0"]

    def test_duplicate_name_rejected(self):
        registry = DeviceRegistry([gma_fabric_device("gma0")])
        with pytest.raises(SchedulingError, match="already registered"):
            registry.register(gma_fabric_device("gma0"))

    def test_unknown_name(self):
        with pytest.raises(SchedulingError, match="no device named"):
            DeviceRegistry().get("gma7")

    def test_isas_vs_shred_targets(self):
        registry = DeviceRegistry([
            gma_fabric_device("gma0"),
            Ia32FabricDevice("ia32", Ia32Cpu()),
        ])
        assert registry.isas() == ["X3000", "IA32"]
        # the IA32 sequencer class is in the fabric but cannot consume
        # accelerator shred descriptors
        assert registry.shred_targets() == ["X3000"]

    def test_require_filters_by_execution(self):
        registry = DeviceRegistry([
            gma_fabric_device("gma0"),
            gma_fabric_device("gma1"),
            Ia32FabricDevice("ia32", Ia32Cpu()),
        ])
        devices = registry.require("X3000")
        assert [d.name for d in devices] == ["gma0", "gma1"]
        with pytest.raises(SchedulingError, match="no accelerator"):
            registry.require("IA32")  # executing=True is the default
        assert [d.name for d in registry.require("IA32", executing=False)] \
            == ["ia32"]

    def test_require_unknown_isa_names_what_exists(self):
        registry = DeviceRegistry([gma_fabric_device("gma0")])
        with pytest.raises(SchedulingError,
                           match=r"no accelerator with ISA 'SPE'"):
            registry.require("SPE")

    def test_describe_lists_every_device(self):
        registry = DeviceRegistry([
            gma_fabric_device("gma0"),
            Ia32FabricDevice("ia32", Ia32Cpu()),
        ])
        text = registry.describe()
        assert "gma0" in text and "ia32" in text
        assert "ISA X3000" in text and "ISA IA32" in text


class TestGmaBackend:
    def test_estimate_is_positive_and_scales(self):
        device = gma_fabric_device()
        small = device.estimate_seconds(make_shreds(2))
        large = device.estimate_seconds(make_shreds(64))
        assert 0 < small < large

    def test_run_produces_report(self):
        device = gma_fabric_device()
        report = device.run_shreds(make_shreds(6))
        assert report.device == "gma0"
        assert report.isa == "X3000"
        assert report.shreds == 6
        assert report.sub_batches == 1
        assert report.seconds > 0
        assert report.merged_result() is report.results[0]

    def test_blocking_queue_serializes_sub_batches(self):
        queue = DeviceWorkQueue(depth=2, policy=AdmissionPolicy.BLOCK,
                                name="gma0")
        device = gma_fabric_device(queue=queue)
        shreds = make_shreds(5)
        report = device.run_shreds(shreds)
        assert report.sub_batches == 3
        merged = report.merged_result()
        assert merged.shreds_executed == 5
        assert len(merged.timing.spans) == 5
        # later sub-batches are offset past their predecessors' drains
        first = min(s for s, _, _, _ in merged.timing.spans.values())
        last = max(f for _, f, _, _ in merged.timing.spans.values())
        assert first == 0.0
        assert merged.timing.cycles == pytest.approx(
            sum(r.timing.cycles for r in report.results))
        assert last <= merged.timing.cycles

    def test_overflow_raises_through_device(self):
        device = gma_fabric_device(
            queue=DeviceWorkQueue(depth=2, name="gma0"))
        with pytest.raises(SchedulingError, match="overflow on 'gma0'"):
            device.run_shreds(make_shreds(5))


class TestIa32Backend:
    def test_cannot_execute_shreds(self):
        device = Ia32FabricDevice("ia32", Ia32Cpu())
        assert device.executes_shreds is False
        with pytest.raises(SchedulingError, match="cannot"):
            device.estimate_seconds(make_shreds(1))
        with pytest.raises(SchedulingError, match="cannot"):
            device.run_shreds(make_shreds(1))

    def test_runs_cost_model_work(self):
        from repro.cpu.ia32 import CpuWork

        device = Ia32FabricDevice("ia32", Ia32Cpu())
        work = CpuWork(pixels=1024, cycles_per_pixel=8.0, bytes_touched=4096)
        execution = device.run_work(work, fraction=0.5)
        assert execution.seconds > 0


class TestGpgpuBackend:
    def test_end_to_end_through_the_driver(self):
        host_space = AddressSpace()
        device = GpgpuFabricDevice("legacy", GpgpuDriver(), host_space)
        assert device.isa == "X3000"

        n = 16
        program = assemble(DOUBLE, name="double")
        surf = Surface.alloc(host_space, "A", n, 1, DataType.DW)
        out = Surface.alloc(host_space, "C", n, 1, DataType.DW)
        surf.write_linear(host_space, 0, np.arange(float(n)))
        shreds = [ShredDescriptor(program=program, bindings={"i": i},
                                  surfaces={"A": surf, "C": out})
                  for i in range(n // 8)]
        report = device.run_shreds(shreds)
        # results came back to the *host* surface despite the separate
        # driver address space...
        got = out.read_linear(host_space, 0, n)
        assert np.array_equal(got, np.arange(n) * 2.0)
        # ...and the Figure 1(a) costs are on the bill
        assert report.copy_seconds > 0
        assert report.seconds > report.copy_seconds
        assert report.config is None  # no per-shred timing exposed

    def test_estimate_includes_copies_and_call_overhead(self):
        host_space = AddressSpace()
        legacy = GpgpuFabricDevice("legacy", GpgpuDriver(), host_space)
        exo = gma_fabric_device()
        n = 256
        program = assemble(DOUBLE, name="double")
        surf = Surface.alloc(host_space, "A", n, 1, DataType.DW)
        shreds = [ShredDescriptor(program=program, bindings={"i": i},
                                  surfaces={"A": surf})
                  for i in range(4)]
        # the same silicon costs strictly more behind the driver wall
        assert legacy.estimate_seconds(shreds) > exo.estimate_seconds(shreds)


class TestFabricRunResult:
    def reports(self):
        left = gma_fabric_device("gma0").run_shreds(make_shreds(4))
        right = gma_fabric_device("gma1").run_shreds(make_shreds(2))
        return left, right

    def test_aggregates_across_devices(self):
        left, right = self.reports()
        fabric = FabricRunResult(reports=[left, right])
        assert fabric.shreds_executed == 6
        assert fabric.instructions == (left.results[0].instructions
                                       + right.results[0].instructions)
        assert len(fabric.runs) == 6
        # devices drained concurrently: the region costs the max, not the sum
        assert fabric.seconds == max(left.seconds, right.seconds)
        assert fabric.bytes_total == fabric.bytes_read + fabric.bytes_written

    def test_report_for(self):
        left, right = self.reports()
        fabric = FabricRunResult(reports=[left, right])
        assert fabric.report_for("gma1") is right
        assert fabric.report_for("gma9") is None

    def test_empty(self):
        fabric = FabricRunResult()
        assert fabric.seconds == 0.0
        assert fabric.shreds_executed == 0
