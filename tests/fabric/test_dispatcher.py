"""The event-driven work-stealing dispatcher."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chi.scheduler import dynamic_partition, oracle_partition
from repro.errors import SchedulingError
from repro.exo.shred import ShredDescriptor
from repro.fabric.dispatcher import (
    WorkItem,
    WorkStealingDispatcher,
    dependency_groups,
    work_stealing_partition,
)
from repro.isa.assembler import assemble

times = st.floats(min_value=1e-6, max_value=10.0)


def items_of(costs_list, **kwargs):
    return [WorkItem(ident=i, costs=dict(costs), **kwargs)
            for i, costs in enumerate(costs_list)]


class TestWorkItem:
    def test_cost_lookup_and_wildcard(self):
        item = WorkItem(ident=0, costs={"gma0": 2.0, "*": 5.0})
        assert item.cost_on("gma0") == 2.0
        assert item.cost_on("gma1") == 5.0

    def test_unknown_device_cost(self):
        item = WorkItem(ident=0, costs={"gma0": 2.0})
        with pytest.raises(SchedulingError, match="no cost"):
            item.cost_on("cpu")


class TestDispatch:
    def test_single_device_serializes(self):
        outcome = WorkStealingDispatcher(["d0"]).dispatch(
            items_of([{"*": 1.0}] * 4))
        assert outcome.makespan == pytest.approx(4.0)
        assert outcome.busy_seconds["d0"] == pytest.approx(4.0)
        assert outcome.steals == 0

    def test_two_identical_devices_halve_makespan(self):
        outcome = WorkStealingDispatcher(["d0", "d1"]).dispatch(
            items_of([{"*": 1.0}] * 8))
        assert outcome.makespan == pytest.approx(4.0)
        assert len(outcome.items_on("d0")) == 4
        assert len(outcome.items_on("d1")) == 4

    def test_idle_device_steals(self):
        items = items_of([{"*": 1.0}] * 8)
        outcome = WorkStealingDispatcher(["d0", "d1"]).dispatch(
            items, initial={"d0": items})
        # everything started on d0; d1 stole half anyway
        assert outcome.steals > 0
        assert outcome.makespan == pytest.approx(4.0)

    def test_priority_runs_first(self):
        items = items_of([{"*": 1.0}] * 4)
        items[3].priority = 10.0
        outcome = WorkStealingDispatcher(["d0"]).dispatch(
            items, initial={"d0": items})
        assert outcome.spans[3][0] == 0.0  # highest priority starts first

    def test_dependency_gates_start_across_devices(self):
        items = items_of([{"*": 2.0}, {"*": 1.0}])
        items[1].depends_on = (0,)
        outcome = WorkStealingDispatcher(["d0", "d1"]).dispatch(items)
        start_1 = outcome.spans[1][0]
        finish_0 = outcome.spans[0][1]
        assert start_1 >= finish_0

    def test_dependency_cycle_deadlocks(self):
        items = items_of([{"*": 1.0}, {"*": 1.0}])
        items[0].depends_on = (1,)
        items[1].depends_on = (0,)
        with pytest.raises(SchedulingError, match="deadlock"):
            WorkStealingDispatcher(["d0"]).dispatch(items)

    def test_missing_dependency_rejected(self):
        items = items_of([{"*": 1.0}])
        items[0].depends_on = (99,)
        with pytest.raises(SchedulingError, match="never complete"):
            WorkStealingDispatcher(["d0"]).dispatch(items)

    def test_initial_placement_must_cover_items(self):
        items = items_of([{"*": 1.0}] * 2)
        with pytest.raises(SchedulingError, match="exactly once"):
            WorkStealingDispatcher(["d0", "d1"]).dispatch(
                items, initial={"d0": items[:1]})

    def test_duplicate_device_names_rejected(self):
        with pytest.raises(SchedulingError, match="duplicate"):
            WorkStealingDispatcher(["d0", "d0"])

    def test_empty_dispatch(self):
        outcome = WorkStealingDispatcher(["d0"]).dispatch([])
        assert outcome.makespan == 0.0
        assert outcome.items_on("d0") == []

    @given(times, times, st.integers(min_value=1, max_value=128))
    def test_all_work_is_done_once(self, cpu_s, gma_s, chunks):
        items = [WorkItem(ident=i, costs={"cpu": cpu_s / chunks,
                                          "gma": gma_s / chunks})
                 for i in range(chunks)]
        outcome = WorkStealingDispatcher(["cpu", "gma"]).dispatch(items)
        scheduled = sorted(i.ident for lane in outcome.assignments.values()
                           for i in lane)
        assert scheduled == list(range(chunks))
        assert set(outcome.spans) == set(range(chunks))


class TestPartitionBridge:
    def test_converges_to_oracle_within_5_percent(self):
        oracle = oracle_partition(7.0, 2.0)
        errors = []
        for chunks in (128, 512):
            ws = work_stealing_partition(7.0, 2.0, chunks)
            assert ws.total_seconds <= oracle.total_seconds * 1.05
            errors.append(ws.total_seconds - oracle.total_seconds)
        assert errors[-1] <= errors[0]  # finer chunks, tighter schedule

    def test_matches_dynamic_shape(self):
        # both are greedy self-scheduling; totals agree at equal chunking
        dyn = dynamic_partition(6.0, 3.0, 128)
        ws = work_stealing_partition(6.0, 3.0, 128)
        assert ws.total_seconds == pytest.approx(dyn.total_seconds,
                                                 rel=0.05)

    def test_policy_label_and_fraction(self):
        ws = work_stealing_partition(1.0, 1.0, 10)
        assert ws.policy == "work-stealing-10"
        assert 0.0 <= ws.cpu_fraction <= 1.0

    def test_validation(self):
        with pytest.raises(SchedulingError):
            work_stealing_partition(1.0, 1.0, 0)

    @given(times, times, st.integers(min_value=1, max_value=256))
    def test_never_worse_than_slowest_homogeneous(self, cpu_s, gma_s,
                                                  chunks):
        ws = work_stealing_partition(cpu_s, gma_s, chunks)
        assert ws.total_seconds <= max(cpu_s, gma_s) * (1 + 1e-9)


class TestDependencyGroups:
    def make(self, n):
        program = assemble("end", name="noop")
        return [ShredDescriptor(program=program) for _ in range(n)]

    def test_independent_shreds_are_singletons(self):
        shreds = self.make(4)
        groups = dependency_groups(shreds)
        assert [len(g) for g in groups] == [1, 1, 1, 1]

    def test_chain_is_one_group(self):
        shreds = self.make(3)
        shreds[1].depends_on = (shreds[0].shred_id,)
        shreds[2].depends_on = (shreds[1].shred_id,)
        groups = dependency_groups(shreds)
        assert len(groups) == 1
        assert groups[0] == shreds

    def test_two_components(self):
        shreds = self.make(4)
        shreds[1].depends_on = (shreds[0].shred_id,)
        shreds[3].depends_on = (shreds[2].shred_id,)
        groups = dependency_groups(shreds)
        assert [len(g) for g in groups] == [2, 2]
        assert groups[0] == shreds[:2] and groups[1] == shreds[2:]

    def test_external_dependency_ignored(self):
        shreds = self.make(2)
        shreds[0].depends_on = (99999,)  # producer from an earlier region
        groups = dependency_groups(shreds)
        assert [len(g) for g in groups] == [1, 1]
