"""Shootdown coherence under a multi-accelerator fabric.

The acceptance scenario for the ATR coherence layer: two GMA devices run
shreds over a shared surface (both views warm translations for its
pages), the host frees the allocation, and a later allocation recycles
the physical frames.  Without the shootdown broadcast both device views
keep the dead translations and read the new allocation's bytes through
them; with it, every stale entry is gone the moment ``free`` returns.
"""

import numpy as np
import pytest

from repro.chi import ChiRuntime, ExoPlatform
from repro.errors import TlbMiss
from repro.isa.types import DataType
from repro.memory.physical import PAGE_SHIFT
from repro.memory.surface import Surface

DOUBLE_ASM = """
    shl.1.dw vr1 = tid, 2
    ld.4.dw [vr2..vr5] = (IN, vr1, 0)
    add.4.dw [vr6..vr9] = [vr2..vr5], [vr2..vr5]
    st.4.dw (OUT, vr1, 0) = [vr6..vr9]
    end
"""

N_THREADS = 320  # 4 dwords each -> 5120-byte surfaces span two pages


def surface_vpns(surf):
    first = surf.base >> PAGE_SHIFT
    last = (surf.base + surf.nbytes - 1) >> PAGE_SHIFT
    return list(range(first, last + 1))


def run_region(rt, src, dst):
    return rt.parallel(DOUBLE_ASM, num_threads=N_THREADS,
                       shared={"IN": src, "OUT": dst})


@pytest.fixture
def fabric():
    platform = ExoPlatform(num_gma_devices=2)
    rt = ChiRuntime(platform)
    views = [d.gma.view for d in platform.gma_devices]
    assert len(views) == 2
    return platform, rt, views


def make_surfaces(space, host, seed):
    src = Surface.alloc(space, "IN", N_THREADS * 4, 1, DataType.DW)
    dst = Surface.alloc(space, "OUT", N_THREADS * 4, 1, DataType.DW)
    data = (np.arange(N_THREADS * 4) + seed) % 89
    src.upload(host, data.reshape(1, -1))
    return src, dst, data


class TestFreeAfterFabricRun:
    def test_both_views_warm_then_invalidated(self, fabric):
        platform, rt, views = fabric
        src, dst, data = make_surfaces(platform.space, platform.host, 0)
        run_region(rt, src, dst)
        got = dst.download(platform.host).reshape(-1)
        assert np.array_equal(got, data * 2)
        vpns = surface_vpns(src)
        assert len(vpns) >= 2
        for view in views:  # launch validation warmed every view
            assert all(vpn in view.gtt for vpn in vpns)
        platform.space.free(src.base)
        for view in views:
            assert all(vpn not in view.gtt for vpn in vpns)
            assert all(vpn not in view.tlb for vpn in vpns)
            assert view.shootdowns_received >= 1
        assert platform.atr.stats.shootdowns >= 1

    def test_recycled_frames_unreachable_through_stale_path(self, fabric):
        platform, rt, views = fabric
        src, dst, _ = make_surfaces(platform.space, platform.host, 3)
        run_region(rt, src, dst)
        old_base = src.base
        platform.space.free(old_base)
        # recycle the frames into a fresh allocation full of sentinels
        realloc = platform.space.alloc(src.nbytes, eager=True)
        platform.space.write_bytes(
            realloc, np.full(src.nbytes, 0x5C, dtype=np.uint8))
        for view in views:
            with pytest.raises(TlbMiss):
                view.read_bytes(old_base, 16)

    def test_free_realloc_churn_between_regions(self, fabric):
        """Several rounds of run / free / reallocate: every round computes
        the right answer even though frames and virtual pages recycle
        under warm device views."""
        platform, rt, views = fabric
        for round_no in range(4):
            src, dst, data = make_surfaces(
                platform.space, platform.host, round_no * 7)
            region = run_region(rt, src, dst)
            got = dst.download(platform.host).reshape(-1)
            assert np.array_equal(got, data * 2), f"round {round_no}"
            assert region.result.shreds_executed == N_THREADS
            platform.space.free(src.base)
            platform.space.free(dst.base)
        assert platform.space.shootdowns == 8  # two frees per round
        for view in views:
            assert view.shootdowns_received >= 4

    def test_runtime_stats_count_shootdowns_in_region(self, fabric):
        """A free *between* launch validation and re-use shows up in the
        per-device ATR breakdown of the next region."""
        platform, rt, views = fabric
        src, dst, data = make_surfaces(platform.space, platform.host, 1)
        run_region(rt, src, dst)
        platform.space.free(src.base)
        src2, dst2, data2 = make_surfaces(platform.space, platform.host, 2)
        run_region(rt, src2, dst2)
        atr = rt.stats.device_atr
        assert set(atr) == {"gma0", "gma1"}
        for counters in atr.values():
            assert counters["tlb_misses"] >= 0
            assert "shootdowns" in counters
        total = sum(c["shootdowns"] for c in atr.values())
        assert total >= 0  # frees happened outside regions here
        # the cumulative per-view counter definitely saw the free
        assert all(v.shootdowns_received >= 1 for v in views)
