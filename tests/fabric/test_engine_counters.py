"""Engine counters: runtime stats, fabric aggregation, trace export,
threaded drains, and the shared-mutable-default constructor fixes."""

from __future__ import annotations

import json

import pytest

from repro.chi.platform import ExoPlatform
from repro.chi.runtime import ChiRuntime, RuntimeStats
from repro.exo.exoskeleton import Exoskeleton
from repro.exo.shred import ShredDescriptor
from repro.fabric.device import DeviceRunReport, FabricRunResult
from repro.fabric.dispatcher import drain_devices
from repro.gma.device import GmaDevice
from repro.gma.firmware import GmaRunResult
from repro.isa.assembler import assemble
from repro.memory.address_space import AddressSpace
from repro.perf.trace import fabric_chrome_trace_events

UNIFORM_ASM = """
iota.16.f vr1
mov.1.dw vr2 = 0
loop:
add.16.f vr3 = vr1, vr1
add.1.dw vr2 = vr2, 1
cmp.lt.1.dw p1 = vr2, iters
br p1, loop
end
"""


def _result(**kwargs) -> GmaRunResult:
    return GmaRunResult(**kwargs)


def _report(name: str, *results, wall: float = 0.0) -> DeviceRunReport:
    return DeviceRunReport(device=name, isa="X3000", seconds=0.0,
                           shreds=0, results=list(results),
                           wall_seconds=wall)


class TestCounterAggregation:
    def test_fabric_result_sums_engine_counters(self):
        fabric = FabricRunResult(reports=[
            _report("gma0", _result(gang_lanes_retired=10, scalar_fallbacks=1,
                                    predecode_hits=4, predecode_misses=1,
                                    batched_mem_lanes=8,
                                    batched_translations=2,
                                    tlb_vector_hits=1)),
            _report("gma1", _result(gang_lanes_retired=5, scalar_fallbacks=2,
                                    predecode_hits=3, predecode_misses=0,
                                    batched_mem_lanes=4,
                                    batched_translations=3,
                                    tlb_vector_hits=2,
                                    fused_blocks_retired=7, trace_chains=4,
                                    fusion_compiles=2,
                                    gang_repacks=2, lanes_readmitted=6)),
        ])
        assert fabric.gang_lanes_retired == 15
        assert fabric.scalar_fallbacks == 3
        assert fabric.predecode_hits == 7
        assert fabric.predecode_misses == 1
        assert fabric.batched_mem_lanes == 12
        assert fabric.batched_translations == 5
        assert fabric.tlb_vector_hits == 3
        assert fabric.fused_blocks_retired == 7
        assert fabric.trace_chains == 4
        assert fabric.fusion_compiles == 2
        assert fabric.gang_repacks == 2
        assert fabric.lanes_readmitted == 6

    def test_fabric_residency_derives_from_totals(self):
        fabric = FabricRunResult(reports=[
            _report("gma0", _result(instructions=100,
                                    gang_lanes_retired=80)),
            _report("gma1", _result(instructions=100,
                                    gang_lanes_retired=20)),
        ])
        # 100 * (80 + 20) / (100 + 100): derived from the sums, never
        # an average of per-device percentages
        assert fabric.gang_residency_pct == pytest.approx(50.0)
        assert FabricRunResult().gang_residency_pct == 0.0

    def test_merged_result_carries_engine_counters(self):
        report = _report(
            "gma0",
            _result(gang_lanes_retired=10, scalar_fallbacks=1,
                    predecode_hits=4, predecode_misses=1,
                    batched_mem_lanes=6, batched_translations=2,
                    tlb_vector_hits=1),
            _result(gang_lanes_retired=2, scalar_fallbacks=0,
                    predecode_hits=1, predecode_misses=0,
                    batched_mem_lanes=2, batched_translations=1,
                    tlb_vector_hits=1, fused_blocks_retired=3,
                    trace_chains=2, fusion_compiles=1,
                    gang_repacks=1, lanes_readmitted=3))
        merged = report.merged_result()
        assert merged.gang_lanes_retired == 12
        assert merged.scalar_fallbacks == 1
        assert merged.predecode_hits == 5
        assert merged.predecode_misses == 1
        assert merged.batched_mem_lanes == 8
        assert merged.batched_translations == 3
        assert merged.tlb_vector_hits == 2
        assert merged.fused_blocks_retired == 3
        assert merged.trace_chains == 2
        assert merged.fusion_compiles == 1
        assert merged.gang_repacks == 1
        assert merged.lanes_readmitted == 3

    def test_runtime_stats_note_engine_round_trip(self):
        stats = RuntimeStats()
        stats.note_engine(_result(gang_lanes_retired=10, scalar_fallbacks=2,
                                  predecode_hits=3, predecode_misses=1,
                                  batched_mem_lanes=4,
                                  batched_translations=2,
                                  tlb_vector_hits=1))
        stats.note_engine(_result(gang_lanes_retired=5, scalar_fallbacks=0,
                                  predecode_hits=2, predecode_misses=0,
                                  batched_mem_lanes=3,
                                  batched_translations=1,
                                  tlb_vector_hits=1,
                                  fused_blocks_retired=6, trace_chains=3,
                                  fusion_compiles=2,
                                  gang_repacks=1, lanes_readmitted=4))
        assert stats.gang_lanes_retired == 15
        assert stats.scalar_fallbacks == 2
        assert stats.predecode_hits == 5
        assert stats.predecode_misses == 1
        assert stats.batched_mem_lanes == 7
        assert stats.batched_translations == 3
        assert stats.tlb_vector_hits == 2
        assert stats.fused_blocks_retired == 6
        assert stats.trace_chains == 3
        assert stats.fusion_compiles == 2
        assert stats.gang_repacks == 1
        assert stats.lanes_readmitted == 4
        # objects without the counters (other backends) contribute nothing
        stats.note_engine(object())
        assert stats.gang_lanes_retired == 15

    def test_runtime_accumulates_engine_counters(self):
        platform = ExoPlatform(gma_engine="gang")
        runtime = ChiRuntime(platform)
        runtime.parallel(UNIFORM_ASM, num_threads=4,
                         firstprivate={"iters": 3.0})
        assert runtime.stats.gang_lanes_retired > 0
        assert runtime.stats.scalar_fallbacks == 0
        assert runtime.stats.predecode_misses >= 1


class TestChromeTrace:
    def test_engine_counter_track_and_wall_metadata(self):
        reports = [
            _report("gma0", _result(gang_lanes_retired=10, scalar_fallbacks=1,
                                    predecode_hits=4, predecode_misses=1,
                                    batched_mem_lanes=8,
                                    batched_translations=2,
                                    tlb_vector_hits=1),
                    wall=0.25),
            _report("gma1", _result()),  # all-zero: no counter track
        ]
        events = fabric_chrome_trace_events(reports)
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "engine"
        assert counters[0]["pid"] == 0
        assert counters[0]["args"] == {
            "gang_lanes_retired": 10, "scalar_fallbacks": 1,
            "predecode_hits": 4, "predecode_misses": 1,
            "batched_mem_lanes": 8, "batched_translations": 2,
            "tlb_vector_hits": 1, "fused_blocks_retired": 0,
            "trace_chains": 0, "fusion_compiles": 0,
            "megaops_retired": 0, "megaop_compiles": 0,
            "megaop_deopts": 0, "gang_repacks": 0,
            "lanes_readmitted": 0,
        }
        meta = {e["pid"]: e for e in events
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert meta[0]["args"]["wall_seconds"] == 0.25
        assert "wall_seconds" not in meta[1]["args"]

    def test_counter_track_reports_residency(self):
        reports = [
            _report("gma0", _result(instructions=200,
                                    gang_lanes_retired=150,
                                    gang_repacks=2, lanes_readmitted=5)),
        ]
        events = fabric_chrome_trace_events(reports)
        args = [e for e in events if e["ph"] == "C"][0]["args"]
        assert args["gang_repacks"] == 2
        assert args["lanes_readmitted"] == 5
        assert args["gang_residency_pct"] == 75.0

    def test_export_round_trips(self, tmp_path):
        from repro.perf.trace import export_fabric_chrome_trace
        reports = [_report("gma0", _result(gang_lanes_retired=3,
                                           predecode_misses=1))]
        path = tmp_path / "fabric.json"
        export_fabric_chrome_trace(reports, path)
        loaded = json.loads(path.read_text())
        counters = [e for e in loaded["traceEvents"] if e["ph"] == "C"]
        assert counters[0]["args"]["gang_lanes_retired"] == 3


class TestDrainDevices:
    def _platform(self, parallel: bool):
        platform = ExoPlatform(num_gma_devices=2, gma_engine="gang")
        program = assemble(UNIFORM_ASM, name="drain-test")
        batches = [
            [ShredDescriptor(program=program, bindings={"iters": 3.0})
             for _ in range(4)]
            for _ in range(2)
        ]
        assignments = list(zip(platform.gma_devices, batches))
        return drain_devices(assignments, parallel=parallel)

    def test_serial_and_parallel_agree(self):
        serial = self._platform(parallel=False)
        threaded = self._platform(parallel=True)
        assert [r.device for r in serial] == [r.device for r in threaded]
        for left, right in zip(serial, threaded):
            assert left.shreds == right.shreds
            assert left.seconds == right.seconds
            merged_l, merged_r = left.merged_result(), right.merged_result()
            assert merged_l.instructions == merged_r.instructions
            assert merged_l.gang_lanes_retired == merged_r.gang_lanes_retired

    def test_wall_seconds_measured_and_empties_skipped(self):
        platform = ExoPlatform(num_gma_devices=2)
        program = assemble("iota.16.f vr1\nend\n", name="tiny")
        shreds = [ShredDescriptor(program=program, bindings={})]
        devices = platform.gma_devices
        reports = drain_devices([(devices[0], shreds), (devices[1], [])])
        assert len(reports) == 1  # the empty assignment never ran
        assert reports[0].device == devices[0].name
        assert reports[0].wall_seconds > 0.0

    def test_parallel_fabric_region_matches_serial(self):
        outcomes = {}
        for parallel in (False, True):
            platform = ExoPlatform(num_gma_devices=2, gma_engine="gang")
            runtime = ChiRuntime(platform, parallel_fabric=parallel)
            region = runtime.parallel(UNIFORM_ASM, num_threads=8,
                                      firstprivate={"iters": 4.0})
            outcomes[parallel] = region.wait()
        serial, threaded = outcomes[False], outcomes[True]
        assert serial.instructions == threaded.instructions
        assert serial.gang_lanes_retired == threaded.gang_lanes_retired
        assert serial.seconds == threaded.seconds


class TestNoSharedMutableDefaults:
    def test_gma_device_configs_are_per_instance(self):
        one = GmaDevice(AddressSpace())
        two = GmaDevice(AddressSpace())
        assert one.config is not two.config

    def test_exoskeleton_costs_are_per_instance(self):
        one = Exoskeleton(AddressSpace())
        two = Exoskeleton(AddressSpace())
        assert one.costs is not two.costs

    def test_ia32_cpu_config_is_per_instance(self):
        from repro.cpu.ia32 import Ia32Cpu
        assert Ia32Cpu().config is not Ia32Cpu().config

    def test_misp_pool_config_is_per_instance(self):
        from repro.exo.misp import MispPool
        assert MispPool().cpu.config is not MispPool().cpu.config

    def test_gpgpu_driver_bandwidth_is_per_instance(self):
        from repro.gpgpu.driver import GpgpuDriver
        assert GpgpuDriver()._bandwidth is not GpgpuDriver()._bandwidth
