"""The parallel-drain threshold: small drains must not pay thread cost."""

from __future__ import annotations

from repro.chi import ChiRuntime, ExoPlatform
from repro.fabric.dispatcher import (PARALLEL_DRAIN_MIN_SHREDS,
                                     drain_devices)

ASM = """
mov.1.dw vr1 = 0
loop:
add.1.dw vr1 = vr1, 1
cmp.lt.1.dw p1 = vr1, 8
br p1, loop
end
"""


def _region(parallel, devices=2, shreds=8):
    platform = ExoPlatform(num_gma_devices=devices, gma_engine="gang")
    runtime = ChiRuntime(platform, parallel_fabric=parallel)
    region = runtime.parallel(ASM, num_threads=shreds)
    return runtime, region.wait()


def test_small_drain_falls_back_to_serial():
    """Below the threshold, ``parallel=True`` chooses a serial drain."""
    runtime, result = _region(True, devices=2, shreds=8)
    assert all(r.drain_mode == "serial" for r in result.reports)
    assert runtime.stats.drains_serial == 1
    assert runtime.stats.drains_parallel == 0


def test_large_drain_threads():
    """At or above the threshold on every device, threads engage."""
    shreds = 2 * PARALLEL_DRAIN_MIN_SHREDS + 8  # comfortably above /device
    runtime, result = _region(True, devices=2, shreds=shreds)
    assert any(r.drain_mode == "parallel" for r in result.reports)
    assert runtime.stats.drains_parallel == 1


def test_force_threads_regardless_of_size():
    runtime, result = _region("force", devices=2, shreds=4)
    assert all(r.drain_mode == "parallel" for r in result.reports)
    assert runtime.stats.drains_parallel == 1


def test_serial_request_stays_serial():
    runtime, result = _region(False, devices=2, shreds=64)
    assert all(r.drain_mode == "serial" for r in result.reports)
    assert runtime.stats.drains_serial == 1


def test_single_pair_never_threads():
    """One device means nothing to overlap, whatever was asked for."""
    runtime, _ = _region("force", devices=1, shreds=4)
    assert runtime.stats.drains_serial == 1
    assert runtime.stats.drains_parallel == 0


def test_drain_devices_skips_empty_and_orders_reports():
    from repro.exo.shred import ShredDescriptor
    from repro.isa.assembler import assemble

    class FakeDevice:
        def __init__(self, name):
            self.name = name

        def run_shreds(self, shreds):
            from repro.fabric.device import DeviceRunReport
            return DeviceRunReport(device=self.name, isa="X3000",
                                   seconds=0.0, shreds=len(shreds))

    program = assemble("end", name="nop")
    shred = ShredDescriptor(program=program)
    reports = drain_devices([
        (FakeDevice("a"), [shred]),
        (FakeDevice("b"), []),
        (FakeDevice("c"), [shred]),
    ], parallel="force")
    assert [r.device for r in reports] == ["a", "c"]
    assert all(r.drain_mode == "parallel" for r in reports)
    assert all(r.wall_seconds > 0.0 for r in reports)
