"""Bounded per-device admission queues and backpressure."""

import pytest

from repro.errors import SchedulingError
from repro.exo.shred import ShredDescriptor
from repro.fabric.queue import AdmissionPolicy, DeviceWorkQueue
from repro.isa.assembler import assemble


@pytest.fixture
def shreds():
    program = assemble("end", name="noop")
    return [ShredDescriptor(program=program) for _ in range(10)]


class TestAdmission:
    def test_batch_within_depth_is_one_sub_batch(self, shreds):
        queue = DeviceWorkQueue(depth=16)
        batches = queue.admit(shreds)
        assert len(batches) == 1
        assert batches[0] == shreds
        assert queue.stats.admitted == 10
        assert queue.stats.sub_batches == 1
        assert queue.stats.peak_depth == 10

    def test_empty_batch(self):
        queue = DeviceWorkQueue(depth=4)
        assert queue.admit([]) == []
        assert queue.stats.batches == 1
        assert queue.stats.admitted == 0

    def test_depth_validation(self):
        with pytest.raises(SchedulingError, match="depth"):
            DeviceWorkQueue(depth=0)


class TestRaisePolicy:
    def test_overflow_raises(self, shreds):
        queue = DeviceWorkQueue(depth=4, name="gma0")
        with pytest.raises(SchedulingError, match="overflow on 'gma0'"):
            queue.admit(shreds)
        assert queue.stats.rejected == 10
        assert queue.stats.admitted == 0

    def test_exact_fit_does_not_raise(self, shreds):
        queue = DeviceWorkQueue(depth=10)
        assert len(queue.admit(shreds)) == 1


class TestBlockPolicy:
    def test_overflow_splits_into_depth_sized_sub_batches(self, shreds):
        queue = DeviceWorkQueue(depth=4, policy=AdmissionPolicy.BLOCK)
        batches = queue.admit(shreds)
        assert [len(b) for b in batches] == [4, 4, 2]
        # order is preserved across the split
        assert [s.shred_id for b in batches for s in b] == \
            [s.shred_id for s in shreds]
        assert queue.stats.blocked_batches == 1
        assert queue.stats.peak_depth == 4

    def test_policy_coercion_from_string(self, shreds):
        queue = DeviceWorkQueue(depth=4, policy="block")
        assert queue.policy is AdmissionPolicy.BLOCK
        assert len(queue.admit(shreds)) == 3

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulingError, match="admission policy"):
            DeviceWorkQueue(policy="shrug")
