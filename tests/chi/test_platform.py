"""ExoPlatform assembly and the tracked host accessor."""

import numpy as np
import pytest

from repro.chi.platform import ExoPlatform, HostAccessor
from repro.errors import CoherenceViolation, SchedulingError


class TestAssembly:
    def test_shared_components(self, platform):
        # one address space threaded everywhere
        assert platform.device.space is platform.space
        assert platform.exoskeleton.space is platform.space
        assert platform.device.coherence is platform.coherence

    def test_time_conversions(self, platform):
        assert platform.gma_seconds(667e6) == pytest.approx(1.0)
        assert platform.cpu_seconds(2.33e9) == pytest.approx(1.0)

    def test_config_names(self):
        assert ExoPlatform().config_name == "CC Shared"
        assert ExoPlatform(coherent=False).config_name == "Non-CC Shared"
        assert ExoPlatform(shared_virtual_memory=False).config_name == \
            "Data Copy"

    def test_default_configs_are_per_instance(self):
        """Defaulted configs are constructed per platform, so nothing one
        platform does can leak into the next (no shared mutable default
        arguments in the signature)."""
        first, second = ExoPlatform(), ExoPlatform()
        assert first.device.config is not second.device.config
        assert first.cpu.config is not second.cpu.config
        assert first.bandwidth is not second.bandwidth


class TestFabricAssembly:
    def test_default_fabric_contents(self, platform):
        assert platform.fabric.names() == ["gma0", "ia32"]
        assert platform.fabric.shred_targets() == ["X3000"]
        assert platform.device is platform.fabric.get("gma0").gma

    def test_n_accelerator_fabric_shares_the_address_space(self):
        platform = ExoPlatform(num_gma_devices=3)
        devices = platform.gma_devices
        assert [d.name for d in devices] == ["gma0", "gma1", "gma2"]
        for device in devices:
            assert device.gma.space is platform.space
            assert device.gma.coherence is platform.coherence

    def test_device_count_validated(self):
        with pytest.raises(SchedulingError, match="at least one"):
            ExoPlatform(num_gma_devices=0)

    def test_queue_configuration_reaches_every_device(self):
        platform = ExoPlatform(num_gma_devices=2, queue_depth=32,
                               admission_policy="block")
        for device in platform.fabric:
            assert device.queue.depth == 32
            assert device.queue.policy.value == "block"


class TestHostAccessor:
    def test_writes_dirty_the_host_cache(self):
        platform = ExoPlatform(coherent=False)
        base = platform.space.alloc(4096, eager=True)
        platform.host.write_bytes(base, np.zeros(100, dtype=np.uint8))
        assert platform.coherence.cache("cpu").dirty_bytes > 0

    def test_coherent_mode_tracks_nothing(self):
        platform = ExoPlatform(coherent=True)
        base = platform.space.alloc(4096, eager=True)
        platform.host.write_bytes(base, np.zeros(100, dtype=np.uint8))
        assert platform.coherence.cache("cpu").dirty_bytes == 0

    def test_strict_host_read_of_device_dirty_lines(self):
        platform = ExoPlatform(coherent=False, strict_coherence=True)
        base = platform.space.alloc(4096, eager=True)
        platform.coherence.note_write("gma", base, 64)
        with pytest.raises(CoherenceViolation):
            platform.host.read_bytes(base, 8)
        platform.coherence.flush("gma")
        platform.host.read_bytes(base, 8)

    def test_typed_roundtrip(self, platform):
        base = platform.space.alloc(64)
        platform.host.write_array(base, np.array([1.5, 2.5],
                                                 dtype=np.float32))
        got = platform.host.read_array(base, 2, np.float32)
        assert got.tolist() == [1.5, 2.5]
