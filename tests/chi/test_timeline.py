"""The simulated-time model behind master_nowait."""

import pytest

from repro.chi.runtime import Timeline


def test_host_busy_advances():
    timeline = Timeline()
    timeline.host_busy(2.0, "work")
    timeline.host_busy(1.0)
    assert timeline.now == 3.0
    assert [e[2] for e in timeline.events] == ["work", "host"]


def test_async_span_does_not_advance():
    timeline = Timeline()
    completion = timeline.async_span(5.0, "gma")
    assert timeline.now == 0.0
    assert completion == 5.0


def test_wait_until_is_monotone():
    timeline = Timeline()
    timeline.host_busy(3.0)
    timeline.wait_until(2.0)  # already past: no-op
    assert timeline.now == 3.0
    timeline.wait_until(7.5)
    assert timeline.now == 7.5


def test_overlap_composition():
    """host work during an async region: elapsed = max, not sum."""
    timeline = Timeline()
    completion = timeline.async_span(5.0, "region")
    timeline.host_busy(3.0)  # overlaps
    timeline.wait_until(completion)
    assert timeline.now == 5.0
    timeline2 = Timeline()
    completion = timeline2.async_span(2.0, "region")
    timeline2.host_busy(3.0)
    timeline2.wait_until(completion)
    assert timeline2.now == 3.0


def test_event_log_records_start_times():
    timeline = Timeline()
    timeline.host_busy(1.0, "a")
    completion = timeline.async_span(4.0, "b")
    assert timeline.events[1][0] == 1.0  # async started at now
    assert completion == 5.0
