"""Surface descriptors and the Table 1 APIs."""

import pytest

from repro.errors import ChiError, DescriptorError, SchedulingError
from repro.chi.descriptors import AccessMode, DescriptorAttrib
from repro.isa.types import DataType
from repro.memory.surface import Surface, TileMode


@pytest.fixture
def surface(platform):
    return Surface.alloc(platform.space, "A", 64, 32, DataType.UB)


class TestAllocFree:
    def test_alloc_desc(self, runtime, surface):
        desc = runtime.chi_alloc_desc("X3000", surface,
                                      AccessMode.CHI_INPUT, 64, 32)
        assert desc.surface is surface
        assert desc.mode is AccessMode.CHI_INPUT
        assert desc.width == 64 and desc.height == 32

    def test_geometry_must_match(self, runtime, surface):
        with pytest.raises(DescriptorError, match="width"):
            runtime.chi_alloc_desc("X3000", surface, AccessMode.CHI_INPUT,
                                   100, 32)
        with pytest.raises(DescriptorError, match="height"):
            runtime.chi_alloc_desc("X3000", surface, AccessMode.CHI_INPUT,
                                   64, 1)

    def test_geometry_optional(self, runtime, surface):
        desc = runtime.chi_alloc_desc("X3000", surface, AccessMode.CHI_INOUT)
        assert desc.width == 64

    def test_unknown_isa(self, runtime, surface):
        with pytest.raises(SchedulingError, match="no accelerator"):
            runtime.chi_alloc_desc("CUDA", surface, AccessMode.CHI_INPUT)

    def test_free_then_use_rejected(self, runtime, surface):
        desc = runtime.chi_alloc_desc("X3000", surface, AccessMode.CHI_INPUT)
        runtime.chi_free_desc("X3000", desc)
        with pytest.raises(DescriptorError, match="freed"):
            runtime.chi_modify_desc("X3000", desc, DescriptorAttrib.MODE,
                                    AccessMode.CHI_OUTPUT)

    def test_double_free_rejected(self, runtime, surface):
        desc = runtime.chi_alloc_desc("X3000", surface, AccessMode.CHI_INPUT)
        runtime.chi_free_desc("X3000", desc)
        with pytest.raises(DescriptorError):
            runtime.chi_free_desc("X3000", desc)


class TestModify:
    def test_change_mode(self, runtime, surface):
        desc = runtime.chi_alloc_desc("X3000", surface, AccessMode.CHI_INPUT)
        runtime.chi_modify_desc("X3000", desc, DescriptorAttrib.MODE,
                                AccessMode.CHI_INOUT)
        assert desc.mode is AccessMode.CHI_INOUT

    def test_change_tiling(self, runtime, surface):
        desc = runtime.chi_alloc_desc("X3000", surface, AccessMode.CHI_INPUT)
        runtime.chi_modify_desc("X3000", desc, DescriptorAttrib.TILING,
                                TileMode.TILED)
        assert surface.tiling is TileMode.TILED
        assert desc.attribs["tiling"] is TileMode.TILED

    def test_bad_attribute_values(self, runtime, surface):
        desc = runtime.chi_alloc_desc("X3000", surface, AccessMode.CHI_INPUT)
        with pytest.raises(DescriptorError, match="TileMode"):
            runtime.chi_modify_desc("X3000", desc, DescriptorAttrib.TILING,
                                    "tiled")
        with pytest.raises(DescriptorError, match="AccessMode"):
            runtime.chi_modify_desc("X3000", desc, DescriptorAttrib.MODE, 3)

    def test_geometry_is_immutable(self, runtime, surface):
        desc = runtime.chi_alloc_desc("X3000", surface, AccessMode.CHI_INPUT)
        with pytest.raises(DescriptorError, match="fixed at allocation"):
            runtime.chi_modify_desc("X3000", desc, DescriptorAttrib.WIDTH, 8)


class TestFeatures:
    def test_global_feature(self, runtime):
        runtime.chi_set_feature("X3000", "sampler_filter", "bilinear")
        assert runtime.feature("X3000", "sampler_filter") == "bilinear"
        assert runtime.feature("X3000", "unset", default=7) == 7

    def test_pershred_feature(self, runtime):
        runtime.chi_set_feature_pershred("X3000", 12, "priority", 3)
        assert runtime._pershred_features[12]["priority"] == 3

    def test_pershred_value_validated_like_global(self, runtime):
        with pytest.raises(ChiError, match="numeric"):
            runtime.chi_set_feature_pershred("X3000", 12, "priority", "hi")
        with pytest.raises(ChiError, match="numeric"):
            runtime.chi_set_feature_pershred("X3000", 12, "priority", True)
        assert 12 not in runtime._pershred_features

    def test_global_value_validated(self, runtime):
        with pytest.raises(ChiError, match="accepts"):
            runtime.chi_set_feature("X3000", "sampler_filter", "cubic")

    def test_unknown_feature_stored_verbatim(self, runtime):
        runtime.chi_set_feature_pershred("X3000", 5, "app_hint", "x")
        assert runtime._pershred_features[5]["app_hint"] == "x"

    def test_feature_unknown_isa(self, runtime):
        with pytest.raises(SchedulingError):
            runtime.chi_set_feature("SPU", "x", 1)
