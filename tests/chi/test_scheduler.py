"""Heterogeneous work distribution policies (section 5.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chi.scheduler import (
    dynamic_partition,
    oracle_partition,
    static_partition,
)
from repro.errors import SchedulingError

times = st.floats(min_value=1e-6, max_value=10.0)


class TestStatic:
    def test_all_on_gma(self):
        outcome = static_partition(10.0, 2.0, 0.0)
        assert outcome.total_seconds == 2.0
        assert outcome.cpu_busy_seconds == 0.0

    def test_all_on_cpu(self):
        outcome = static_partition(10.0, 2.0, 1.0)
        assert outcome.total_seconds == 10.0

    def test_overlap_is_max_of_sides(self):
        outcome = static_partition(10.0, 2.0, 0.25)
        assert outcome.cpu_busy_seconds == 2.5
        assert outcome.gma_busy_seconds == 1.5
        assert outcome.total_seconds == 2.5  # master_nowait overlap

    def test_fraction_validation(self):
        with pytest.raises(SchedulingError):
            static_partition(1.0, 1.0, 1.5)

    def test_policy_label(self):
        assert static_partition(1.0, 1.0, 0.10).policy == "static-10%"


class TestOracle:
    def test_balances_exactly(self):
        outcome = oracle_partition(10.0, 2.0)
        assert outcome.cpu_busy_seconds == pytest.approx(
            outcome.gma_busy_seconds)
        assert outcome.imbalance == pytest.approx(0.0)

    def test_harmonic_total(self):
        outcome = oracle_partition(10.0, 2.0)
        assert outcome.total_seconds == pytest.approx(10 * 2 / 12)

    def test_fraction_formula(self):
        # f* = gma / (cpu + gma)
        outcome = oracle_partition(3.0, 1.0)
        assert outcome.cpu_fraction == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(SchedulingError):
            oracle_partition(0.0, 1.0)

    @given(times, times)
    def test_oracle_beats_every_static_split(self, cpu_s, gma_s):
        oracle = oracle_partition(cpu_s, gma_s)
        for f in (0.0, 0.1, 0.25, 0.5, 0.9, 1.0):
            static = static_partition(cpu_s, gma_s, f)
            assert oracle.total_seconds <= static.total_seconds * (1 + 1e-9)


class TestDynamic:
    def test_single_chunk_goes_to_faster_side(self):
        outcome = dynamic_partition(10.0, 2.0, 1)
        assert outcome.total_seconds == 2.0
        assert outcome.cpu_fraction == 0.0

    def test_converges_to_oracle(self):
        oracle = oracle_partition(7.0, 2.0)
        gaps = []
        for chunks in (4, 32, 256):
            dyn = dynamic_partition(7.0, 2.0, chunks)
            gaps.append(dyn.total_seconds - oracle.total_seconds)
        assert gaps[0] >= gaps[-1] >= 0 or abs(gaps[-1]) < 1e-12
        assert gaps[-1] <= 0.05 * oracle.total_seconds

    def test_validation(self):
        with pytest.raises(SchedulingError):
            dynamic_partition(1.0, 1.0, 0)

    @given(times, times, st.integers(min_value=1, max_value=512))
    def test_dynamic_never_worse_than_slowest_homogeneous(self, cpu_s,
                                                          gma_s, chunks):
        outcome = dynamic_partition(cpu_s, gma_s, chunks)
        assert outcome.total_seconds <= max(cpu_s, gma_s) * (1 + 1e-9)
        assert 0.0 <= outcome.cpu_fraction <= 1.0

    @given(times, times, st.integers(min_value=1, max_value=512))
    def test_all_work_is_done(self, cpu_s, gma_s, chunks):
        outcome = dynamic_partition(cpu_s, gma_s, chunks)
        # busy times correspond to complementary fractions of the work
        cpu_work = outcome.cpu_busy_seconds / cpu_s
        gma_work = outcome.gma_busy_seconds / gma_s
        assert cpu_work + gma_work == pytest.approx(1.0)
