"""The shred-level debugger (section 4.5)."""

import numpy as np
import pytest

from repro.chi.debugger import ChiDebugger, StopReason
from repro.errors import DebuggerError
from repro.isa.types import DataType
from repro.memory.surface import Surface

COUNTER = """
    mov.1.dw vr1 = 0
loop:
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p1 = vr1, 3
    br p1, loop
    st.1.dw (OUT, 0, 0) = vr1
    end
"""


@pytest.fixture
def session(runtime):
    out = Surface.alloc(runtime.platform.space, "OUT", 1, 1, DataType.DW)
    section = runtime.compile_asm(COUNTER, name="counter")
    dbg = ChiDebugger(runtime)
    s = dbg.debug(section, shared={"OUT": out})
    s._out = out
    return s


class TestBreakpoints:
    def test_break_by_label(self, session):
        ip = session.break_at("loop")
        assert ip == 1
        stop = session.cont()
        assert stop.reason is StopReason.BREAKPOINT
        assert stop.ip == 1

    def test_break_by_source_line(self, session):
        ip = session.break_at(7)  # the st line (1-based source lines)
        stop = session.cont()
        assert stop.ip == ip
        assert "st.1.dw" in stop.source_line

    def test_unknown_label(self, session):
        with pytest.raises(DebuggerError, match="no label"):
            session.break_at("nowhere")

    def test_unknown_line(self, session):
        with pytest.raises(DebuggerError, match="no instruction at"):
            session.break_at(999)

    def test_clear_breakpoint(self, session):
        ip = session.break_at("loop")
        session.clear_breakpoint(ip)
        assert session.breakpoints == []
        stop = session.cont()
        assert stop.reason is StopReason.DONE


class TestExecution:
    def test_cont_to_completion(self, session):
        stop = session.cont()
        assert stop.reason is StopReason.DONE
        assert session._out.download(
            session.runtime.platform.space)[0, 0] == 3.0

    def test_step_by_step(self, session):
        stop = session.step()
        assert stop.reason is StopReason.STEP
        assert stop.ip == 1
        assert stop.instructions_executed == 1

    def test_breakpoint_hit_count_matches_loop(self, session):
        session.break_at("loop")
        hits = 0
        while session.cont().reason is StopReason.BREAKPOINT:
            hits += 1
        assert hits == 3

    def test_registers_observable_mid_flight(self, session):
        session.break_at("loop")
        session.cont()
        session.cont()
        assert session.read_vreg(1)[0] == 1.0

    def test_predicates_observable(self, session):
        session.break_at(6)  # the br line (cmp already executed)
        session.cont()
        assert session.read_pred(1, 1)[0]  # vr1=1 < 3

    def test_where_and_disassembly(self, session):
        session.step()
        stop = session.where()
        assert stop.ip == 1
        window = session.disassemble_around(context=1)
        assert any(line.startswith("=>") for line in window)
        assert len(window) == 3


class TestFactory:
    def test_debug_accepts_program_object(self, runtime):
        from repro.isa.assembler import assemble
        program = assemble("nop\nend")
        session = ChiDebugger(runtime).debug(program)
        assert session.cont().reason is StopReason.DONE


class TestWatchpointsAndMemory:
    def test_watch_vreg_stops_on_change(self, session):
        stop = session.watch_vreg(1)
        assert stop.reason is StopReason.WATCHPOINT
        assert session.read_vreg(1)[0] == 1.0
        stop = session.watch_vreg(1)
        assert session.read_vreg(1)[0] == 2.0

    def test_watch_runs_to_done_when_value_stable(self, session):
        stop = session.watch_vreg(99)  # never written
        assert stop.reason is StopReason.DONE

    def test_examine_surface(self, session):
        session.cont()
        got = session.examine_surface("OUT", 0, 0)
        assert got[0, 0] == 3.0

    def test_examine_unknown_surface(self, session):
        with pytest.raises(DebuggerError, match="no surface"):
            session.examine_surface("NOPE", 0, 0)

    def test_examine_does_not_touch_device_tlb(self, session):
        before = len(session.runtime.platform.device.view.tlb)
        session.examine_surface("OUT", 0, 0)
        assert len(session.runtime.platform.device.view.tlb) == before
