"""The per-pixel filter DSL (paper section 4.1's domain-specific
language integration)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chi.dsl import DslError, TILE_H, TILE_W, compile_dsl, parse_dsl
from repro.chi.frontend import run_source
from repro.isa.types import DataType
from repro.kernels.images import test_image as make_image
from repro.memory.surface import Surface


def run_dsl(runtime, text, inputs, width, height, elem="ub"):
    """Compile, dispatch and verify one DSL block; returns outputs."""
    dsl = compile_dsl(text, elem=elem)
    space = runtime.platform.space
    dtype = DataType.from_suffix(elem)
    surfaces = {}
    for name, img in inputs.items():
        surfaces[name] = Surface.alloc(space, name, width, height, dtype)
        surfaces[name].upload(runtime.platform.host, img)
    for name in dsl.outputs:
        surfaces[name] = Surface.alloc(space, name, width, height, dtype)
    section = runtime.fatbinary.add_section("X3000", dsl.program, text)
    runtime.parallel(section, shared=surfaces,
                     private=dsl.bindings_for(width, height))
    expected = dsl.reference(inputs, width, height)
    got = {name: surfaces[name].download(runtime.platform.host)
           for name in dsl.outputs}
    for name in dsl.outputs:
        assert np.array_equal(got[name], expected[name]), name
    return got


class TestParser:
    def test_simple_assignment(self):
        stmts = parse_dsl("OUT = SRC + 1")
        assert len(stmts) == 1
        assert stmts[0].target == "OUT"

    def test_taps_and_shorthand(self):
        stmts = parse_dsl("OUT = SRC[-1, 2] + SRC")
        taps = stmts[0].expr
        assert taps.left.dx == -1 and taps.left.dy == 2
        assert taps.right.dx == 0 and taps.right.dy == 0

    def test_precedence(self):
        expr = parse_dsl("O = 1 + 2 * 3")[0].expr
        assert expr.op == "+" and expr.right.op == "*"

    def test_comments(self):
        stmts = parse_dsl("# smoothing\nOUT = SRC  # identity\n")
        assert len(stmts) == 1

    @pytest.mark.parametrize("bad,fragment", [
        ("", "empty"),
        ("OUT = ", "unexpected token"),
        ("= SRC", "must start with"),
        ("OUT = min(1)", "takes 2"),
        ("OUT = clamp(1, 2)", "takes 3"),
        ("OUT = SRC[1.5, 0]", "integer literals"),
        ("OUT = SRC[1 0]", "expected ','"),
        ("OUT = @", "unexpected character"),
    ])
    def test_errors(self, bad, fragment):
        with pytest.raises(DslError, match=fragment):
            parse_dsl(bad) and compile_dsl(bad)


class TestCompiler:
    def test_identity(self, runtime):
        img = make_image(TILE_W, TILE_H, 1)
        got = run_dsl(runtime, "OUT = SRC", {"SRC": img}, TILE_W, TILE_H)
        assert np.array_equal(got["OUT"], img)

    def test_horizontal_smooth(self, runtime):
        img = make_image(32, 32, 2)
        run_dsl(runtime,
                "OUT = clamp(0.25*SRC[-1,0] + 0.5*SRC[0,0] "
                "+ 0.25*SRC[1,0] + 0.5, 0, 255)",
                {"SRC": img}, 32, 32)

    def test_two_inputs_two_outputs(self, runtime):
        a = make_image(16, 16, 3)
        b = make_image(16, 16, 4)
        got = run_dsl(runtime, """
            SUM = clamp(A + B, 0, 255)
            DIFF = clamp(abs(A - B), 0, 255)
        """, {"A": a, "B": b}, 16, 16)
        assert set(got) == {"SUM", "DIFF"}

    def test_min_max_unary(self, runtime):
        img = make_image(16, 16, 5)
        run_dsl(runtime, "OUT = max(min(SRC, 200), -(-32))",
                {"SRC": img}, 16, 16)

    def test_diagonal_taps_edge_clamped(self, runtime):
        img = make_image(16, 16, 6)
        run_dsl(runtime, "OUT = clamp(0.25 * (SRC[-1,-1] + SRC[1,-1] "
                         "+ SRC[-1,1] + SRC[1,1]) + 0.5, 0, 255)",
                {"SRC": img}, 16, 16)

    def test_dw_elements(self, runtime):
        img = np.arange(256.0).reshape(16, 16) * 1000  # beyond byte range
        got = run_dsl(runtime, "OUT = SRC + 5", {"SRC": img}, 16, 16,
                      elem="dw")
        assert np.array_equal(got["OUT"], img + 5)

    def test_geometry_must_tile(self):
        dsl = compile_dsl("OUT = SRC")
        with pytest.raises(DslError, match="multiple"):
            dsl.bindings_for(TILE_W + 1, TILE_H)

    def test_write_then_read_hazard_rejected(self):
        with pytest.raises(DslError, match="both read and written"):
            compile_dsl("OUT = SRC\nFINAL = OUT[1,0]")

    def test_double_assignment_rejected(self):
        with pytest.raises(DslError, match="assigned twice"):
            compile_dsl("OUT = SRC\nOUT = SRC + 1")

    def test_metadata(self):
        dsl = compile_dsl("O1 = A[1,0] + B\nO2 = A - 1")
        assert dsl.inputs == {"A", "B"}
        assert dsl.outputs == ["O1", "O2"]
        assert len(dsl.bindings_for(32, 16)) == 2


class TestFrontendIntegration:
    def test_dsl_in_c_program(self):
        result = run_source("""
        int main() {
            int SRC[16][16];
            int OUT[16][16];
            for (int y = 0; y < 16; y++)
                for (int x = 0; x < 16; x++)
                    SRC[y][x] = x + y;
            #pragma omp parallel target(X3000) shared(SRC, OUT)
            {
                __dsl { OUT = SRC[0,0] * 2 + 1 }
            }
            return OUT[3][4];
        }
        """)
        assert result.exit_value == (3 + 4) * 2 + 1

    def test_dsl_outside_target_rejected(self):
        from repro.errors import SemanticError

        with pytest.raises(SemanticError, match="__dsl block outside"):
            run_source("int main() { __dsl { O = S } return 0; }")

    def test_dsl_missing_shared_surface(self):
        from repro.errors import SemanticError

        with pytest.raises(SemanticError, match="not in"):
            run_source("""
            int main() {
                int SRC[16][16];
                #pragma omp parallel target(X3000) shared(SRC)
                { __dsl { OUT = SRC } }
                return 0;
            }
            """)


@given(st.integers(min_value=-2, max_value=2),
       st.integers(min_value=-2, max_value=2),
       st.floats(min_value=-2.0, max_value=2.0),
       st.floats(min_value=0.0, max_value=64.0))
def test_affine_tap_matches_reference(dx, dy, scale, offset):
    """Property: any single-tap affine filter matches its oracle exactly."""
    from repro.chi import ChiRuntime, ExoPlatform

    runtime = ChiRuntime(ExoPlatform())
    img = make_image(16, 16, 7)
    text = (f"OUT = clamp({scale} * SRC[{dx},{dy}] + {offset} + 0.5, "
            f"0, 255)")
    run_dsl(runtime, text, {"SRC": img}, 16, 16)


class TestOptimizedCompilation:
    def test_optimize_preserves_results(self, runtime):
        img = make_image(16, 16, 9)
        text = ("OUT = clamp(0.5 * SRC[-1,0] + 0.5 * SRC[1,0] + 0.5, "
                "0, 255)")
        plain = compile_dsl(text)
        fast = compile_dsl(text, optimize=True)
        assert sorted(map(str, plain.program.instructions)) == \
            sorted(map(str, fast.program.instructions))
        run_dsl(runtime, text, {"SRC": img}, 16, 16)  # oracle check

    def test_optimize_runs_verified_on_device(self, runtime):
        img = make_image(16, 16, 10)
        dsl = compile_dsl("OUT = clamp(SRC[-1,-1] + SRC[1,1] + 0.5, 0, 255)",
                          optimize=True)
        space = runtime.platform.space
        from repro.memory.surface import Surface
        from repro.isa.types import DataType

        src = Surface.alloc(space, "SRC", 16, 16, DataType.UB)
        out = Surface.alloc(space, "OUT", 16, 16, DataType.UB)
        src.upload(runtime.platform.host, img)
        section = runtime.fatbinary.add_section("X3000", dsl.program, "x")
        runtime.parallel(section, shared={"SRC": src, "OUT": out},
                         private=dsl.bindings_for(16, 16))
        expected = dsl.reference({"SRC": img}, 16, 16)["OUT"]
        assert np.array_equal(out.download(runtime.platform.host), expected)


# ---------------------------------------------------------------------------
# structured fuzzing: random expression trees vs. the oracle
# ---------------------------------------------------------------------------

_leaf = st.one_of(
    st.sampled_from(["SRC[0,0]", "SRC[-1,0]", "SRC[1,1]", "SRC[0,-1]",
                     "B[0,0]", "B[2,-2]"]),
    st.floats(min_value=-8.0, max_value=8.0).map(lambda v: f"{v:.3f}"),
    st.integers(min_value=0, max_value=255).map(str),
)


def _combine(children):
    a, b = children
    return st.sampled_from([
        f"({a} + {b})", f"({a} - {b})", f"({a} * 0.25 + {b})",
        f"min({a}, {b})", f"max({a}, {b})", f"abs({a} - {b})",
    ])


_expr = st.recursive(_leaf, lambda inner: st.tuples(inner, inner)
                     .flatmap(_combine), max_leaves=6)


@given(_expr)
def test_random_expressions_match_oracle(expr):
    """Any expression the grammar can produce computes identically on the
    device and in the numpy oracle (after the final clamp/round)."""
    from repro.chi import ChiRuntime, ExoPlatform

    runtime = ChiRuntime(ExoPlatform())
    text = f"OUT = clamp({expr} + 0.5, 0, 255)"
    src = make_image(16, 16, 42)
    b = make_image(16, 16, 43)
    run_dsl(runtime, text, {"SRC": src, "B": b}, 16, 16)
