"""Fat binaries: multi-ISA code sections with unique identifiers."""

import pytest

from repro.errors import FatBinaryError
from repro.chi.fatbinary import FatBinary
from repro.isa.assembler import assemble

ASM_A = "mov.1.dw vr1 = 1\nend"
ASM_B = "loop:\nadd.1.dw vr1 = vr1, 1\ncmp.lt.1.dw p1 = vr1, 5\nbr p1, loop\nend"


@pytest.fixture
def fat():
    fat = FatBinary(name="app")
    fat.host_source = "int main() { return 0; }"
    fat.add_section("X3000", assemble(ASM_A, "a"), ASM_A)
    fat.add_section("X3000", assemble(ASM_B, "b"), ASM_B)
    return fat


class TestSections:
    def test_identifiers_are_unique_and_sequential(self, fat):
        assert sorted(fat.sections) == [1, 2]

    def test_section_lookup(self, fat):
        assert fat.section(1).name == "a"
        assert fat.section(2).name == "b"

    def test_missing_section(self, fat):
        with pytest.raises(FatBinaryError, match="no code section 99"):
            fat.section(99)

    def test_program_decodes_with_source(self, fat):
        program = fat.program(2)
        assert len(program) == 4
        assert program.labels == {"loop": 0}
        assert "add.1.dw" in program.source

    def test_program_cache(self, fat):
        assert fat.program(1) is fat.program(1)

    def test_sections_for_isa(self, fat):
        assert len(fat.sections_for_isa("X3000")) == 2
        assert fat.sections_for_isa("IA64") == []
        assert fat.isas() == ["X3000"]


class TestSerialization:
    def test_roundtrip(self, fat):
        blob = fat.serialize()
        again = FatBinary.deserialize(blob)
        assert again.name == "app"
        assert again.host_source == fat.host_source
        assert sorted(again.sections) == [1, 2]
        for ident in (1, 2):
            a, b = fat.section(ident), again.section(ident)
            assert (a.isa, a.name, a.blob, a.source) == \
                (b.isa, b.name, b.blob, b.source)

    def test_decoded_sections_execute_identically(self, fat):
        again = FatBinary.deserialize(fat.serialize())
        original = fat.program(2)
        decoded = again.program(2)
        assert tuple(map(str, original.instructions)) == \
            tuple(map(str, decoded.instructions))

    def test_new_sections_after_deserialize_get_fresh_ids(self, fat):
        again = FatBinary.deserialize(fat.serialize())
        ident = again.add_section("X3000", assemble("end", "c"))
        assert ident == 3

    def test_bad_magic(self):
        with pytest.raises(FatBinaryError, match="bad magic"):
            FatBinary.deserialize(b"XXXX\x01")

    def test_bad_version(self, fat):
        blob = bytearray(fat.serialize())
        blob[4] = 42
        with pytest.raises(FatBinaryError, match="version"):
            FatBinary.deserialize(bytes(blob))
