"""Cooperative heterogeneous loops through the runtime."""

import numpy as np
import pytest

from repro.chi.cooperative import run_cooperative
from repro.cpu.ia32 import CpuWork
from repro.errors import SchedulingError
from repro.isa.types import DataType
from repro.memory.surface import Surface

DOUBLE_ASM = """
    shl.1.dw vr1 = i, 3
    ld.8.dw [vr2..vr9] = (IN, vr1, 0)
    add.8.dw [vr10..vr17] = [vr2..vr9], [vr2..vr9]
    st.8.dw (OUT, vr1, 0) = [vr10..vr17]
    end
"""


@pytest.fixture
def setup(runtime):
    space = runtime.platform.space
    n_items = 40
    src = Surface.alloc(space, "IN", n_items * 8, 1, DataType.DW)
    dst = Surface.alloc(space, "OUT", n_items * 8, 1, DataType.DW)
    data = np.arange(n_items * 8) % 97
    src.upload(runtime.platform.host, data.reshape(1, -1))

    def host_fn(binding):
        i = int(binding["i"])
        chunk = src.read_linear(runtime.platform.host, i * 8, 8)
        dst.write_linear(runtime.platform.host, i * 8, chunk * 2)

    bindings = [{"i": float(i)} for i in range(n_items)]
    return runtime, src, dst, data, host_fn, bindings


def run_split(setup, fraction):
    runtime, src, dst, data, host_fn, bindings = setup
    return run_cooperative(
        runtime, DOUBLE_ASM,
        bindings=bindings,
        host_fn=host_fn,
        host_work_per_item=CpuWork(8, 5.0, 16),
        cpu_fraction=fraction,
        shared={"IN": src, "OUT": dst},
    )


class TestFunctional:
    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 1.0])
    def test_every_split_computes_the_same_answer(self, setup, fraction):
        runtime, src, dst, data, *_ = setup
        outcome = run_split(setup, fraction)
        got = dst.download(runtime.platform.host).reshape(-1)
        assert np.array_equal(got, data * 2)
        assert outcome.cpu_items + outcome.gma_items == 40

    def test_split_counts(self, setup):
        outcome = run_split(setup, 0.25)
        assert outcome.cpu_items == 10
        assert outcome.gma_items == 30
        assert outcome.cpu_fraction == pytest.approx(0.25)

    def test_host_takes_the_tail(self, setup):
        """Figure 9's shape: the IA32 sequencer handles [GMA_iters, n)."""
        runtime, src, dst, data, host_fn, bindings = setup
        seen = []
        outcome = run_cooperative(
            runtime, DOUBLE_ASM, bindings=bindings,
            host_fn=lambda b: (seen.append(int(b["i"])), host_fn(b)),
            host_work_per_item=CpuWork(8, 5.0, 16),
            cpu_fraction=0.25,
            shared={"IN": src, "OUT": dst})
        assert seen == list(range(30, 40))
        assert outcome.gma_items == 30


class TestTimeline:
    def test_sides_overlap(self, setup):
        runtime = setup[0]
        outcome = run_split(setup, 0.5)
        assert outcome.elapsed_seconds < \
            outcome.cpu_seconds + outcome.gma_seconds
        assert outcome.elapsed_seconds >= max(
            outcome.cpu_seconds, outcome.gma_seconds) - 1e-15
        assert outcome.overlap_seconds > 0

    def test_pure_gma_has_no_cpu_time(self, setup):
        outcome = run_split(setup, 0.0)
        assert outcome.cpu_seconds == 0.0
        assert outcome.gma_seconds > 0

    def test_pure_cpu_has_no_gma_time(self, setup):
        outcome = run_split(setup, 1.0)
        assert outcome.gma_seconds == 0.0
        assert outcome.cpu_seconds > 0
        assert outcome.region.waited


class TestValidation:
    def test_fraction_range(self, setup):
        with pytest.raises(SchedulingError):
            run_split(setup, 1.5)

    def test_empty_loop(self, runtime):
        with pytest.raises(SchedulingError, match="at least one"):
            run_cooperative(runtime, "end", bindings=[],
                            host_fn=lambda b: None,
                            host_work_per_item=CpuWork(1, 1, 1),
                            cpu_fraction=0.5)
