"""The CHI runtime: parallel regions, taskq, timeline, memory models."""

import numpy as np
import pytest

from repro.chi.descriptors import AccessMode
from repro.chi.platform import ExoPlatform
from repro.chi.runtime import ChiRuntime
from repro.errors import ChiError, PragmaError
from repro.isa.types import DataType
from repro.memory.surface import Surface

VECADD = """
    shl.1.w vr1 = i, 3
    ld.8.dw [vr2..vr9] = (A, vr1, 0)
    ld.8.dw [vr10..vr17] = (B, vr1, 0)
    add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
    st.8.dw (C, vr1, 0) = [vr18..vr25]
    end
"""


def setup_vecadd(runtime, n=32):
    space = runtime.platform.space
    a = Surface.alloc(space, "A", n, 1, DataType.DW)
    b = Surface.alloc(space, "B", n, 1, DataType.DW)
    c = Surface.alloc(space, "C", n, 1, DataType.DW)
    a.upload(runtime.platform.host, np.arange(n).reshape(1, n))
    b.upload(runtime.platform.host, (np.arange(n) * 10).reshape(1, n))
    return a, b, c


class TestParallel:
    def test_fork_join_vecadd(self, runtime):
        a, b, c = setup_vecadd(runtime)
        section = runtime.compile_asm(VECADD, name="vecadd")
        region = runtime.parallel(
            section, shared={"A": a, "B": b, "C": c},
            private=[{"i": i} for i in range(4)])
        assert region.waited  # implied barrier without master_nowait
        got = c.download(runtime.platform.host).reshape(-1)
        assert np.array_equal(got, np.arange(32) * 11)
        assert runtime.stats.regions == 1
        assert runtime.stats.shreds == 4

    def test_inline_asm_string_accepted(self, runtime):
        a, b, c = setup_vecadd(runtime)
        runtime.parallel(VECADD, shared={"A": a, "B": b, "C": c},
                         private=[{"i": 0}])
        assert c.download(runtime.platform.host)[0, 0] == 0

    def test_descriptor_clause(self, runtime):
        a, b, c = setup_vecadd(runtime)
        descs = {name: runtime.chi_alloc_desc("X3000", surf, mode)
                 for name, surf, mode in (
                     ("A", a, AccessMode.CHI_INPUT),
                     ("B", b, AccessMode.CHI_INPUT),
                     ("C", c, AccessMode.CHI_OUTPUT))}
        runtime.parallel(VECADD, shared=descs, private=[{"i": 1}])
        got = c.download(runtime.platform.host).reshape(-1)
        assert got[8] == 88.0

    def test_num_threads_spawns_tid_bindings(self, runtime):
        space = runtime.platform.space
        out = Surface.alloc(space, "OUT", 8, 1, DataType.DW)
        region = runtime.parallel(
            "st.1.dw (OUT, tid, 0) = tid\nend",
            shared={"OUT": out}, num_threads=8)
        assert region.result.shreds_executed == 8
        got = out.download(runtime.platform.host).reshape(-1)
        assert np.array_equal(got, np.arange(8.0))

    def test_missing_surface_rejected_before_dispatch(self, runtime):
        with pytest.raises(PragmaError, match="surfaces"):
            runtime.parallel(VECADD, shared={}, private=[{"i": 0}])

    def test_missing_symbol_rejected(self, runtime):
        a, b, c = setup_vecadd(runtime)
        with pytest.raises(PragmaError, match="not bound"):
            runtime.parallel(VECADD, shared={"A": a, "B": b, "C": c},
                             private=[{}])

    def test_every_binding_dict_validated(self, runtime):
        """A hole in any shred's bindings fails up front, not only in the
        first shred's (every shred launches with its own private copy)."""
        a, b, c = setup_vecadd(runtime)
        with pytest.raises(PragmaError, match=r"shred 2"):
            runtime.parallel(VECADD, shared={"A": a, "B": b, "C": c},
                             private=[{"i": 0}, {"i": 1}, {}])

    def test_firstprivate_fills_binding_holes(self, runtime):
        a, b, c = setup_vecadd(runtime)
        region = runtime.parallel(VECADD, shared={"A": a, "B": b, "C": c},
                                  firstprivate={"i": 0}, private=[{}, {}])
        assert region.result.shreds_executed == 2

    def test_needs_private_or_num_threads(self, runtime):
        with pytest.raises(PragmaError, match="num_threads"):
            runtime.parallel("end")

    def test_num_threads_conflict(self, runtime):
        with pytest.raises(PragmaError, match="num_threads"):
            runtime.parallel("end", private=[{}, {}], num_threads=3)

    def test_bad_shared_type(self, runtime):
        with pytest.raises(ChiError, match="must be a Surface"):
            runtime.parallel("end", shared={"X": 42}, num_threads=1)

    def test_wrong_isa_section(self, runtime):
        section = runtime.compile_asm("end")
        with pytest.raises(Exception, match="no accelerator"):
            runtime.parallel(section, target="SPE", num_threads=1)


class TestMasterNowait:
    def test_async_region_overlaps_host_work(self, runtime):
        from repro.cpu.ia32 import CpuWork

        a, b, c = setup_vecadd(runtime)
        region = runtime.parallel(VECADD, shared={"A": a, "B": b, "C": c},
                                  private=[{"i": i} for i in range(4)],
                                  master_nowait=True)
        assert not region.waited
        t_before = runtime.timeline.now
        # host work fully overlaps the region
        host_seconds = runtime.run_host(CpuWork(10_000, 10.0, 0))
        region.wait()
        # overlapped: total < host + gma
        assert runtime.timeline.now < t_before + host_seconds + \
            region.gma_seconds
        assert runtime.timeline.now >= t_before + max(
            host_seconds, region.gma_seconds) - 1e-15

    def test_blocking_region_advances_timeline(self, runtime):
        a, b, c = setup_vecadd(runtime)
        region = runtime.parallel(VECADD, shared={"A": a, "B": b, "C": c},
                                  private=[{"i": 0}])
        assert runtime.timeline.now >= region.gma_seconds


class TestTaskq:
    def test_dependent_tasks_ordered(self, runtime):
        space = runtime.platform.space
        d = Surface.alloc(space, "D", 4, 1, DataType.DW)
        d.upload(runtime.platform.host, np.zeros((1, 4)))
        section = runtime.compile_asm("""
            ld.1.dw vr1 = (D, 0, 0)
            mul.1.dw vr1 = vr1, 3
            add.1.dw vr1 = vr1, inc
            st.1.dw (D, 0, 0) = vr1
            end
        """, name="fma")
        with runtime.taskq() as queue:
            t1 = queue.task(section, captureprivate={"inc": 1},
                            shared={"D": d})
            t2 = queue.task(section, captureprivate={"inc": 2},
                            shared={"D": d}, depends=[t1])
            queue.task(section, captureprivate={"inc": 3},
                       shared={"D": d}, depends=[t2])
        queue.region.wait()
        # ((0*3+1)*3+2)*3+3 = 18: only the dependency order yields this
        assert d.download(runtime.platform.host)[0, 0] == 18.0

    def test_captureprivate_copies_at_enqueue(self, runtime):
        space = runtime.platform.space
        out = Surface.alloc(space, "OUT", 4, 1, DataType.DW)
        section = runtime.compile_asm("st.1.dw (OUT, slot, 0) = v\nend")
        live = {"slot": 0.0, "v": 10.0}
        with runtime.taskq() as queue:
            for i in range(4):
                live["slot"] = float(i)
                live["v"] = float(10 + i)
                queue.task(section, captureprivate=live,
                           shared={"OUT": out})
        queue.region.wait()
        got = out.download(runtime.platform.host).reshape(-1)
        assert got.tolist() == [10.0, 11.0, 12.0, 13.0]

    def test_exception_in_body_skips_launch(self, runtime):
        with pytest.raises(RuntimeError):
            with runtime.taskq() as queue:
                raise RuntimeError("boom")
        assert queue.region is None


class TestMemoryConfigurations:
    def test_data_copy_charges_time_and_bytes(self):
        platform = ExoPlatform(shared_virtual_memory=False)
        runtime = ChiRuntime(platform)
        a, b, c = setup_vecadd(runtime)
        for name, surf, mode in (("A", a, AccessMode.CHI_INPUT),
                                 ("B", b, AccessMode.CHI_INPUT),
                                 ("C", c, AccessMode.CHI_OUTPUT)):
            runtime.chi_alloc_desc("X3000", surf, mode)
        runtime.parallel(VECADD, shared={"A": a, "B": b, "C": c},
                         private=[{"i": 0}])
        assert runtime.stats.bytes_copied == a.nbytes + b.nbytes + c.nbytes
        assert runtime.stats.copy_seconds > 0

    def test_noncc_flushes_host_cache(self):
        platform = ExoPlatform(coherent=False, strict_coherence=True)
        runtime = ChiRuntime(platform)
        a, b, c = setup_vecadd(runtime)  # uploads dirty the host cache
        runtime.parallel(VECADD, shared={"A": a, "B": b, "C": c},
                         private=[{"i": 0}])
        # the pre-dispatch flush emptied the host cache: strict mode
        # would have raised otherwise, and flush time was charged
        assert runtime.stats.flush_seconds > 0

    def test_cc_shared_charges_nothing(self, runtime):
        a, b, c = setup_vecadd(runtime)
        runtime.parallel(VECADD, shared={"A": a, "B": b, "C": c},
                         private=[{"i": 0}])
        assert runtime.stats.copy_seconds == 0
        assert runtime.stats.flush_seconds == 0

    def test_config_names(self):
        assert ExoPlatform().config_name == "CC Shared"
        assert ExoPlatform(coherent=False).config_name == "Non-CC Shared"
        assert ExoPlatform(
            shared_virtual_memory=False).config_name == "Data Copy"


class TestFeatureSemantics:
    def test_sampler_filter_feature_changes_results(self, runtime):
        import numpy as np

        space = runtime.platform.space
        tex = Surface.alloc(space, "T", 4, 4, DataType.UB)
        out = Surface.alloc(space, "O", 4, 1, DataType.F)
        tex.upload(runtime.platform.host,
                   np.array([[0, 100], [200, 60]] * 2,
                            dtype=float).repeat(2, axis=1))
        asm = """
            mov.4.f vr1 = 0.5
            mov.4.f vr2 = 0.5
            sample.4.f vr3 = (T, vr1, vr2)
            st.4.f (O, 0, 0) = vr3
            end
        """
        runtime.parallel(asm, shared={"T": tex, "O": out}, num_threads=1)
        bilinear = out.download(runtime.platform.host)[0, 0]

        runtime.chi_set_feature("X3000", "sampler_filter", "nearest")
        runtime.parallel(asm, shared={"T": tex, "O": out}, num_threads=1)
        nearest = out.download(runtime.platform.host)[0, 0]
        assert bilinear != nearest  # point sampling picks one texel

    def test_invalid_feature_value_rejected(self, runtime):
        with pytest.raises(ChiError, match="accepts"):
            runtime.chi_set_feature("X3000", "sampler_filter", "trilinear")

    def test_unknown_features_stored_verbatim(self, runtime):
        runtime.chi_set_feature("X3000", "my_app_knob", 42)
        assert runtime.feature("X3000", "my_app_knob") == 42

    def test_pershred_priority_orders_queue(self, runtime):
        import numpy as np

        space = runtime.platform.space
        log = Surface.alloc(space, "L", 8, 1, DataType.DW)
        counter = Surface.alloc(space, "K", 1, 1, DataType.DW)
        counter.upload(runtime.platform.host, np.zeros((1, 1)))
        # each shred appends its own id-order: read counter, store tid
        asm = """
            ld.1.dw vr1 = (K, 0, 0)
            st.1.dw (L, vr1, 0) = tid
            add.1.dw vr1 = vr1, 1
            st.1.dw (K, 0, 0) = vr1
            end
        """
        section = runtime.compile_asm(asm)
        from repro.exo.shred import ShredDescriptor

        program = runtime.fatbinary.program(section)
        shreds = [ShredDescriptor(program=program,
                                  bindings={"tid": float(i)},
                                  surfaces={"L": log, "K": counter})
                  for i in range(4)]
        # shred 3 gets top priority, shred 0 comes last
        runtime.chi_set_feature_pershred("X3000", shreds[3].shred_id,
                                         "priority", 10)
        runtime.chi_set_feature_pershred("X3000", shreds[0].shred_id,
                                         "priority", -5)
        runtime._launch(shreds, master_nowait=False)
        order = log.download(runtime.platform.host).reshape(-1)[:4]
        assert order[0] == 3.0 and order[-1] == 0.0
