"""Semantic checks of the CHI C front end."""

import pytest

from repro.errors import SemanticError
from repro.chi.frontend.parser import parse
from repro.chi.frontend.sema import check


def check_source(source):
    check(parse(source))


class TestBindings:
    def test_valid_program_passes(self):
        check_source("""
        int helper(int x) { return x + 1; }
        int main() {
            int y = helper(2);
            return y;
        }
        """)

    def test_missing_main(self):
        with pytest.raises(SemanticError, match="no main"):
            check_source("int f() { return 0; }")

    def test_undeclared_variable(self):
        with pytest.raises(SemanticError, match="undeclared variable 'y'"):
            check_source("int main() { return y; }")

    def test_redeclaration(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            check_source("int main() { int x; int x; return 0; }")

    def test_shadowing_in_inner_scope_allowed(self):
        check_source("int main() { int x; { int x; } return 0; }")

    def test_scope_ends_with_block(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check_source("int main() { { int x; } return x; }")

    def test_for_loop_variable_scoped(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check_source(
                "int main() { for (int i = 0; i < 2; i++) { } return i; }")

    def test_undefined_function(self):
        with pytest.raises(SemanticError, match="undefined function"):
            check_source("int main() { return ghost(); }")

    def test_builtins_allowed(self):
        check_source('int main() { printf("%d", max(1, 2)); return 0; }')

    def test_enum_names_allowed_in_chi_calls(self):
        check_source("""
        int main() {
            int A[8];
            int d = chi_alloc_desc(X3000, A, CHI_INPUT, 8, 1);
            return 0;
        }
        """)

    def test_invalid_assignment_target(self):
        with pytest.raises(SemanticError, match="assignment target"):
            check_source("int main() { 3 = 4; return 0; }")


class TestPragmaPlacement:
    def test_asm_outside_target_rejected(self):
        with pytest.raises(SemanticError, match="__asm block outside"):
            check_source("int main() { __asm { end } return 0; }")

    def test_asm_under_target_ok(self):
        check_source("""
        int main() {
            int A[8];
            #pragma omp parallel target(X3000) shared(A) num_threads(1)
            { __asm { end } }
            return 0;
        }
        """)

    def test_task_outside_taskq_rejected(self):
        with pytest.raises(SemanticError, match="task pragma outside"):
            check_source("""
            int main() {
                #pragma intel omp task target(X3000)
                { __asm { end } }
                return 0;
            }
            """)

    def test_task_inside_taskq_ok(self):
        check_source("""
        int main() {
            int x = 1;
            #pragma intel omp taskq target(X3000)
            {
                #pragma intel omp task target(X3000) captureprivate(x)
                { __asm { end } }
            }
            return 0;
        }
        """)

    def test_clause_variables_must_exist(self):
        with pytest.raises(SemanticError, match="undeclared variable 'A'"):
            check_source("""
            int main() {
                #pragma omp parallel target(X3000) shared(A) num_threads(1)
                { __asm { end } }
                return 0;
            }
            """)

    def test_private_variable_bound_by_region(self):
        check_source("""
        int main() {
            int A[8];
            int n = 8;
            #pragma omp parallel target(X3000) shared(A) private(i)
            {
                for (i = 0; i < n; i++)
                __asm { end }
            }
            return 0;
        }
        """)
