"""Pragma lowering: asm/dsl blocks become fat-binary sections."""

import pytest

from repro.errors import SemanticError
from repro.chi.frontend import ast
from repro.chi.frontend.lower import lower
from repro.chi.frontend.parser import parse


def lower_source(source, name="app"):
    unit = parse(source)
    return unit, lower(unit, name=name)


def find_blocks(stmt, kind, out):
    if isinstance(stmt, kind):
        out.append(stmt)
    for attr in ("body", "then", "orelse"):
        child = getattr(stmt, attr, None)
        if isinstance(child, tuple):
            for s in child:
                find_blocks(s, kind, out)
        elif child is not None and isinstance(child, ast.Stmt):
            find_blocks(child, kind, out)


def test_each_asm_block_gets_unique_section():
    unit, fat = lower_source("""
    int main() {
        int A[8];
        #pragma omp parallel target(X3000) shared(A) num_threads(1)
        { __asm { st.1.dw (A, 0, 0) = 1
                  end } }
        #pragma omp parallel target(X3000) shared(A) num_threads(1)
        { __asm { st.1.dw (A, 1, 0) = 2
                  end } }
        return 0;
    }
    """)
    blocks = []
    find_blocks(unit.function("main").body, ast.AsmBlock, blocks)
    assert sorted(b.section for b in blocks) == [1, 2]
    assert sorted(fat.sections) == [1, 2]
    assert all(s.isa == "X3000" for s in fat.sections.values())


def test_section_names_carry_function_and_line():
    unit, fat = lower_source("""
    int helper() {
        int B[4];
        #pragma omp parallel target(X3000) shared(B) num_threads(1)
        { __asm { end } }
        return 0;
    }
    int main() { return helper(); }
    """)
    (section,) = fat.sections.values()
    assert section.name.startswith("helper.asm@")


def test_task_inherits_taskq_target():
    unit, fat = lower_source("""
    int main() {
        int A[4];
        #pragma intel omp taskq target(X3000)
        {
            #pragma intel omp task shared(A)
            { __asm { end } }
        }
        return 0;
    }
    """)
    assert len(fat.sections) == 1


def test_asm_without_target_rejected_at_lowering():
    unit = parse("""
    int main() {
        #pragma omp parallel for
        { __asm { end } }
        return 0;
    }
    """)
    with pytest.raises(SemanticError, match="outside a target"):
        lower(unit)


def test_host_source_embedded():
    source = "int main() { return 3; }"
    _, fat = lower_source(source)
    assert fat.host_source == source
    assert fat.name == "app"


def test_asm_inside_control_flow_is_lowered():
    unit, fat = lower_source("""
    int main() {
        int A[4];
        int flag = 1;
        if (flag) {
            #pragma omp parallel target(X3000) shared(A) num_threads(1)
            { __asm { end } }
        }
        while (0) {
            #pragma omp parallel target(X3000) shared(A) num_threads(1)
            { __asm { nop
                      end } }
        }
        return 0;
    }
    """)
    assert len(fat.sections) == 2
