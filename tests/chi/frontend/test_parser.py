"""Parser: C constructs and the Figure 5 pragma grammar."""

import pytest

from repro.errors import ParseError
from repro.chi.frontend import ast
from repro.chi.frontend.parser import parse, parse_pragma


def parse_main(body: str) -> ast.FuncDef:
    return parse("int main() { %s }" % body).function("main")


class TestDeclarations:
    def test_scalar_decl(self):
        fn = parse_main("int x = 5;")
        decl = fn.body.body[0]
        assert isinstance(decl, ast.Decl)
        assert decl.name == "x" and decl.type_name == "int"
        assert isinstance(decl.init, ast.IntLit)

    def test_array_decls(self):
        fn = parse_main("int A[10]; float M[4][8];")
        a, m = fn.body.body
        assert len(a.dims) == 1
        assert len(m.dims) == 2
        assert m.type_name == "float"

    def test_function_params(self):
        unit = parse("int f(int a, float b) { return a; } int main() { return 0; }")
        fn = unit.function("f")
        assert fn.params == (("int", "a"), ("float", "b"))

    def test_void_params(self):
        unit = parse("int main(void) { return 0; }")
        assert unit.function("main").params == ()


class TestStatements:
    def test_for_loop_shapes(self):
        fn = parse_main("for (i = 0; i < 10; i++) x = x + 1;")
        loop = fn.body.body[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.ExprStmt)
        assert isinstance(loop.cond, ast.Binary)
        assert isinstance(loop.step, ast.Assign)

    def test_for_with_decl_init(self):
        fn = parse_main("for (int i = 0; i < 4; i = i + 1) { }")
        assert isinstance(fn.body.body[0].init, ast.Decl)

    def test_if_else(self):
        fn = parse_main("if (x) y = 1; else y = 2;")
        stmt = fn.body.body[0]
        assert isinstance(stmt, ast.If)
        assert stmt.orelse is not None

    def test_while_break_continue(self):
        fn = parse_main("while (1) { break; continue; }")
        loop = fn.body.body[0]
        assert isinstance(loop.body.body[0], ast.Break)
        assert isinstance(loop.body.body[1], ast.Continue)

    def test_precedence(self):
        fn = parse_main("x = 1 + 2 * 3 << 1;")
        assign = fn.body.body[0].expr
        # ((1 + (2*3)) << 1)
        assert assign.value.op == "<<"
        assert assign.value.left.op == "+"

    def test_compound_assignment_desugars(self):
        fn = parse_main("x += 2;")
        assign = fn.body.body[0].expr
        assert isinstance(assign, ast.Assign)
        assert assign.value.op == "+"

    def test_index_chains(self):
        fn = parse_main("x = M[1][2];")
        index = fn.body.body[0].expr.value
        assert isinstance(index, ast.Index)
        assert len(index.indices) == 2

    def test_call_with_args(self):
        fn = parse_main("f(1, x, g());")
        call = fn.body.body[0].expr
        assert call.func == "f" and len(call.args) == 3

    def test_syntax_errors(self):
        with pytest.raises(ParseError):
            parse("int main() { int ; }")
        with pytest.raises(ParseError):
            parse("int main() { x = ; }")
        with pytest.raises(ParseError, match="unterminated block"):
            parse("int main() { x = 1;")


class TestPragmaGrammar:
    def test_figure6_pragma(self):
        clauses, kind = parse_pragma(
            "omp parallel target(X3000) shared(A, B, C) "
            "descriptor(A_desc,B_desc,C_desc) private(i) master_nowait", 1)
        assert kind == "parallel"
        assert clauses.target == "X3000"
        assert clauses.shared == ("A", "B", "C")
        assert clauses.descriptor == ("A_desc", "B_desc", "C_desc")
        assert clauses.private == ("i",)
        assert clauses.master_nowait

    def test_parallel_for(self):
        clauses, kind = parse_pragma("omp parallel for shared(D) private(i)",
                                     1)
        assert kind == "parallel"
        assert clauses.is_for
        assert clauses.target is None

    def test_taskq_and_task(self):
        clauses, kind = parse_pragma("intel omp taskq target(X3000)", 1)
        assert kind == "taskq"
        clauses, kind = parse_pragma(
            "intel omp task target(X3000) captureprivate(x, y)", 1)
        assert kind == "task"
        assert clauses.captureprivate == ("x", "y")

    def test_num_threads_expression(self):
        clauses, _ = parse_pragma("omp parallel target(X3000) "
                                  "num_threads(n / 8)", 1)
        assert isinstance(clauses.num_threads, ast.Binary)

    def test_firstprivate(self):
        clauses, _ = parse_pragma(
            "omp parallel target(X3000) firstprivate(a, b)", 1)
        assert clauses.firstprivate == ("a", "b")

    def test_unknown_pragma(self):
        with pytest.raises(ParseError, match="unsupported"):
            parse_pragma("omp sections", 1)
        with pytest.raises(ParseError, match="unsupported"):
            parse_pragma("gcc ivdep", 1)

    def test_unknown_clause(self):
        with pytest.raises(ParseError, match="unknown pragma clause"):
            parse_pragma("omp parallel target(X3000) bogus(x)", 1)

    def test_pragma_attaches_to_block(self):
        unit = parse("""
        int main() {
            int A[8];
            #pragma omp parallel target(X3000) shared(A) num_threads(2)
            {
                __asm { end }
            }
            return 0;
        }
        """)
        stmt = unit.function("main").body.body[1]
        assert isinstance(stmt, ast.ParallelStmt)
        inner = stmt.body.body[0]
        assert isinstance(inner, ast.AsmBlock)
        assert "end" in inner.text
