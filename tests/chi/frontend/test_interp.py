"""Host interpreter + end-to-end CHI C programs."""

import numpy as np
import pytest

from repro.errors import ChiError, SemanticError
from repro.chi.frontend.driver import compile_source, run_source


def run_main(body: str, **kwargs):
    return run_source("int main() { %s }" % body, **kwargs)


class TestExpressions:
    def test_arithmetic(self):
        assert run_main("return 2 + 3 * 4;").exit_value == 14

    def test_c_integer_division_truncates_toward_zero(self):
        assert run_main("return -7 / 2;").exit_value == -3
        assert run_main("return 7 / 2;").exit_value == 3
        assert run_main("return -7 % 2;").exit_value == -1

    def test_division_by_zero(self):
        with pytest.raises(ChiError, match="division by zero"):
            run_main("return 1 / 0;")

    def test_shifts_and_comparisons(self):
        assert run_main("return (1 << 4) >> 2;").exit_value == 4
        assert run_main("return 3 < 5;").exit_value == 1
        assert run_main("return 3 == 4;").exit_value == 0

    def test_logical_short_circuit(self):
        # the short-circuited call would fail loudly
        result = run_source("""
        int boom() { return 1 / 0; }
        int main() { return 0 && boom(); }
        """)
        assert result.exit_value == 0

    def test_unary(self):
        assert run_main("return -(3) + !0;").exit_value == -2

    def test_float_arithmetic(self):
        assert run_main("float x = 1.5; float y = x * 2.0; "
                        "return y == 3.0;").exit_value == 1

    def test_int_decl_truncates_float_init(self):
        assert run_main("int x = 3.9; return x;").exit_value == 3


class TestControlFlow:
    def test_for_loop(self):
        assert run_main(
            "int s = 0; for (int i = 1; i <= 10; i++) s += i; return s;"
        ).exit_value == 55

    def test_while_with_break_continue(self):
        assert run_main("""
            int i = 0; int s = 0;
            while (1) {
                i += 1;
                if (i > 10) break;
                if (i % 2) continue;
                s += i;
            }
            return s;
        """).exit_value == 30

    def test_if_else(self):
        assert run_main(
            "int x = 5; if (x > 3) return 1; else return 2;").exit_value == 1

    def test_nested_functions(self):
        result = run_source("""
        int square(int x) { return x * x; }
        int sum_squares(int n) {
            int s = 0;
            for (int i = 1; i <= n; i++) s += square(i);
            return s;
        }
        int main() { return sum_squares(4); }
        """)
        assert result.exit_value == 30

    def test_wrong_arity(self):
        with pytest.raises(ChiError, match="takes 1 arguments"):
            run_source("int f(int x) { return x; } int main() { return f(); }")


class TestArrays:
    def test_1d_array_roundtrip(self):
        assert run_main("""
            int A[8];
            for (int i = 0; i < 8; i++) A[i] = i * i;
            return A[5];
        """).exit_value == 25

    def test_2d_array(self):
        assert run_main("""
            int M[3][4];
            M[2][1] = 42;
            return M[2][1] + M[0][0];
        """).exit_value == 42

    def test_arrays_live_in_shared_space(self):
        result = run_main("int A[4]; A[0] = 7; return A[0];")
        # the surface exists in the platform's address space
        assert result.runtime.platform.space.faults_serviced >= 1

    def test_out_of_bounds(self):
        with pytest.raises(ChiError, match="out of bounds"):
            run_main("int A[4]; return A[4];")
        with pytest.raises(ChiError, match="out of bounds"):
            run_main("int M[2][2]; M[1][2] = 0; return 0;")

    def test_dimension_mismatch(self):
        with pytest.raises(SemanticError, match="dimension"):
            run_main("int M[2][2]; return M[1];")

    def test_float_array(self):
        assert run_main("""
            float F[4];
            F[1] = 2.5;
            return F[1] == 2.5;
        """).exit_value == 1

    def test_non_positive_dimension(self):
        with pytest.raises(ChiError, match="non-positive"):
            run_main("int n = 0; int A[n]; return 0;")


class TestPrintf:
    def test_formats(self):
        result = run_main(
            'printf("x=%d y=%.1f s=%s\\n", 3, 2.5, "hi"); return 0;')
        assert result.output == "x=3 y=2.5 s=hi\n"

    def test_format_error(self):
        with pytest.raises(ChiError, match="printf format"):
            run_main('printf("%d", "nope"); return 0;')


class TestHeterogeneousRegions:
    def test_parallel_for_loop_form(self):
        result = run_source("""
        int main() {
            int n = 32;
            int A[32];
            int B[32];
            int i;
            for (i = 0; i < n; i++) A[i] = i;
            #pragma omp parallel target(X3000) shared(A, B) private(i)
            {
                for (i = 0; i < n / 8; i++)
                __asm {
                    shl.1.w vr1 = i, 3
                    ld.8.dw [vr2..vr9] = (A, vr1, 0)
                    add.8.dw [vr10..vr17] = [vr2..vr9], [vr2..vr9]
                    st.8.dw (B, vr1, 0) = [vr10..vr17]
                    end
                }
            }
            int errors = 0;
            for (i = 0; i < n; i++)
                if (B[i] != 2 * A[i]) errors++;
            return errors;
        }
        """)
        assert result.exit_value == 0
        assert result.runtime.stats.shreds == 4

    def test_num_threads_form(self):
        result = run_source("""
        int main() {
            int OUT[4];
            #pragma omp parallel target(X3000) shared(OUT) num_threads(4)
            {
                __asm {
                    st.1.dw (OUT, tid, 0) = tid
                    end
                }
            }
            return OUT[3];
        }
        """)
        assert result.exit_value == 3

    def test_firstprivate_binding(self):
        result = run_source("""
        int main() {
            int OUT[2];
            int scale = 21;
            #pragma omp parallel target(X3000) shared(OUT) firstprivate(scale) num_threads(2)
            {
                __asm {
                    mul.1.dw vr1 = tid, scale
                    st.1.dw (OUT, tid, 0) = vr1
                    end
                }
            }
            return OUT[1];
        }
        """)
        assert result.exit_value == 21

    def test_master_nowait_pending_until_chi_wait(self):
        result = run_source("""
        int main() {
            int OUT[1];
            #pragma omp parallel target(X3000) shared(OUT) num_threads(1) master_nowait
            {
                __asm {
                    st.1.dw (OUT, 0, 0) = 9
                    end
                }
            }
            chi_wait();
            return OUT[0];
        }
        """)
        assert result.exit_value == 9

    def test_taskq_in_c(self):
        result = run_source("""
        int main() {
            int D[1];
            D[0] = 5;
            int inc = 3;
            #pragma intel omp taskq target(X3000)
            {
                #pragma intel omp task target(X3000) shared(D) captureprivate(inc)
                {
                    __asm {
                        ld.1.dw vr1 = (D, 0, 0)
                        add.1.dw vr1 = vr1, inc
                        st.1.dw (D, 0, 0) = vr1
                        end
                    }
                }
            }
            return D[0];
        }
        """)
        assert result.exit_value == 8

    def test_descriptor_clause_and_apis(self):
        result = run_source("""
        int main() {
            int A[8];
            for (int i = 0; i < 8; i++) A[i] = i;
            int B[8];
            int A_desc = chi_alloc_desc(X3000, A, CHI_INPUT, 8, 1);
            int B_desc = chi_alloc_desc(X3000, B, CHI_OUTPUT, 8, 1);
            chi_set_feature(X3000, "priority", 2);
            #pragma omp parallel target(X3000) shared(A, B) descriptor(A_desc, B_desc) num_threads(1)
            {
                __asm {
                    ld.8.dw [vr1..vr8] = (A, 0, 0)
                    add.8.dw [vr9..vr16] = [vr1..vr8], 100
                    st.8.dw (B, 0, 0) = [vr9..vr16]
                    end
                }
            }
            chi_free_desc(X3000, A_desc);
            return B[7];
        }
        """)
        assert result.exit_value == 107

    def test_host_parallel_for_is_functional(self):
        result = run_source("""
        int main() {
            int D[8];
            int F[8];
            int i;
            for (i = 0; i < 8; i++) D[i] = i;
            #pragma omp parallel for shared(D, F) private(i)
            {
                for (i = 0; i < 8; i++) F[i] = D[i] + 1;
            }
            return F[7];
        }
        """)
        assert result.exit_value == 8

    def test_bare_asm_without_num_threads_rejected(self):
        with pytest.raises(SemanticError, match="num_threads"):
            run_source("""
            int main() {
                int A[4];
                #pragma omp parallel target(X3000) shared(A)
                { __asm { end } }
                return 0;
            }
            """)


class TestDriver:
    def test_compiled_program_reusable(self, platform):
        program = compile_source("""
        int main() {
            int OUT[1];
            #pragma omp parallel target(X3000) shared(OUT) num_threads(1)
            { __asm { st.1.dw (OUT, 0, 0) = 4
                      end } }
            return OUT[0];
        }
        """)
        assert len(program.fatbinary.sections) == 1
        first = program.run(platform=platform)
        second = program.run()  # fresh platform
        assert first.exit_value == second.exit_value == 4

    def test_fat_binary_holds_host_source(self):
        program = compile_source("int main() { return 0; }", name="app")
        assert "int main()" in program.fatbinary.host_source
        assert program.fatbinary.name == "app"


class TestAdvancedPrograms:
    def test_recursion(self):
        result = run_source("""
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
        """)
        assert result.exit_value == 55

    def test_nested_taskq(self):
        """Paper: "A taskq pragma may be nested within either a taskq
        block or a task block; in both cases a subordinate queue is
        formed"."""
        result = run_source("""
        int main() {
            int D[2];
            D[0] = 0;
            D[1] = 0;
            int one = 1;
            #pragma intel omp taskq target(X3000)
            {
                #pragma intel omp task target(X3000) shared(D) captureprivate(one)
                {
                    __asm {
                        st.1.dw (D, 0, 0) = one
                        end
                    }
                }
                #pragma intel omp taskq target(X3000)
                {
                    #pragma intel omp task target(X3000) shared(D) captureprivate(one)
                    {
                        __asm {
                            st.1.dw (D, 1, 0) = one
                            end
                        }
                    }
                }
            }
            return D[0] + D[1];
        }
        """)
        assert result.exit_value == 2

    def test_pending_region_synced_at_exit(self):
        # no chi_wait(): the implicit barrier at main exit covers it
        result = run_source("""
        int main() {
            int OUT[1];
            #pragma omp parallel target(X3000) shared(OUT) num_threads(1) master_nowait
            { __asm { st.1.dw (OUT, 0, 0) = 5
                      end } }
            return 0;
        }
        """)
        assert not result.runtime.timeline.now == 0.0

    def test_2d_array_bound_to_region(self):
        result = run_source("""
        int main() {
            int IMG[4][16];
            for (int y = 0; y < 4; y++)
                for (int x = 0; x < 16; x++)
                    IMG[y][x] = y * 16 + x;
            int OUT[4][16];
            #pragma omp parallel target(X3000) shared(IMG, OUT) private(row)
            {
                for (int row = 0; row < 4; row++)
                __asm {
                    mul.1.dw vr1 = row, 16
                    ld.16.dw vr2 = (IMG, vr1, 0)
                    add.16.dw vr3 = vr2, 1000
                    st.16.dw (OUT, vr1, 0) = vr3
                    end
                }
            }
            return OUT[2][5] - 1000 - 37;
        }
        """)
        assert result.exit_value == 0

    def test_float_function_and_mixed_arithmetic(self):
        result = run_source("""
        float half(float x) { return x / 2.0; }
        int main() {
            float y = half(7.0);
            int z = y * 2;
            return z;
        }
        """)
        assert result.exit_value == 7
