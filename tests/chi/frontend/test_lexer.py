"""Lexer: tokens, pragma capture, __asm capture."""

import pytest

from repro.errors import LexError
from repro.chi.frontend.tokens import Tok, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


class TestBasics:
    def test_integers_and_floats(self):
        toks = tokenize("42 3.5 1e3 2.5f .25")
        assert [t.kind for t in toks[:-1]] == [
            Tok.INT, Tok.FLOAT, Tok.FLOAT, Tok.FLOAT, Tok.FLOAT]
        assert toks[0].value == 42
        assert toks[1].value == 3.5
        assert toks[2].value == 1000.0
        assert toks[3].value == 2.5

    def test_identifiers_and_keywords(self):
        toks = tokenize("int x for while if else return void float")
        assert [t.kind for t in toks[:-1]] == [
            Tok.KW_INT, Tok.IDENT, Tok.KW_FOR, Tok.KW_WHILE, Tok.KW_IF,
            Tok.KW_ELSE, Tok.KW_RETURN, Tok.KW_VOID, Tok.KW_FLOAT]

    def test_operators(self):
        toks = tokenize("a <= b >> 2 && c != d ++ e += 1")
        ops = [t.kind for t in toks if t.kind not in (Tok.IDENT, Tok.INT,
                                                      Tok.EOF)]
        assert ops == [Tok.LE, Tok.SHR, Tok.ANDAND, Tok.NE, Tok.PLUSPLUS,
                       Tok.PLUSEQ]

    def test_string_literal(self):
        tok = tokenize('"hi\\n"')[0]
        assert tok.kind is Tok.STRING
        assert tok.value == "hi\n"

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated string"):
            tokenize('"oops')

    def test_comments_stripped(self):
        source = "a // line\n/* block\nspanning */ b"
        toks = tokenize(source)
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated block"):
            tokenize("/* forever")

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("a $ b")


class TestPragmas:
    def test_pragma_captured_verbatim(self):
        toks = tokenize("#pragma omp parallel target(X3000) shared(A)\nx;")
        assert toks[0].kind is Tok.PRAGMA
        assert toks[0].value == "omp parallel target(X3000) shared(A)"
        assert toks[1].kind is Tok.IDENT

    def test_pragma_line_continuation(self):
        toks = tokenize("#pragma omp parallel \\\n shared(A)\nx;")
        assert "shared(A)" in toks[0].value
        assert toks[1].text == "x"

    def test_non_pragma_directive_rejected(self):
        with pytest.raises(LexError, match="unsupported preprocessor"):
            tokenize("#include <stdio.h>")


class TestAsmBlocks:
    def test_asm_body_captured(self):
        toks = tokenize("__asm { mov.1.dw vr1 = 0\nend } x")
        assert toks[0].kind is Tok.ASM
        assert "mov.1.dw vr1 = 0" in toks[0].value
        assert toks[1].text == "x"

    def test_asm_requires_brace(self):
        with pytest.raises(LexError, match="followed by"):
            tokenize("__asm mov")

    def test_unterminated_asm(self):
        with pytest.raises(LexError, match="unterminated __asm"):
            tokenize("__asm { forever")

    def test_asm_like_identifier_not_special(self):
        toks = tokenize("__asmx = 1;")
        assert toks[0].kind is Tok.IDENT
        assert toks[0].text == "__asmx"
