"""Synthetic input generators."""

import numpy as np

from repro.kernels.images import noise_field, rgb_image, telecined_frames
from repro.kernels.images import test_image as make_image
from repro.kernels.images import video_frames


class TestImage:
    def test_deterministic(self):
        assert np.array_equal(make_image(32, 16, 5), make_image(32, 16, 5))

    def test_seed_changes_content(self):
        assert not np.array_equal(make_image(32, 16, 5), make_image(32, 16, 6))

    def test_range_and_integrality(self):
        img = make_image(64, 48)
        assert img.min() >= 0 and img.max() <= 255
        assert np.array_equal(img, np.floor(img))

    def test_shape(self):
        assert make_image(10, 7).shape == (7, 10)

    def test_has_texture(self):
        img = make_image(64, 64)
        assert img.std() > 10  # not flat


class TestRgb:
    def test_three_distinct_planes(self):
        planes = rgb_image(16, 16)
        assert set(planes) == {"R", "G", "B"}
        assert not np.array_equal(planes["R"], planes["G"])


class TestVideo:
    def test_consecutive_frames_correlate(self):
        frames = video_frames(64, 32, 4)
        assert len(frames) == 4
        diff_near = np.abs(frames[0] - frames[1]).mean()
        other = make_image(64, 32, seed=999)
        diff_far = np.abs(frames[0] - other).mean()
        assert diff_near < diff_far

    def test_frames_do_move(self):
        frames = video_frames(64, 32, 2)
        assert not np.array_equal(frames[0], frames[1])


class TestTelecine:
    def test_cadence_structure(self):
        """Frames 0,1 of each 5-group come from film frame A, frames 3,4
        from B, frame 2 is mixed: so t vs t+2 SADs dip once per group."""
        frames = telecined_frames(64, 48, 12, seed=2)
        sads = [np.abs(frames[i + 2] - frames[i]).sum()
                for i in range(10)]
        folded = np.array(sads[:10]).reshape(2, 5).mean(axis=0)
        # at least one phase is clearly quieter than the loudest
        assert folded.min() < 0.5 * folded.max()

    def test_deterministic(self):
        a = telecined_frames(32, 16, 7, seed=1)
        b = telecined_frames(32, 16, 7, seed=1)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestNoise:
    def test_full_byte_range(self):
        field = noise_field(128, 128)
        assert field.min() >= 0 and field.max() <= 255
        assert field.std() > 50  # roughly uniform
