"""The kernel run harness itself."""

import numpy as np
import pytest

from repro.kernels import (
    Geometry,
    allocate_surfaces,
    build_program,
    kernel_by_abbrev,
    run_kernel_on_gma,
    scale_cycles_to_full_run,
)


@pytest.fixture
def sepia():
    return kernel_by_abbrev("SepiaTone")


class TestBuilders:
    def test_build_program_is_validated(self, sepia):
        program = build_program(sepia, Geometry(16, 16))
        assert program.name == "SepiaTone"
        program.validate()

    def test_allocate_surfaces_names_and_dims(self, sepia, space):
        surfaces = allocate_surfaces(sepia, Geometry(16, 8), space)
        assert set(surfaces) == {"R", "G", "B", "OR", "OG", "OB"}
        assert surfaces["R"].width == 16 and surfaces["R"].height == 8


class TestRunKnobs:
    def test_max_frames_caps_invocations(self):
        kalman = kernel_by_abbrev("Kalman")
        geom = Geometry(32, 32, frames=5)
        result = run_kernel_on_gma(kalman, geom, max_frames=2)
        assert result.frames_run == 2

    def test_scale_cycles_extrapolates(self):
        kalman = kernel_by_abbrev("Kalman")
        geom = Geometry(32, 32, frames=4)
        result = run_kernel_on_gma(kalman, geom, max_frames=2)
        full = scale_cycles_to_full_run(result)
        assert full == pytest.approx(result.gma_cycles * 2)

    def test_scale_cycles_empty_run(self, sepia):
        from repro.kernels.harness import KernelRunResult

        empty = KernelRunResult(kernel=sepia, geometry=Geometry(8, 8))
        assert scale_cycles_to_full_run(empty) == 0.0

    def test_verify_false_skips_comparison(self, sepia, monkeypatch):
        calls = []
        monkeypatch.setattr(type(sepia), "compare",
                            lambda self, *a: calls.append(a))
        result = run_kernel_on_gma(sepia, Geometry(16, 16), verify=False)
        assert not calls
        assert not result.verified

    def test_verification_failure_raises(self, sepia, monkeypatch):
        # corrupt the reference: any device/reference divergence must raise
        original = type(sepia).reference_frame

        def corrupted(self, geom, inputs, state):
            out, state = original(self, geom, inputs, state)
            out["OR"] = out["OR"] + 1
            return out, state

        monkeypatch.setattr(type(sepia), "reference_frame", corrupted)
        with pytest.raises(AssertionError, match="mismatch"):
            run_kernel_on_gma(sepia, Geometry(16, 16))

    def test_seed_changes_inputs_not_correctness(self, sepia):
        a = run_kernel_on_gma(sepia, Geometry(16, 16), seed=1)
        b = run_kernel_on_gma(sepia, Geometry(16, 16), seed=2)
        assert not np.array_equal(a.outputs["OR"], b.outputs["OR"])

    def test_shared_device_accumulates_retirements(self, device, space):
        sepia = kernel_by_abbrev("SepiaTone")
        run_kernel_on_gma(sepia, Geometry(16, 16), device=device,
                          space=space)
        run_kernel_on_gma(sepia, Geometry(16, 16), device=device,
                          space=space)
        retired = sum(s.shreds_retired for s in device.sequencers)
        assert retired == 8  # 2 runs x 4 tiles
