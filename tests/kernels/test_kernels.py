"""The Table 2 media kernels: functional verification and decomposition."""

import numpy as np
import pytest

from repro.kernels import (
    ALL_KERNELS,
    Geometry,
    kernel_by_abbrev,
    run_kernel_on_gma,
)
from repro.kernels.base import PaperConfig, SurfaceSpec
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.perf.study import SMOKE_GEOMETRIES

KERNELS = [cls() for cls in ALL_KERNELS]


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.abbrev)
class TestEveryKernel:
    def test_assembles_and_validates(self, kernel):
        geom = SMOKE_GEOMETRIES[kernel.abbrev]
        program = assemble(kernel.asm_source(geom), kernel.abbrev)
        assert len(program) > 0

    def test_runs_and_matches_reference(self, kernel):
        """The central functional claim: every shred program computes
        bit-for-bit what the numpy reference computes."""
        geom = SMOKE_GEOMETRIES[kernel.abbrev]
        result = run_kernel_on_gma(kernel, geom, seed=9, max_frames=1,
                                   verify=True)
        assert result.verified
        assert result.shreds == kernel.frame_shreds(geom)
        assert result.instructions > 0

    def test_symbols_are_covered_by_bindings(self, kernel):
        geom = SMOKE_GEOMETRIES[kernel.abbrev]
        program = assemble(kernel.asm_source(geom))
        bound = set(kernel.constants(geom))
        bound |= set(next(iter(kernel.shred_bindings(geom))))
        assert program.scalar_symbols() <= bound
        surfaces = {s.name for s in kernel.surface_specs(geom)}
        assert program.surface_symbols() <= surfaces

    def test_io_bytes_positive(self, kernel):
        geom = SMOKE_GEOMETRIES[kernel.abbrev]
        inp, out = kernel.io_bytes_per_frame(geom)
        assert inp > 0 and out >= 0

    def test_paper_configs_present(self, kernel):
        configs = kernel.paper_configs()
        assert configs, f"{kernel.abbrev} has no Table 2 configuration"
        for config in configs:
            assert isinstance(config, PaperConfig)
            assert config.paper_shreds > 0

    def test_cpu_work_sane(self, kernel):
        geom = SMOKE_GEOMETRIES[kernel.abbrev]
        work = kernel.cpu_work(geom)
        assert work.pixels > 0
        assert work.cycles_per_pixel > 0


class TestTable2Decomposition:
    """Shred-count formulas vs. the paper's Table 2 (exact except the one
    documented LinearFilter deviation)."""

    @pytest.mark.parametrize("abbrev,width,height,frames,expected", [
        ("LinearFilter", 2000, 2000, 1, 83500),
        ("SepiaTone", 640, 480, 1, 4800),
        ("SepiaTone", 2000, 2000, 1, 62500),
        ("FGT", 1024, 768, 1, 96),
        ("Bicubic", 720, 480, 30, 2700),
        ("Kalman", 512, 256, 32, 4096),
        ("Kalman", 2048, 1024, 32, 65536),
        ("FMD", 720, 480, 60, 1276),
        ("AlphaBlend", 720, 480, 30, 2700),
        ("BOB", 720, 480, 30, 2700),
        ("ADVDI", 720, 480, 30, 2700),
        ("ProcAmp", 720, 480, 30, 2700),
    ])
    def test_exact_counts(self, abbrev, width, height, frames, expected):
        kernel = kernel_by_abbrev(abbrev)
        assert kernel.shred_count(Geometry(width, height, frames)) == expected

    def test_linearfilter_small_config_close(self):
        kernel = kernel_by_abbrev("LinearFilter")
        ours = kernel.shred_count(Geometry(640, 480))
        assert ours == 6400  # paper: 6480 (+1.25%), see module docstring


class TestSpecificBehaviours:
    def test_bob_preserves_field_lines(self):
        kernel = kernel_by_abbrev("BOB")
        geom = Geometry(80, 48)
        result = run_kernel_on_gma(kernel, geom, seed=2)
        field = kernel.make_frame_inputs(geom, 0, 2)["FIELD"]
        assert np.array_equal(result.outputs["OUT"][0::2], field)

    def test_kalman_state_advances_across_frames(self):
        kernel = kernel_by_abbrev("Kalman")
        geom = Geometry(64, 64, frames=3)
        result = run_kernel_on_gma(kernel, geom, seed=2, max_frames=3)
        assert result.frames_run == 3  # verified each frame against the
        # threaded reference state inside the harness

    def test_fmd_single_launch_covers_all_windows(self):
        kernel = kernel_by_abbrev("FMD")
        geom = Geometry(96, 32, frames=5)
        assert kernel.device_invocations(geom) == 1
        assert kernel.shred_count(geom) == 3 * 3  # 3 strips x 3 windows
        result = run_kernel_on_gma(kernel, geom, seed=2)
        assert result.shreds == 9

    def test_alpha_blend_uses_sampler(self):
        kernel = kernel_by_abbrev("AlphaBlend")
        geom = Geometry(80, 48)
        result = run_kernel_on_gma(kernel, geom, seed=2)
        assert result.sampler_samples == geom.frame_pixels

    def test_bicubic_even_pixels_copy_source(self):
        kernel = kernel_by_abbrev("Bicubic")
        geom = Geometry(160, 96)
        result = run_kernel_on_gma(kernel, geom, seed=2)
        src = kernel.make_frame_inputs(geom, 0, 2)["SRC"]
        assert np.array_equal(result.outputs["OUT"][0::2, 0::2], src)

    def test_sepia_is_monotone_in_brightness(self):
        kernel = kernel_by_abbrev("SepiaTone")
        dark = {c: np.full((8, 8), 10.0) for c in "RGB"}
        bright = {c: np.full((8, 8), 200.0) for c in "RGB"}
        geom = Geometry(8, 8)
        out_dark, _ = kernel.reference_frame(geom, dark, {})
        out_bright, _ = kernel.reference_frame(geom, bright, {})
        assert (out_bright["OR"] > out_dark["OR"]).all()

    def test_advdi_weaves_when_still(self):
        kernel = kernel_by_abbrev("ADVDI")
        geom = Geometry(80, 48)
        frame = np.tile(np.arange(80.0), (48, 1))
        out, _ = kernel.reference_frame(geom, {"CUR": frame, "PREV": frame},
                                        {})
        # zero motion everywhere: odd rows weave from PREV == CUR
        assert np.array_equal(out["OUT"], frame)

    def test_procamp_identity_settings(self):
        kernel = kernel_by_abbrev("ProcAmp")
        geom = Geometry(80, 48)
        inputs = kernel.make_frame_inputs(geom, 0, 1)
        out, _ = kernel.reference_frame(geom, inputs, {})
        # contrast > 1 stretches around 16: dark pixels get darker
        dark_in = inputs["Y"] < 16
        assert (out["YO"][dark_in] <= inputs["Y"][dark_in] + 8 + 1).all()

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Geometry(0, 10)
        with pytest.raises(ValueError):
            kernel_by_abbrev("Bicubic").surface_specs(Geometry(7, 4))

    def test_kernel_lookup(self):
        assert kernel_by_abbrev("bob").abbrev == "BOB"
        with pytest.raises(KeyError):
            kernel_by_abbrev("nonsense")

    def test_surface_spec_role_validation(self):
        with pytest.raises(ValueError):
            SurfaceSpec("X", "banana", DataType.UB, 1, 1)


class TestGeometryValidation:
    def test_misaligned_width_rejected_with_message(self):
        kernel = kernel_by_abbrev("ProcAmp")
        with pytest.raises(ValueError, match="tile width 80"):
            run_kernel_on_gma(kernel, Geometry(81, 48))

    def test_misaligned_height_rejected(self):
        kernel = kernel_by_abbrev("SepiaTone")
        with pytest.raises(ValueError, match="tile height 8"):
            kernel.check_geometry(Geometry(16, 13))

    def test_fgt_width_step(self):
        with pytest.raises(ValueError, match="strip loop step"):
            kernel_by_abbrev("FGT").check_geometry(Geometry(24, 16))

    def test_fmd_needs_three_frames(self):
        with pytest.raises(ValueError, match="at least 3"):
            kernel_by_abbrev("FMD").check_geometry(Geometry(64, 32, frames=2))

    def test_counting_still_works_for_unaligned(self):
        kernel = kernel_by_abbrev("LinearFilter")
        # the 2000x2000 Table 2 row is not 6-aligned but still countable
        assert kernel.shred_count(Geometry(2000, 2000)) == 83500

    def test_aligned_geometries_pass(self):
        for cls in ALL_KERNELS:
            kernel = cls()
            from repro.perf.study import SMOKE_GEOMETRIES

            kernel.check_geometry(SMOKE_GEOMETRIES[kernel.abbrev])
