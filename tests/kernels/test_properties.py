"""Property-based tests on kernel reference semantics.

These pin down mathematical invariants of the filters themselves (the
device implementations are already bit-checked against the references, so
invariants proven on the references hold for the device too).
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels import Geometry, kernel_by_abbrev

pixels = st.integers(min_value=0, max_value=255)


def image(w, h):
    return arrays(np.float64, (h, w), elements=pixels.map(float))


@given(image(16, 8))
def test_linear_filter_preserves_range_and_flat_images(img):
    kernel = kernel_by_abbrev("LinearFilter")
    out, _ = kernel.reference_frame(Geometry(16, 8), {"SRC": img}, {})
    result = out["OUT"]
    assert result.min() >= 0 and result.max() <= 255
    # smoothing cannot exceed the local extremes
    assert result.max() <= img.max()
    assert result.min() >= img.min() - 1  # -1: the //9 truncation


@given(pixels)
def test_linear_filter_fixed_point_on_constant_image(value):
    kernel = kernel_by_abbrev("LinearFilter")
    img = np.full((8, 16), float(value))
    out, _ = kernel.reference_frame(Geometry(16, 8), {"SRC": img}, {})
    assert (out["OUT"] == float(9 * value // 9)).all()


@given(image(16, 8), image(16, 8))
def test_kalman_state_moves_toward_observation(state, obs):
    kernel = kernel_by_abbrev("Kalman")
    out, _ = kernel.reference_frame(
        Geometry(16, 8), {"STATE": state, "OBS": obs}, {})
    new = out["STATE"]
    # the filtered state lies within the [state, obs] interval (rounded)
    lo = np.minimum(state, obs) - 1
    hi = np.maximum(state, obs) + 1
    assert ((new >= lo) & (new <= hi)).all()


@given(image(16, 8))
def test_kalman_converges_to_constant_observation(obs):
    kernel = kernel_by_abbrev("Kalman")
    state = {"kalman": np.zeros_like(obs)}
    geom = Geometry(16, 8)
    for _ in range(40):
        out, state = kernel.reference_frame(geom, {"OBS": obs}, state)
    # with gain 1/4, forty rounds land within rounding of the target
    assert (np.abs(out["STATE"] - obs) <= 2).all()


@given(image(16, 8))
def test_bob_output_interleaves_field(field):
    kernel = kernel_by_abbrev("BOB")
    geom = Geometry(16, 16)
    out, _ = kernel.reference_frame(geom, {"FIELD": field}, {})
    full = out["OUT"]
    assert np.array_equal(full[0::2], field)
    # interpolated lines lie between their neighbours
    for k in range(7):
        lo = np.minimum(field[k], field[k + 1])
        hi = np.maximum(field[k], field[k + 1])
        assert ((full[2 * k + 1] >= lo) & (full[2 * k + 1] <= hi + 1)).all()


@given(image(16, 16), image(16, 16))
def test_advdi_selects_between_weave_and_bob(cur, prev):
    kernel = kernel_by_abbrev("ADVDI")
    geom = Geometry(16, 16)
    out, _ = kernel.reference_frame(geom, {"CUR": cur, "PREV": prev}, {})
    full = out["OUT"]
    assert np.array_equal(full[0::2], cur[0::2])
    for y in range(1, 16, 2):
        y2 = min(y + 1, 15)
        bob = np.floor((cur[y - 1] + cur[y2] + 1) / 2.0)
        weave = prev[y]
        choice_ok = (full[y] == bob) | (full[y] == weave)
        assert choice_ok.all()


@given(st.floats(min_value=0.0, max_value=255.0))
def test_procamp_is_monotone(v):
    kernel = kernel_by_abbrev("ProcAmp")
    geom = Geometry(16, 8)
    low = {k: np.full((8, 16), v) for k in ("Y", "U", "V")}
    high = {k: np.full((8, 16), min(v + 10, 255.0)) for k in ("Y", "U", "V")}
    out_low, _ = kernel.reference_frame(geom, low, {})
    out_high, _ = kernel.reference_frame(geom, high, {})
    for plane in ("YO", "UO", "VO"):
        assert (out_high[plane] >= out_low[plane]).all()


@given(image(8, 4))
def test_bicubic_interpolates_within_local_range_on_smooth_data(src):
    """Catmull-Rom can overshoot, but the final clamp keeps byte range."""
    kernel = kernel_by_abbrev("Bicubic")
    geom = Geometry(16, 8)
    out, _ = kernel.reference_frame(geom, {"SRC": src}, {})
    result = out["OUT"]
    assert result.min() >= 0 and result.max() <= 255
    assert np.array_equal(result[0::2, 0::2], src)
