"""Report formatters produce the rows the paper's artifacts need."""

import pytest

from repro.kernels import kernel_by_abbrev
from repro.perf.report import (
    format_figure7,
    format_figure8,
    format_figure10,
    format_flush_ablation,
)
from repro.perf.study import SMOKE_GEOMETRIES, measure_kernel


@pytest.fixture(scope="module")
def mini_suite():
    return {
        abbrev: measure_kernel(kernel_by_abbrev(abbrev),
                               SMOKE_GEOMETRIES[abbrev])
        for abbrev in ("BOB", "SepiaTone")
    }


def test_figure7_rows(mini_suite):
    text = format_figure7(mini_suite)
    assert "BOB" in text and "SepiaTone" in text
    assert "1.41x (exact)" in text
    assert "GMA bound by" in text


def test_figure8_rows_and_average(mini_suite):
    text = format_figure8(mini_suite)
    assert "paper 70.5%" in text and "paper 85.3%" in text
    assert "AVERAGE" in text
    # speedups render with an x suffix
    assert text.count("x") > 4


def test_figure10_rows(mini_suite):
    text = format_figure10(mini_suite)
    assert "0% on IA32" in text
    assert "oracle" in text
    for line in text.splitlines()[3:]:
        # oracle gain column ends with a percentage
        assert "%" in line


def test_flush_ablation_rows(mini_suite):
    text = format_flush_ablation(mini_suite["SepiaTone"])
    assert "up-front flush @ 2 GB/s" in text
    assert "paper: 3.15x" in text
    assert "interleaved" in text
