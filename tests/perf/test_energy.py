"""The EPI energy model (paper section 1)."""

import pytest

from repro.kernels import kernel_by_abbrev
from repro.perf.energy import (
    CPU_EPI,
    GMA_EPI,
    EnergyEstimate,
    estimate_energy,
    format_energy_table,
)
from repro.perf.study import SMOKE_GEOMETRIES, measure_kernel


@pytest.fixture(scope="module")
def measurement():
    return measure_kernel(kernel_by_abbrev("SepiaTone"),
                          SMOKE_GEOMETRIES["SepiaTone"])


def test_paper_epi_constants():
    assert CPU_EPI == pytest.approx(10e-9)
    assert GMA_EPI == pytest.approx(0.3e-9)


def test_estimate_fields(measurement):
    est = estimate_energy(measurement)
    assert est.kernel_abbrev == "SepiaTone"
    assert est.gma_instructions == measurement.instructions
    assert est.cpu_joules == pytest.approx(est.cpu_instructions * CPU_EPI)
    assert est.gma_joules == pytest.approx(est.gma_instructions * GMA_EPI)


def test_offload_saves_energy(measurement):
    est = estimate_energy(measurement)
    assert est.energy_ratio > 5
    assert est.edp_ratio > est.energy_ratio  # it is faster AND cheaper


def test_power_is_plausible(measurement):
    est = estimate_energy(measurement)
    # a Core 2 core burns tens of watts; the GMA a handful
    assert 5 < est.cpu_watts < 100
    assert est.gma_watts < est.cpu_watts


def test_custom_epi_scales_linearly(measurement):
    base = estimate_energy(measurement)
    doubled = estimate_energy(measurement, cpu_epi=2 * CPU_EPI)
    assert doubled.cpu_joules == pytest.approx(2 * base.cpu_joules)
    assert doubled.gma_joules == base.gma_joules


def test_zero_division_guards():
    est = EnergyEstimate("x", 0, 0, 0.0, 0.0, 0.0, 0.0)
    assert est.energy_ratio == 0.0
    assert est.edp_ratio == 0.0
    assert est.cpu_watts == 0.0


def test_table_formatting(measurement):
    text = format_energy_table({"SepiaTone": measurement})
    assert "SepiaTone" in text
    assert "GEOMEAN" in text
    assert "0.3 nJ" in text
