"""Chrome-trace export of device runs."""

import json

import numpy as np
import pytest

from repro.chi import ChiRuntime, ExoPlatform
from repro.exo.shred import ShredDescriptor
from repro.fabric import DeviceRunReport
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.memory.surface import Surface
from repro.perf.trace import (
    chrome_trace_events,
    export_chrome_trace,
    export_fabric_chrome_trace,
    fabric_chrome_trace_events,
)


@pytest.fixture
def run_result(device, space):
    out = Surface.alloc(space, "OUT", 64, 1, DataType.DW)
    program = assemble("st.1.dw (OUT, i, 0) = i\nend", name="writer")
    shreds = [ShredDescriptor(program=program, bindings={"i": i},
                              surfaces={"OUT": out}) for i in range(48)]
    return device.run(shreds)


def test_spans_cover_every_shred(run_result):
    assert len(run_result.timing.spans) == 48
    for start, finish, eu, slot in run_result.timing.spans.values():
        assert 0 <= start <= finish
        assert 0 <= eu < 8 and 0 <= slot < 4


def test_events_shape(run_result):
    events = chrome_trace_events(run_result)
    metas = [e for e in events if e["ph"] == "M"]
    shreds = [e for e in events if e["ph"] == "X"]
    assert len(metas) == 8  # one process-name record per EU
    assert len(shreds) == 48
    for event in shreds:
        assert event["dur"] > 0
        assert "writer" in event["name"]
        assert event["args"]["instructions"] == 2


def test_spans_respect_finish_times(run_result):
    for shred_id, (start, finish, _, _) in run_result.timing.spans.items():
        assert finish == run_result.timing.finish_times[shred_id]


def test_export_writes_valid_json(run_result, tmp_path):
    path = tmp_path / "run.trace.json"
    count = export_chrome_trace(run_result, path)
    data = json.loads(path.read_text())
    assert len(data["traceEvents"]) == count
    assert count == 48 + 8


def test_queue_waves_are_visible(run_result):
    """48 shreds on 32 contexts: 16 contexts run a second shred whose
    start is gated by the first wave — the queue-drain picture."""
    starts = sorted(span[0] for span in run_result.timing.spans.values())
    assert starts[0] == 0.0
    assert starts[-1] > 0.0  # the second wave starts strictly later


def test_round_trip_preserves_timing(run_result, tmp_path):
    """The exported JSON is the same picture the run computed."""
    path = tmp_path / "run.trace.json"
    export_chrome_trace(run_result, path)
    with open(path) as handle:
        data = json.load(handle)
    from repro.gma.timing import GmaTimingConfig

    per_us = GmaTimingConfig().frequency / 1e6  # cycles per exported us
    spans = {e["name"]: e for e in data["traceEvents"] if e["ph"] == "X"}
    for shred_id, (start, finish, eu, slot) in \
            run_result.timing.spans.items():
        event = spans[f"shred {shred_id} (writer)"]
        assert event["ts"] == pytest.approx(start / per_us)
        assert event["dur"] == pytest.approx((finish - start) / per_us)
        assert event["pid"] == eu and event["tid"] == slot
    rows = {e["pid"]: e["args"]["name"] for e in data["traceEvents"]
            if e["ph"] == "M"}
    assert rows == {eu: f"EU {eu}" for eu in range(8)}


class TestFabricTrace:
    @pytest.fixture
    def reports(self):
        rt = ChiRuntime(ExoPlatform(num_gma_devices=2))
        region = rt.parallel("mul.1.dw vr1 = tid, 2\nend", num_threads=48)
        return region.result.reports

    def test_one_process_row_per_device(self, reports):
        events = fabric_chrome_trace_events(reports)
        metas = [e for e in events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in metas] == \
            ["gma0 (X3000)", "gma1 (X3000)"]
        # pids tie every shred span to its device's row
        by_pid = {m["pid"] for m in metas}
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 48
        assert {e["pid"] for e in spans} <= by_pid

    def test_fabric_round_trip(self, reports, tmp_path):
        path = tmp_path / "fabric.trace.json"
        count = export_fabric_chrome_trace(reports, path)
        with open(path) as handle:
            data = json.load(handle)
        assert len(data["traceEvents"]) == count
        for event in data["traceEvents"]:
            if event["ph"] == "X":
                assert event["dur"] > 0
                assert event["ts"] >= 0

    def test_thread_rows_are_hardware_contexts(self, reports):
        config = reports[0].config
        events = fabric_chrome_trace_events(reports)
        contexts = config.num_eus * config.threads_per_eu
        for event in events:
            if event["ph"] == "X":
                assert 0 <= event["tid"] < contexts

    def test_driver_backend_gets_a_drain_span(self):
        opaque = DeviceRunReport(device="legacy", isa="X3000",
                                 seconds=2e-4, shreds=16)
        events = fabric_chrome_trace_events([opaque])
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["name"] == "legacy drain"
        assert spans[0]["dur"] == pytest.approx(200.0)  # us
        assert spans[0]["args"]["shreds"] == 16

    def test_idle_backend_emits_no_span(self):
        idle = DeviceRunReport(device="gma1", isa="X3000",
                               seconds=0.0, shreds=0)
        events = fabric_chrome_trace_events([idle])
        assert [e["ph"] for e in events] == ["M"]

    def test_device_atr_breakdown_attached_to_process_rows(self, reports):
        atr = {"gma0": {"tlb_hits": 7, "tlb_misses": 2, "gtt_walks": 1,
                        "shootdowns": 1},
               "gma1": {"tlb_hits": 5, "tlb_misses": 3, "gtt_walks": 0,
                        "shootdowns": 1}}
        events = fabric_chrome_trace_events(reports, device_atr=atr)
        metas = {e["args"]["name"]: e for e in events if e["ph"] == "M"}
        assert metas["gma0 (X3000)"]["args"]["atr"] == atr["gma0"]
        assert metas["gma1 (X3000)"]["args"]["atr"] == atr["gma1"]

    def test_runtime_device_atr_round_trips(self, tmp_path):
        rt = ChiRuntime(ExoPlatform(num_gma_devices=2))
        region = rt.parallel("mul.1.dw vr1 = tid, 2\nend", num_threads=48)
        path = tmp_path / "fabric.trace.json"
        export_fabric_chrome_trace(region.result.reports, path,
                                   device_atr=rt.stats.device_atr)
        data = json.loads(path.read_text())
        metas = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert all("atr" in m["args"] for m in metas)
        for meta in metas:
            assert set(meta["args"]["atr"]) == {
                "tlb_hits", "tlb_misses", "gtt_walks", "shootdowns"}


class TestShootdownTrace:
    def test_one_span_per_broadcast(self, space, tmp_path):
        from repro.memory.physical import PAGE_SIZE
        from repro.perf.trace import (
            SHOOTDOWN_PID,
            export_shootdown_trace,
            shootdown_trace_events,
        )

        base = space.alloc(3 * PAGE_SIZE, eager=True)
        space.protect(base, writable=False)
        space.free(base)
        events = shootdown_trace_events(space)
        metas = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert metas[0]["args"]["name"] == "ATR shootdowns"
        assert metas[0]["pid"] == SHOOTDOWN_PID
        assert [s["args"]["reason"] for s in spans] == ["protect", "free"]
        assert all(s["args"]["pages"] == 3 for s in spans)
        assert spans[0]["ts"] < spans[1]["ts"]  # broadcast order preserved

        path = tmp_path / "shootdowns.trace.json"
        count = export_shootdown_trace(space, path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == count == 3
