"""Chrome-trace export of device runs."""

import json

import numpy as np
import pytest

from repro.exo.shred import ShredDescriptor
from repro.isa.assembler import assemble
from repro.isa.types import DataType
from repro.memory.surface import Surface
from repro.perf.trace import chrome_trace_events, export_chrome_trace


@pytest.fixture
def run_result(device, space):
    out = Surface.alloc(space, "OUT", 64, 1, DataType.DW)
    program = assemble("st.1.dw (OUT, i, 0) = i\nend", name="writer")
    shreds = [ShredDescriptor(program=program, bindings={"i": i},
                              surfaces={"OUT": out}) for i in range(48)]
    return device.run(shreds)


def test_spans_cover_every_shred(run_result):
    assert len(run_result.timing.spans) == 48
    for start, finish, eu, slot in run_result.timing.spans.values():
        assert 0 <= start <= finish
        assert 0 <= eu < 8 and 0 <= slot < 4


def test_events_shape(run_result):
    events = chrome_trace_events(run_result)
    metas = [e for e in events if e["ph"] == "M"]
    shreds = [e for e in events if e["ph"] == "X"]
    assert len(metas) == 8  # one process-name record per EU
    assert len(shreds) == 48
    for event in shreds:
        assert event["dur"] > 0
        assert "writer" in event["name"]
        assert event["args"]["instructions"] == 2


def test_spans_respect_finish_times(run_result):
    for shred_id, (start, finish, _, _) in run_result.timing.spans.items():
        assert finish == run_result.timing.finish_times[shred_id]


def test_export_writes_valid_json(run_result, tmp_path):
    path = tmp_path / "run.trace.json"
    count = export_chrome_trace(run_result, path)
    data = json.loads(path.read_text())
    assert len(data["traceEvents"]) == count
    assert count == 48 + 8


def test_queue_waves_are_visible(run_result):
    """48 shreds on 32 contexts: 16 contexts run a second shred whose
    start is gated by the first wave — the queue-drain picture."""
    starts = sorted(span[0] for span in run_result.timing.spans.values())
    assert starts[0] == 0.0
    assert starts[-1] > 0.0  # the second wave starts strictly later
