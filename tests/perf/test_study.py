"""Evaluation harness: measurements, memory models, partitions, reports."""

import pytest

from repro.kernels import Geometry, kernel_by_abbrev
from repro.memory.flushing import FlushPolicy
from repro.perf.machine import DEFAULT_MACHINE
from repro.perf.memory_models import MemoryModel, communication_cost
from repro.perf.report import format_table, format_table2
from repro.perf.study import (
    BENCH_GEOMETRIES,
    SMOKE_GEOMETRIES,
    measure_kernel,
)


@pytest.fixture(scope="module")
def bob_measurement():
    return measure_kernel(kernel_by_abbrev("BOB"), SMOKE_GEOMETRIES["BOB"])


class TestMeasurement:
    def test_measurement_fields(self, bob_measurement):
        m = bob_measurement
        assert m.gma_seconds > 0
        assert m.cpu_seconds > 0
        assert m.in_bytes > 0 and m.out_bytes > 0
        assert m.speedup == m.cpu_seconds / m.gma_seconds

    def test_speedup_scale_invariant(self):
        """Per the scaling note: the speedup ratio survives geometry
        scaling (both sides scale with pixels)."""
        kernel = kernel_by_abbrev("SepiaTone")
        small = measure_kernel(kernel, Geometry(80, 48))
        large = measure_kernel(kernel, Geometry(160, 96))
        assert small.speedup == pytest.approx(large.speedup, rel=0.25)

    def test_bench_geometries_keep_device_busy(self):
        for abbrev, geom in BENCH_GEOMETRIES.items():
            kernel = kernel_by_abbrev(abbrev)
            shreds = kernel.frame_shreds(geom)
            count = DEFAULT_MACHINE.gma.num_sequencers
            assert shreds >= count, f"{abbrev}: {shreds} shreds"
            assert shreds % count == 0 or shreds >= 4 * count, (
                f"{abbrev}: straggler wave ({shreds} shreds)")


class TestMemoryModels:
    def test_ordering_per_model(self, bob_measurement):
        m = bob_measurement
        cc = m.model_seconds(MemoryModel.CC_SHARED)
        ncc = m.model_seconds(MemoryModel.NONCC_SHARED)
        dc = m.model_seconds(MemoryModel.DATA_COPY)
        assert cc == m.gma_seconds
        assert cc < ncc < dc

    def test_relative_performance_bounds(self, bob_measurement):
        for model in MemoryModel:
            rel = bob_measurement.relative_performance(model)
            assert 0 < rel <= 1.0

    def test_communication_cost_cc_is_free(self):
        cost = communication_cost(MemoryModel.CC_SHARED, 1000, 1000, 1.0,
                                  10, 32, DEFAULT_MACHINE.bandwidth)
        assert cost.total_seconds == 0.0

    def test_data_copy_uses_paper_rate(self):
        cost = communication_cost(MemoryModel.DATA_COPY, int(3.1e9), 0, 1.0,
                                  10, 32, DEFAULT_MACHINE.bandwidth)
        assert cost.exposed_seconds == pytest.approx(1.0)

    def test_noncc_output_flush_optional(self):
        with_out = communication_cost(
            MemoryModel.NONCC_SHARED, 1000, 100000, 1.0, 100, 32,
            DEFAULT_MACHINE.bandwidth)
        without = communication_cost(
            MemoryModel.NONCC_SHARED, 1000, 100000, 1.0, 100, 32,
            DEFAULT_MACHINE.bandwidth, include_output_flush=False)
        assert with_out.exposed_seconds > without.exposed_seconds

    def test_flush_policy_matters(self, bob_measurement):
        m = bob_measurement
        upfront = m.model_seconds(MemoryModel.NONCC_SHARED,
                                  flush_policy=FlushPolicy.UPFRONT)
        interleaved = m.model_seconds(MemoryModel.NONCC_SHARED,
                                      flush_policy=FlushPolicy.INTERLEAVED)
        assert interleaved <= upfront


class TestPartitions:
    def test_partition_policies(self, bob_measurement):
        m = bob_measurement
        oracle = m.partition("oracle")
        static = m.partition("static", cpu_fraction=0.25)
        dynamic = m.partition("dynamic", num_chunks=128)
        assert oracle.total_seconds <= static.total_seconds
        assert dynamic.total_seconds <= oracle.total_seconds * 1.05
        with pytest.raises(ValueError):
            m.partition("banana")


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "---" in lines[2]

    def test_table2_report_mentions_all_kernels(self):
        text = format_table2()
        for abbrev in ("LinearFilter", "SepiaTone", "FGT", "Bicubic",
                       "Kalman", "FMD", "AlphaBlend", "BOB", "ADVDI",
                       "ProcAmp"):
            assert abbrev in text
        assert "83,500" in text
