"""Architecture ablations."""

import pytest

from repro.kernels import Geometry, kernel_by_abbrev
from repro.perf.ablations import (
    format_multithreading_table,
    multithreading_ablation,
    prevalidation_ablation,
)

GEOM = Geometry(128, 64)  # small and quick: 8 Kalman tiles


@pytest.fixture(scope="module")
def kalman_mt():
    return multithreading_ablation(kernel_by_abbrev("Kalman"),
                                   Geometry(256, 128))


def test_more_threads_never_hurt(kalman_mt):
    cycles = kalman_mt.cycles_by_threads
    assert cycles[4] <= cycles[2] <= cycles[1]


def test_speedup_metric(kalman_mt):
    assert kalman_mt.speedup(1) == 1.0
    assert kalman_mt.speedup(4) >= 1.0


def test_prevalidation_removes_inflight_atr():
    ablation = prevalidation_ablation(kernel_by_abbrev("Kalman"), GEOM)
    assert ablation.prepared_atr_events == 0
    assert ablation.cold_atr_events > 0
    assert ablation.cold_cycles > ablation.prepared_cycles


def test_format_table(kalman_mt):
    text = format_multithreading_table([kalman_mt])
    assert "Kalman" in text
    assert "4-thread gain" in text
