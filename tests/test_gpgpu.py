"""The driver-based GPGPU baseline stack (Figure 1(a))."""

import numpy as np
import pytest

from repro.gpgpu import GpgpuDriver
from repro.gpgpu.driver import DriverError
from repro.isa.types import DataType

VECADD = """
    shl.1.dw vr1 = i, 3
    ld.8.dw [vr2..vr9] = (A, vr1, 0)
    ld.8.dw [vr10..vr17] = (B, vr1, 0)
    add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
    st.8.dw (C, vr1, 0) = [vr18..vr25]
    end
"""


@pytest.fixture
def driver():
    return GpgpuDriver()


class TestMemoryApi:
    def test_malloc_memcpy_roundtrip(self, driver):
        handle = driver.malloc(64, width=16, dtype=DataType.DW)
        driver.memcpy_htod(handle, np.arange(16.0))
        got = driver.memcpy_dtoh(handle)
        assert np.array_equal(got, np.arange(16.0))

    def test_copy_costs_accrue_at_paper_rate(self, driver):
        handle = driver.malloc(int(3.1e6), dtype=DataType.UB)
        driver.memcpy_htod(handle, np.zeros(int(3.1e6)))
        assert driver.stats.copy_seconds == pytest.approx(1e-3)
        assert driver.stats.bytes_host_to_device == int(3.1e6)

    def test_every_call_pays_driver_overhead(self, driver):
        before = driver.stats.driver_calls
        handle = driver.malloc(16)
        driver.memcpy_htod(handle, np.zeros(16))
        driver.memcpy_dtoh(handle)
        driver.free(handle)
        assert driver.stats.driver_calls == before + 4
        assert driver.stats.overhead_seconds == pytest.approx(
            driver.stats.driver_calls * driver.call_overhead_seconds)

    def test_bad_handles(self, driver):
        with pytest.raises(DriverError, match="unknown buffer"):
            driver.memcpy_dtoh(999)
        handle = driver.malloc(16)
        driver.free(handle)
        with pytest.raises(DriverError, match="was freed"):
            driver.memcpy_htod(handle, np.zeros(4))

    def test_oversized_copy_rejected(self, driver):
        handle = driver.malloc(8, dtype=DataType.UB)
        with pytest.raises(DriverError, match="exceeds buffer"):
            driver.memcpy_htod(handle, np.zeros(64))

    def test_size_validation(self, driver):
        with pytest.raises(DriverError, match="positive"):
            driver.malloc(0)


class TestKernels:
    def test_vecadd_through_the_driver(self, driver):
        n = 32
        a = driver.malloc(n * 4, width=n, dtype=DataType.DW)
        b = driver.malloc(n * 4, width=n, dtype=DataType.DW)
        c = driver.malloc(n * 4, width=n, dtype=DataType.DW)
        driver.memcpy_htod(a, np.arange(n))
        driver.memcpy_htod(b, np.arange(n) * 2)
        kernel = driver.load_kernel(VECADD, "vecadd")
        seconds = driver.launch(kernel, [{"i": i} for i in range(n // 8)],
                                buffers={"A": a, "B": b, "C": c})
        assert seconds > 0
        got = driver.memcpy_dtoh(c)
        assert np.array_equal(got, np.arange(n) * 3)

    def test_unknown_kernel(self, driver):
        with pytest.raises(DriverError, match="unknown kernel"):
            driver.launch(42, [], buffers={})


class TestSeparateAddressSpaces:
    def test_device_memory_is_not_host_visible(self, driver):
        """The defining property of Figure 1(a): no shared pointers."""
        from repro.memory.address_space import AddressSpace

        host_space = AddressSpace()
        handle = driver.malloc(16, dtype=DataType.DW, width=4)
        driver.memcpy_htod(handle, np.array([1.0, 2.0, 3.0, 4.0]))
        buffer = driver._buffers[handle]
        # the device surface's vaddr means nothing in the host space
        assert host_space.allocation_size(buffer.surface.base) is None

    def test_communication_is_copy_only(self, driver):
        """Mutating host data after the copy does not affect the device —
        unlike EXOCHI's shared virtual memory, where it would."""
        data = np.arange(8.0)
        handle = driver.malloc(32, width=8, dtype=DataType.DW)
        driver.memcpy_htod(handle, data)
        data[:] = 0  # host-side change after the explicit copy
        assert np.array_equal(driver.memcpy_dtoh(handle), np.arange(8.0))


class TestBaselineComparison:
    def test_exochi_moves_no_bytes_where_the_driver_copies(self):
        """The quantitative point of section 5.2 at the API level."""
        from repro.chi import ChiRuntime, ExoPlatform
        from repro.memory.surface import Surface

        n = 64
        # driver path
        driver = GpgpuDriver()
        a = driver.malloc(n * 4, width=n, dtype=DataType.DW)
        c = driver.malloc(n * 4, width=n, dtype=DataType.DW)
        driver.memcpy_htod(a, np.arange(n))
        kernel = driver.load_kernel("""
            shl.1.dw vr1 = i, 3
            ld.8.dw [vr2..vr9] = (A, vr1, 0)
            add.8.dw [vr10..vr17] = [vr2..vr9], [vr2..vr9]
            st.8.dw (C, vr1, 0) = [vr10..vr17]
            end
        """)
        driver.launch(kernel, [{"i": i} for i in range(n // 8)],
                      buffers={"A": a, "C": c})
        driver.memcpy_dtoh(c)
        assert driver.stats.copy_seconds > 0
        assert driver.stats.driver_calls >= 5

        # EXOCHI path: same computation, zero copies, zero driver calls
        rt = ChiRuntime(ExoPlatform())
        src = Surface.alloc(rt.platform.space, "A", n, 1, DataType.DW)
        dst = Surface.alloc(rt.platform.space, "C", n, 1, DataType.DW)
        src.upload(rt.platform.host, np.arange(n).reshape(1, n))
        rt.parallel("""
            shl.1.dw vr1 = i, 3
            ld.8.dw [vr2..vr9] = (A, vr1, 0)
            add.8.dw [vr10..vr17] = [vr2..vr9], [vr2..vr9]
            st.8.dw (C, vr1, 0) = [vr10..vr17]
            end
        """, shared={"A": src, "C": dst},
            private=[{"i": i} for i in range(n // 8)])
        assert rt.stats.bytes_copied == 0
        got = dst.download(rt.platform.host).reshape(-1)
        assert np.array_equal(got, np.arange(n) * 2)
