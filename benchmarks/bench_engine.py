"""Gang-vectorized execution vs the scalar interpreter.

A launch whose shreds share one program runs as a *gang*: one
numpy-batched register file with a shred axis, each predecoded
instruction applied to every active shred in one vectorized operation
(see ``docs/ENGINE.md``).  Results, traces and counters are bit-identical
to the scalar interpreter — only the host wall-clock changes.  This
benchmark measures that change two ways:

* a homogeneous 32-shred ALU loop (every shred fully gang-resident), the
  best case and the first CI gate: gang must reach >= 3x scalar
  instructions/second, the fused engine (superblock trace fusion,
  ``docs/ENGINE.md``) must reach >= 1.8x *gang* instructions/second, and
  the megaop engine (profile-guided trace promotion) must reach >= 2x
  *fused* instructions/second;
* a memory-bound media kernel (SepiaTone, whose inner loop is
  load/store dominated) through the standard harness — the second CI
  gate, exercising the batched gather/scatter and vectorized TLB
  translation path end to end;
* two *divergent* kernels whose branches depend on per-shred data — a
  ragged-trip-count loop and a sustained sawtooth diamond — the
  divergence-repacking gate: gang must hold >= 1.5x scalar
  instructions/second and >= 50% gang residency (share of instructions
  retired ganged) even though the lanes disagree at every branch;
* the full kernel suite at smoke geometries (the per-kernel speedup
  table CI publishes), plus a 4-device fabric drain with and without
  ``parallel=True``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_engine.py --check   # CI gate

or under pytest (``pytest benchmarks/bench_engine.py``).  Writes
``BENCH_engine.json`` next to the working directory (``--json`` to move).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.chi import ChiRuntime, ExoPlatform
from repro.exo.shred import ShredDescriptor
from repro.gma.device import GmaDevice
from repro.isa import predecode
from repro.isa.assembler import assemble
from repro.kernels import ALL_KERNELS, SepiaTone, run_kernel_on_gma
from repro.memory.address_space import AddressSpace
from repro.perf import SMOKE_GEOMETRIES

DEFAULT_SHREDS = 32
DEFAULT_ITERS = 300
CHECK_SPEEDUP = 3.0
CHECK_FUSION = 1.8  # fused vs plain gang, homogeneous instr/s
CHECK_MEGAOP = 2.0  # megaop vs fused, homogeneous instr/s
CHECK_DIVERGENT = 1.5  # gang vs scalar, divergent kernels, instr/s
CHECK_RESIDENCY = 50.0  # minimum gang_residency_pct, divergent kernels
DIVERGENT_ITERS = 160

#: Homogeneous by construction: the trip count is one uniform symbol, so
#: every shred follows the same path and the gang never peels.  The lane
#: values contract toward a fixed point (|vr1| < 1), so the mad chain
#: never overflows f32 no matter the trip count.
HOMOGENEOUS_ASM = """
iota.16.f vr1
mul.16.f vr1 = vr1, 0.05
mov.1.dw vr2 = 0
bcast.16.f vr3 = vr1
loop:
mad.16.f vr3 = vr3, vr1, vr1
mad.16.f vr4 = vr3, vr1, vr1
add.16.f vr5 = vr3, vr4
mul.16.f vr6 = vr5, vr1
add.1.dw vr2 = vr2, 1
cmp.lt.1.dw p1 = vr2, iters
br p1, loop
end
"""


def _shreds(program, count: int, iters: int):
    return [ShredDescriptor(program=program,
                            bindings={"iters": float(iters)})
            for _ in range(count)]


def measure_homogeneous(engine: str, shreds: int = DEFAULT_SHREDS,
                        iters: int = DEFAULT_ITERS, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall time for one homogeneous launch."""
    program = assemble(HOMOGENEOUS_ASM, name="uniform-loop")
    best = None
    for _ in range(repeats):
        predecode.CACHE.clear()
        device = GmaDevice(AddressSpace(), engine=engine)
        batch = _shreds(program, shreds, iters)
        started = time.perf_counter()
        result = device.run(batch)
        wall = time.perf_counter() - started
        if best is None or wall < best["wall_seconds"]:
            best = {
                "engine": engine,
                "shreds": shreds,
                "instructions": result.instructions,
                "wall_seconds": wall,
                "instructions_per_second": result.instructions / wall,
                "gma_cycles": result.cycles,
                "gang_lanes_retired": result.gang_lanes_retired,
                "scalar_fallbacks": result.scalar_fallbacks,
                "predecode_hits": result.predecode_hits,
                "predecode_misses": result.predecode_misses,
                "fused_blocks_retired": result.fused_blocks_retired,
                "trace_chains": result.trace_chains,
                "fusion_compiles": result.fusion_compiles,
                "megaops_retired": result.megaops_retired,
                "megaop_compiles": result.megaop_compiles,
                "megaop_deopts": result.megaop_deopts,
                "gang_repacks": result.gang_repacks,
                "lanes_readmitted": result.lanes_readmitted,
                "gang_residency_pct": result.gang_residency_pct,
            }
    return best


#: Ragged trip counts: the loop body is the homogeneous kernel's, but
#: the per-shred ``iters`` binding splits the gang into four trip-count
#: classes.  The gang diverges at the loop-exit branch three times;
#: each time the early-exit class parks at the join and the survivors
#: repack dense instead of peeling to the scalar interpreter.
RAGGED_LOOP_ASM = HOMOGENEOUS_ASM

#: Sustained divergence: each shred's ``vr3`` follows its own sawtooth
#: (phase ``x``, slope ``step``, wrap at the ``> 7`` threshold), so the
#: gang splits at the diamond on almost every trip — the worst case for
#: lockstep execution and the showcase for compaction + re-admission.
#: Both arms contract ``vr4`` (multipliers < 1), so no overflow.
SAWTOOTH_DIAMOND_ASM = """
iota.16.f vr1
mul.16.f vr1 = vr1, 0.03
mov.1.dw vr2 = 0
bcast.16.f vr3 = x
mov.16.f vr4 = 0.0
loop:
cmp.gt.1.dw p2 = vr3, 7
br p2, high
mul.16.f vr4 = vr4, 0.5
add.16.f vr4 = vr4, vr1
jmp next
high:
mul.16.f vr4 = vr4, 0.25
add.16.f vr4 = vr4, 1.0
sub.16.f vr3 = vr3, 16.0
next:
add.16.f vr3 = vr3, step
add.1.dw vr2 = vr2, 1
cmp.lt.1.dw p1 = vr2, iters
br p1, loop
end
"""


def _ragged_bindings(shreds: int, iters: int):
    return [{"iters": float(max(1, iters * (i * 4 // shreds + 1) // 4))}
            for i in range(shreds)]


def _sawtooth_bindings(shreds: int, iters: int):
    return [{"x": float((i * 5) % 16), "step": float(1 + i % 3),
             "iters": float(iters)}
            for i in range(shreds)]


DIVERGENT_KERNELS = {
    "ragged-loop": (RAGGED_LOOP_ASM, _ragged_bindings),
    "sawtooth-diamond": (SAWTOOTH_DIAMOND_ASM, _sawtooth_bindings),
}


def measure_divergent(name: str, engine: str, shreds: int = DEFAULT_SHREDS,
                      iters: int = DIVERGENT_ITERS, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall time for one divergent launch."""
    asm, make_bindings = DIVERGENT_KERNELS[name]
    program = assemble(asm, name=f"divergent-{name}")
    bindings = make_bindings(shreds, iters)
    best = None
    for _ in range(repeats):
        predecode.CACHE.clear()
        device = GmaDevice(AddressSpace(), engine=engine)
        batch = [ShredDescriptor(program=program, bindings=dict(b))
                 for b in bindings]
        started = time.perf_counter()
        result = device.run(batch)
        wall = time.perf_counter() - started
        if best is None or wall < best["wall_seconds"]:
            best = {
                "engine": engine,
                "kernel": name,
                "shreds": shreds,
                "instructions": result.instructions,
                "wall_seconds": wall,
                "instructions_per_second": result.instructions / wall,
                "gang_lanes_retired": result.gang_lanes_retired,
                "gang_residency_pct": result.gang_residency_pct,
                "gang_repacks": result.gang_repacks,
                "lanes_readmitted": result.lanes_readmitted,
                "scalar_fallbacks": result.scalar_fallbacks,
            }
    return best


def measure_divergent_table(shreds: int = DEFAULT_SHREDS,
                            iters: int = DIVERGENT_ITERS) -> dict:
    """Every engine tier over both divergent kernels."""
    table = {}
    for name in DIVERGENT_KERNELS:
        row = {engine: measure_divergent(name, engine, shreds, iters)
               for engine in ("scalar", "gang", "fused", "megaop")}
        scalar_ips = row["scalar"]["instructions_per_second"]
        gang = row["gang"]
        table[name] = {
            "speedup": gang["instructions_per_second"] / scalar_ips,
            "fused_speedup":
                row["fused"]["instructions_per_second"] / scalar_ips,
            "megaop_speedup":
                row["megaop"]["instructions_per_second"] / scalar_ips,
            "gang_residency_pct": gang["gang_residency_pct"],
            "gang_repacks": gang["gang_repacks"],
            "lanes_readmitted": gang["lanes_readmitted"],
            "scalar_fallbacks": gang["scalar_fallbacks"],
            "instructions": gang["instructions"],
            "engines": row,
        }
    return table


def measure_kernel(engine: str, repeats: int = 2,
                   kernel_cls=SepiaTone) -> dict:
    """One media kernel through the standard harness on one engine."""
    kernel = kernel_cls()
    geom = SMOKE_GEOMETRIES[kernel.abbrev]
    best = None
    for _ in range(repeats):
        device = GmaDevice(AddressSpace(), engine=engine)
        started = time.perf_counter()
        outcome = run_kernel_on_gma(kernel, geom, device=device,
                                    space=device.space, max_frames=1)
        wall = time.perf_counter() - started
        if best is None or wall < best["wall_seconds"]:
            best = {
                "engine": engine,
                "kernel": kernel.abbrev,
                "instructions": outcome.instructions,
                "shreds": outcome.shreds,
                "wall_seconds": wall,
                "instructions_per_second": outcome.instructions / wall,
                "batched_translations": device.view.batched_translations,
                "tlb_vector_hits": device.view.tlb.vector_hits,
                "scalar_fallbacks": outcome.scalar_fallbacks,
                "fused_blocks_retired": outcome.fused_blocks_retired,
                "trace_chains": outcome.trace_chains,
                "fusion_compiles": outcome.fusion_compiles,
                "megaops_retired": outcome.megaops_retired,
                "megaop_compiles": outcome.megaop_compiles,
                "megaop_deopts": outcome.megaop_deopts,
                "gang_repacks": outcome.gang_repacks,
                "lanes_readmitted": outcome.lanes_readmitted,
                "gang_residency_pct": outcome.gang_residency_pct,
            }
    return best


def measure_all_kernels(repeats: int = 1) -> dict:
    """Per-engine wall clock for every kernel at smoke geometry."""
    table = {}
    for kernel_cls in ALL_KERNELS:
        row = {engine: measure_kernel(engine, repeats, kernel_cls)
               for engine in ("scalar", "gang", "fused", "megaop")}
        table[kernel_cls.abbrev] = {
            "scalar_seconds": row["scalar"]["wall_seconds"],
            "gang_seconds": row["gang"]["wall_seconds"],
            "fused_seconds": row["fused"]["wall_seconds"],
            "megaop_seconds": row["megaop"]["wall_seconds"],
            "speedup": (row["scalar"]["wall_seconds"]
                        / row["gang"]["wall_seconds"]),
            "fused_speedup": (row["scalar"]["wall_seconds"]
                              / row["fused"]["wall_seconds"]),
            "megaop_speedup": (row["scalar"]["wall_seconds"]
                               / row["megaop"]["wall_seconds"]),
            "batched_translations": row["gang"]["batched_translations"],
            "fused_blocks_retired": row["fused"]["fused_blocks_retired"],
            "trace_chains": row["fused"]["trace_chains"],
            "fusion_compiles": row["fused"]["fusion_compiles"],
            "megaops_retired": row["megaop"]["megaops_retired"],
            "megaop_compiles": row["megaop"]["megaop_compiles"],
            "megaop_deopts": row["megaop"]["megaop_deopts"],
            "scalar_fallbacks": row["fused"]["scalar_fallbacks"],
            "shreds": row["fused"]["shreds"],
        }
    return table


def measure_parallel_fabric(parallel, devices: int = 4,
                            shreds: int = DEFAULT_SHREDS,
                            iters: int = DEFAULT_ITERS) -> dict:
    """One gang-engine region spread over a fabric, serial vs threaded.

    ``parallel`` takes the ``drain_devices`` spellings: ``False``,
    ``True`` (threads only above ``PARALLEL_DRAIN_MIN_SHREDS`` per
    device) or ``"force"`` (threads unconditionally).
    """
    platform = ExoPlatform(num_gma_devices=devices, gma_engine="gang")
    runtime = ChiRuntime(platform, parallel_fabric=parallel)
    started = time.perf_counter()
    region = runtime.parallel(HOMOGENEOUS_ASM, num_threads=shreds,
                              firstprivate={"iters": float(iters)})
    wall = time.perf_counter() - started
    result = region.wait()
    return {
        "parallel": parallel if isinstance(parallel, bool) else str(parallel),
        "devices": devices,
        "instructions": result.instructions,
        "wall_seconds": wall,
        "drain_mode": result.reports[0].drain_mode,
        "device_wall_seconds": {r.device: r.wall_seconds
                                for r in result.reports},
        "gang_lanes_retired": result.gang_lanes_retired,
        "scalar_fallbacks": result.scalar_fallbacks,
    }


def compare(shreds: int = DEFAULT_SHREDS, iters: int = DEFAULT_ITERS) -> dict:
    scalar = measure_homogeneous("scalar", shreds, iters)
    gang = measure_homogeneous("gang", shreds, iters)
    # the fused-vs-megaop gate is the tightest ratio in --check; give
    # both sides extra repeats so best-of-N converges under host noise
    fused = measure_homogeneous("fused", shreds, iters, repeats=5)
    megaop = measure_homogeneous("megaop", shreds, iters, repeats=5)
    kernel = {"scalar": measure_kernel("scalar"),
              "gang": measure_kernel("gang")}
    return {
        "homogeneous": {"scalar": scalar, "gang": gang, "fused": fused,
                        "megaop": megaop},
        "divergent": measure_divergent_table(shreds),
        "kernel": kernel,
        "kernels": measure_all_kernels(),
        "fabric": {"serial": measure_parallel_fabric(False),
                   "parallel": measure_parallel_fabric("force"),
                   "auto": measure_parallel_fabric(True)},
        "speedup": (gang["instructions_per_second"]
                    / scalar["instructions_per_second"]),
        "fusion_speedup": (fused["instructions_per_second"]
                           / gang["instructions_per_second"]),
        "megaop_speedup": (megaop["instructions_per_second"]
                           / fused["instructions_per_second"]),
        "kernel_speedup": (kernel["scalar"]["wall_seconds"]
                           / kernel["gang"]["wall_seconds"]),
    }


def report(outcome: dict) -> str:
    homo = outcome["homogeneous"]
    lines = [
        f"engine comparison, {homo['scalar']['shreds']} homogeneous shreds:",
        f"  {'':8s} {'instr':>8s} {'wall ms':>9s} {'Minstr/s':>9s} "
        f"{'ganged':>7s} {'peeled':>7s}",
    ]
    for name in ("scalar", "gang", "fused", "megaop"):
        m = homo[name]
        lines.append(
            f"  {name:8s} {m['instructions']:8d} "
            f"{m['wall_seconds'] * 1e3:9.2f} "
            f"{m['instructions_per_second'] / 1e6:9.3f} "
            f"{m['gang_lanes_retired']:7d} {m['scalar_fallbacks']:7d}")
    lines.append(f"  gang speedup: {outcome['speedup']:.1f}x "
                 f"(gate: >= {CHECK_SPEEDUP:.0f}x)")
    fused = homo["fused"]
    lines.append(f"  fusion speedup: {outcome['fusion_speedup']:.2f}x gang "
                 f"(gate: >= {CHECK_FUSION:.1f}x), "
                 f"{fused['fused_blocks_retired']} blocks retired, "
                 f"{fused['trace_chains']} trace chains, "
                 f"{fused['fusion_compiles']} compiles")
    megaop = homo["megaop"]
    lines.append(f"  megaop speedup: {outcome['megaop_speedup']:.2f}x fused "
                 f"(gate: >= {CHECK_MEGAOP:.1f}x), "
                 f"{megaop['megaops_retired']} traversals retired, "
                 f"{megaop['megaop_compiles']} compiles, "
                 f"{megaop['megaop_deopts']} deopts")
    lines.append("  divergent kernels (data-dependent branches, "
                 f"gates: >= {CHECK_DIVERGENT:.1f}x gang, "
                 f">= {CHECK_RESIDENCY:.0f}% residency):")
    lines.append(f"    {'kernel':18s} {'gang':>7s} {'fused':>7s} "
                 f"{'megaop':>7s} {'resid':>6s} {'repacks':>8s} "
                 f"{'readmit':>8s} {'peeled':>7s}")
    for name, row in outcome["divergent"].items():
        lines.append(
            f"    {name:18s} {row['speedup']:6.2f}x "
            f"{row['fused_speedup']:6.2f}x {row['megaop_speedup']:6.2f}x "
            f"{row['gang_residency_pct']:5.1f}% {row['gang_repacks']:8d} "
            f"{row['lanes_readmitted']:8d} {row['scalar_fallbacks']:7d}")
    kern = outcome["kernel"]
    kname = kern["scalar"]["kernel"]
    lines.append(f"  {kname}: {outcome['kernel_speedup']:.1f}x faster "
                 f"wall-clock under gang (gate: >= {CHECK_SPEEDUP:.0f}x), "
                 f"{kern['gang']['batched_translations']} pages translated "
                 f"batched")
    lines.append("  per-kernel wall-clock speedups (smoke geometry):")
    for name, row in outcome["kernels"].items():
        lines.append(f"    {name:14s} {row['speedup']:5.2f}x gang / "
                     f"{row['fused_speedup']:5.2f}x fused / "
                     f"{row['megaop_speedup']:5.2f}x megaop "
                     f"(scalar {row['scalar_seconds'] * 1e3:7.2f}ms, "
                     f"gang {row['gang_seconds'] * 1e3:7.2f}ms, "
                     f"fused {row['fused_seconds'] * 1e3:7.2f}ms, "
                     f"megaop {row['megaop_seconds'] * 1e3:7.2f}ms)")
    lines.append("  per-kernel block fusion (smoke geometry):")
    lines.append(f"    {'kernel':14s} {'blocks':>7s} {'chains':>7s} "
                 f"{'compiles':>8s} {'fallback':>9s}")
    for name, row in outcome["kernels"].items():
        fallback = (row["scalar_fallbacks"] / row["shreds"]
                    if row["shreds"] else 0.0)
        lines.append(f"    {name:14s} {row['fused_blocks_retired']:7d} "
                     f"{row['trace_chains']:7d} {row['fusion_compiles']:8d} "
                     f"{fallback:8.0%}")
    fab = outcome["fabric"]
    lines.append(
        f"  4-device fabric drain: serial "
        f"{fab['serial']['wall_seconds'] * 1e3:.2f}ms, threaded "
        f"{fab['parallel']['wall_seconds'] * 1e3:.2f}ms, "
        f"auto {fab['auto']['wall_seconds'] * 1e3:.2f}ms "
        f"(chose {fab['auto']['drain_mode']})")
    m = homo["gang"]
    total = m["predecode_hits"] + m["predecode_misses"]
    rate = m["predecode_hits"] / total if total else 0.0
    lines.append(f"  decode cache: {m['predecode_hits']}/{total} hits "
                 f"({rate:.0%})")
    return "\n".join(lines)


def step_summary(outcome: dict) -> str:
    """GitHub Actions step-summary markdown: the engine-tier tables."""
    homo = outcome["homogeneous"]
    fused = homo["fused"]
    megaop = homo["megaop"]
    lines = [
        "### Engine benchmark",
        "",
        f"- gang vs scalar (homogeneous): "
        f"**{outcome['speedup']:.1f}x** (gate >= {CHECK_SPEEDUP:.0f}x)",
        f"- fused vs gang (homogeneous): "
        f"**{outcome['fusion_speedup']:.2f}x** (gate >= {CHECK_FUSION:.1f}x),"
        f" {fused['fused_blocks_retired']} blocks retired, "
        f"{fused['trace_chains']} trace chains",
        f"- megaop vs fused (homogeneous): "
        f"**{outcome['megaop_speedup']:.2f}x** (gate >= {CHECK_MEGAOP:.1f}x),"
        f" {megaop['megaops_retired']} traversals retired, "
        f"{megaop['megaop_deopts']} deopts",
        "",
        "| tier | ns/instr | Minstr/s |",
        "|---|---|---|",
    ]
    for name in ("gang", "fused", "megaop"):
        m = homo[name]
        ns = m["wall_seconds"] * 1e9 / m["instructions"]
        lines.append(f"| {name} | {ns:.0f} "
                     f"| {m['instructions_per_second'] / 1e6:.3f} |")
    lines += [
        "",
        "#### Gang residency: convergent vs divergent",
        "",
        "| kernel | gang speedup | residency | repacks | readmitted "
        "| peeled |",
        "|---|---|---|---|---|---|",
        f"| uniform-loop (convergent) | {outcome['speedup']:.2f}x "
        f"| {homo['gang']['gang_residency_pct']:.1f}% "
        f"| {homo['gang']['gang_repacks']} "
        f"| {homo['gang']['lanes_readmitted']} "
        f"| {homo['gang']['scalar_fallbacks']} |",
    ]
    for name, row in outcome["divergent"].items():
        lines.append(
            f"| {name} (divergent) | {row['speedup']:.2f}x "
            f"| {row['gang_residency_pct']:.1f}% | {row['gang_repacks']} "
            f"| {row['lanes_readmitted']} | {row['scalar_fallbacks']} |")
    lines += [
        "",
        "| kernel | gang speedup | fused speedup | megaop speedup | blocks "
        "| chained traces | fallback rate |",
        "|---|---|---|---|---|---|---|",
    ]
    for name, row in outcome["kernels"].items():
        fallback = (row["scalar_fallbacks"] / row["shreds"]
                    if row["shreds"] else 0.0)
        lines.append(
            f"| {name} | {row['speedup']:.2f}x | {row['fused_speedup']:.2f}x "
            f"| {row['megaop_speedup']:.2f}x "
            f"| {row['fused_blocks_retired']} | {row['trace_chains']} "
            f"| {fallback:.0%} |")
    return "\n".join(lines) + "\n"


# -- pytest entry points ---------------------------------------------------------------


def test_gang_beats_scalar():
    """The CI acceptance bar: a homogeneous launch must vectorize."""
    scalar = measure_homogeneous("scalar")
    gang = measure_homogeneous("gang")
    assert gang["instructions"] == scalar["instructions"]
    assert gang["gma_cycles"] == scalar["gma_cycles"]
    assert gang["scalar_fallbacks"] == 0  # fully gang-resident
    assert gang["gang_lanes_retired"] == gang["instructions"]
    speedup = (gang["instructions_per_second"]
               / scalar["instructions_per_second"])
    assert speedup >= CHECK_SPEEDUP, f"gang only {speedup:.2f}x scalar"


def test_memory_bound_kernel_beats_scalar():
    """The batched-memory acceptance bar: a load/store-dominated kernel
    workload must clear the same 3x gate as the ALU loop."""
    scalar = measure_kernel("scalar")
    gang = measure_kernel("gang")
    assert gang["instructions"] == scalar["instructions"]
    assert gang["batched_translations"] > 0  # the fast path really ran
    speedup = scalar["wall_seconds"] / gang["wall_seconds"]
    assert speedup >= CHECK_SPEEDUP, \
        f"gang only {speedup:.2f}x scalar on {gang['kernel']}"


def test_fused_beats_gang():
    """The fusion acceptance bar: superblock fusion must beat plain
    per-instruction gang dispatch on the homogeneous loop."""
    gang = measure_homogeneous("gang")
    fused = measure_homogeneous("fused")
    assert fused["instructions"] == gang["instructions"]
    assert fused["gma_cycles"] == gang["gma_cycles"]
    assert fused["scalar_fallbacks"] == 0
    assert fused["fused_blocks_retired"] > 0
    assert fused["trace_chains"] > 0
    speedup = (fused["instructions_per_second"]
               / gang["instructions_per_second"])
    assert speedup >= CHECK_FUSION, f"fused only {speedup:.2f}x gang"


def test_megaop_beats_fused():
    """The megaop acceptance bar: promoted hot traces must beat the
    per-block fused loop on the homogeneous loop."""
    fused = measure_homogeneous("fused", repeats=5)
    megaop = measure_homogeneous("megaop", repeats=5)
    assert megaop["instructions"] == fused["instructions"]
    assert megaop["gma_cycles"] == fused["gma_cycles"]
    assert megaop["scalar_fallbacks"] == 0
    assert megaop["megaop_compiles"] > 0
    assert megaop["megaops_retired"] > 0
    speedup = (megaop["instructions_per_second"]
               / fused["instructions_per_second"])
    assert speedup >= CHECK_MEGAOP, f"megaop only {speedup:.2f}x fused"


def test_divergent_gang_beats_scalar():
    """The divergence-repacking acceptance bar: data-dependent branches
    must not collapse the gang to the scalar interpreter."""
    for name in DIVERGENT_KERNELS:
        scalar = measure_divergent(name, "scalar")
        gang = measure_divergent(name, "gang")
        assert gang["instructions"] == scalar["instructions"], name
        assert gang["scalar_fallbacks"] == 0, name
        assert gang["gang_repacks"] > 0, name
        assert gang["lanes_readmitted"] > 0, name
        assert gang["gang_residency_pct"] >= CHECK_RESIDENCY, name
        speedup = (gang["instructions_per_second"]
                   / scalar["instructions_per_second"])
        assert speedup >= CHECK_DIVERGENT, \
            f"gang only {speedup:.2f}x scalar on {name}"


def test_parallel_fabric_same_results():
    serial = measure_parallel_fabric(False)
    threaded = measure_parallel_fabric("force")
    assert serial["instructions"] == threaded["instructions"]
    assert serial["gang_lanes_retired"] == threaded["gang_lanes_retired"]
    assert all(w > 0.0 for w in threaded["device_wall_seconds"].values())
    assert serial["drain_mode"] == "serial"
    assert threaded["drain_mode"] == "parallel"


def test_auto_drain_falls_back_serial_when_small():
    """The losing default, fixed: 8 shreds/device is below the threshold,
    so ``parallel=True`` must choose a serial drain."""
    auto = measure_parallel_fabric(True)
    assert auto["drain_mode"] == "serial"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shreds", type=int, default=DEFAULT_SHREDS,
                        help="launch width (default %(default)s)")
    parser.add_argument("--iters", type=int, default=DEFAULT_ITERS,
                        help="loop trip count (default %(default)s)")
    parser.add_argument("--json", type=str, default="BENCH_engine.json",
                        help="result file (default %(default)s)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless gang reaches "
                             f">= {CHECK_SPEEDUP:.0f}x scalar, fused "
                             f">= {CHECK_FUSION:.1f}x gang, megaop "
                             f">= {CHECK_MEGAOP:.1f}x fused "
                             "instructions/second, and divergent kernels "
                             f">= {CHECK_DIVERGENT:.1f}x scalar at "
                             f">= {CHECK_RESIDENCY:.0f}% gang residency")
    args = parser.parse_args(argv)

    outcome = compare(args.shreds, args.iters)
    print(report(outcome))
    with open(args.json, "w") as handle:
        json.dump(outcome, handle, indent=2)
    print(f"wrote {args.json}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(step_summary(outcome))
        print(f"appended fusion stats to {summary_path}")
    if args.check:
        failed = False
        if outcome["speedup"] < CHECK_SPEEDUP:
            print(f"CHECK FAILED: gang speedup {outcome['speedup']:.2f}x "
                  f"< {CHECK_SPEEDUP:.0f}x", file=sys.stderr)
            failed = True
        if outcome["fusion_speedup"] < CHECK_FUSION:
            print(f"CHECK FAILED: fusion speedup "
                  f"{outcome['fusion_speedup']:.2f}x "
                  f"< {CHECK_FUSION:.1f}x gang", file=sys.stderr)
            failed = True
        if outcome["megaop_speedup"] < CHECK_MEGAOP:
            print(f"CHECK FAILED: megaop speedup "
                  f"{outcome['megaop_speedup']:.2f}x "
                  f"< {CHECK_MEGAOP:.1f}x fused", file=sys.stderr)
            failed = True
        if outcome["kernel_speedup"] < CHECK_SPEEDUP:
            print(f"CHECK FAILED: kernel speedup "
                  f"{outcome['kernel_speedup']:.2f}x "
                  f"< {CHECK_SPEEDUP:.0f}x", file=sys.stderr)
            failed = True
        for name, row in outcome["divergent"].items():
            if row["speedup"] < CHECK_DIVERGENT:
                print(f"CHECK FAILED: divergent speedup {row['speedup']:.2f}x"
                      f" < {CHECK_DIVERGENT:.1f}x on {name}",
                      file=sys.stderr)
                failed = True
            if row["gang_residency_pct"] < CHECK_RESIDENCY:
                print(f"CHECK FAILED: gang residency "
                      f"{row['gang_residency_pct']:.1f}% "
                      f"< {CHECK_RESIDENCY:.0f}% on {name}",
                      file=sys.stderr)
                failed = True
        if failed:
            return 1
        divergent = min(row["speedup"]
                        for row in outcome["divergent"].values())
        residency = min(row["gang_residency_pct"]
                        for row in outcome["divergent"].values())
        print(f"check passed: gang {outcome['speedup']:.1f}x scalar "
              f"(homogeneous), fused {outcome['fusion_speedup']:.2f}x gang, "
              f"megaop {outcome['megaop_speedup']:.2f}x fused, "
              f"{outcome['kernel_speedup']:.1f}x (memory-bound kernel), "
              f"divergent >= {divergent:.1f}x at >= {residency:.0f}% "
              f"residency")
    return 0


if __name__ == "__main__":
    sys.exit(main())
