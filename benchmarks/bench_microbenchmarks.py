"""Microbenchmarks of the library's own primitives.

Not paper artifacts — these time the toolchain and simulator themselves
(assembler, binary codec, interpreter, EU replay, C front end, DSL
compiler) so regressions in the hot paths show up in CI.  These use
pytest-benchmark's real measurement loop, unlike the single-shot
evaluation benches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chi.dsl import compile_dsl
from repro.chi.frontend.driver import compile_source
from repro.exo.shred import ShredDescriptor
from repro.gma.device import GmaDevice
from repro.gma.eu import simulate_device
from repro.gma.timing import GmaTimingConfig
from repro.isa.assembler import assemble
from repro.isa.encoding import decode_program, encode_program
from repro.isa.scheduler import schedule_program
from repro.kernels import Geometry, kernel_by_abbrev
from repro.memory.address_space import AddressSpace
from repro.memory.surface import Surface
from repro.isa.types import DataType

KERNEL_ASM = kernel_by_abbrev("SepiaTone").asm_source(Geometry(80, 48))

C_PROGRAM = """
int main() {
    int A[64];
    int i;
    for (i = 0; i < 64; i++) A[i] = i;
    #pragma omp parallel target(X3000) shared(A) private(i)
    {
        for (i = 0; i < 8; i++)
        __asm {
            shl.1.dw vr1 = i, 3
            ld.8.dw [vr2..vr9] = (A, vr1, 0)
            add.8.dw [vr10..vr17] = [vr2..vr9], 1
            st.8.dw (A, vr1, 0) = [vr10..vr17]
            end
        }
    }
    return A[63];
}
"""

DSL_TEXT = ("OUT = clamp(0.25*SRC[-1,0] + 0.5*SRC[0,0] + 0.25*SRC[1,0] "
            "+ 0.5, 0, 255)")


def test_assembler_throughput(benchmark):
    program = benchmark(assemble, KERNEL_ASM)
    assert len(program) > 0


def test_binary_codec_roundtrip(benchmark):
    program = assemble(KERNEL_ASM)

    def roundtrip():
        return decode_program(encode_program(program))

    decoded = benchmark(roundtrip)
    assert len(decoded) == len(program)


def test_instruction_scheduler(benchmark):
    program = assemble(KERNEL_ASM)
    scheduled = benchmark(schedule_program, program)
    assert len(scheduled) == len(program)


def test_interpreter_instructions_per_second(benchmark):
    """Functional execution rate of the device model."""
    space = AddressSpace()
    device = GmaDevice(space)
    surf = Surface.alloc(space, "S", 256, 1, DataType.DW)
    surf.upload(space, np.zeros((1, 256)))
    program = assemble("""
        mov.1.dw vr1 = 0
    loop:
        ld.16.dw vr2 = (S, vr1, 0)
        add.16.dw vr3 = vr2, 1
        st.16.dw (S, vr1, 0) = vr3
        add.1.dw vr1 = vr1, 16
        cmp.lt.1.dw p1 = vr1, 256
        br p1, loop
        end
    """)

    def run_shred():
        return device.run(
            [ShredDescriptor(program=program, surfaces={"S": surf})])

    result = benchmark(run_shred)
    # mov + 16 iterations x (ld, add, st, add, cmp, br) + end
    assert result.instructions == 16 * 6 + 2


def test_eu_replay_throughput(benchmark):
    config = GmaTimingConfig()
    trace = [(1, 3)] * 200
    from repro.gma.interpreter import ShredRun

    runs = [ShredRun(shred=ShredDescriptor(program=assemble("end")),
                     trace=list(trace)) for _ in range(64)]
    for run in runs:
        run.issue_cycles = 200
    timing = benchmark(simulate_device, runs, config)
    assert timing.compute_cycles > 0


def test_c_frontend_compile(benchmark):
    program = benchmark(compile_source, C_PROGRAM)
    assert len(program.fatbinary.sections) == 1


def test_dsl_compile(benchmark):
    dsl = benchmark(compile_dsl, DSL_TEXT)
    assert dsl.outputs == ["OUT"]
