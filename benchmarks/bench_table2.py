"""Table 2: media-processing kernels and their shred decompositions.

Regenerates the shred counts of every Table 2 row from our kernels'
tile-grid formulas at the paper's full input geometries (counting only —
full-size runs would take days in a Python interpreter; the decomposition
formula is what the table reports).
"""

from __future__ import annotations

from repro.kernels import ALL_KERNELS
from repro.perf.report import format_table2

#: Rows where our reconstructed decomposition differs from the paper's
#: count (documented in each kernel's module docstring).
KNOWN_DEVIATIONS = {("LinearFilter", "640x480")}


def test_table2_shred_counts(benchmark, show):
    def compute():
        rows = []
        for cls in ALL_KERNELS:
            kernel = cls()
            for config in kernel.paper_configs():
                rows.append((kernel.abbrev, str(config.geometry),
                             config.paper_shreds,
                             kernel.shred_count(config.geometry)))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    show(format_table2())

    assert len(rows) == 13  # ten kernels, three with two configurations
    for abbrev, geom, paper, ours in rows:
        if (abbrev, geom.split(" ")[-1]) in KNOWN_DEVIATIONS:
            assert abs(ours - paper) / paper < 0.02, (
                f"{abbrev} {geom}: {ours} vs paper {paper}")
        else:
            assert ours == paper, f"{abbrev} {geom}: {ours} vs paper {paper}"
