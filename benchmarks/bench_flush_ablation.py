"""Section 5.2's in-text ablation: intelligent cache flushing.

"In a system where the cache flush operation has not been optimized and
only writes data back to memory at 2GB/s, executing LinearFilter yields a
speedup of only 3.15X over IA32 sequencer execution [if] the entire cache
flush cost ... must be paid up front.  However, the initial 32
exo-sequencer shreds ... access less than 1% of the total input data.  By
flushing just this necessary data initially, and flushing the remaining
data in parallel with execution ..., performance very close to a
cache-coherent shared virtual memory configuration can be achieved."
"""

from __future__ import annotations

import pytest

from repro.memory.flushing import FlushPolicy
from repro.perf.memory_models import MemoryModel
from repro.perf.report import format_flush_ablation
from repro.perf.study import run_suite


def test_flush_ablation_linearfilter(benchmark, show):
    suite = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    m = suite["LinearFilter"]
    show(format_flush_ablation(m))

    cc = m.speedup
    # section 5.2's discussion is about flushing the *input* working set
    upfront = m.model_speedup(MemoryModel.NONCC_SHARED,
                              flush_policy=FlushPolicy.UPFRONT,
                              optimized_flush=False,
                              include_output_flush=False)
    interleaved = m.model_speedup(MemoryModel.NONCC_SHARED,
                                  flush_policy=FlushPolicy.INTERLEAVED,
                                  optimized_flush=False,
                                  include_output_flush=False)

    # paper: 3.15x with the naive up-front 2 GB/s flush
    assert upfront == pytest.approx(3.15, rel=0.25)
    # the interleaved policy recovers most of the gap to CC
    assert interleaved > upfront
    assert (cc - interleaved) < 0.45 * (cc - upfront)


def test_flush_hiding_fraction(suite):
    """The first shred wave covers a tiny input fraction, so almost the
    whole flush overlaps with execution ("the initial 32 exo-sequencer
    shreds access less than 1% of the total input data")."""
    m = suite["LinearFilter"]
    from repro.memory.flushing import schedule_flush

    plan = schedule_flush(FlushPolicy.INTERLEAVED, m.in_bytes,
                          m.gma_seconds, m.frame_shreds,
                          m.machine.gma.num_sequencers, m.machine.bandwidth,
                          optimized=False)
    assert plan.hidden_fraction > 0.5
    first_wave = m.machine.gma.num_sequencers / m.frame_shreds
    assert first_wave <= 0.15
