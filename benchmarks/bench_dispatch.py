"""Per-instruction dispatch overhead: scalar vs gang vs fused vs megaop.

The four engines retire the same instruction stream; what differs is
how much *host* work each instruction costs before numpy does the lane
math.  The scalar interpreter pays a full decode-dispatch-account round
per instruction per shred; the gang engine pays one batched round per
instruction; the fused engine pays one round per *block* (superblock
trace fusion, ``docs/ENGINE.md``) and amortizes branch resolution over
chained traces; the megaop engine pays one round per *hot-loop
traversal* once the trace cycle has been promoted.

This benchmark isolates that overhead by timing a pure-ALU counted loop
where every instruction is host-bound (16-lane mads on resident
registers — no memory traffic, no faults, no divergence), and reporting
**nanoseconds of host wall-clock per retired instruction** at several
trip counts.  Longer loops amortize fixed launch cost, so the asymptote
approximates the steady-state dispatch cost per instruction.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_dispatch.py

or under pytest (``pytest benchmarks/bench_dispatch.py``).  Writes
``BENCH_dispatch.json`` (``--json`` to move).  ``--check`` compares the
fresh sweep against the committed baseline and fails if fused ns/instr
regressed by more than ``CHECK_REGRESSION`` at the longest trip count.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.exo.shred import ShredDescriptor
from repro.gma.device import GmaDevice
from repro.isa import predecode
from repro.isa.assembler import assemble
from repro.memory.address_space import AddressSpace

ENGINES = ("scalar", "gang", "fused", "megaop")
DEFAULT_SHREDS = 32
#: ``--check`` tolerance: fused ns/instr may drift this much above the
#: committed baseline before the gate fails (noisy-host headroom).
CHECK_REGRESSION = 0.20
#: Trip counts for the amortization sweep: the launch-overhead-dominated
#: short end through the dispatch-dominated long end.
TRIP_COUNTS = (10, 100, 600)

#: Same contract-to-fixed-point ALU loop shape as ``bench_engine`` — all
#: dispatch, no memory system.
LOOP_ASM = """
iota.16.f vr1
mul.16.f vr1 = vr1, 0.05
mov.1.dw vr2 = 0
bcast.16.f vr3 = vr1
loop:
mad.16.f vr3 = vr3, vr1, vr1
mad.16.f vr4 = vr3, vr1, vr1
add.16.f vr5 = vr3, vr4
mul.16.f vr6 = vr5, vr1
add.1.dw vr2 = vr2, 1
cmp.lt.1.dw p1 = vr2, iters
br p1, loop
end
"""


def measure(engine: str, iters: int, shreds: int = DEFAULT_SHREDS,
            repeats: int = 3) -> dict:
    """Best-of-``repeats`` ns/instruction for one engine and trip count."""
    program = assemble(LOOP_ASM, name="dispatch-loop")
    best = None
    for _ in range(repeats):
        predecode.CACHE.clear()
        device = GmaDevice(AddressSpace(), engine=engine)
        batch = [ShredDescriptor(program=program,
                                 bindings={"iters": float(iters)})
                 for _ in range(shreds)]
        started = time.perf_counter()
        result = device.run(batch)
        wall = time.perf_counter() - started
        if best is None or wall < best["wall_seconds"]:
            best = {
                "engine": engine,
                "iters": iters,
                "instructions": result.instructions,
                "wall_seconds": wall,
                "ns_per_instruction": wall * 1e9 / result.instructions,
                "fused_blocks_retired": result.fused_blocks_retired,
                "trace_chains": result.trace_chains,
                "megaops_retired": result.megaops_retired,
                "megaop_compiles": result.megaop_compiles,
                "megaop_deopts": result.megaop_deopts,
            }
    return best


def compare(shreds: int = DEFAULT_SHREDS) -> dict:
    """The full sweep: every engine at every trip count."""
    rows = {}
    for iters in TRIP_COUNTS:
        rows[str(iters)] = {engine: measure(engine, iters, shreds)
                            for engine in ENGINES}
    longest = rows[str(TRIP_COUNTS[-1])]
    return {
        "shreds": shreds,
        "trip_counts": list(TRIP_COUNTS),
        "rows": rows,
        # steady-state overhead ratios at the longest trip count
        "gang_dispatch_ratio": (longest["scalar"]["ns_per_instruction"]
                                / longest["gang"]["ns_per_instruction"]),
        "fused_dispatch_ratio": (longest["gang"]["ns_per_instruction"]
                                 / longest["fused"]["ns_per_instruction"]),
        "megaop_dispatch_ratio": (longest["fused"]["ns_per_instruction"]
                                  / longest["megaop"]["ns_per_instruction"]),
    }


def report(outcome: dict) -> str:
    lines = [f"per-instruction dispatch overhead, "
             f"{outcome['shreds']} homogeneous shreds:"]
    lines.append(f"  {'iters':>6s} {'engine':8s} {'instr':>8s} "
                 f"{'wall ms':>9s} {'ns/instr':>9s}")
    for iters in outcome["trip_counts"]:
        for engine in ENGINES:
            m = outcome["rows"][str(iters)][engine]
            lines.append(f"  {iters:6d} {engine:8s} {m['instructions']:8d} "
                         f"{m['wall_seconds'] * 1e3:9.2f} "
                         f"{m['ns_per_instruction']:9.0f}")
    lines.append(f"  steady state (iters={outcome['trip_counts'][-1]}): "
                 f"gang removes {outcome['gang_dispatch_ratio']:.1f}x "
                 f"dispatch cost, fusion another "
                 f"{outcome['fused_dispatch_ratio']:.2f}x, megaop another "
                 f"{outcome['megaop_dispatch_ratio']:.2f}x")
    return "\n".join(lines)


def check(outcome: dict, baseline_path: str) -> list:
    """Regression gate against the committed baseline.

    Returns a list of failure strings (empty = pass).  Only the fused
    tier at the longest trip count is gated — it is the steady-state
    dispatch number the engine docs quote, and the short trip counts
    are launch-overhead-dominated and too noisy to gate."""
    try:
        with open(baseline_path) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        return [f"baseline {baseline_path} not found; run without --check "
                f"once to create it"]
    iters = str(outcome["trip_counts"][-1])
    if iters not in baseline.get("rows", {}) \
            or "fused" not in baseline["rows"][iters]:
        return [f"baseline {baseline_path} has no fused row at "
                f"iters={iters}; regenerate it"]
    was = baseline["rows"][iters]["fused"]["ns_per_instruction"]
    now = outcome["rows"][iters]["fused"]["ns_per_instruction"]
    failures = []
    if now > was * (1.0 + CHECK_REGRESSION):
        failures.append(
            f"fused ns/instr regressed: {now:.0f} vs baseline {was:.0f} "
            f"(+{(now / was - 1.0) * 100:.0f}%, limit "
            f"+{CHECK_REGRESSION * 100:.0f}%)")
    return failures


# -- pytest entry points ---------------------------------------------------------------


def test_dispatch_overhead_shrinks_by_engine():
    """Soft ordering check at the amortized trip count: each engine tier
    must strictly cut host cost per instruction (generous margins — this
    asserts the mechanism works, the hard perf gate lives in
    ``bench_engine --check``)."""
    iters = TRIP_COUNTS[-1]
    scalar = measure("scalar", iters, repeats=2)
    gang = measure("gang", iters, repeats=2)
    fused = measure("fused", iters, repeats=2)
    megaop = measure("megaop", iters, repeats=2)
    assert scalar["instructions"] == gang["instructions"] \
        == fused["instructions"] == megaop["instructions"]
    assert gang["ns_per_instruction"] < scalar["ns_per_instruction"] / 2
    assert fused["ns_per_instruction"] < gang["ns_per_instruction"]
    assert fused["fused_blocks_retired"] > 0
    assert fused["trace_chains"] > 0
    assert megaop["ns_per_instruction"] < gang["ns_per_instruction"]
    assert megaop["megaop_compiles"] > 0
    assert megaop["megaops_retired"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shreds", type=int, default=DEFAULT_SHREDS)
    parser.add_argument("--json", default="BENCH_dispatch.json")
    parser.add_argument("--check", action="store_true",
                        help="gate the fresh sweep against the committed "
                             "baseline: fail if fused ns/instr regressed "
                             "more than %d%%" % (CHECK_REGRESSION * 100))
    args = parser.parse_args(argv)

    outcome = compare(args.shreds)
    print(report(outcome))
    if args.check:
        failures = check(outcome, args.json)
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}")
            return 1
        print(f"check passed: fused ns/instr within "
              f"{CHECK_REGRESSION * 100:.0f}% of {args.json}")
        return 0
    with open(args.json, "w") as handle:
        json.dump(outcome, handle, indent=2)
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
