"""The device fabric: multi-accelerator scaling and work-stealing dispatch.

Three claims to hold the subsystem to:

* an N-accelerator fabric (every GMA sharing the one virtual address
  space) drains a parallel region strictly faster than a single device —
  the scaling the EXO model's shared virtual memory makes cheap;
* the event-driven work-stealing dispatcher is a faithful generalization
  of section 5.3's self-scheduling: run over one two-sequencer loop it
  converges to the oracle partition as chunks shrink, for every Table 2
  kernel;
* the **cross-process fabric** (``--fabric-workers``) escapes the GIL:
  on a host with >= 4 usable cores, draining one region over 4 worker
  processes beats the in-process serial drain by >= 1.6x wall-clock.
  On fewer cores genuine parallel speedup is physically unavailable, so
  the gate degrades to an *overhead* bound: the shared-memory + pipe
  tax may cost at most ~2x (speedup >= 0.5x).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fabric.py
    PYTHONPATH=src python benchmarks/bench_fabric.py --check   # CI gate

or under pytest (``pytest benchmarks/bench_fabric.py``).  Writes
``BENCH_fabric.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import pytest

from repro.chi import ChiRuntime, ExoPlatform
from repro.errors import FabricError
from repro.exo.shred import ShredDescriptor
from repro.fabric.workers import ProcessWorkerPool
from repro.isa.assembler import assemble
from repro.memory.address_space import AddressSpace
from repro.memory.physical import PhysicalMemory

KERNEL = """
    mul.1.dw vr1 = tid, 3
    add.1.dw vr2 = vr1, 1
    add.1.dw vr3 = vr2, vr1
    end
"""
SHREDS = 256


def region_seconds(num_devices: int) -> float:
    rt = ChiRuntime(ExoPlatform(num_gma_devices=num_devices))
    region = rt.parallel(KERNEL, num_threads=SHREDS)
    assert region.result.shreds_executed == SHREDS
    return region.gma_seconds


def test_fabric_scaling(show):
    lines = [f"{SHREDS}-shred region across N GMA X3000 devices:"]
    seconds = {n: region_seconds(n) for n in (1, 2, 4)}
    for n, s in seconds.items():
        bar = "#" * int(40 * s / seconds[1])
        lines.append(f"  {n} device(s): {s * 1e6:8.3f} us  {bar}")
    show("\n".join(lines))

    # the acceptance bar: two devices are strictly faster than one
    assert seconds[2] < seconds[1]
    assert seconds[4] < seconds[2]


def test_fabric_split_is_balanced():
    rt = ChiRuntime(ExoPlatform(num_gma_devices=2))
    rt.parallel(KERNEL, num_threads=SHREDS)
    shreds = rt.stats.device_shreds
    assert abs(shreds["gma0"] - shreds["gma1"]) <= 2


def test_work_stealing_converges_to_oracle(suite, show):
    """The dispatcher's two-device outcome lands within 5% of the oracle
    at fine chunking, for every kernel in the suite."""
    lines = ["work-stealing vs oracle (gap at 16 / 64 / 256 chunks):"]
    for abbrev, m in suite.items():
        oracle = m.partition("oracle").total_seconds
        gaps = []
        for chunks in (16, 64, 256):
            ws = m.partition("work-stealing", num_chunks=chunks)
            gaps.append(ws.total_seconds / oracle - 1)
        lines.append(f"  {abbrev:10s} " +
                     "  ".join(f"{100 * g:+6.2f}%" for g in gaps))
        # convergence is not monotone chunk by chunk (a coarse split can
        # land on the oracle point by luck); the bound at fine chunking
        # is the claim
        assert m.partition(
            "work-stealing", num_chunks=256).total_seconds <= oracle * 1.05
    show("\n".join(lines))


def test_work_stealing_tracks_dynamic_partition(suite):
    """Queue-based stealing and the closed-form greedy loop describe the
    same mechanism; their outcomes agree to within one chunk."""
    for m in suite.values():
        dyn = m.partition("dynamic", num_chunks=128).total_seconds
        ws = m.partition("work-stealing", num_chunks=128).total_seconds
        chunk = max(m.cpu_seconds, m.gma_seconds) / 128
        assert ws == pytest.approx(dyn, abs=chunk)


# -- cross-process fabric scaling -------------------------------------------

CHECK_PROCESS_SPEEDUP = 1.6   # 4 process workers vs serial, >= 4 cores
CHECK_PROCESS_OVERHEAD = 0.5  # single-core floor: IPC tax bounded to ~2x
PROCESS_WORKERS = (1, 2, 4)
PROCESS_SHREDS = 64
PROCESS_ITERS = 600


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _loop_kernel(iters: int) -> str:
    """Compute-heavy and memory-free: all cost is interpreter cycles, so
    wall-clock measures drain concurrency, not shared-frame bandwidth."""
    return f"""
    mov.1.dw vr1 = 0
loop:
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p1 = vr1, {iters}
    br p1, loop
    end
"""


def _region_wall(fabric_workers: int, shreds: int, iters: int) -> float:
    platform = ExoPlatform(num_gma_devices=4, fabric_workers=fabric_workers)
    try:
        rt = ChiRuntime(platform)
        t0 = time.perf_counter()
        region = rt.parallel(_loop_kernel(iters), num_threads=shreds)
        wall = time.perf_counter() - t0
        assert region.result.shreds_executed == shreds
        return wall
    finally:
        platform.close()


def measure_process_scaling(workers=PROCESS_WORKERS,
                            shreds: int = PROCESS_SHREDS,
                            iters: int = PROCESS_ITERS) -> dict:
    """Wall-clock of one region: in-process serial vs N process workers."""
    serial = _region_wall(0, shreds, iters)
    rows = []
    for n in workers:
        wall = _region_wall(n, shreds, iters)
        rows.append({
            "workers": n,
            "wall_seconds": wall,
            "throughput_sps": shreds / wall,
            "speedup": serial / wall,
        })
    return {
        "cores": _usable_cores(),
        "shreds": shreds,
        "iters": iters,
        "serial_wall_seconds": serial,
        "serial_throughput_sps": shreds / serial,
        "rows": rows,
    }


def measure_worker_crash() -> dict:
    """A killed worker must surface as a clean FabricError; its peers and
    the shootdown broadcast keep working."""
    physical = PhysicalMemory(size=16 * 1024 * 1024, backing="shared")
    space = AddressSpace(physical=physical)
    pool = ProcessWorkerPool(physical, num_workers=2)
    pool.adopt_space(space)
    try:
        program = assemble(_loop_kernel(4), name="crash-probe")
        batch = [ShredDescriptor(program=program, bindings={"tid": i})
                 for i in range(4)]
        pool.worker_for(0).launch("gma0", space, batch)
        pool.worker_for(1).launch("gma1", space, batch)
        pool.worker_for(1).kill()
        clean_error = False
        try:
            pool.worker_for(1).launch("gma1", space, batch)
        except FabricError:
            clean_error = True
        survivor = pool.worker_for(0).launch("gma0", space, batch)
        base = space.alloc(4096)
        space.free(base)  # shootdown broadcast with one worker dead
        return {
            "clean_error_on_dead_worker": clean_error,
            "survivor_completed_shreds": survivor.shreds,
            "shootdown_after_crash": True,
            "passed": clean_error and survivor.shreds == len(batch),
        }
    finally:
        pool.close()
        physical.close()


def report_process(outcome: dict, crash: dict) -> str:
    gated = outcome["cores"] >= 4
    lines = [
        f"process-fabric scaling ({outcome['shreds']} shreds x "
        f"{outcome['iters']} iterations, {outcome['cores']} usable "
        f"core(s)):",
        f"  serial (in-process): {outcome['serial_wall_seconds']:7.3f}s  "
        f"{outcome['serial_throughput_sps']:7.1f} shreds/s",
    ]
    for row in outcome["rows"]:
        lines.append(
            f"  {row['workers']} process worker(s): "
            f"{row['wall_seconds']:7.3f}s  "
            f"{row['throughput_sps']:7.1f} shreds/s  "
            f"{row['speedup']:5.2f}x")
    if gated:
        lines.append(f"  gate: >= {CHECK_PROCESS_SPEEDUP:.1f}x at "
                     f"4 workers")
    else:
        lines.append(
            f"  gate: single-core host, genuine speedup unavailable; "
            f"overhead bound >= {CHECK_PROCESS_OVERHEAD:.1f}x applies")
    lines.append(
        "  worker-crash robustness: "
        + ("PASS" if crash["passed"] else "FAIL")
        + f" (clean error: {crash['clean_error_on_dead_worker']}, "
          f"survivor shreds: {crash['survivor_completed_shreds']})")
    return "\n".join(lines)


def step_summary(outcome: dict, crash: dict) -> str:
    lines = [
        "### Fabric benchmark (cross-process scaling)",
        "",
        f"- host: {outcome['cores']} usable core(s); region: "
        f"{outcome['shreds']} shreds x {outcome['iters']} iterations",
        f"- worker-crash robustness: "
        + ("**pass**" if crash["passed"] else "**FAIL**"),
        "",
        "| drain | wall (s) | shreds/s | speedup |",
        "|---|---|---|---|",
        f"| serial (in-process) | "
        f"{outcome['serial_wall_seconds']:.3f} | "
        f"{outcome['serial_throughput_sps']:.1f} | 1.00x |",
    ]
    for row in outcome["rows"]:
        lines.append(
            f"| {row['workers']} process worker(s) "
            f"| {row['wall_seconds']:.3f} "
            f"| {row['throughput_sps']:.1f} "
            f"| {row['speedup']:.2f}x |")
    return "\n".join(lines) + "\n"


# -- pytest entry points for the process tier -------------------------------

def test_process_drain_overhead_bounded():
    """On any host the process tier may cost at most ~2x the serial
    drain (IPC + pickle tax); with >= 4 cores it must win outright."""
    outcome = measure_process_scaling(workers=(4,), shreds=PROCESS_SHREDS,
                                      iters=PROCESS_ITERS)
    speedup = outcome["rows"][0]["speedup"]
    assert speedup >= CHECK_PROCESS_OVERHEAD
    if outcome["cores"] >= 4:
        assert speedup > 1.0


def test_process_worker_crash_is_contained():
    crash = measure_worker_crash()
    assert crash["passed"], crash


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shreds", type=int, default=PROCESS_SHREDS,
                        help="region width (default %(default)s)")
    parser.add_argument("--iters", type=int, default=PROCESS_ITERS,
                        help="loop iterations per shred "
                             "(default %(default)s)")
    parser.add_argument("--json", type=str, default="BENCH_fabric.json",
                        help="result file (default %(default)s)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless 4 process workers "
                             f"reach >= {CHECK_PROCESS_SPEEDUP:.1f}x over "
                             "the serial drain (>= 4 usable cores; "
                             "single-core hosts gate on bounded overhead "
                             f">= {CHECK_PROCESS_OVERHEAD:.1f}x) and the "
                             "worker-crash probe passes")
    args = parser.parse_args(argv)

    outcome = measure_process_scaling(shreds=args.shreds, iters=args.iters)
    crash = measure_worker_crash()
    print(report_process(outcome, crash))
    payload = {"scaling": outcome, "crash": crash}
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {args.json}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(step_summary(outcome, crash))
        print(f"appended fabric stats to {summary_path}")
    if args.check:
        failed = False
        at4 = next(r for r in outcome["rows"] if r["workers"] == 4)
        if outcome["cores"] >= 4:
            if at4["speedup"] < CHECK_PROCESS_SPEEDUP:
                print(f"CHECK FAILED: {at4['speedup']:.2f}x at 4 workers "
                      f"< {CHECK_PROCESS_SPEEDUP:.1f}x", file=sys.stderr)
                failed = True
        elif at4["speedup"] < CHECK_PROCESS_OVERHEAD:
            print(f"CHECK FAILED: {at4['speedup']:.2f}x at 4 workers "
                  f"< overhead floor {CHECK_PROCESS_OVERHEAD:.1f}x "
                  f"({outcome['cores']} core(s))", file=sys.stderr)
            failed = True
        if not crash["passed"]:
            print(f"CHECK FAILED: worker-crash probe {crash}",
                  file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f"check passed: {at4['speedup']:.2f}x at 4 workers on "
              f"{outcome['cores']} core(s), crash probe contained")
    return 0


if __name__ == "__main__":
    sys.exit(main())
