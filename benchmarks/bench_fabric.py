"""The device fabric: multi-accelerator scaling and work-stealing dispatch.

Two claims to hold the new subsystem to:

* an N-accelerator fabric (every GMA sharing the one virtual address
  space) drains a parallel region strictly faster than a single device —
  the scaling the EXO model's shared virtual memory makes cheap;
* the event-driven work-stealing dispatcher is a faithful generalization
  of section 5.3's self-scheduling: run over one two-sequencer loop it
  converges to the oracle partition as chunks shrink, for every Table 2
  kernel.
"""

from __future__ import annotations

import pytest

from repro.chi import ChiRuntime, ExoPlatform

KERNEL = """
    mul.1.dw vr1 = tid, 3
    add.1.dw vr2 = vr1, 1
    add.1.dw vr3 = vr2, vr1
    end
"""
SHREDS = 256


def region_seconds(num_devices: int) -> float:
    rt = ChiRuntime(ExoPlatform(num_gma_devices=num_devices))
    region = rt.parallel(KERNEL, num_threads=SHREDS)
    assert region.result.shreds_executed == SHREDS
    return region.gma_seconds


def test_fabric_scaling(show):
    lines = [f"{SHREDS}-shred region across N GMA X3000 devices:"]
    seconds = {n: region_seconds(n) for n in (1, 2, 4)}
    for n, s in seconds.items():
        bar = "#" * int(40 * s / seconds[1])
        lines.append(f"  {n} device(s): {s * 1e6:8.3f} us  {bar}")
    show("\n".join(lines))

    # the acceptance bar: two devices are strictly faster than one
    assert seconds[2] < seconds[1]
    assert seconds[4] < seconds[2]


def test_fabric_split_is_balanced():
    rt = ChiRuntime(ExoPlatform(num_gma_devices=2))
    rt.parallel(KERNEL, num_threads=SHREDS)
    shreds = rt.stats.device_shreds
    assert abs(shreds["gma0"] - shreds["gma1"]) <= 2


def test_work_stealing_converges_to_oracle(suite, show):
    """The dispatcher's two-device outcome lands within 5% of the oracle
    at fine chunking, for every kernel in the suite."""
    lines = ["work-stealing vs oracle (gap at 16 / 64 / 256 chunks):"]
    for abbrev, m in suite.items():
        oracle = m.partition("oracle").total_seconds
        gaps = []
        for chunks in (16, 64, 256):
            ws = m.partition("work-stealing", num_chunks=chunks)
            gaps.append(ws.total_seconds / oracle - 1)
        lines.append(f"  {abbrev:10s} " +
                     "  ".join(f"{100 * g:+6.2f}%" for g in gaps))
        # convergence is not monotone chunk by chunk (a coarse split can
        # land on the oracle point by luck); the bound at fine chunking
        # is the claim
        assert m.partition(
            "work-stealing", num_chunks=256).total_seconds <= oracle * 1.05
    show("\n".join(lines))


def test_work_stealing_tracks_dynamic_partition(suite):
    """Queue-based stealing and the closed-form greedy loop describe the
    same mechanism; their outcomes agree to within one chunk."""
    for m in suite.values():
        dyn = m.partition("dynamic", num_chunks=128).total_seconds
        ws = m.partition("work-stealing", num_chunks=128).total_seconds
        chunk = max(m.cpu_seconds, m.gma_seconds) / 128
        assert ws == pytest.approx(dyn, abs=chunk)
