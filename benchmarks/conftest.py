"""Shared fixtures for the evaluation benchmarks.

The full kernel suite measurement (every Table 2 kernel executed
instruction-by-instruction on the device model) is expensive, so it runs
once per session and every figure derives from the same measurements —
the same economy the paper's authors had: one set of runs, several
analyses.
"""

from __future__ import annotations

import pytest

from repro.perf.study import run_suite


@pytest.fixture(scope="session")
def suite():
    """Measurements for all ten kernels at benchmark geometries."""
    return run_suite()


@pytest.fixture
def show(capsys):
    """Print a report table so it survives pytest's output capture."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
