"""The serving layer under load: latency, throughput, coalescing lift.

Two measurements drive the CI gates:

* **Mixed-stream serving** — N tenants (default 4), each its own
  isolated address space, replay mixed-kernel request streams through
  one :class:`~repro.serving.ExoServer` concurrently.  Reports p50/p99
  request latency, sustained throughput, and the coalescing rate; every
  output is verified bit-identical to the kernel reference.
* **Coalescing lift** — the four flat kernels (AlphaBlend, BOB, ADVDI,
  ProcAmp) launch a *single* shred each at smoke geometry, so solo
  requests execute on the scalar-fallback path (one lane is not a
  gang).  Queueing 8 same-program requests lets cross-launch gang
  formation merge them into one 8-lane gang; the gate requires >= 3x
  solo instructions/second on at least two of the four.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --check   # CI gate

or under pytest (``pytest benchmarks/bench_serving.py``).  Writes
``BENCH_serving.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

from repro.fabric.queue import AdmissionPolicy
from repro.kernels import kernel_by_abbrev
from repro.serving import ExoServer, SessionQuotas, TenantWorkload

FLAT_KERNELS = ("AlphaBlend", "BOB", "ADVDI", "ProcAmp")
CHECK_COALESCE_SPEEDUP = 3.0  # x solo instr/s, per kernel
CHECK_COALESCE_KERNELS = 2    # at least this many of the four must clear
CHECK_THROUGHPUT = 6.0        # sustained req/s on the smoke mix
CHECK_P99_SECONDS = 5.0       # p99 latency bound on the smoke mix
# (local runs measure ~19 req/s / p99 ~1.6s; the gates leave 3x headroom
# for CI hardware)


def _percentile(values, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(int(round(q * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[idx]


async def _tenant_stream(server: ExoServer, session, kernels,
                         requests: int, latencies: list,
                         verify: bool) -> None:
    workloads = [TenantWorkload(session, kernel_by_abbrev(abbrev))
                 for abbrev in kernels]

    async def one(workload, launch):
        started = time.perf_counter()
        await server.submit(session, launch.program,
                            bindings=launch.bindings,
                            surfaces=launch.surfaces)
        latencies.append(time.perf_counter() - started)
        if verify:
            launch.verify(session)
        workload.release(launch)

    # issue in bursts of the stream's kernel mix: launches of one kernel
    # land adjacent in the queue, the shape coalescing feeds on
    pairs = [(workloads[i % len(workloads)],) for i in range(requests)]
    await asyncio.gather(*[
        one(w, w.new_launch()) for (w,) in pairs
    ])


async def _serve(tenants: int, requests: int, devices: int,
                 engine: str, verify: bool) -> dict:
    async with ExoServer(num_devices=devices, engine=engine,
                         admission_policy=AdmissionPolicy.BLOCK) as server:
        latencies: list = []
        sessions = []
        streams = []
        for i in range(tenants):
            kernels = (FLAT_KERNELS[i % len(FLAT_KERNELS)],
                       FLAT_KERNELS[(i + 1) % len(FLAT_KERNELS)])
            session = server.open_session(
                f"tenant-{i}",
                SessionQuotas(weight=1.0 + (i % 2),
                              max_inflight=requests,
                              max_surfaces=8 * requests,
                              max_surface_bytes=64 << 20,
                              max_descriptors=4 * requests))
            sessions.append(session)
            streams.append(_tenant_stream(server, session, kernels,
                                          requests, latencies, verify))
        started = time.perf_counter()
        await asyncio.gather(*streams)
        wall = time.perf_counter() - started
        for session in sessions:
            server.close_session(session)
        stats = server.stats
        total = tenants * requests
        return {
            "tenants": tenants,
            "requests_per_tenant": requests,
            "devices": devices,
            "engine": engine,
            "completed": stats.launches_completed,
            "wall_seconds": wall,
            "throughput_rps": total / wall,
            "p50_seconds": _percentile(latencies, 0.50),
            "p99_seconds": _percentile(latencies, 0.99),
            "batches_dispatched": stats.batches_dispatched,
            "gangs_coalesced": stats.gangs_coalesced,
            "coalesced_lanes": stats.coalesced_lanes,
            "coalescing_rate": (stats.coalesced_lanes / total
                                if total else 0.0),
            "verified": verify,
            "per_tenant": [s.stats() for s in sessions],
        }


def measure_serving(tenants: int = 4, requests: int = 8,
                    devices: int = 2, engine: str = "gang",
                    verify: bool = True) -> dict:
    """The mixed-stream measurement (synchronous wrapper)."""
    return asyncio.run(_serve(tenants, requests, devices, engine, verify))


async def _coalesce_probe(abbrev: str, lanes: int, coalesce: bool) -> dict:
    """``lanes`` single-shred launches of one kernel: queued together
    (one gang) or awaited one at a time (scalar fallback per launch)."""
    async with ExoServer(num_devices=1, engine="gang") as server:
        session = server.open_session(
            "probe", SessionQuotas(max_inflight=lanes,
                                   max_surfaces=8 * lanes,
                                   max_surface_bytes=64 << 20,
                                   max_descriptors=4 * lanes))
        workload = TenantWorkload(session, kernel_by_abbrev(abbrev))
        launches = [workload.new_launch() for _ in range(lanes)]
        started = time.perf_counter()
        if coalesce:
            results = await asyncio.gather(*[
                server.submit(session, launch.program,
                              bindings=launch.bindings,
                              surfaces=launch.surfaces)
                for launch in launches
            ])
        else:
            results = []
            for launch in launches:
                results.append(await server.submit(
                    session, launch.program, bindings=launch.bindings,
                    surfaces=launch.surfaces))
        wall = time.perf_counter() - started
        for launch in launches:
            launch.verify(session)
        instructions = sum(r.instructions for r in results)
        return {
            "kernel": abbrev,
            "lanes": lanes,
            "coalesced": coalesce,
            "instructions": instructions,
            "wall_seconds": wall,
            "instructions_per_second": instructions / wall,
            "gangs_coalesced": server.stats.gangs_coalesced,
            "coalesced_lanes": server.stats.coalesced_lanes,
        }


def measure_coalescing(abbrev: str, lanes: int = 8,
                       repeats: int = 3) -> dict:
    """Solo-vs-coalesced instr/s for one flat kernel, best of repeats."""
    best_solo = best_gang = None
    for _ in range(repeats):
        solo = asyncio.run(_coalesce_probe(abbrev, lanes, coalesce=False))
        gang = asyncio.run(_coalesce_probe(abbrev, lanes, coalesce=True))
        if (best_solo is None
                or solo["wall_seconds"] < best_solo["wall_seconds"]):
            best_solo = solo
        if (best_gang is None
                or gang["wall_seconds"] < best_gang["wall_seconds"]):
            best_gang = gang
    return {
        "kernel": abbrev,
        "lanes": lanes,
        "solo": best_solo,
        "coalesced": best_gang,
        "speedup": (best_gang["instructions_per_second"]
                    / best_solo["instructions_per_second"]),
    }


def compare(tenants: int = 4, requests: int = 8, devices: int = 2,
            lanes: int = 8) -> dict:
    serving = measure_serving(tenants, requests, devices)
    coalescing = {abbrev: measure_coalescing(abbrev, lanes)
                  for abbrev in FLAT_KERNELS}
    cleared = sum(1 for row in coalescing.values()
                  if row["speedup"] >= CHECK_COALESCE_SPEEDUP)
    return {
        "serving": serving,
        "coalescing": coalescing,
        "kernels_cleared": cleared,
    }


def report(outcome: dict) -> str:
    serving = outcome["serving"]
    lines = [
        f"serving: {serving['tenants']} tenants x "
        f"{serving['requests_per_tenant']} requests on "
        f"{serving['devices']} devices ({serving['engine']} engine):",
        f"  throughput {serving['throughput_rps']:.1f} req/s "
        f"(gate: >= {CHECK_THROUGHPUT:.0f}), "
        f"p50 {serving['p50_seconds'] * 1e3:.1f}ms, "
        f"p99 {serving['p99_seconds'] * 1e3:.1f}ms "
        f"(gate: <= {CHECK_P99_SECONDS * 1e3:.0f}ms)",
        f"  {serving['batches_dispatched']} batches for "
        f"{serving['completed']} launches; "
        f"{serving['gangs_coalesced']} gangs formed, "
        f"{serving['coalesced_lanes']} lanes "
        f"({serving['coalescing_rate']:.0%} of requests rode a gang)",
        f"  cross-launch coalescing lift, {CHECK_COALESCE_SPEEDUP:.0f}x "
        f"gate on >= {CHECK_COALESCE_KERNELS} kernels:",
    ]
    for abbrev, row in outcome["coalescing"].items():
        mark = "PASS" if row["speedup"] >= CHECK_COALESCE_SPEEDUP else "    "
        lines.append(
            f"    {abbrev:12s} {row['speedup']:5.2f}x  "
            f"(solo {row['solo']['instructions_per_second'] / 1e6:6.3f} "
            f"Minstr/s, coalesced "
            f"{row['coalesced']['instructions_per_second'] / 1e6:6.3f}) "
            f"{mark}")
    lines.append(f"  {outcome['kernels_cleared']}/{len(FLAT_KERNELS)} "
                 f"kernels cleared the coalescing gate")
    return "\n".join(lines)


def step_summary(outcome: dict) -> str:
    serving = outcome["serving"]
    lines = [
        "### Serving benchmark",
        "",
        f"- throughput: **{serving['throughput_rps']:.1f} req/s** "
        f"(p50 {serving['p50_seconds'] * 1e3:.1f}ms / "
        f"p99 {serving['p99_seconds'] * 1e3:.1f}ms)",
        f"- coalescing: {serving['gangs_coalesced']} gangs, "
        f"{serving['coalesced_lanes']} lanes "
        f"({serving['coalescing_rate']:.0%} of requests)",
        "",
        "| kernel | solo Minstr/s | coalesced Minstr/s | lift |",
        "|---|---|---|---|",
    ]
    for abbrev, row in outcome["coalescing"].items():
        lines.append(
            f"| {abbrev} "
            f"| {row['solo']['instructions_per_second'] / 1e6:.3f} "
            f"| {row['coalesced']['instructions_per_second'] / 1e6:.3f} "
            f"| {row['speedup']:.2f}x |")
    return "\n".join(lines) + "\n"


# -- pytest entry points ---------------------------------------------------------------


def test_serving_mixed_stream():
    """Four isolated tenants serve concurrently, outputs verified."""
    serving = measure_serving(tenants=4, requests=4)
    assert serving["completed"] == 16
    assert serving["verified"]
    assert serving["gangs_coalesced"] > 0


def test_coalescing_lifts_flat_kernels():
    """The acceptance bar: >= 3x instr/s on >= 2 of the four flat
    kernels when 8 same-program launches queue together."""
    cleared = 0
    for abbrev in FLAT_KERNELS:
        row = measure_coalescing(abbrev, repeats=2)
        # every coalesced probe must actually have formed a gang
        assert row["coalesced"]["coalesced"]
        assert row["coalesced"]["gangs_coalesced"] > 0
        if row["speedup"] >= CHECK_COALESCE_SPEEDUP:
            cleared += 1
    assert cleared >= CHECK_COALESCE_KERNELS, \
        f"only {cleared} kernels cleared {CHECK_COALESCE_SPEEDUP:.0f}x"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=4,
                        help="concurrent sessions (default %(default)s)")
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per tenant (default %(default)s)")
    parser.add_argument("--devices", type=int, default=2,
                        help="GMA devices in the pool (default %(default)s)")
    parser.add_argument("--lanes", type=int, default=8,
                        help="queued launches per coalescing probe "
                             "(default %(default)s)")
    parser.add_argument("--json", type=str, default="BENCH_serving.json",
                        help="result file (default %(default)s)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless throughput >= "
                             f"{CHECK_THROUGHPUT:.0f} req/s at p99 <= "
                             f"{CHECK_P99_SECONDS:.1f}s and coalescing "
                             f"reaches {CHECK_COALESCE_SPEEDUP:.0f}x on "
                             f">= {CHECK_COALESCE_KERNELS} flat kernels")
    args = parser.parse_args(argv)

    outcome = compare(args.tenants, args.requests, args.devices, args.lanes)
    print(report(outcome))
    with open(args.json, "w") as handle:
        json.dump(outcome, handle, indent=2)
    print(f"wrote {args.json}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(step_summary(outcome))
        print(f"appended serving stats to {summary_path}")
    if args.check:
        serving = outcome["serving"]
        failed = False
        if serving["throughput_rps"] < CHECK_THROUGHPUT:
            print(f"CHECK FAILED: throughput "
                  f"{serving['throughput_rps']:.1f} req/s "
                  f"< {CHECK_THROUGHPUT:.0f}", file=sys.stderr)
            failed = True
        if serving["p99_seconds"] > CHECK_P99_SECONDS:
            print(f"CHECK FAILED: p99 {serving['p99_seconds']:.2f}s "
                  f"> {CHECK_P99_SECONDS:.1f}s", file=sys.stderr)
            failed = True
        if outcome["kernels_cleared"] < CHECK_COALESCE_KERNELS:
            print(f"CHECK FAILED: only {outcome['kernels_cleared']} "
                  f"kernels >= {CHECK_COALESCE_SPEEDUP:.0f}x "
                  f"(need {CHECK_COALESCE_KERNELS})", file=sys.stderr)
            failed = True
        if failed:
            return 1
        print(f"check passed: {serving['throughput_rps']:.1f} req/s, "
              f"p99 {serving['p99_seconds'] * 1e3:.0f}ms, "
              f"{outcome['kernels_cleared']}/{len(FLAT_KERNELS)} kernels "
              f">= {CHECK_COALESCE_SPEEDUP:.0f}x coalesced")
    return 0


if __name__ == "__main__":
    sys.exit(main())
