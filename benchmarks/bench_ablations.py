"""Design-choice ablations (DESIGN.md) + the section 1 energy story.

Not a paper table, but quantified claims from its prose:

* switch-on-stall multithreading "plays a critical role in sustaining
  throughput performance" (section 3.4);
* the runtime's descriptor-driven accelerator configuration (section 4.6)
  is what keeps ATR proxy round trips off the critical path;
* the EPI motivation (section 1): 10 nJ vs 0.3 nJ per instruction.
"""

from __future__ import annotations

import pytest

from repro.kernels import Geometry, kernel_by_abbrev
from repro.perf.ablations import (
    format_multithreading_table,
    multithreading_ablation,
    prevalidation_ablation,
)
from repro.perf.energy import estimate_energy, format_energy_table
from repro.perf.study import run_suite

#: Latency-sensitive kernels at geometries with several shreds per EU, so
#: single-context configurations expose the memory latency they cannot hide.
ABLATION_CASES = [("ProcAmp", Geometry(640, 192)),
                  ("Kalman", Geometry(256, 256))]


def test_switch_on_stall_multithreading(benchmark, show):
    def run():
        return [multithreading_ablation(kernel_by_abbrev(ab), geom)
                for ab, geom in ABLATION_CASES]

    ablations = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_multithreading_table(ablations))

    for ablation in ablations:
        # more contexts never hurt, and 4 contexts hide a useful chunk of
        # the memory latency ("plays a critical role")
        assert ablation.cycles_by_threads[4] <= \
            ablation.cycles_by_threads[2] <= ablation.cycles_by_threads[1]
        assert ablation.speedup(4) > 1.3


def test_runtime_surface_prevalidation(show):
    ablation = prevalidation_ablation(kernel_by_abbrev("ProcAmp"),
                                      Geometry(160, 96))
    show(f"\nAblation: descriptor pre-validation (ProcAmp 160x96): "
         f"prepared {ablation.prepared_cycles:.0f} cycles / "
         f"{ablation.prepared_atr_events} in-flight ATR events vs cold "
         f"{ablation.cold_cycles:.0f} cycles / {ablation.cold_atr_events} "
         f"events ({ablation.slowdown:.2f}x slowdown)")
    assert ablation.prepared_atr_events == 0
    assert ablation.cold_atr_events > 0
    assert ablation.slowdown > 1.1


def test_instruction_scheduling_under_scoreboard(show):
    """Compiler-side latency hiding: list scheduling the DSL compiler's
    output pays on an operand-scoreboarded pipe at low occupancy —
    complementing the hardware's switch-on-stall (which needs co-resident
    shreds the way a dependent taskq chain may not have)."""
    from dataclasses import replace

    import numpy as np

    from repro.chi.dsl import compile_dsl
    from repro.exo.shred import ShredDescriptor
    from repro.gma.device import GmaDevice
    from repro.gma.eu import simulate_device
    from repro.gma.timing import GmaTimingConfig
    from repro.isa.types import DataType
    from repro.memory.address_space import AddressSpace
    from repro.memory.surface import Surface

    text = ("OUT = clamp(0.25*SRC[-1,0] + 0.5*SRC[0,0] + 0.25*SRC[1,0] "
            "+ 0.25*SRC[0,-1] + 0.25*SRC[0,1] + 0.5, 0, 255)")
    config = replace(GmaTimingConfig(), threads_per_eu=1, scoreboard=True)

    def cycles(optimize: bool) -> float:
        dsl = compile_dsl(text, optimize=optimize)
        space = AddressSpace()
        device = GmaDevice(space, config=config)
        src = Surface.alloc(space, "SRC", 16, 16, DataType.UB)
        out = Surface.alloc(space, "OUT", 16, 16, DataType.UB)
        src.upload(space, np.zeros((16, 16)))
        shred = ShredDescriptor(program=dsl.program,
                                bindings={"bx": 0.0, "by": 0.0},
                                surfaces={"SRC": src, "OUT": out})
        result = device.run([shred])
        return simulate_device(result.runs, config).compute_cycles

    unscheduled = cycles(optimize=False)
    scheduled = cycles(optimize=True)
    gain = unscheduled / scheduled
    show(f"\nAblation: instruction scheduling (scoreboard, 1 thread/EU): "
         f"{unscheduled:.0f} -> {scheduled:.0f} cycles ({gain:.2f}x)")
    assert scheduled < unscheduled


def test_energy_per_instruction_story(benchmark, show):
    suite = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    show(format_energy_table(suite))

    for measurement in suite.values():
        estimate = estimate_energy(measurement)
        # the offload saves energy on every kernel, by far more than the
        # 33x EPI gap alone would suggest on the compute-bound ones
        assert estimate.energy_ratio > 5
        # and the device stays orders of magnitude under the CPU's power
        assert estimate.gma_watts < estimate.cpu_watts
