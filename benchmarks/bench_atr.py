"""ATR miss service: per-miss proxy round trips vs the batched fast path.

The cost model is the paper's: every ATR round trip suspends the shred,
signals the IA32 sequencer and proxy-executes the fault
(``ProxyCosts.atr_seconds``); extra entries serviced within one batched
round trip cost only their transcode (``ProxyCosts.atr_entry_seconds``).
With N devices warming the same pages, the batched path plus the shared
second-level translation cache keeps the IA32 sequencer off the critical
path: one walk populates the cache, the other N-1 devices refill from it.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_atr.py --gma-devices 4
    PYTHONPATH=src python benchmarks/bench_atr.py --check   # CI gate

or under pytest (``pytest benchmarks/bench_atr.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.chi import ExoPlatform
from repro.memory.physical import PAGE_SIZE

DEFAULT_DEVICES = 4
DEFAULT_PAGES = 64


def measure(num_devices: int, pages: int, batched: bool,
            shared_cache: bool = True) -> dict:
    """Warm every device view over one ``pages``-page allocation.

    Returns the simulated IA32 proxy cost, the wall time of the servicing
    loop, and the translation-stat breakdown.
    """
    platform = ExoPlatform(num_gma_devices=num_devices,
                           atr_shared_cache=shared_cache)
    base = platform.space.alloc(pages * PAGE_SIZE)  # lazy: misses proxy faults
    vaddrs = [base + i * PAGE_SIZE for i in range(pages)]
    exo = platform.exoskeleton
    started = time.perf_counter()
    for device in platform.gma_devices:
        view = device.gma.view
        if batched:
            exo.request_atr_batch(view, vaddrs, write=True,
                                  source=device.name)
        else:
            for vaddr in vaddrs:
                exo.request_atr(view, vaddr, write=True, source=device.name)
    wall = time.perf_counter() - started
    stats = exo.atr.stats
    # every view must end up fully translated, whichever path ran
    for device in platform.gma_devices:
        for vaddr in vaddrs:
            assert (vaddr >> 12) in device.gma.view.gtt
    return {
        "proxy_seconds": exo.host.proxy_seconds,
        "proxy_events": exo.host.proxy_events,
        "wall_seconds": wall,
        "page_faults_proxied": stats.page_faults_proxied,
        "shared_cache_hits": stats.shared_cache_hits,
        "tlb_misses": stats.tlb_misses,
    }


def compare(num_devices: int, pages: int) -> dict:
    return {
        "per_miss": measure(num_devices, pages, batched=False),
        "batched": measure(num_devices, pages, batched=True),
    }


def report(num_devices: int, pages: int) -> str:
    outcome = compare(num_devices, pages)
    per, bat = outcome["per_miss"], outcome["batched"]
    speedup = per["proxy_seconds"] / bat["proxy_seconds"]
    lines = [
        f"ATR miss service, {num_devices} GMA device(s) x {pages} pages:",
        f"  {'':10s} {'proxy us':>10s} {'round trips':>12s} "
        f"{'cache hits':>11s} {'wall ms':>9s}",
    ]
    for name, m in (("per-miss", per), ("batched", bat)):
        lines.append(
            f"  {name:10s} {m['proxy_seconds'] * 1e6:10.2f} "
            f"{m['proxy_events']:12d} {m['shared_cache_hits']:11d} "
            f"{m['wall_seconds'] * 1e3:9.3f}")
    lines.append(f"  batched fast path: {speedup:.1f}x less simulated "
                 f"IA32 proxy time")
    return "\n".join(lines)


# -- pytest entry points ---------------------------------------------------------------


def test_batched_beats_per_miss():
    """The CI acceptance bar: one batched round trip per device costs
    strictly less simulated proxy time than a round trip per page."""
    outcome = compare(DEFAULT_DEVICES, DEFAULT_PAGES)
    per, bat = outcome["per_miss"], outcome["batched"]
    assert bat["proxy_seconds"] < per["proxy_seconds"]
    # one signal per device instead of one per (device, page)
    assert bat["proxy_events"] == DEFAULT_DEVICES
    assert per["proxy_events"] == DEFAULT_DEVICES * DEFAULT_PAGES
    # both paths translate the same pages and proxy each fault once
    assert bat["page_faults_proxied"] == per["page_faults_proxied"] \
        == DEFAULT_PAGES


def test_shared_cache_absorbs_other_devices_walks():
    m = measure(4, 16, batched=True, shared_cache=True)
    assert m["page_faults_proxied"] == 16  # first device walks...
    assert m["shared_cache_hits"] == 3 * 16  # ...the other three refill
    cold = measure(4, 16, batched=True, shared_cache=False)
    assert cold["shared_cache_hits"] == 0
    assert cold["page_faults_proxied"] == 16  # pages mapped after 1st device


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--gma-devices", type=int, default=DEFAULT_DEVICES,
                        help="fabric size (default %(default)s)")
    parser.add_argument("--pages", type=int, default=DEFAULT_PAGES,
                        help="pages each view must translate "
                             "(default %(default)s)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless the batched path beats "
                             "per-miss on simulated proxy seconds")
    args = parser.parse_args(argv)

    print(report(args.gma_devices, args.pages))
    if args.check:
        outcome = compare(args.gma_devices, args.pages)
        if not (outcome["batched"]["proxy_seconds"]
                < outcome["per_miss"]["proxy_seconds"]):
            print("CHECK FAILED: batched path did not beat per-miss",
                  file=sys.stderr)
            return 1
        print("check passed: batched < per-miss on simulated proxy seconds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
