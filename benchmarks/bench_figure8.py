"""Figure 8: impact of data copying versus shared virtual address space.

Three memory models over the same measured kernel runs:

* Data Copy — no shared virtual memory; explicit copies at the paper's
  3.1 GB/s SSE-to-write-combining rate;
* Non-CC Shared — shared virtual memory, no coherence: cache flushes
  around every region;
* CC Shared — coherent shared virtual memory (the Figure 7 baseline).

The reproduced claim is the *ordering* and its per-kernel pattern: every
kernel loses performance moving CC -> Non-CC -> Data Copy, and the loss is
worst for the kernels that do little computation per byte (the paper calls
out LinearFilter and BOB).  Our absolute averages sit below the paper's
70.5% / 85.3% because the reconstructed kernels have lower arithmetic
intensity than Intel's production implementations (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.perf.memory_models import MemoryModel
from repro.perf.report import format_figure8
from repro.perf.study import run_suite


def test_figure8_memory_models(benchmark, show):
    suite = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    show(format_figure8(suite))

    for abbrev, m in suite.items():
        dc = m.relative_performance(MemoryModel.DATA_COPY)
        ncc = m.relative_performance(MemoryModel.NONCC_SHARED)
        cc = m.relative_performance(MemoryModel.CC_SHARED)
        assert cc == 1.0
        # strict ordering: copying < flushing < coherent
        assert dc < ncc < cc, f"{abbrev}: DC={dc:.3f} NCC={ncc:.3f}"


def test_figure8_compute_intensity_pattern(suite):
    """Compute-heavy kernels retain the most performance under Data Copy
    (paper: "for computationally intensive kernels ... the gains are
    significantly reduced ... in cases such as LinearFilter and BOB")."""
    dc = {ab: m.relative_performance(MemoryModel.DATA_COPY)
          for ab, m in suite.items()}
    # Bicubic (most compute per byte) tolerates copying better than the
    # bandwidth-bound BOB and the single-pass filters
    assert dc["Bicubic"] > dc["BOB"]
    assert dc["Bicubic"] > dc["SepiaTone"]
    assert dc["AlphaBlend"] > dc["BOB"]


def test_figure8_speedup_still_positive(suite):
    """Paper: "significant performance improvement is still possible even
    with data copying" — for the compute-bound kernels."""
    for abbrev in ("Bicubic", "AlphaBlend", "ADVDI", "FGT"):
        assert suite[abbrev].model_speedup(MemoryModel.DATA_COPY) > 1.5
