"""Figure 10: cooperative multi-shredding between the IA32 sequencer and
GMA X3000 exo-sequencers.

Four work partitions per kernel (0% / 10% / 25% of iterations on the IA32
sequencer, plus the oracle split), with ``master_nowait`` overlapping both
sides.  Paper checkpoints:

* BOB gains the most from cooperation — "up to 38% for the oracle scheme";
* Bicubic "sees an improvement of only 8% for the oracle case";
* a bad static split can *lose*: "e.g., Bicubic in partition (3), the
  performance from cooperative execution is worse than simply executing
  on the GMA X3000 exo-sequencers".
"""

from __future__ import annotations

import pytest

from repro.perf.report import format_figure10
from repro.perf.study import run_suite


def test_figure10_partitions(benchmark, show):
    suite = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    show(format_figure10(suite))

    for abbrev, m in suite.items():
        gma_only = m.partition("static", 0.0).total_seconds
        oracle = m.partition("oracle")
        # the oracle never loses to either homogeneous extreme
        assert oracle.total_seconds <= gma_only * (1 + 1e-9)
        assert oracle.total_seconds <= m.cpu_seconds * (1 + 1e-9)
        # at the oracle split both sides finish together
        assert oracle.imbalance == pytest.approx(0.0, abs=1e-12)


def test_figure10_bob_gains_most_bicubic_least(suite):
    gains = {}
    for abbrev, m in suite.items():
        gma_only = m.partition("static", 0.0).total_seconds
        oracle = m.partition("oracle").total_seconds
        gains[abbrev] = 1 - oracle / gma_only
    assert max(gains, key=gains.get) == "BOB"
    assert min(gains, key=gains.get) == "Bicubic"
    assert gains["BOB"] == pytest.approx(0.38, abs=0.05)  # paper: up to 38%
    assert gains["Bicubic"] == pytest.approx(0.08, abs=0.02)  # paper: 8%


def test_figure10_bad_partition_loses(suite):
    """Bicubic with 25% of work on the slow side is worse than GMA-only."""
    m = suite["Bicubic"]
    gma_only = m.partition("static", 0.0).total_seconds
    p25 = m.partition("static", 0.25).total_seconds
    assert p25 > gma_only


def test_figure10_dynamic_scheduling_approaches_oracle(suite):
    """Section 5.3's ongoing work, implemented: self-scheduling at shred
    granularity lands within a chunk of the oracle."""
    for m in suite.values():
        oracle = m.partition("oracle").total_seconds
        dyn = m.partition("dynamic", num_chunks=256).total_seconds
        assert dyn <= oracle * 1.05
