"""Auto-tuned schedule transforms vs the unscheduled kernel programs.

The schedule-transform layer (``src/repro/isa/transforms.py``,
``docs/SCHEDULE.md``) rewrites a kernel program — unroll, strip-mine,
reorder, block-stage memory, idiom replace — without changing a single
output bit, and the auto-tuner (``src/repro/isa/tuning.py``) searches a
small menu of such schedules against the EU timing model.  This
benchmark is the CI gate for that layer, measured two ways:

* the per-kernel scheduled-vs-baseline table: four kernels whose short
  load/store-dominated inner loops stayed flat under the gang/fusion
  engine tiers run at bench geometry, unscheduled and
  ``schedule="auto"``, on the scalar and gang engines.  The gate: at
  least ``CHECK_MIN_KERNELS`` kernels must clear ``CHECK_SPEEDUP``x
  scalar wall-clock, and *every* scheduled run — scalar and gang —
  must reproduce the unscheduled scalar output surfaces bit-exactly
  (speedups may be noisy, correctness may not);
* the tuner-cache smoke: tuning a kernel once must score real
  candidates (``trials > 0``); tuning the same source+bindings again
  must hit the winner cache (``trials == 0``, same ``Program`` object,
  so the predecode cache stays warm too).

Only ``device.run`` is on the clock: a multi-frame run tunes on frame 0
and hits the tuner's winner cache ever after, so steady state pays for
the schedule, not the search.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_schedule.py
    PYTHONPATH=src python benchmarks/bench_schedule.py --check   # CI gate

or under pytest (``pytest benchmarks/bench_schedule.py``).  Writes
``BENCH_schedule.json`` next to the working directory (``--json`` to
move).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.exo.shred import ShredDescriptor
from repro.gma.device import GmaDevice
from repro.isa import tuning
from repro.kernels import ADVDI, BOB, AlphaBlend, ProcAmp
from repro.kernels.harness import allocate_surfaces, schedule_kernel_program
from repro.memory.address_space import AddressSpace
from repro.perf import BENCH_GEOMETRIES

#: The previously flat kernels: short load/store-dominated inner loops
#: where gang batching alone left wall-clock on the table.  These are
#: the kernels the schedule search is for.
GATE_KERNELS = (BOB, ADVDI, AlphaBlend, ProcAmp)
CHECK_SPEEDUP = 1.3  # scheduled vs unscheduled scalar, wall-clock
CHECK_MIN_KERNELS = 2  # kernels that must clear CHECK_SPEEDUP
DEFAULT_REPEATS = 3


class _KernelBench:
    """One (kernel, schedule, engine) configuration, run-once at a time.

    Splitting setup from the timed run lets the table interleave its
    four configurations round-robin, so slow host-load drift hits every
    configuration equally instead of biasing whichever ran last.
    """

    def __init__(self, kernel_cls, schedule, engine: str):
        self.kernel = kernel_cls()
        self.engine = engine
        self.geom = BENCH_GEOMETRIES[self.kernel.abbrev]
        self.program, self.spec, self.trials = schedule_kernel_program(
            self.kernel, self.geom, schedule, verify=schedule == "auto")
        self.consts = self.kernel.constants(self.geom)
        self.inputs = self.kernel.make_frame_inputs(self.geom, 0, 0)
        self.best = None

    def run_once(self) -> None:
        space = AddressSpace()
        device = GmaDevice(space, engine=self.engine)
        surfaces = allocate_surfaces(self.kernel, self.geom, space)
        for name, image in self.inputs.items():
            surfaces[name].upload(space, np.asarray(image))
        shreds = [ShredDescriptor(program=self.program,
                                  bindings={**self.consts, **bindings},
                                  surfaces=surfaces)
                  for bindings in self.kernel.shred_bindings(self.geom)]
        started = time.perf_counter()
        run = device.run(shreds)
        wall = time.perf_counter() - started
        if self.best is None or wall < self.best["wall_seconds"]:
            self.best = {
                "kernel": self.kernel.abbrev,
                "engine": self.engine,
                "schedule": self.spec,
                "tuner_trials": self.trials,
                "instructions": run.instructions,
                "shreds": run.shreds_executed,
                "wall_seconds": wall,
                "outputs": {name: surface.download(space)
                            for name, surface in surfaces.items()},
            }


def measure_kernel(kernel_cls, schedule=None, engine: str = "scalar",
                   repeats: int = DEFAULT_REPEATS) -> dict:
    """Best-of-``repeats`` ``device.run`` wall time for one frame.

    Scheduling happens once, outside the timed region; under
    ``schedule="auto"`` the tuner only accepts candidates that
    reproduce frame 0 bit-exactly on a scratch scalar device.
    """
    bench = _KernelBench(kernel_cls, schedule, engine)
    for _ in range(repeats):
        bench.run_once()
    return bench.best


def _bit_identical(a: dict, b: dict) -> bool:
    return (sorted(a) == sorted(b)
            and all(np.array_equal(a[name], b[name]) for name in a))


def measure_schedule_table(repeats: int = DEFAULT_REPEATS) -> dict:
    """Scheduled-vs-baseline rows for every gate kernel, interleaved."""
    table = {}
    for kernel_cls in GATE_KERNELS:
        benches = [_KernelBench(kernel_cls, schedule, engine)
                   for engine in ("scalar", "gang")
                   for schedule in (None, "auto")]
        for _ in range(repeats):
            for bench in benches:
                bench.run_once()
        base, sched, gang_base, gang_sched = (b.best for b in benches)
        table[base["kernel"]] = {
            "schedule": sched["schedule"],
            "tuner_trials": sched["tuner_trials"],
            "baseline_seconds": base["wall_seconds"],
            "scheduled_seconds": sched["wall_seconds"],
            "gang_baseline_seconds": gang_base["wall_seconds"],
            "gang_scheduled_seconds": gang_sched["wall_seconds"],
            "speedup": base["wall_seconds"] / sched["wall_seconds"],
            "gang_speedup": (gang_base["wall_seconds"]
                             / gang_sched["wall_seconds"]),
            "baseline_instructions": base["instructions"],
            "scheduled_instructions": sched["instructions"],
            "bit_identical": (
                _bit_identical(base["outputs"], sched["outputs"])
                and _bit_identical(base["outputs"], gang_sched["outputs"])),
        }
    return table


def measure_tuner_smoke(kernel_cls=BOB) -> dict:
    """Cold tune must search; warm tune must hit the winner cache."""
    kernel = kernel_cls()
    geom = BENCH_GEOMETRIES[kernel.abbrev]
    tuning.clear_cache()
    first, spec, first_trials = schedule_kernel_program(kernel, geom, "auto")
    second, spec_again, second_trials = schedule_kernel_program(
        kernel, geom, "auto")
    return {
        "kernel": kernel.abbrev,
        "schedule": spec,
        "first_trials": first_trials,
        "second_trials": second_trials,
        "cached_same_program": second is first,
        "cached_same_spec": spec_again == spec,
        "cache_entries": tuning.cache_stats()["entries"],
    }


def compare(repeats: int = DEFAULT_REPEATS) -> dict:
    tuner = measure_tuner_smoke()
    table = measure_schedule_table(repeats)
    cleared = sum(1 for row in table.values()
                  if row["speedup"] >= CHECK_SPEEDUP and row["bit_identical"])
    return {
        "kernels": table,
        "tuner": tuner,
        "kernels_cleared": cleared,
    }


def report(outcome: dict) -> str:
    lines = [
        "auto-tuned schedule vs unscheduled program (bench geometry):",
        f"  {'kernel':12s} {'schedule':26s} {'trials':>6s} "
        f"{'base ms':>9s} {'sched ms':>9s} {'scalar':>7s} "
        f"{'gang':>7s} {'bits':>5s}",
    ]
    for name, row in outcome["kernels"].items():
        lines.append(
            f"  {name:12s} {row['schedule'] or 'baseline':26s} "
            f"{row['tuner_trials']:6d} "
            f"{row['baseline_seconds'] * 1e3:9.2f} "
            f"{row['scheduled_seconds'] * 1e3:9.2f} "
            f"{row['speedup']:6.2f}x "
            f"{row['gang_speedup']:6.2f}x "
            f"{'same' if row['bit_identical'] else 'DIFF':>5s}")
    lines.append(
        f"  kernels >= {CHECK_SPEEDUP:.1f}x scalar with bit-identical "
        f"output: {outcome['kernels_cleared']} "
        f"(gate: >= {CHECK_MIN_KERNELS})")
    tuner = outcome["tuner"]
    lines.append(
        f"  tuner smoke ({tuner['kernel']}): first call "
        f"{tuner['first_trials']} trials -> {tuner['schedule']!r}; second "
        f"call {tuner['second_trials']} trials, "
        f"{'cache hit' if tuner['cached_same_program'] else 'CACHE MISS'}")
    return "\n".join(lines)


def step_summary(outcome: dict) -> str:
    """GitHub Actions step-summary markdown: the schedule table."""
    tuner = outcome["tuner"]
    lines = [
        "### Schedule benchmark",
        "",
        f"- kernels >= {CHECK_SPEEDUP:.1f}x scheduled-vs-baseline scalar "
        f"with bit-identical outputs: **{outcome['kernels_cleared']}** "
        f"(gate >= {CHECK_MIN_KERNELS})",
        f"- tuner: {tuner['first_trials']} trials cold, "
        f"{tuner['second_trials']} warm "
        f"({'cache hit' if tuner['cached_same_program'] else 'cache miss'})",
        "",
        "| kernel | auto schedule | trials | baseline ms | scheduled ms "
        "| scalar speedup | gang speedup | bit-identical |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for name, row in outcome["kernels"].items():
        lines.append(
            f"| {name} | `{row['schedule'] or 'baseline'}` "
            f"| {row['tuner_trials']} "
            f"| {row['baseline_seconds'] * 1e3:.2f} "
            f"| {row['scheduled_seconds'] * 1e3:.2f} "
            f"| **{row['speedup']:.2f}x** "
            f"| {row['gang_speedup']:.2f}x "
            f"| {'yes' if row['bit_identical'] else 'NO'} |")
    return "\n".join(lines) + "\n"


def check(outcome: dict) -> bool:
    """Apply every gate; print failures; True when all pass."""
    ok = True
    for name, row in outcome["kernels"].items():
        if not row["bit_identical"]:
            print(f"CHECK FAILED: scheduled {name} output differs from "
                  f"unscheduled scalar", file=sys.stderr)
            ok = False
    if outcome["kernels_cleared"] < CHECK_MIN_KERNELS:
        print(f"CHECK FAILED: only {outcome['kernels_cleared']} kernel(s) "
              f">= {CHECK_SPEEDUP:.1f}x (need {CHECK_MIN_KERNELS})",
              file=sys.stderr)
        ok = False
    tuner = outcome["tuner"]
    if tuner["first_trials"] <= 0:
        print("CHECK FAILED: cold tune scored no candidates",
              file=sys.stderr)
        ok = False
    if tuner["second_trials"] != 0 or not tuner["cached_same_program"]:
        print("CHECK FAILED: warm tune missed the winner cache",
              file=sys.stderr)
        ok = False
    return ok


# -- pytest entry points ---------------------------------------------------------------


def test_scheduled_outputs_bit_identical():
    """Correctness bar: every auto-scheduled kernel must reproduce the
    unscheduled scalar output exactly, on the scalar and gang engines."""
    for kernel_cls in GATE_KERNELS:
        base = measure_kernel(kernel_cls, None, "scalar", repeats=1)
        sched = measure_kernel(kernel_cls, "auto", "scalar", repeats=1)
        gang = measure_kernel(kernel_cls, "auto", "gang", repeats=1)
        assert _bit_identical(base["outputs"], sched["outputs"]), \
            base["kernel"]
        assert _bit_identical(base["outputs"], gang["outputs"]), \
            base["kernel"]


def test_schedule_speedup_gate():
    """The perf acceptance bar: auto-tuned schedules must deliver
    >= 1.3x on at least two of the previously flat kernels."""
    outcome = compare()
    assert outcome["kernels_cleared"] >= CHECK_MIN_KERNELS, \
        {name: round(row["speedup"], 2)
         for name, row in outcome["kernels"].items()}


def test_tuner_searches_then_caches():
    smoke = measure_tuner_smoke()
    assert smoke["first_trials"] > 0
    assert smoke["second_trials"] == 0
    assert smoke["cached_same_program"]
    assert smoke["cached_same_spec"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="best-of-N wall clock (default %(default)s)")
    parser.add_argument("--json", type=str, default="BENCH_schedule.json",
                        help="result file (default %(default)s)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless >= "
                             f"{CHECK_MIN_KERNELS} kernels reach >= "
                             f"{CHECK_SPEEDUP:.1f}x scheduled-vs-baseline "
                             "scalar wall clock, every scheduled output "
                             "is bit-identical, and the tuner cache "
                             "smoke passes")
    args = parser.parse_args(argv)

    outcome = compare(args.repeats)
    print(report(outcome))
    with open(args.json, "w") as handle:
        json.dump(outcome, handle, indent=2)
    print(f"wrote {args.json}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(step_summary(outcome))
        print(f"appended schedule stats to {summary_path}")
    if args.check:
        if not check(outcome):
            return 1
        print(f"check passed: {outcome['kernels_cleared']} kernel(s) "
              f">= {CHECK_SPEEDUP:.1f}x, outputs bit-identical, tuner "
              f"caches winners")
    return 0


if __name__ == "__main__":
    sys.exit(main())
