"""Figure 7: speedup from execution on GMA X3000 exo-sequencers over the
IA32 sequencer.

Every kernel's shreds execute instruction-by-instruction on the device
model (functional results verified against the numpy reference); the IA32
side uses the calibrated per-kernel cost models.  The paper gives exact
bars only for BOB (1.41X) and Bicubic (10.97X); the other bars are read
approximately off the figure (each kernel's ``paper_speedup``).
"""

from __future__ import annotations

import pytest

from repro.perf.report import format_figure7
from repro.perf.study import run_suite


def test_figure7_speedups(benchmark, show):
    suite = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    show(format_figure7(suite))

    for abbrev, m in suite.items():
        paper = m.kernel.paper_speedup
        # exact bars must match tightly; approximate bars within 15%
        tolerance = 0.05 if m.kernel.paper_speedup_exact else 0.15
        assert m.speedup == pytest.approx(paper, rel=tolerance), (
            f"{abbrev}: measured {m.speedup:.2f}x vs paper {paper:.2f}x")

    # the paper's headline range: 1.41x (BOB) to 10.97x (Bicubic)
    ordered = sorted(suite.values(), key=lambda m: m.speedup)
    assert ordered[0].kernel.abbrev == "BOB"
    assert ordered[-1].kernel.abbrev == "Bicubic"


def test_figure7_bob_is_bandwidth_bound(suite):
    """Section 5.1: BOB "is primarily bandwidth-bound"."""
    assert suite["BOB"].gma_bound == "bandwidth"


def test_figure7_all_outputs_verified(suite):
    """Every speedup comes from a functionally verified run."""
    for m in suite.values():
        assert m.instructions > 0
