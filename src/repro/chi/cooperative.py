"""Cooperative heterogeneous parallel loops (paper section 5.3).

:func:`run_cooperative` is the runtime face of Figure 9/10: one parallel
loop whose iterations can execute on either sequencer class.  The GMA's
share launches as a ``master_nowait`` region; the IA32's share executes
functionally through a host callback while the region is in flight; the
region's barrier closes the loop.  The returned record carries both the
functional outcome and the timeline measurement (who was busy for how
long, how balanced the split was).

The *policy* half — which fraction to put where — lives in
:mod:`repro.chi.scheduler`; this module consumes a concrete fraction, so
callers can use :func:`~repro.chi.scheduler.oracle_partition`,
:func:`~repro.chi.scheduler.dynamic_partition` or a static guess to pick
it, exactly the paper's three schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

from ..cpu.ia32 import CpuWork
from ..errors import SchedulingError
from ..isa.program import Program
from .runtime import ChiRuntime, ParallelRegion


@dataclass
class CooperativeOutcome:
    """Result of one cooperatively executed parallel loop."""

    region: ParallelRegion
    total_items: int
    cpu_items: int
    gma_items: int
    cpu_seconds: float
    gma_seconds: float
    start_time: float
    end_time: float

    @property
    def cpu_fraction(self) -> float:
        return self.cpu_items / self.total_items if self.total_items else 0.0

    @property
    def elapsed_seconds(self) -> float:
        return self.end_time - self.start_time

    @property
    def overlap_seconds(self) -> float:
        """Time both sequencer classes were busy simultaneously."""
        return min(self.cpu_seconds, self.gma_seconds)

    @property
    def imbalance_seconds(self) -> float:
        return abs(self.cpu_seconds - self.gma_seconds)


def run_cooperative(runtime: ChiRuntime,
                    section: Union[int, str, Program], *,
                    bindings: Sequence[Dict[str, float]],
                    host_fn: Callable[[Dict[str, float]], None],
                    host_work_per_item: CpuWork,
                    cpu_fraction: float,
                    shared: Optional[Dict[str, object]] = None,
                    firstprivate: Optional[Dict[str, float]] = None,
                    target: str = "X3000",
                    label: str = "coop-host") -> CooperativeOutcome:
    """Split one parallel loop between the IA32 sequencer and the GMA.

    ``bindings`` lists every iteration's private values.  The tail
    ``cpu_fraction`` of them executes on the host — Figure 9 style, where
    the IA32 sequencer takes iterations ``[GMA_iters, n)`` — via
    ``host_fn(binding)``, costed at ``host_work_per_item`` each; the rest
    become exo-sequencer shreds under ``master_nowait``.
    """
    if not 0.0 <= cpu_fraction <= 1.0:
        raise SchedulingError(
            f"cpu_fraction must be in [0, 1], got {cpu_fraction}")
    bindings = [dict(b) for b in bindings]
    total = len(bindings)
    if total == 0:
        raise SchedulingError("cooperative loop needs at least one iteration")
    n_cpu = int(round(cpu_fraction * total))
    n_cpu = min(max(n_cpu, 0), total)
    gma_items = bindings[: total - n_cpu]
    cpu_items = bindings[total - n_cpu :]

    start_time = runtime.timeline.now
    gma_seconds = 0.0
    if gma_items:
        region = runtime.parallel(section, target=target, shared=shared,
                                  firstprivate=firstprivate,
                                  private=gma_items, master_nowait=True)
        gma_seconds = region.gma_seconds
    else:
        # degenerate split: an empty region handle keeps the API uniform
        region = ParallelRegion(runtime=runtime, result=None, gma_seconds=0.0,
                                completion_time=runtime.timeline.now,
                                master_nowait=True, waited=True)

    cpu_seconds = 0.0
    if cpu_items:
        for binding in cpu_items:
            host_fn(binding)
        cpu_seconds = runtime.run_host(
            CpuWork(pixels=host_work_per_item.pixels * len(cpu_items),
                    cycles_per_pixel=host_work_per_item.cycles_per_pixel,
                    bytes_touched=host_work_per_item.bytes_touched
                    * len(cpu_items)),
            label=label)

    region.wait()
    return CooperativeOutcome(
        region=region,
        total_items=total,
        cpu_items=len(cpu_items),
        gma_items=len(gma_items),
        cpu_seconds=cpu_seconds,
        gma_seconds=gma_seconds,
        start_time=start_time,
        end_time=runtime.timeline.now,
    )
