"""The assembled EXOCHI platform: one IA32 host + one GMA X3000 device
sharing a virtual address space, under a configurable memory model.

The three Figure 8 configurations map onto two switches:

=================  =======================  ==========
configuration      shared_virtual_memory    coherent
=================  =======================  ==========
Data Copy          False                    (n/a)
Non-CC Shared      True                     False
CC Shared          True                     True
=================  =======================  ==========
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cpu.ia32 import Ia32Cpu
from ..cpu.timing import CpuTimingConfig
from ..errors import SchedulingError
from ..exo.exoskeleton import Exoskeleton
from ..fabric.device import GmaFabricDevice, Ia32FabricDevice
from ..fabric.queue import AdmissionPolicy, DeviceWorkQueue
from ..fabric.registry import DeviceRegistry
from ..fabric.workers import ProcessGmaFabricDevice, ProcessWorkerPool
from ..gma.device import GmaDevice
from ..gma.timing import GmaTimingConfig
from ..memory.address_space import AddressSpace
from ..memory.bandwidth import BandwidthModel
from ..memory.cache import CoherencePoint
from ..memory.physical import PhysicalMemory


class HostAccessor:
    """The IA32 sequencer's tracked window onto the address space.

    Wraps demand-paged access with coherence bookkeeping: host writes dirty
    the host cache (so the Non-CC model knows what a pre-dispatch flush
    must write back), and host reads are checked against the device's
    dirty lines in strict mode.
    """

    def __init__(self, space: AddressSpace, coherence: CoherencePoint):
        self.space = space
        self.coherence = coherence

    def read_bytes(self, vaddr: int, count: int) -> np.ndarray:
        self.coherence.check_read("cpu", vaddr, count)
        return self.space.read_bytes(vaddr, count)

    def write_bytes(self, vaddr: int, data: np.ndarray) -> None:
        self.space.write_bytes(vaddr, data)
        self.coherence.note_write("cpu", vaddr,
                                  np.asarray(data, dtype=np.uint8).size)

    def read_array(self, vaddr: int, count: int, dtype) -> np.ndarray:
        self.coherence.check_read("cpu", vaddr,
                                  count * np.dtype(dtype).itemsize)
        return self.space.read_array(vaddr, count, dtype)

    def write_array(self, vaddr: int, values: np.ndarray) -> None:
        self.space.write_array(vaddr, values)
        self.coherence.note_write(
            "cpu", vaddr, np.ascontiguousarray(values).nbytes)


class ExoPlatform:
    """One simulated Santa Rosa box: Core 2 Duo + 965G with GMA X3000.

    ``num_gma_devices`` scales the box out to an N-accelerator fabric:
    every GMA instance shares the one virtual address space, exoskeleton
    and coherence point (the shared-virtual-memory multi-accelerator
    baseline), and registers in :attr:`fabric` alongside the IA32
    sequencer class.  ``queue_depth`` / ``admission_policy`` configure the
    per-device admission queues (see :mod:`repro.fabric.queue`);
    ``gma_engine`` selects the execution engine every GMA instance uses
    (``"scalar"``, ``"gang"``, ``"fused"`` or ``"megaop"``, see
    :mod:`repro.gma.gang`, :mod:`repro.gma.fusion` and
    :mod:`repro.gma.megaop`); ``megaop_threshold`` overrides the megaop
    tier's promotion threshold (chain traversals of one hot cycle
    before compilation).

    ``fabric_workers=N`` moves the GMA devices out of process: physical
    memory is rebuilt over a shared-memory segment, a
    :class:`~repro.fabric.workers.ProcessWorkerPool` of N child processes
    attaches it, and each ``gma{i}`` registers as a
    :class:`~repro.fabric.workers.ProcessGmaFabricDevice` placed
    round-robin on the pool — the scale-out configuration where N
    devices drain genuinely concurrently.  :attr:`device` stays a local
    in-process GMA (unregistered) so single-device call sites keep
    working.  Call :meth:`close` (or use the platform as a context
    manager) to reap the workers and the segment.
    """

    def __init__(self,
                 shared_virtual_memory: bool = True,
                 coherent: bool = True,
                 strict_coherence: bool = False,
                 gma_config: Optional[GmaTimingConfig] = None,
                 cpu_config: Optional[CpuTimingConfig] = None,
                 bandwidth: Optional[BandwidthModel] = None,
                 space: Optional[AddressSpace] = None,
                 num_gma_devices: int = 1,
                 queue_depth: Optional[int] = None,
                 admission_policy=AdmissionPolicy.RAISE,
                 atr_shared_cache: bool = True,
                 gma_engine: str = "scalar",
                 fabric_workers: int = 0,
                 megaop_threshold: Optional[int] = None,
                 schedule=None):
        if num_gma_devices < 1:
            raise SchedulingError(
                f"need at least one GMA device, got {num_gma_devices}")
        gma_config = gma_config if gma_config is not None else GmaTimingConfig()
        cpu_config = cpu_config if cpu_config is not None else CpuTimingConfig()
        self.shared_virtual_memory = shared_virtual_memory
        self.coherent = coherent
        #: Schedule transform the CHI runtime applies to every parallel
        #: region's program before launch: ``None`` (off), ``"auto"``
        #: (tuner-picked per program), a spec string like
        #: ``"unroll4+stage_mem"``, or a
        #: :class:`~repro.isa.transforms.Schedule`.
        self.schedule = schedule
        self.fabric_pool: Optional[ProcessWorkerPool] = None
        self._owns_physical = False
        if fabric_workers:
            if space is None:
                self._owns_physical = True
                space = AddressSpace(
                    physical=PhysicalMemory(backing="shared"))
            # the pool validates that the backing is actually shared
            self.fabric_pool = ProcessWorkerPool(
                space.physical, fabric_workers, gma_config=gma_config,
                engine=gma_engine, megaop_threshold=megaop_threshold)
        self.space = space or AddressSpace()
        self.coherence = CoherencePoint(coherent=coherent,
                                        strict=strict_coherence)
        self.exoskeleton = Exoskeleton(self.space,
                                       atr_shared_cache=atr_shared_cache)
        self.cpu = Ia32Cpu(cpu_config)
        self.bandwidth = bandwidth if bandwidth is not None else BandwidthModel()
        self.host = HostAccessor(self.space, self.coherence)

        policy = AdmissionPolicy.coerce(admission_policy)
        self.fabric = DeviceRegistry()
        if self.fabric_pool is not None:
            self.fabric_pool.adopt_space(self.space)
            for i in range(num_gma_devices):
                self.fabric.register(ProcessGmaFabricDevice(
                    f"gma{i}", self.fabric_pool.worker_for(i), self.space,
                    gma_config,
                    queue=self._make_queue(f"gma{i}", queue_depth, policy)))
        else:
            for i in range(num_gma_devices):
                gma = GmaDevice(self.space, exoskeleton=self.exoskeleton,
                                config=gma_config, coherence=self.coherence,
                                engine=gma_engine,
                                megaop_threshold=megaop_threshold)
                self.fabric.register(GmaFabricDevice(
                    f"gma{i}", gma,
                    queue=self._make_queue(f"gma{i}", queue_depth, policy)))
        self.fabric.register(Ia32FabricDevice(
            "ia32", self.cpu, queue=self._make_queue("ia32", queue_depth,
                                                     policy)))
        if self.fabric_pool is not None:
            #: In worker mode the registered devices are out-of-process
            #: proxies; keep one *local* (unregistered) GMA so host-side
            #: single-device call sites — debugger, examples, timing
            #: helpers — keep working against the same space.
            self.device = GmaDevice(self.space,
                                    exoskeleton=self.exoskeleton,
                                    config=gma_config,
                                    coherence=self.coherence,
                                    engine=gma_engine,
                                    megaop_threshold=megaop_threshold)
        else:
            #: The primary accelerator, kept for single-device call sites.
            self.device = self.fabric.get("gma0").gma

    @staticmethod
    def _make_queue(name: str, depth: Optional[int],
                    policy: AdmissionPolicy) -> DeviceWorkQueue:
        if depth is None:
            return DeviceWorkQueue(policy=policy, name=name)
        return DeviceWorkQueue(depth=depth, policy=policy, name=name)

    @property
    def gma_devices(self):
        """Shred-executing GMA backends, in registration order."""
        return self.fabric.devices_for(GmaDevice.ISA, executing=True)

    @property
    def atr(self):
        """The shared ATR proxy service (all GMA devices signal it)."""
        return self.exoskeleton.atr

    @property
    def config_name(self) -> str:
        if not self.shared_virtual_memory:
            return "Data Copy"
        return "CC Shared" if self.coherent else "Non-CC Shared"

    def gma_seconds(self, cycles: float) -> float:
        return self.device.config.seconds(cycles)

    def cpu_seconds(self, cycles: float) -> float:
        return self.cpu.config.seconds(cycles)

    # -- worker-pool lifecycle ---------------------------------------------

    def close(self) -> None:
        """Reap fabric worker processes and the shared-memory segment.

        Idempotent, and a no-op for the default in-process platform.
        """
        if self.fabric_pool is not None:
            self.fabric_pool.close()
            self.fabric_pool = None
        if self._owns_physical:
            self._owns_physical = False
            self.space.physical.close()

    def __enter__(self) -> "ExoPlatform":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
