"""Surface descriptors and the Table 1 descriptor APIs (paper section 4.4).

"In order to allow the accelerator more efficient access to the C/C++
variables specified by the shared data clause, programmers can use the CHI
runtime APIs to convey accelerator-specific access information through
data structures known as descriptors."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from ..errors import DescriptorError
from ..memory.surface import Surface, TileMode


class AccessMode(enum.Enum):
    """The descriptor's declared input/output mode (API #1 ``mode``)."""

    CHI_INPUT = "input"
    CHI_OUTPUT = "output"
    CHI_INOUT = "inout"


class DescriptorAttrib(enum.Enum):
    """Attributes adjustable through ``chi_modify_desc`` (API #3)."""

    TILING = "tiling"
    MODE = "mode"
    WIDTH = "width"
    HEIGHT = "height"


@dataclass
class SurfaceDescriptor:
    """Accelerator-specific view information for one shared variable."""

    surface: Surface
    mode: AccessMode
    target_isa: str
    attribs: Dict[str, object] = field(default_factory=dict)
    freed: bool = False

    @property
    def width(self) -> int:
        return self.surface.width

    @property
    def height(self) -> int:
        return self.surface.height

    def check_alive(self) -> None:
        if self.freed:
            raise DescriptorError(
                f"descriptor for surface {self.surface.name!r} was freed")

    def modify(self, attrib: DescriptorAttrib, value) -> None:
        """``chi_modify_desc``: change an attribute from its default."""
        self.check_alive()
        if attrib is DescriptorAttrib.TILING:
            if not isinstance(value, TileMode):
                raise DescriptorError(
                    f"tiling attribute needs a TileMode, got {value!r}")
            # re-layout is only legal before any data lands in the surface
            self.surface.tiling = value
            if value is TileMode.TILED and self.surface.pitch % 4:
                self.surface.pitch += 4 - self.surface.pitch % 4
        elif attrib is DescriptorAttrib.MODE:
            if not isinstance(value, AccessMode):
                raise DescriptorError(
                    f"mode attribute needs an AccessMode, got {value!r}")
            self.mode = value
        elif attrib in (DescriptorAttrib.WIDTH, DescriptorAttrib.HEIGHT):
            raise DescriptorError(
                "surface geometry is fixed at allocation; allocate a new "
                "descriptor instead")
        else:
            raise DescriptorError(f"unknown descriptor attribute {attrib!r}")
        self.attribs[attrib.value] = value
