"""Heterogeneous work distribution (paper section 5.3, Figure 10).

Three policies over a parallel loop whose iterations can run on either
sequencer class:

* **static** — a fixed fraction of the iterations on the IA32 sequencer,
  the rest on the GMA (the paper's 0% / 10% / 25% partitions);
* **oracle** — the split that "optimally distributes the work so that both
  the IA32 sequencer and GMA X3000 exo-sequencers finish execution as
  close to the same time as possible";
* **dynamic** — the extension the paper describes as ongoing work:
  "whenever a sequencer completes its assigned work it requests additional
  work of the runtime".  Simulated at chunk granularity; converges to the
  oracle as chunks shrink.

All three take the two full-work execution times (what each sequencer
would need to do *everything*) and return a :class:`PartitionOutcome`;
``master_nowait`` makes the two sides overlap, so the region's time is the
max of the two sides' busy times.

These closed forms are the two-device special case of the event-driven
work-stealing dispatcher in :mod:`repro.fabric.dispatcher`, which runs
the same self-scheduling loop over real per-device queues for any number
of heterogeneous devices; :func:`work_stealing_partition` exposes that
generalization through this module's interface.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError


@dataclass(frozen=True)
class PartitionOutcome:
    """Result of distributing one parallel loop across sequencer classes."""

    policy: str
    cpu_fraction: float  # of total iterations
    cpu_busy_seconds: float
    gma_busy_seconds: float

    @property
    def total_seconds(self) -> float:
        return max(self.cpu_busy_seconds, self.gma_busy_seconds)

    @property
    def both_busy_seconds(self) -> float:
        return min(self.cpu_busy_seconds, self.gma_busy_seconds)

    @property
    def imbalance(self) -> float:
        """Idle time of the earlier-finishing side."""
        return abs(self.cpu_busy_seconds - self.gma_busy_seconds)


def static_partition(cpu_full_seconds: float, gma_full_seconds: float,
                     cpu_fraction: float) -> PartitionOutcome:
    """A fixed fraction of the loop on the IA32 sequencer."""
    if not 0.0 <= cpu_fraction <= 1.0:
        raise SchedulingError(
            f"cpu_fraction must be in [0, 1], got {cpu_fraction}")
    return PartitionOutcome(
        policy=f"static-{int(round(cpu_fraction * 100))}%",
        cpu_fraction=cpu_fraction,
        cpu_busy_seconds=cpu_full_seconds * cpu_fraction,
        gma_busy_seconds=gma_full_seconds * (1.0 - cpu_fraction),
    )


def oracle_partition(cpu_full_seconds: float,
                     gma_full_seconds: float) -> PartitionOutcome:
    """The balance point: both sides finish simultaneously.

    With per-iteration rates r_cpu = 1/cpu_full and r_gma = 1/gma_full,
    the optimum puts f* = gma_full / (cpu_full + gma_full) of iterations
    on the CPU, for a total of cpu_full * gma_full / (cpu_full + gma_full).
    """
    if cpu_full_seconds <= 0 or gma_full_seconds <= 0:
        raise SchedulingError("execution times must be positive")
    f = gma_full_seconds / (cpu_full_seconds + gma_full_seconds)
    return PartitionOutcome(
        policy="oracle",
        cpu_fraction=f,
        cpu_busy_seconds=cpu_full_seconds * f,
        gma_busy_seconds=gma_full_seconds * (1.0 - f),
    )


def dynamic_partition(cpu_full_seconds: float, gma_full_seconds: float,
                      num_chunks: int) -> PartitionOutcome:
    """Greedy self-scheduling at chunk granularity.

    Both sequencers repeatedly grab the next chunk when idle; per-chunk
    cost is the full-work time divided by the chunk count.  This is the
    work-request loop of section 5.3, and its outcome approaches
    :func:`oracle_partition` as ``num_chunks`` grows.
    """
    if num_chunks < 1:
        raise SchedulingError("need at least one chunk")
    cpu_chunk = cpu_full_seconds / num_chunks
    gma_chunk = gma_full_seconds / num_chunks
    cpu_time = gma_time = 0.0
    cpu_chunks = 0
    for _ in range(num_chunks):
        # the sequencer that would finish the chunk sooner takes it
        if cpu_time + cpu_chunk <= gma_time + gma_chunk:
            cpu_time += cpu_chunk
            cpu_chunks += 1
        else:
            gma_time += gma_chunk
    return PartitionOutcome(
        policy=f"dynamic-{num_chunks}",
        cpu_fraction=cpu_chunks / num_chunks,
        cpu_busy_seconds=cpu_time,
        gma_busy_seconds=gma_time,
    )


def work_stealing_partition(cpu_full_seconds: float, gma_full_seconds: float,
                            num_chunks: int) -> PartitionOutcome:
    """The fabric dispatcher's outcome for the same two-sequencer loop.

    Chunks live on the GMA device's queue and the idle IA32 sequencer
    steals — the queue-based realization of :func:`dynamic_partition`.
    Converges to :func:`oracle_partition` as ``num_chunks`` grows.
    """
    from ..fabric.dispatcher import work_stealing_partition as _dispatch

    return _dispatch(cpu_full_seconds, gma_full_seconds, num_chunks)
