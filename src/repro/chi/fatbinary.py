"""The CHI fat binary (paper section 4.1, Figure 4).

"After the assembler compiles the assembly block, the resulting binary
code is embedded in a special code section of the executable indexed with
a unique identifier.  The final executable is a fat binary, consisting of
binary code sections corresponding to different ISAs."

Sections store the *encoded* instruction stream
(:func:`repro.isa.encoding.encode_program`) plus the assembly source for
source-level debugging; the CHI runtime locates sections by identifier at
dispatch time, exactly the flow of Figure 4's ``<call to runtime>`` +
``.special_section`` pair.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import FatBinaryError
from ..isa.encoding import decode_program, encode_program
from ..isa.program import Program

MAGIC = b"FATB"
VERSION = 1


@dataclass
class CodeSection:
    """One ISA-specific code section."""

    ident: int
    isa: str
    name: str
    blob: bytes
    source: str = ""  # assembly source, for the debugger

    def program(self) -> Program:
        prog = decode_program(self.blob, name=self.name)
        prog.source = self.source
        return prog


@dataclass
class FatBinary:
    """A multi-ISA executable image."""

    name: str = "a.out"
    sections: Dict[int, CodeSection] = field(default_factory=dict)
    host_source: str = ""  # the C source of the IA32 part (frontend output)
    _next_ident: int = 1
    _cache: Dict[int, Program] = field(default_factory=dict, repr=False)

    def add_section(self, isa: str, program: Program,
                    source: str = "") -> int:
        """Embed an assembled program; returns its unique identifier."""
        ident = self._next_ident
        self._next_ident += 1
        blob = encode_program(program)
        self.sections[ident] = CodeSection(
            ident=ident, isa=isa, name=program.name, blob=blob,
            source=source or program.source)
        return ident

    def section(self, ident: int) -> CodeSection:
        try:
            return self.sections[ident]
        except KeyError:
            raise FatBinaryError(
                f"fat binary {self.name!r} has no code section {ident}; "
                f"have {sorted(self.sections)}") from None

    def program(self, ident: int) -> Program:
        """Decode (with caching) the program in a section."""
        if ident not in self._cache:
            self._cache[ident] = self.section(ident).program()
        return self._cache[ident]

    def sections_for_isa(self, isa: str) -> List[CodeSection]:
        return [s for s in self.sections.values() if s.isa == isa]

    def isas(self) -> List[str]:
        return sorted({s.isa for s in self.sections.values()})

    # -- on-disk form -------------------------------------------------------------

    def serialize(self) -> bytes:
        out = bytearray()
        out += MAGIC
        out.append(VERSION)
        out += _pack_str(self.name)
        out += _pack_str(self.host_source)
        out += struct.pack("<I", len(self.sections))
        for ident in sorted(self.sections):
            sec = self.sections[ident]
            out += struct.pack("<I", sec.ident)
            out += _pack_str(sec.isa)
            out += _pack_str(sec.name)
            out += _pack_str(sec.source)
            out += struct.pack("<I", len(sec.blob))
            out += sec.blob
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "FatBinary":
        if data[:4] != MAGIC:
            raise FatBinaryError("bad magic: not a CHI fat binary")
        if data[4] != VERSION:
            raise FatBinaryError(f"unsupported fat binary version {data[4]}")
        offset = 5
        name, offset = _unpack_str(data, offset)
        host_source, offset = _unpack_str(data, offset)
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        fat = cls(name=name, host_source=host_source)
        max_ident = 0
        for _ in range(count):
            (ident,) = struct.unpack_from("<I", data, offset)
            offset += 4
            isa, offset = _unpack_str(data, offset)
            sec_name, offset = _unpack_str(data, offset)
            source, offset = _unpack_str(data, offset)
            (blen,) = struct.unpack_from("<I", data, offset)
            offset += 4
            blob = data[offset : offset + blen]
            offset += blen
            fat.sections[ident] = CodeSection(ident, isa, sec_name, blob, source)
            max_ident = max(max_ident, ident)
        fat._next_ident = max_ident + 1
        return fat


def _pack_str(s: str) -> bytes:
    data = s.encode("utf-8")
    return struct.pack("<I", len(data)) + data


def _unpack_str(data: bytes, offset: int):
    (length,) = struct.unpack_from("<I", data, offset)
    offset += 4
    return data[offset : offset + length].decode("utf-8"), offset + length
