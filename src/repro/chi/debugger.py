"""Source-level debugging of exo-sequencer shreds (paper section 4.5).

"The enhanced version of the Intel Debugger is capable of debugging code
that is running on the IA32 sequencers as well as the shreds that are
running on the exo-sequencers.  The debugger extensions consist of two
parts.  The first part is the introduction of commands to set breakpoints,
single-step, and examine state on the GMA X3000 exo-sequencers."

The debug information is the fat-binary section's retained assembly source
plus each instruction's source-line field; breakpoints may be set by
source line or by label, and the session can single-step, continue,
inspect vector/predicate registers and report the current source line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Union

import numpy as np

from ..errors import DebuggerError
from ..exo.shred import ShredDescriptor
from ..gma.context import ShredContext
from ..gma.interpreter import ShredInterpreter
from ..isa.program import Program
from ..memory.surface import Surface
from .runtime import ChiRuntime


class StopReason(enum.Enum):
    BREAKPOINT = "breakpoint"
    WATCHPOINT = "watchpoint"
    STEP = "step"
    DONE = "done"


@dataclass(frozen=True)
class DebugStop:
    """Where and why a debugged shred stopped."""

    reason: StopReason
    ip: int
    source_line: str
    instructions_executed: int


class DebugSession:
    """One shred under debugger control on an exo-sequencer."""

    def __init__(self, runtime: ChiRuntime, program: Program,
                 bindings: Optional[Dict[str, float]] = None,
                 shared: Optional[Dict[str, Surface]] = None):
        self.runtime = runtime
        self.program = program
        device = runtime.platform.device
        self.shred = ShredDescriptor(
            program=program, bindings=dict(bindings or {}),
            surfaces=dict(shared or {}))
        ctx = ShredContext(self.shred, device.view, device.space,
                           device=device)
        self.interp = ShredInterpreter(self.shred, ctx,
                                       device.exoskeleton, device.config)
        self._breakpoints: Set[int] = set()

    # -- breakpoints --------------------------------------------------------------

    def break_at(self, where: Union[int, str]) -> int:
        """Set a breakpoint at a source line number or a label name.

        Returns the instruction index the breakpoint resolved to.
        """
        if isinstance(where, str):
            if where not in self.program.labels:
                raise DebuggerError(
                    f"no label {where!r} in {self.program.name} "
                    f"(have {sorted(self.program.labels)})")
            ip = self.program.labels[where]
        else:
            candidates = [i for i, instr in enumerate(self.program.instructions)
                          if instr.line == where]
            if not candidates:
                raise DebuggerError(
                    f"no instruction at source line {where} of "
                    f"{self.program.name}")
            ip = candidates[0]
        self._breakpoints.add(ip)
        return ip

    def clear_breakpoint(self, ip: int) -> None:
        self._breakpoints.discard(ip)

    @property
    def breakpoints(self) -> List[int]:
        return sorted(self._breakpoints)

    # -- execution control ------------------------------------------------------------

    def cont(self) -> DebugStop:
        """Run until the next breakpoint or completion."""
        while True:
            alive = self.interp.step()
            if not alive:
                return self._stop(StopReason.DONE)
            if self.interp.ip in self._breakpoints:
                return self._stop(StopReason.BREAKPOINT)

    run = cont

    def step(self) -> DebugStop:
        """Execute exactly one instruction."""
        alive = self.interp.step()
        return self._stop(StopReason.STEP if alive else StopReason.DONE)

    def watch_vreg(self, reg: int, lane: int = 0,
                   max_steps: int = 100_000) -> DebugStop:
        """Run until lane ``lane`` of ``vrreg`` changes value (or the
        shred finishes).  The IDB-style data watchpoint."""
        old = float(self.interp.ctx.regs.read_lanes(reg, lane + 1)[lane])
        for _ in range(max_steps):
            alive = self.interp.step()
            current = float(
                self.interp.ctx.regs.read_lanes(reg, lane + 1)[lane])
            if not alive:
                return self._stop(StopReason.DONE)
            if current != old:
                return self._stop(StopReason.WATCHPOINT)
        raise DebuggerError(
            f"vr{reg}[{lane}] did not change within {max_steps} steps")

    # -- state examination ---------------------------------------------------------------

    def examine_surface(self, name: str, x: int, y: int,
                        w: int = 1, h: int = 1) -> np.ndarray:
        """Read shared memory the shred is operating on.

        The debugger reads through the IA32 sequencer's own demand-paged
        view (the paper's debugger runs on the host), so examining memory
        never perturbs the exo-sequencer's TLB.
        """
        surfaces = self.shred.surfaces
        if name not in surfaces:
            raise DebuggerError(
                f"shred binds no surface {name!r} (have {sorted(surfaces)})")
        space = self.runtime.platform.space
        return surfaces[name].read_block(space, x, y, w, h).reshape(h, w)

    def where(self) -> DebugStop:
        return self._stop(StopReason.STEP if not self.interp.finished
                          else StopReason.DONE)

    def read_vreg(self, reg: int, lanes: int = 1) -> np.ndarray:
        """Examine lanes of a vector register on the stopped shred."""
        return self.interp.ctx.regs.read_lanes(reg, lanes)

    def read_pred(self, index: int, lanes: int = 16) -> np.ndarray:
        return self.interp.ctx.regs.read_pred(index, lanes)

    def disassemble_around(self, context: int = 2) -> List[str]:
        """Source lines around the current instruction pointer."""
        ip = self.interp.ip
        lo = max(0, ip - context)
        hi = min(len(self.program.instructions), ip + context + 1)
        out = []
        for i in range(lo, hi):
            marker = "=>" if i == ip else "  "
            out.append(f"{marker} [{i:3d}] {self.program.source_line(i)}")
        return out

    def _stop(self, reason: StopReason) -> DebugStop:
        ip = self.interp.ip
        return DebugStop(
            reason=reason,
            ip=ip,
            source_line=self.program.source_line(ip),
            instructions_executed=self.interp.run_record.instructions,
        )


class ChiDebugger:
    """Factory for debug sessions over one CHI runtime."""

    def __init__(self, runtime: ChiRuntime):
        self.runtime = runtime

    def debug(self, section: Union[int, Program], *,
              bindings: Optional[Dict[str, float]] = None,
              shared: Optional[Dict[str, Surface]] = None) -> DebugSession:
        """Attach to a shred about to run the given fat-binary section."""
        if isinstance(section, Program):
            program = section
        else:
            program = self.runtime.fatbinary.program(section)
        return DebugSession(self.runtime, program, bindings, shared)
