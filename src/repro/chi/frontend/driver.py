"""Front-end driver: compile and run CHI C programs.

``compile_source`` runs the full Figure 4 flow — lex, parse, semantic
check, pragma lowering with inline assembly — and yields a
:class:`CompiledProgram` whose fat binary holds one code section per
``__asm`` block plus the host source.  ``CompiledProgram.run`` executes
the host side on an interpreter wired to a real CHI runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..fatbinary import FatBinary
from ..platform import ExoPlatform
from ..runtime import ChiRuntime
from . import ast, lower, parser, sema
from .interp import Interpreter


@dataclass
class ProgramResult:
    """Outcome of one program execution."""

    exit_value: object
    stdout: List[str]
    runtime: ChiRuntime

    @property
    def output(self) -> str:
        return "".join(self.stdout)


@dataclass
class CompiledProgram:
    """A compiled CHI application: AST + fat binary."""

    unit: ast.TranslationUnit
    fatbinary: FatBinary
    name: str = "chi-app"

    def run(self, platform: Optional[ExoPlatform] = None,
            runtime: Optional[ChiRuntime] = None,
            args: Tuple = ()) -> ProgramResult:
        """Execute main() on a (possibly supplied) platform."""
        if runtime is None:
            runtime = ChiRuntime(platform or ExoPlatform(),
                                 fatbinary=self.fatbinary)
        else:
            runtime.fatbinary = self.fatbinary
        interp = Interpreter(self.unit, runtime)
        exit_value = interp.run(args=args)
        return ProgramResult(exit_value=exit_value, stdout=interp.stdout,
                             runtime=runtime)


def compile_source(source: str, name: str = "chi-app") -> CompiledProgram:
    """Lex, parse, check and lower a CHI C program."""
    unit = parser.parse(source)
    sema.check(unit)
    fat = lower.lower(unit, name=name)
    return CompiledProgram(unit=unit, fatbinary=fat, name=name)


def run_source(source: str, platform: Optional[ExoPlatform] = None,
               name: str = "chi-app", args: Tuple = ()) -> ProgramResult:
    """One-shot compile + run."""
    return compile_source(source, name=name).run(platform=platform, args=args)
