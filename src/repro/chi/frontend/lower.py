"""Pragma lowering: assemble ``__asm`` blocks into fat-binary sections.

This is the compile-time half of Figure 4: "a separate
accelerator-specific assembler is dynamically linked with the Intel
compiler ... the resulting binary code is embedded in a special code
section of the executable indexed with a unique identifier", and "the
accelerator-specific assembly block is replaced with a call into a CHI
runtime service that is responsible for locating the corresponding
accelerator binary code in the fat binary."

In our reproduction the "call to the runtime" is the section identifier
stored on each :class:`~repro.chi.frontend.ast.AsmBlock` node; the host
interpreter passes it to :meth:`repro.chi.runtime.ChiRuntime.parallel`.
"""

from __future__ import annotations

from typing import Optional

from ...errors import SemanticError
from ...isa.assembler import assemble
from ..fatbinary import FatBinary
from . import ast


def lower(unit: ast.TranslationUnit, name: str = "chi-app") -> FatBinary:
    """Assemble every target-pragma asm block; returns the fat binary."""
    fat = FatBinary(name=name)
    fat.host_source = unit.source
    for fn in unit.functions:
        _lower_stmt(fn.body, None, fat, fn.name)
    return fat


def _lower_stmt(stmt: Optional[ast.Stmt], target: Optional[str],
                fat: FatBinary, where: str) -> None:
    if stmt is None:
        return
    if isinstance(stmt, ast.AsmBlock):
        if target is None:
            raise SemanticError(
                "__asm block outside a target(...) region", stmt.line)
        program = assemble(stmt.text, name=f"{where}.asm@{stmt.line}")
        stmt.section = fat.add_section(target, program, stmt.text)
        return
    if isinstance(stmt, ast.DslBlock):
        if target is None:
            raise SemanticError(
                "__dsl block outside a target(...) region", stmt.line)
        from ..dsl import compile_dsl

        # C arrays are int/float surfaces; int maps to 32-bit elements
        meta = compile_dsl(stmt.text, name=f"{where}.dsl@{stmt.line}",
                           elem="dw")
        meta.program.name = f"{where}.dsl@{stmt.line}"
        stmt.section = fat.add_section(target, meta.program, stmt.text)
        stmt.meta = meta
        return
    if isinstance(stmt, (ast.ParallelStmt, ast.TaskqStmt, ast.TaskStmt)):
        inner_target = stmt.clauses.target or target
        _lower_stmt(stmt.body, inner_target, fat, where)
        return
    if isinstance(stmt, ast.Block):
        for s in stmt.body:
            _lower_stmt(s, target, fat, where)
    elif isinstance(stmt, ast.If):
        _lower_stmt(stmt.then, target, fat, where)
        _lower_stmt(stmt.orelse, target, fat, where)
    elif isinstance(stmt, ast.While):
        _lower_stmt(stmt.body, target, fat, where)
    elif isinstance(stmt, ast.For):
        _lower_stmt(stmt.body, target, fat, where)
    # declarations, expressions, return/break/continue carry no asm
