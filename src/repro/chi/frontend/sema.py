"""Semantic checks for the CHI C subset.

Light by design — enough to give programmers front-end errors instead of
interpreter crashes: declaration-before-use, pragma clause variables must
be declared, ``__asm`` only under a ``target`` pragma, tasks only inside a
``taskq``.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ...errors import SemanticError
from . import ast

#: Functions the runtime provides (Table 1 plus conveniences).
BUILTINS = {
    "chi_alloc_desc", "chi_free_desc", "chi_modify_desc",
    "chi_set_feature", "chi_set_feature_pershred", "chi_wait",
    "printf", "abs", "min", "max",
}

#: Bare identifiers that are runtime enum constants, not variables.
ENUM_NAMES = {
    "X3000", "IA32",
    "CHI_INPUT", "CHI_OUTPUT", "CHI_INOUT",
    "CHI_TILING", "CHI_MODE", "CHI_LINEAR", "CHI_TILED",
}


def check(unit: ast.TranslationUnit) -> None:
    """Raise :class:`~repro.errors.SemanticError` on the first problem."""
    names = {fn.name for fn in unit.functions}
    if "main" not in names:
        raise SemanticError("no main() function")
    for fn in unit.functions:
        _Checker(names).check_function(fn)


class _Checker:
    def __init__(self, functions: Set[str]):
        self.functions = functions
        self.scopes: List[Set[str]] = []
        self.in_target_pragma = 0
        self.in_taskq = 0

    # -- scope helpers -----------------------------------------------------------

    def push(self) -> None:
        self.scopes.append(set())

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, line: int) -> None:
        if name in self.scopes[-1]:
            raise SemanticError(f"redeclaration of {name!r}", line)
        self.scopes[-1].add(name)

    def is_declared(self, name: str) -> bool:
        return any(name in scope for scope in self.scopes)

    # -- traversal ------------------------------------------------------------------

    def check_function(self, fn: ast.FuncDef) -> None:
        self.push()
        for _, pname in fn.params:
            self.declare(pname, fn.line)
        self.check_stmt(fn.body)
        self.pop()

    def check_stmt(self, stmt: Optional[ast.Stmt]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            self.push()
            for s in stmt.body:
                self.check_stmt(s)
            self.pop()
        elif isinstance(stmt, ast.Decl):
            for dim in stmt.dims:
                self.check_expr(dim)
            if stmt.init is not None:
                self.check_expr(stmt.init)
            self.declare(stmt.name, stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.check_expr(stmt.cond)
            self.check_stmt(stmt.then)
            self.check_stmt(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.check_expr(stmt.cond)
            self.check_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            self.push()
            self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self.check_expr(stmt.cond)
            if stmt.step is not None:
                self.check_expr(stmt.step)
            self.check_stmt(stmt.body)
            self.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.check_expr(stmt.value)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        elif isinstance(stmt, ast.AsmBlock):
            if not self.in_target_pragma:
                raise SemanticError(
                    "__asm block outside a target(...) parallel region",
                    stmt.line)
        elif isinstance(stmt, ast.DslBlock):
            if not self.in_target_pragma:
                raise SemanticError(
                    "__dsl block outside a target(...) parallel region",
                    stmt.line)
        elif isinstance(stmt, ast.ParallelStmt):
            self._check_clauses(stmt.clauses, stmt.line)
            if stmt.clauses.target is not None:
                self.in_target_pragma += 1
                self.push()
                # private loop variables are bound by the region
                for name in stmt.clauses.private:
                    self.scopes[-1].add(name)
                self.check_stmt(stmt.body)
                self.pop()
                self.in_target_pragma -= 1
            else:
                self.push()
                for name in stmt.clauses.private:
                    self.scopes[-1].add(name)
                self.check_stmt(stmt.body)
                self.pop()
        elif isinstance(stmt, ast.TaskqStmt):
            self._check_clauses(stmt.clauses, stmt.line)
            self.in_taskq += 1
            self.push()
            self.check_stmt(stmt.body)
            self.pop()
            self.in_taskq -= 1
        elif isinstance(stmt, ast.TaskStmt):
            if not self.in_taskq:
                raise SemanticError("task pragma outside a taskq", stmt.line)
            self._check_clauses(stmt.clauses, stmt.line)
            self.in_target_pragma += 1
            self.check_stmt(stmt.body)
            self.in_target_pragma -= 1
        else:
            raise SemanticError(f"unhandled statement {stmt!r}", stmt.line)

    def _check_clauses(self, clauses: ast.PragmaClauses, line: int) -> None:
        for group in (clauses.shared, clauses.descriptor,
                      clauses.firstprivate, clauses.captureprivate):
            for name in group:
                if not self.is_declared(name):
                    raise SemanticError(
                        f"pragma clause references undeclared variable "
                        f"{name!r}", line)
        if clauses.num_threads is not None:
            self.check_expr(clauses.num_threads)

    def check_expr(self, expr: Optional[ast.Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.StrLit)):
            return
        if isinstance(expr, ast.Name):
            if not self.is_declared(expr.ident) and \
                    expr.ident not in ENUM_NAMES:
                raise SemanticError(f"use of undeclared variable "
                                    f"{expr.ident!r}", expr.line)
        elif isinstance(expr, ast.Index):
            self.check_expr(expr.base)
            for idx in expr.indices:
                self.check_expr(idx)
        elif isinstance(expr, ast.Unary):
            self.check_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            self.check_expr(expr.left)
            self.check_expr(expr.right)
        elif isinstance(expr, ast.Assign):
            if not isinstance(expr.target, (ast.Name, ast.Index)):
                raise SemanticError("invalid assignment target", expr.line)
            self.check_expr(expr.target)
            self.check_expr(expr.value)
        elif isinstance(expr, ast.Call):
            if expr.func not in BUILTINS and expr.func not in self.functions:
                raise SemanticError(f"call to undefined function "
                                    f"{expr.func!r}", expr.line)
            skip_names = expr.func.startswith("chi_")
            for arg in expr.args:
                if skip_names and isinstance(arg, ast.Name):
                    continue  # enum constants / variable handles
                self.check_expr(arg)
        else:
            raise SemanticError(f"unhandled expression {expr!r}", expr.line)
