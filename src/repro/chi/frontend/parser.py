"""Recursive-descent parser for the CHI C subset, including the OpenMP
pragma extensions of Figure 5."""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ...errors import ParseError
from . import ast
from .tokens import Tok, Token, tokenize


def parse(source: str) -> ast.TranslationUnit:
    """Parse CHI C source into a translation unit."""
    parser = _Parser(tokenize(source))
    unit = parser.translation_unit()
    unit.source = source
    return unit


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        self.pos += 1
        return tok

    def accept(self, kind: Tok) -> Optional[Token]:
        if self.peek().kind is kind:
            return self.next()
        return None

    def expect(self, kind: Tok) -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {tok.text!r}", tok.line)
        return self.next()

    # -- top level ------------------------------------------------------------------

    def translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.peek().kind is not Tok.EOF:
            unit.functions.append(self.function())
        return unit

    def function(self) -> ast.FuncDef:
        rtype = self.type_name()
        name = self.expect(Tok.IDENT)
        self.expect(Tok.LPAREN)
        params: List[Tuple[str, str]] = []
        if self.peek().kind is not Tok.RPAREN:
            if self.peek().kind is Tok.KW_VOID and \
                    self.peek(1).kind is Tok.RPAREN:
                self.next()
            else:
                while True:
                    ptype = self.type_name()
                    pname = self.expect(Tok.IDENT)
                    params.append((ptype, pname.text))
                    if not self.accept(Tok.COMMA):
                        break
        self.expect(Tok.RPAREN)
        body = self.block()
        return ast.FuncDef(return_type=rtype, name=name.text,
                           params=tuple(params), body=body, line=name.line)

    def type_name(self) -> str:
        tok = self.peek()
        if tok.kind is Tok.KW_INT:
            self.next()
            return "int"
        if tok.kind is Tok.KW_FLOAT:
            self.next()
            return "float"
        if tok.kind is Tok.KW_VOID:
            self.next()
            return "void"
        raise ParseError(f"expected a type, found {tok.text!r}", tok.line)

    # -- statements --------------------------------------------------------------------

    def block(self) -> ast.Block:
        lbrace = self.expect(Tok.LBRACE)
        body: List[ast.Stmt] = []
        while self.peek().kind is not Tok.RBRACE:
            if self.peek().kind is Tok.EOF:
                raise ParseError("unterminated block", lbrace.line)
            body.append(self.statement())
        self.expect(Tok.RBRACE)
        return ast.Block(line=lbrace.line, body=tuple(body))

    def statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind is Tok.PRAGMA:
            return self.pragma_statement()
        if tok.kind is Tok.ASM:
            self.next()
            return ast.AsmBlock(line=tok.line, text=tok.value)
        if tok.kind is Tok.DSL:
            self.next()
            return ast.DslBlock(line=tok.line, text=tok.value)
        if tok.kind is Tok.LBRACE:
            return self.block()
        if tok.kind in (Tok.KW_INT, Tok.KW_FLOAT):
            return self.declaration()
        if tok.kind is Tok.KW_FOR:
            return self.for_statement()
        if tok.kind is Tok.KW_WHILE:
            self.next()
            self.expect(Tok.LPAREN)
            cond = self.expression()
            self.expect(Tok.RPAREN)
            return ast.While(line=tok.line, cond=cond, body=self.statement())
        if tok.kind is Tok.KW_IF:
            self.next()
            self.expect(Tok.LPAREN)
            cond = self.expression()
            self.expect(Tok.RPAREN)
            then = self.statement()
            orelse = None
            if self.accept(Tok.KW_ELSE):
                orelse = self.statement()
            return ast.If(line=tok.line, cond=cond, then=then, orelse=orelse)
        if tok.kind is Tok.KW_RETURN:
            self.next()
            value = None
            if self.peek().kind is not Tok.SEMI:
                value = self.expression()
            self.expect(Tok.SEMI)
            return ast.Return(line=tok.line, value=value)
        if tok.kind is Tok.KW_BREAK:
            self.next()
            self.expect(Tok.SEMI)
            return ast.Break(line=tok.line)
        if tok.kind is Tok.KW_CONTINUE:
            self.next()
            self.expect(Tok.SEMI)
            return ast.Continue(line=tok.line)
        expr = self.expression()
        self.expect(Tok.SEMI)
        return ast.ExprStmt(line=tok.line, expr=expr)

    def declaration(self) -> ast.Decl:
        tok = self.peek()
        type_name = self.type_name()
        name = self.expect(Tok.IDENT)
        dims: List[ast.Expr] = []
        while self.accept(Tok.LBRACKET):
            dims.append(self.expression())
            self.expect(Tok.RBRACKET)
        init = None
        if self.accept(Tok.ASSIGN):
            init = self.expression()
        self.expect(Tok.SEMI)
        return ast.Decl(line=tok.line, type_name=type_name, name=name.text,
                        dims=tuple(dims), init=init)

    def for_statement(self) -> ast.For:
        tok = self.expect(Tok.KW_FOR)
        self.expect(Tok.LPAREN)
        init: Optional[ast.Stmt] = None
        if self.peek().kind in (Tok.KW_INT, Tok.KW_FLOAT):
            init = self.declaration()  # consumes the ';'
        elif self.peek().kind is not Tok.SEMI:
            expr = self.expression()
            self.expect(Tok.SEMI)
            init = ast.ExprStmt(line=tok.line, expr=expr)
        else:
            self.expect(Tok.SEMI)
        cond = None
        if self.peek().kind is not Tok.SEMI:
            cond = self.expression()
        self.expect(Tok.SEMI)
        step = None
        if self.peek().kind is not Tok.RPAREN:
            step = self.expression()
        self.expect(Tok.RPAREN)
        return ast.For(line=tok.line, init=init, cond=cond, step=step,
                       body=self.statement())

    # -- pragmas ----------------------------------------------------------------------------

    def pragma_statement(self) -> ast.Stmt:
        tok = self.expect(Tok.PRAGMA)
        text = tok.value
        clauses, kind = parse_pragma(text, tok.line)
        if kind == "parallel":
            body = self.statement()
            return ast.ParallelStmt(line=tok.line, clauses=clauses, body=body)
        if kind == "taskq":
            body = self.statement()
            return ast.TaskqStmt(line=tok.line, clauses=clauses, body=body)
        if kind == "task":
            body = self.statement()
            return ast.TaskStmt(line=tok.line, clauses=clauses, body=body)
        raise ParseError(f"unsupported pragma {text!r}", tok.line)

    # -- expressions (precedence climbing) ----------------------------------------------------

    def expression(self) -> ast.Expr:
        return self.assignment()

    def assignment(self) -> ast.Expr:
        left = self.logical_or()
        tok = self.peek()
        if tok.kind is Tok.ASSIGN:
            self.next()
            value = self.assignment()
            return ast.Assign(line=tok.line, target=left, value=value)
        if tok.kind in (Tok.PLUSEQ, Tok.MINUSEQ):
            self.next()
            op = "+" if tok.kind is Tok.PLUSEQ else "-"
            value = self.assignment()
            return ast.Assign(line=tok.line, target=left,
                              value=ast.Binary(line=tok.line, op=op,
                                               left=left, right=value))
        return left

    def logical_or(self) -> ast.Expr:
        left = self.logical_and()
        while self.peek().kind is Tok.OROR:
            tok = self.next()
            left = ast.Binary(line=tok.line, op="||", left=left,
                              right=self.logical_and())
        return left

    def logical_and(self) -> ast.Expr:
        left = self.equality()
        while self.peek().kind is Tok.ANDAND:
            tok = self.next()
            left = ast.Binary(line=tok.line, op="&&", left=left,
                              right=self.equality())
        return left

    def equality(self) -> ast.Expr:
        left = self.relational()
        while self.peek().kind in (Tok.EQ, Tok.NE):
            tok = self.next()
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=self.relational())
        return left

    def relational(self) -> ast.Expr:
        left = self.shift()
        while self.peek().kind in (Tok.LT, Tok.LE, Tok.GT, Tok.GE):
            tok = self.next()
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=self.shift())
        return left

    def shift(self) -> ast.Expr:
        left = self.additive()
        while self.peek().kind in (Tok.SHL, Tok.SHR):
            tok = self.next()
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=self.additive())
        return left

    def additive(self) -> ast.Expr:
        left = self.multiplicative()
        while self.peek().kind in (Tok.PLUS, Tok.MINUS):
            tok = self.next()
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=self.multiplicative())
        return left

    def multiplicative(self) -> ast.Expr:
        left = self.unary()
        while self.peek().kind in (Tok.STAR, Tok.SLASH, Tok.PERCENT):
            tok = self.next()
            left = ast.Binary(line=tok.line, op=tok.text, left=left,
                              right=self.unary())
        return left

    def unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is Tok.MINUS:
            self.next()
            return ast.Unary(line=tok.line, op="-", operand=self.unary())
        if tok.kind is Tok.NOT:
            self.next()
            return ast.Unary(line=tok.line, op="!", operand=self.unary())
        if tok.kind in (Tok.PLUSPLUS, Tok.MINUSMINUS):
            self.next()
            op = "+" if tok.kind is Tok.PLUSPLUS else "-"
            operand = self.unary()
            return ast.Assign(line=tok.line, target=operand,
                              value=ast.Binary(line=tok.line, op=op,
                                               left=operand,
                                               right=ast.IntLit(tok.line, 1)))
        return self.postfix()

    def postfix(self) -> ast.Expr:
        expr = self.primary()
        while True:
            tok = self.peek()
            if tok.kind is Tok.LBRACKET:
                indices: List[ast.Expr] = []
                while self.accept(Tok.LBRACKET):
                    indices.append(self.expression())
                    self.expect(Tok.RBRACKET)
                expr = ast.Index(line=tok.line, base=expr,
                                 indices=tuple(indices))
            elif tok.kind in (Tok.PLUSPLUS, Tok.MINUSMINUS):
                self.next()
                op = "+" if tok.kind is Tok.PLUSPLUS else "-"
                # postfix value semantics are not needed by our programs;
                # treat as statement-level increment
                expr = ast.Assign(line=tok.line, target=expr,
                                  value=ast.Binary(line=tok.line, op=op,
                                                   left=expr,
                                                   right=ast.IntLit(tok.line, 1)))
            else:
                return expr

    def primary(self) -> ast.Expr:
        tok = self.next()
        if tok.kind is Tok.INT:
            return ast.IntLit(line=tok.line, value=tok.value)
        if tok.kind is Tok.FLOAT:
            return ast.FloatLit(line=tok.line, value=tok.value)
        if tok.kind is Tok.STRING:
            return ast.StrLit(line=tok.line, value=tok.value)
        if tok.kind is Tok.IDENT:
            if self.peek().kind is Tok.LPAREN:
                self.next()
                args: List[ast.Expr] = []
                if self.peek().kind is not Tok.RPAREN:
                    while True:
                        args.append(self.expression())
                        if not self.accept(Tok.COMMA):
                            break
                self.expect(Tok.RPAREN)
                return ast.Call(line=tok.line, func=tok.text,
                                args=tuple(args))
            return ast.Name(line=tok.line, ident=tok.text)
        if tok.kind is Tok.LPAREN:
            expr = self.expression()
            self.expect(Tok.RPAREN)
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line)


# ---------------------------------------------------------------------------
# pragma clause grammar (Figure 5)
# ---------------------------------------------------------------------------

_CLAUSE_RE = re.compile(
    r"(target|shared|descriptor|private|firstprivate|captureprivate|"
    r"num_threads)\s*\(([^)]*)\)|"
    r"(master_nowait|nowait|for)\b")


def parse_pragma(text: str, line: int) -> Tuple[ast.PragmaClauses, str]:
    """Parse a pragma body (after ``#pragma``) into clauses + kind."""
    words = text.split()
    if not words:
        raise ParseError("empty pragma", line)
    head = words[0]
    if head == "intel":
        if len(words) < 3 or words[1] != "omp" or \
                words[2] not in ("taskq", "task"):
            raise ParseError(f"unsupported intel pragma {text!r}", line)
        kind = words[2]
        rest = " ".join(words[3:])
    elif head == "omp":
        if len(words) < 2 or words[1] != "parallel":
            raise ParseError(f"unsupported omp pragma {text!r}", line)
        kind = "parallel"
        rest = " ".join(words[2:])
    else:
        raise ParseError(f"unsupported pragma {text!r}", line)

    clauses = {"shared": (), "descriptor": (), "private": (),
               "firstprivate": (), "captureprivate": ()}
    target = None
    num_threads = None
    master_nowait = False
    is_for = False
    consumed = 0
    for match in _CLAUSE_RE.finditer(rest):
        consumed += 1
        if match.group(3):
            flag = match.group(3)
            if flag in ("master_nowait", "nowait"):
                master_nowait = True
            elif flag == "for":
                is_for = True
            continue
        name, body = match.group(1), match.group(2)
        items = tuple(s.strip() for s in body.split(",") if s.strip())
        if name == "target":
            if len(items) != 1:
                raise ParseError("target clause takes one ISA name", line)
            target = items[0]
        elif name == "num_threads":
            sub = _Parser(tokenize(body))
            num_threads = sub.expression()
        else:
            clauses[name] = clauses[name] + items

    leftovers = _CLAUSE_RE.sub("", rest).replace(",", " ").split()
    if leftovers:
        raise ParseError(
            f"unknown pragma clause(s) {leftovers} in {text!r}", line)

    return (
        ast.PragmaClauses(
            target=target,
            shared=clauses["shared"],
            descriptor=clauses["descriptor"],
            private=clauses["private"],
            firstprivate=clauses["firstprivate"],
            captureprivate=clauses["captureprivate"],
            num_threads=num_threads,
            master_nowait=master_nowait,
            is_for=is_for,
        ),
        kind,
    )
