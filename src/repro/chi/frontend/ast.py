"""AST of the CHI C subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# -- expressions -------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Index(Expr):
    """``A[i]`` or ``A[i][j]`` — element access into an array surface."""

    base: Optional[Expr] = None
    indices: Tuple[Expr, ...] = ()


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """``target = value`` (also ``+=``/``-=`` desugared by the parser)."""

    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Call(Expr):
    func: str = ""
    args: Tuple[Expr, ...] = ()


# -- statements ----------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Decl(Stmt):
    """``int x = e;`` / ``float y;`` / ``int A[n];`` / ``int M[h][w];``"""

    type_name: str = "int"
    name: str = ""
    dims: Tuple[Expr, ...] = ()  # array dimensions (empty for scalars)
    init: Optional[Expr] = None


@dataclass
class Block(Stmt):
    body: Tuple[Stmt, ...] = ()


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    orelse: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None  # Decl or ExprStmt
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class AsmBlock(Stmt):
    """A raw accelerator assembly block (only legal under a target pragma).

    Mutable: the lowering pass fills ``section`` with the fat-binary
    section identifier after assembling ``text``.
    """

    text: str = ""
    section: int = -1  # fat-binary section id, filled by lowering


@dataclass
class DslBlock(Stmt):
    """A ``__dsl { ... }`` per-pixel filter block (only under a target
    pragma).  Lowering compiles the DSL to an accelerator section and
    records the tiling contract in ``meta``."""

    text: str = ""
    section: int = -1
    meta: Optional[object] = None  # repro.chi.dsl.DslProgram


# -- pragmas ----------------------------------------------------------------------


@dataclass
class PragmaClauses:
    """Parsed clause list of a CHI OpenMP pragma (Figure 5)."""

    target: Optional[str] = None
    shared: Tuple[str, ...] = ()
    descriptor: Tuple[str, ...] = ()
    private: Tuple[str, ...] = ()
    firstprivate: Tuple[str, ...] = ()
    captureprivate: Tuple[str, ...] = ()
    num_threads: Optional[Expr] = None
    master_nowait: bool = False
    is_for: bool = False  # "parallel for" (host worksharing)


@dataclass
class ParallelStmt(Stmt):
    """``#pragma omp parallel [target(...)] ...`` + structured block."""

    clauses: PragmaClauses = field(default_factory=PragmaClauses)
    body: Optional[Stmt] = None


@dataclass
class TaskqStmt(Stmt):
    """``#pragma intel omp taskq target(...)`` + structured block."""

    clauses: PragmaClauses = field(default_factory=PragmaClauses)
    body: Optional[Stmt] = None


@dataclass
class TaskStmt(Stmt):
    """``#pragma intel omp task target(...)`` + structured block."""

    clauses: PragmaClauses = field(default_factory=PragmaClauses)
    body: Optional[Stmt] = None


# -- top level -------------------------------------------------------------------------


@dataclass
class FuncDef:
    return_type: str = "int"
    name: str = ""
    params: Tuple[Tuple[str, str], ...] = ()  # (type, name)
    body: Optional[Block] = None
    line: int = 0


@dataclass
class TranslationUnit:
    functions: List[FuncDef] = field(default_factory=list)
    source: str = ""

    def function(self, name: str) -> FuncDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r}")
