"""Host-side interpreter: executes the IA32 portion of a CHI program.

The paper's host code compiles to IA32 machine code; ours executes on a
tree-walking interpreter, but the *interactions* are faithful: array
variables live in surfaces inside the shared virtual address space, the
Table 1 APIs hit the real CHI runtime, and each target pragma dispatches
real shreds onto the device model (with ``master_nowait`` overlapping the
host's simulated timeline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...errors import ChiError, SemanticError
from ...isa.types import DataType
from ...memory.surface import Surface
from ..descriptors import AccessMode, DescriptorAttrib
from ..runtime import ChiRuntime, ParallelRegion
from . import ast


@dataclass
class ArrayVar:
    """A C array variable: a surface in the shared address space."""

    surface: Surface
    shape: Tuple[int, ...]  # (n,) or (h, w)
    elem_type: str  # "int" | "float"


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


_ENUM_VALUES = {
    "CHI_INPUT": AccessMode.CHI_INPUT,
    "CHI_OUTPUT": AccessMode.CHI_OUTPUT,
    "CHI_INOUT": AccessMode.CHI_INOUT,
    "CHI_TILING": DescriptorAttrib.TILING,
    "CHI_MODE": DescriptorAttrib.MODE,
}


class Interpreter:
    """Executes one translation unit against a CHI runtime."""

    def __init__(self, unit: ast.TranslationUnit, runtime: ChiRuntime):
        self.unit = unit
        self.runtime = runtime
        self.stdout: List[str] = []
        self.scopes: List[Dict[str, object]] = []
        self.pending_regions: List[ParallelRegion] = []
        self._taskq_stack: List[object] = []

    # -- entry ---------------------------------------------------------------------

    def run(self, entry: str = "main", args: Tuple = ()) -> object:
        result = self.call_function(entry, list(args))
        # implicit barrier: the process cannot exit with shreds in flight
        self._wait_all()
        return result

    def call_function(self, name: str, args: List[object]) -> object:
        fn = self.unit.function(name)
        if len(args) != len(fn.params):
            raise ChiError(
                f"{name}() takes {len(fn.params)} arguments, got {len(args)}")
        self.scopes.append({pname: value
                            for (_, pname), value in zip(fn.params, args)})
        try:
            self.exec_stmt(fn.body)
        except _Return as ret:
            return ret.value
        finally:
            self.scopes.pop()
        return 0

    # -- environment ------------------------------------------------------------------

    def lookup(self, name: str, line: int = 0) -> object:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise SemanticError(f"use of undeclared variable {name!r}", line)

    def assign_name(self, name: str, value, line: int = 0) -> None:
        for scope in reversed(self.scopes):
            if name in scope:
                scope[name] = value
                return
        raise SemanticError(f"assignment to undeclared variable {name!r}",
                            line)

    # -- statements ----------------------------------------------------------------------

    def exec_stmt(self, stmt: Optional[ast.Stmt]) -> None:
        if stmt is None:
            return
        method = getattr(self, f"_exec_{type(stmt).__name__}", None)
        if method is None:
            raise ChiError(f"unhandled statement {type(stmt).__name__}")
        method(stmt)

    def _exec_Block(self, stmt: ast.Block) -> None:
        self.scopes.append({})
        try:
            for s in stmt.body:
                self.exec_stmt(s)
        finally:
            self.scopes.pop()

    def _exec_Decl(self, stmt: ast.Decl) -> None:
        if stmt.dims:
            dims = [int(self.eval(d)) for d in stmt.dims]
            if any(d <= 0 for d in dims):
                raise ChiError(f"array {stmt.name!r} has non-positive "
                               f"dimension {dims}")
            if len(dims) == 1:
                width, height = dims[0], 1
            elif len(dims) == 2:
                height, width = dims
            else:
                raise ChiError("arrays support at most two dimensions")
            dtype = DataType.DW if stmt.type_name == "int" else DataType.F
            surface = Surface.alloc(self.runtime.platform.space, stmt.name,
                                    width, height, dtype)
            value: object = ArrayVar(surface=surface, shape=tuple(dims),
                                     elem_type=stmt.type_name)
        elif stmt.init is not None:
            value = self.eval(stmt.init)
            if stmt.type_name == "int" and isinstance(value, float):
                value = _c_int(value)
            elif stmt.type_name == "float" and isinstance(value, int):
                value = float(value)
        else:
            value = 0 if stmt.type_name == "int" else 0.0
        self.scopes[-1][stmt.name] = value

    def _exec_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        self.eval(stmt.expr)

    def _exec_If(self, stmt: ast.If) -> None:
        if _truthy(self.eval(stmt.cond)):
            self.exec_stmt(stmt.then)
        elif stmt.orelse is not None:
            self.exec_stmt(stmt.orelse)

    def _exec_While(self, stmt: ast.While) -> None:
        while _truthy(self.eval(stmt.cond)):
            try:
                self.exec_stmt(stmt.body)
            except _Break:
                break
            except _Continue:
                continue

    def _exec_For(self, stmt: ast.For) -> None:
        self.scopes.append({})
        try:
            self.exec_stmt(stmt.init)
            while stmt.cond is None or _truthy(self.eval(stmt.cond)):
                try:
                    self.exec_stmt(stmt.body)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self.eval(stmt.step)
        finally:
            self.scopes.pop()

    def _exec_Return(self, stmt: ast.Return) -> None:
        raise _Return(self.eval(stmt.value) if stmt.value is not None else 0)

    def _exec_Break(self, stmt: ast.Break) -> None:
        raise _Break()

    def _exec_Continue(self, stmt: ast.Continue) -> None:
        raise _Continue()

    def _exec_AsmBlock(self, stmt: ast.AsmBlock) -> None:
        raise SemanticError(
            "__asm block reached host execution; it must sit directly "
            "under a target(...) pragma", stmt.line)

    # -- pragma regions --------------------------------------------------------------------

    def _exec_ParallelStmt(self, stmt: ast.ParallelStmt) -> None:
        clauses = stmt.clauses
        if clauses.target is None:
            # host-side OpenMP: functionally serial execution (the paper's
            # line 17-21 of Figure 6); private vars get a fresh scope
            self.scopes.append({name: 0 for name in clauses.private})
            try:
                self.exec_stmt(stmt.body)
            finally:
                self.scopes.pop()
            return

        shared = self._resolve_clause_surfaces(clauses, stmt.line)
        dsl = self._find_dsl(stmt.body)
        if dsl is not None:
            # __dsl regions tile themselves over the first output surface
            region = self._dispatch_dsl(stmt, dsl, shared)
            if clauses.master_nowait:
                self.pending_regions.append(region)
            return

        asm, bindings = self._collect_region(stmt, clauses)
        firstprivate = {
            name: _as_scalar(self.lookup(name, stmt.line), name)
            for name in clauses.firstprivate
        }
        region = self.runtime.parallel(
            asm.section,
            target=clauses.target,
            shared=shared,
            firstprivate=firstprivate,
            private=bindings,
            master_nowait=clauses.master_nowait,
        )
        if clauses.master_nowait:
            self.pending_regions.append(region)

    def _exec_TaskqStmt(self, stmt: ast.TaskqStmt) -> None:
        clauses = stmt.clauses
        target = clauses.target or "X3000"
        queue = self.runtime.taskq(target,
                                   master_nowait=clauses.master_nowait)
        self._taskq_stack.append(queue)
        try:
            with queue:
                # "the code inside a taskq block is executed serially"
                self.exec_stmt(stmt.body)
        finally:
            self._taskq_stack.pop()
        if clauses.master_nowait and queue.region is not None:
            self.pending_regions.append(queue.region)

    def _exec_TaskStmt(self, stmt: ast.TaskStmt) -> None:
        if not self._taskq_stack:
            raise SemanticError("task pragma outside a taskq", stmt.line)
        queue = self._taskq_stack[-1]
        clauses = stmt.clauses
        asm = _find_asm(stmt.body, stmt.line)
        captured = {
            name: _as_scalar(self.lookup(name, stmt.line), name)
            for name in clauses.captureprivate
        }
        shared = self._resolve_clause_surfaces(clauses, stmt.line)
        queue.task(asm.section, captureprivate=captured, shared=shared)

    def _find_dsl(self, body) -> Optional[ast.DslBlock]:
        while isinstance(body, ast.Block) and len(body.body) == 1:
            body = body.body[0]
        return body if isinstance(body, ast.DslBlock) else None

    def _dispatch_dsl(self, stmt: ast.ParallelStmt, dsl: ast.DslBlock,
                      shared: Dict[str, object]) -> ParallelRegion:
        meta = dsl.meta
        if meta is None or dsl.section < 0:
            raise SemanticError("__dsl block was not lowered", dsl.line)
        missing = (set(meta.outputs) | meta.inputs) - set(shared)
        if missing:
            raise SemanticError(
                f"__dsl block references surfaces {sorted(missing)} not in "
                f"the shared clause", dsl.line)
        out = shared[meta.outputs[0]]
        surface = getattr(out, "surface", out)
        bindings = meta.bindings_for(surface.width, surface.height)
        return self.runtime.parallel(
            dsl.section,
            target=stmt.clauses.target,
            shared=shared,
            private=bindings,
            master_nowait=stmt.clauses.master_nowait,
        )

    def _collect_region(self, stmt: ast.ParallelStmt,
                        clauses: ast.PragmaClauses):
        """Extract the asm block and the per-shred private bindings.

        Two shapes exist (Figure 6 and Figure 9): a ``for`` loop over the
        private variable whose body is the asm block (one shred per
        iteration), or a bare asm block with ``num_threads``.
        """
        body = stmt.body
        while isinstance(body, ast.Block) and len(body.body) == 1:
            body = body.body[0]
        if isinstance(body, ast.For):
            asm = _find_asm(body.body, stmt.line)
            bindings: List[Dict[str, float]] = []
            self.scopes.append({})
            try:
                self.exec_stmt(body.init)
                while body.cond is None or _truthy(self.eval(body.cond)):
                    bindings.append({
                        name: _as_scalar(self.lookup(name, stmt.line), name)
                        for name in clauses.private
                    })
                    if body.step is not None:
                        self.eval(body.step)
            finally:
                self.scopes.pop()
            return asm, bindings
        if isinstance(body, ast.AsmBlock):
            if clauses.num_threads is None:
                raise SemanticError(
                    "parallel region with a bare __asm block needs "
                    "num_threads(...)", stmt.line)
            count = int(self.eval(clauses.num_threads))
            return body, [{"tid": float(i)} for i in range(count)]
        raise SemanticError(
            "target parallel region must contain a for loop over an __asm "
            "block, or a bare __asm block", stmt.line)

    def _resolve_clause_surfaces(self, clauses: ast.PragmaClauses,
                                 line: int) -> Dict[str, object]:
        shared: Dict[str, object] = {}
        for name in clauses.shared:
            value = self.lookup(name, line)
            if not isinstance(value, ArrayVar):
                raise SemanticError(
                    f"shared({name}) must name an array variable", line)
            shared[name] = value.surface
        # descriptors override plain surfaces with configured views
        for name in clauses.descriptor:
            desc = self.lookup(name, line)
            surf_name = getattr(getattr(desc, "surface", None), "name", None)
            if surf_name is None:
                raise SemanticError(
                    f"descriptor({name}) must name a chi_alloc_desc result",
                    line)
            shared[surf_name] = desc
        return shared

    # -- expressions ---------------------------------------------------------------------------

    def eval(self, expr: Optional[ast.Expr]):
        if expr is None:
            return 0
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise ChiError(f"unhandled expression {type(expr).__name__}")
        return method(expr)

    def _eval_IntLit(self, expr: ast.IntLit):
        return expr.value

    def _eval_FloatLit(self, expr: ast.FloatLit):
        return expr.value

    def _eval_StrLit(self, expr: ast.StrLit):
        return expr.value

    def _eval_Name(self, expr: ast.Name):
        return self.lookup(expr.ident, expr.line)

    def _eval_Index(self, expr: ast.Index):
        arr, flat = self._index_target(expr)
        value = arr.surface.read_linear(self.runtime.platform.host, flat, 1)[0]
        return _c_int(value) if arr.elem_type == "int" else float(value)

    def _eval_Unary(self, expr: ast.Unary):
        value = self.eval(expr.operand)
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return 0 if _truthy(value) else 1
        raise ChiError(f"unknown unary operator {expr.op!r}")

    def _eval_Binary(self, expr: ast.Binary):
        op = expr.op
        if op == "&&":
            return 1 if (_truthy(self.eval(expr.left))
                         and _truthy(self.eval(expr.right))) else 0
        if op == "||":
            return 1 if (_truthy(self.eval(expr.left))
                         or _truthy(self.eval(expr.right))) else 0
        a = self.eval(expr.left)
        b = self.eval(expr.right)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                raise ChiError(f"division by zero at line {expr.line}")
            if isinstance(a, int) and isinstance(b, int):
                return _c_int(math.trunc(a / b))
            return a / b
        if op == "%":
            if b == 0:
                raise ChiError(f"modulo by zero at line {expr.line}")
            return a - b * math.trunc(a / b)
        if op == "<<":
            return int(a) << int(b)
        if op == ">>":
            return int(a) >> int(b)
        comparisons = {
            "<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b,
            "==": a == b, "!=": a != b,
        }
        if op in comparisons:
            return 1 if comparisons[op] else 0
        raise ChiError(f"unknown binary operator {op!r}")

    def _eval_Assign(self, expr: ast.Assign):
        value = self.eval(expr.value)
        target = expr.target
        if isinstance(target, ast.Name):
            old = self.lookup(target.ident, target.line)
            if isinstance(old, int) and isinstance(value, float):
                value = _c_int(value)
            self.assign_name(target.ident, value, target.line)
            return value
        if isinstance(target, ast.Index):
            arr, flat = self._index_target(target)
            arr.surface.write_linear(self.runtime.platform.host, flat,
                                     np.array([value], dtype=np.float64))
            return value
        raise SemanticError("invalid assignment target", expr.line)

    def _eval_Call(self, expr: ast.Call):
        name = expr.func
        if name.startswith("chi_"):
            return self._call_chi(expr)
        if name == "printf":
            return self._call_printf(expr)
        if name in ("abs", "min", "max"):
            args = [self.eval(a) for a in expr.args]
            return {"abs": lambda: abs(args[0]),
                    "min": lambda: min(args),
                    "max": lambda: max(args)}[name]()
        return self.call_function(name, [self.eval(a) for a in expr.args])

    # -- builtins ----------------------------------------------------------------------------------

    def _call_chi(self, expr: ast.Call):
        rt = self.runtime
        name = expr.func
        args = [self._eval_soft(a) for a in expr.args]
        if name == "chi_alloc_desc":
            isa, arr, mode = args[0], args[1], args[2]
            if not isinstance(arr, ArrayVar):
                raise SemanticError(
                    "chi_alloc_desc expects an array variable", expr.line)
            width = int(args[3]) if len(args) > 3 else None
            height = int(args[4]) if len(args) > 4 else None
            return rt.chi_alloc_desc(str(isa), arr.surface,
                                     _as_mode(mode, expr.line),
                                     width, height)
        if name == "chi_free_desc":
            rt.chi_free_desc(str(args[0]), args[1])
            return 0
        if name == "chi_modify_desc":
            attrib = args[2]
            if isinstance(attrib, str):
                attrib = _ENUM_VALUES.get(attrib, attrib)
            rt.chi_modify_desc(str(args[0]), args[1], attrib, args[3])
            return 0
        if name == "chi_set_feature":
            rt.chi_set_feature(str(args[0]), str(args[1]), args[2])
            return 0
        if name == "chi_set_feature_pershred":
            rt.chi_set_feature_pershred(str(args[0]), int(args[1]),
                                        str(args[2]), args[3])
            return 0
        if name == "chi_wait":
            self._wait_all()
            return 0
        raise ChiError(f"unknown CHI API {name!r}")

    def _call_printf(self, expr: ast.Call):
        if not expr.args:
            raise ChiError("printf needs a format string")
        fmt = self.eval(expr.args[0])
        values = [self.eval(a) for a in expr.args[1:]]
        try:
            text = fmt % tuple(values) if values else fmt
        except (TypeError, ValueError) as exc:
            raise ChiError(f"printf format error: {exc}") from None
        self.stdout.append(text)
        return len(text)

    def _eval_soft(self, expr: ast.Expr):
        """Evaluate an argument, resolving unbound names to enum strings
        (the C API spells ``X3000`` and ``CHI_INPUT`` as bare words)."""
        if isinstance(expr, ast.Name):
            for scope in reversed(self.scopes):
                if expr.ident in scope:
                    return scope[expr.ident]
            return _ENUM_VALUES.get(expr.ident, expr.ident)
        return self.eval(expr)

    # -- helpers --------------------------------------------------------------------------------------

    def _index_target(self, expr: ast.Index):
        if not isinstance(expr.base, ast.Name):
            raise SemanticError("only variables can be indexed", expr.line)
        arr = self.lookup(expr.base.ident, expr.line)
        if not isinstance(arr, ArrayVar):
            raise SemanticError(f"{expr.base.ident!r} is not an array",
                                expr.line)
        indices = [int(self.eval(i)) for i in expr.indices]
        if len(indices) != len(arr.shape):
            raise SemanticError(
                f"array {expr.base.ident!r} has {len(arr.shape)} "
                f"dimension(s), indexed with {len(indices)}", expr.line)
        if len(indices) == 1:
            flat = indices[0]
            limit = arr.shape[0]
            if not 0 <= flat < limit:
                raise ChiError(
                    f"index {flat} out of bounds for {expr.base.ident}"
                    f"[{limit}]")
        else:
            y, x = indices
            h, w = arr.shape
            if not (0 <= y < h and 0 <= x < w):
                raise ChiError(
                    f"index [{y}][{x}] out of bounds for "
                    f"{expr.base.ident}[{h}][{w}]")
            flat = y * w + x
        return arr, flat

    def _wait_all(self) -> None:
        for region in self.pending_regions:
            region.wait()
        self.pending_regions.clear()


def _truthy(value) -> bool:
    return bool(value)


def _c_int(value) -> int:
    return int(math.trunc(value))


def _as_scalar(value, name: str) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    raise SemanticError(f"clause variable {name!r} must be scalar")


def _as_mode(value, line: int) -> AccessMode:
    if isinstance(value, AccessMode):
        return value
    raise SemanticError(f"expected CHI_INPUT/CHI_OUTPUT/CHI_INOUT, got "
                        f"{value!r}", line)


def _find_asm(stmt: ast.Stmt, line: int) -> ast.AsmBlock:
    """The single asm block directly inside a structured block."""
    body = stmt
    while isinstance(body, ast.Block) and len(body.body) == 1:
        body = body.body[0]
    if isinstance(body, ast.AsmBlock):
        if body.section < 0:
            raise SemanticError("asm block was not lowered", line)
        return body
    if isinstance(body, ast.For):
        return _find_asm(body.body, line)
    raise SemanticError("expected an __asm block in this region", line)
