"""Lexer for the CHI C subset.

Two lexical extensions over plain C drive the whole environment (paper
section 4.1): ``#pragma ...`` lines are captured verbatim as PRAGMA
tokens, and ``__asm { ... }`` blocks are captured verbatim as ASM tokens —
"__asm is the keyword that indicates the enclosed block of code is a
special assembly block written specifically for the given accelerator
ISA".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ...errors import LexError


class Tok(enum.Enum):
    # literals / identifiers
    INT = "int-literal"
    FLOAT = "float-literal"
    STRING = "string-literal"
    IDENT = "identifier"
    # keywords
    KW_INT = "int"
    KW_FLOAT = "float"
    KW_VOID = "void"
    KW_FOR = "for"
    KW_WHILE = "while"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    # structure
    PRAGMA = "#pragma"
    ASM = "__asm"
    DSL = "__dsl"
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    # operators
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    SHL = "<<"
    SHR = ">>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    NOT = "!"
    ANDAND = "&&"
    OROR = "||"
    PLUSPLUS = "++"
    MINUSMINUS = "--"
    PLUSEQ = "+="
    MINUSEQ = "-="
    EOF = "<eof>"


_KEYWORDS = {
    "int": Tok.KW_INT,
    "float": Tok.KW_FLOAT,
    "void": Tok.KW_VOID,
    "for": Tok.KW_FOR,
    "while": Tok.KW_WHILE,
    "if": Tok.KW_IF,
    "else": Tok.KW_ELSE,
    "return": Tok.KW_RETURN,
    "break": Tok.KW_BREAK,
    "continue": Tok.KW_CONTINUE,
}

_TWO_CHAR = {
    "<<": Tok.SHL, ">>": Tok.SHR, "<=": Tok.LE, ">=": Tok.GE,
    "==": Tok.EQ, "!=": Tok.NE, "&&": Tok.ANDAND, "||": Tok.OROR,
    "++": Tok.PLUSPLUS, "--": Tok.MINUSMINUS, "+=": Tok.PLUSEQ,
    "-=": Tok.MINUSEQ,
}

_ONE_CHAR = {
    "(": Tok.LPAREN, ")": Tok.RPAREN, "{": Tok.LBRACE, "}": Tok.RBRACE,
    "[": Tok.LBRACKET, "]": Tok.RBRACKET, ";": Tok.SEMI, ",": Tok.COMMA,
    "=": Tok.ASSIGN, "+": Tok.PLUS, "-": Tok.MINUS, "*": Tok.STAR,
    "/": Tok.SLASH, "%": Tok.PERCENT, "<": Tok.LT, ">": Tok.GT,
    "!": Tok.NOT,
}


@dataclass(frozen=True)
class Token:
    kind: Tok
    text: str
    line: int
    value: object = None  # numeric value for literals, raw text for pragma/asm

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> list:
    """Lex CHI C source into a token list ending with EOF."""
    tokens = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch == "#":
            # capture the pragma line, honouring backslash continuations
            start = i
            text_parts = []
            while i < n:
                eol = source.find("\n", i)
                if eol < 0:
                    eol = n
                segment = source[i:eol]
                if segment.rstrip().endswith("\\"):
                    text_parts.append(segment.rstrip()[:-1])
                    i = eol + 1
                    line += 1
                else:
                    text_parts.append(segment)
                    i = eol
                    break
            text = " ".join(text_parts).strip()
            if not text.startswith("#pragma"):
                raise LexError(f"unsupported preprocessor directive "
                               f"{text.split()[0]!r}", line)
            tokens.append(Token(Tok.PRAGMA, text, line,
                                value=text[len("#pragma"):].strip()))
            continue
        captured = _capture_block(source, i, n, line)
        if captured is not None:
            token, i, line = captured
            tokens.append(token)
            continue
        if ch == '"':
            end = i + 1
            while end < n and source[end] != '"':
                if source[end] == "\\":
                    end += 1
                end += 1
            if end >= n:
                raise LexError("unterminated string literal", line)
            raw = source[i + 1 : end]
            value = raw.replace("\\n", "\n").replace("\\t", "\t").replace(
                '\\"', '"')
            tokens.append(Token(Tok.STRING, raw, line, value=value))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            is_float = False
            while i < n and (source[i].isdigit() or source[i] == "."):
                if source[i] == ".":
                    is_float = True
                i += 1
            if i < n and source[i] in "eE":
                is_float = True
                i += 1
                if i < n and source[i] in "+-":
                    i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "fF":
                is_float = True
                i += 1
                text = source[start : i - 1]
            else:
                text = source[start:i]
            if is_float:
                tokens.append(Token(Tok.FLOAT, text, line, value=float(text)))
            else:
                tokens.append(Token(Tok.INT, text, line, value=int(text)))
            continue
        if _ident_char(ch) and not ch.isdigit():
            start = i
            while i < n and _ident_char(source[i]):
                i += 1
            word = source[start:i]
            kind = _KEYWORDS.get(word, Tok.IDENT)
            tokens.append(Token(kind, word, line))
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[two], two, line))
            i += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[ch], ch, line))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token(Tok.EOF, "", line))
    return tokens


def _ident_char(ch: str) -> bool:
    return bool(ch) and (ch.isalnum() or ch == "_")


_BLOCK_KEYWORDS = (("__asm", Tok.ASM), ("__dsl", Tok.DSL))


def _capture_block(source: str, i: int, n: int, line: int):
    """Capture ``__asm { ... }`` / ``__dsl { ... }`` bodies verbatim.

    Returns (token, next_index, next_line) or None when the cursor is not
    at one of the block keywords.
    """
    for keyword, kind in _BLOCK_KEYWORDS:
        k = len(keyword)
        if source.startswith(keyword, i) and not _ident_char(
                source[i + k] if i + k < n else ""):
            i += k
            while i < n and source[i] in " \t\r\n":
                if source[i] == "\n":
                    line += 1
                i += 1
            if i >= n or source[i] != "{":
                raise LexError(f"{keyword} must be followed by '{{'", line)
            end = source.find("}", i + 1)
            if end < 0:
                raise LexError(f"unterminated {keyword} block", line)
            body = source[i + 1 : end]
            block_line = line
            line += source.count("\n", i, end)
            return (Token(kind, keyword, block_line, value=body),
                    end + 1, line)
    return None
