"""The miniature CHI C front end (paper Figure 4).

Accepts the pragma-extended C subset of the paper's listings — Figure 6
(vector add with descriptors and ``master_nowait``) and Figure 9
(cooperative loop splitting) compile and run verbatim modulo whitespace.
"""

from .ast import PragmaClauses, TranslationUnit
from .driver import CompiledProgram, ProgramResult, compile_source, run_source
from .interp import ArrayVar, Interpreter
from .parser import parse, parse_pragma
from .tokens import Tok, Token, tokenize

__all__ = [
    "compile_source",
    "run_source",
    "CompiledProgram",
    "ProgramResult",
    "parse",
    "parse_pragma",
    "tokenize",
    "Token",
    "Tok",
    "TranslationUnit",
    "PragmaClauses",
    "Interpreter",
    "ArrayVar",
]
