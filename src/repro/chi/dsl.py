"""A domain-specific language for per-pixel media filters.

Paper section 4.1: "With a similar inline compilation mechanism, the CHI
compiler also supports integration of a domain-specific high-level
language for programming the GMA X3000 hardware."  This module is that
mechanism's reproduction: a small per-pixel stencil language whose
compiler emits GMA X3000 assembly, embeddable in CHI C sources as
``__dsl { ... }`` blocks or compiled directly from Python.

The language: one assignment per output surface, expressions over
edge-clamped relative taps of input surfaces.

.. code-block:: none

    OUT = clamp(0.25 * SRC[-1,0] + 0.5 * SRC[0,0] + 0.25 * SRC[1,0]
                + 0.5, 0, 255)

* ``NAME[dx, dy]`` — the input pixel at the relative tap (dx, dy),
  edge-clamped like every block load on this device; bare ``NAME`` is
  ``NAME[0, 0]``.
* operators ``+ - * /``, unary ``-``, parentheses, numeric literals;
* functions ``min(a, b)``, ``max(a, b)``, ``abs(a)``,
  ``clamp(e, lo, hi)``;
* arithmetic runs on the ``.f`` datapath and the store truncates, so add
  ``0.5`` (or use ``clamp``) to round.  Surfaces default to 8-bit (``ub``);
  pass ``elem="dw"`` to :func:`compile_dsl` for 32-bit surfaces (what the
  C front end does for ``int`` arrays).

Compilation tiles the output into 16x16 blocks — one shred per tile, one
16-wide register row per iteration — and the generated program binds the
same ``bx``/``by`` privates as the hand-written kernels, so the CHI
runtime dispatches it identically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import ChiError
from ..isa.assembler import assemble
from ..isa.program import Program
from ..isa.types import DataType

TILE_W = 16
TILE_H = 16


class DslError(ChiError):
    """Syntax or semantic error in a __dsl block."""

    def __init__(self, message: str, pos: Optional[int] = None):
        if pos is not None:
            message = f"at offset {pos}: {message}"
        super().__init__(message)


# ---------------------------------------------------------------------------
# expression AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    value: float


@dataclass(frozen=True)
class Tap:
    surface: str
    dx: int
    dy: int


@dataclass(frozen=True)
class BinOp:
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class FuncCall:
    name: str
    args: tuple


@dataclass(frozen=True)
class Assignment:
    target: str
    expr: object


_FUNCS = {"min": 2, "max": 2, "abs": 1, "clamp": 3}


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>[+\-*/()\[\],=]))")


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens = []
    pos = 0
    while pos < len(text):
        if text[pos] in " \t\r\n":
            pos += 1
            continue
        if text[pos] == "#":  # comment to end of line
            eol = text.find("\n", pos)
            pos = len(text) if eol < 0 else eol
            continue
        match = _TOKEN_RE.match(text, pos)
        if not match or match.start() != pos:
            raise DslError(f"unexpected character {text[pos]!r}", pos)
        for kind in ("num", "name", "op"):
            if match.group(kind) is not None:
                tokens.append((kind, match.group(kind), pos))
                break
        pos = match.end()
    tokens.append(("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos]

    def next(self):
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, value: str):
        kind, text, pos = self.next()
        if text != value:
            raise DslError(f"expected {value!r}, found {text or 'EOF'!r}", pos)

    def program(self) -> List[Assignment]:
        stmts = []
        while self.peek()[0] != "eof":
            stmts.append(self.assignment())
        if not stmts:
            raise DslError("empty __dsl block")
        return stmts

    def assignment(self) -> Assignment:
        kind, name, pos = self.next()
        if kind != "name":
            raise DslError("statement must start with an output surface "
                           "name", pos)
        self.expect("=")
        return Assignment(target=name, expr=self.expr())

    def expr(self):
        node = self.term()
        while self.peek()[1] in ("+", "-"):
            op = self.next()[1]
            node = BinOp(op, node, self.term())
        return node

    def term(self):
        node = self.factor()
        while self.peek()[1] in ("*", "/"):
            op = self.next()[1]
            node = BinOp(op, node, self.factor())
        return node

    def factor(self):
        kind, text, pos = self.next()
        if text == "-":
            return BinOp("-", Num(0.0), self.factor())
        if text == "(":
            node = self.expr()
            self.expect(")")
            return node
        if kind == "num":
            return Num(float(text))
        if kind == "name":
            if text in _FUNCS:
                self.expect("(")
                args = [self.expr()]
                while self.peek()[1] == ",":
                    self.next()
                    args.append(self.expr())
                self.expect(")")
                if len(args) != _FUNCS[text]:
                    raise DslError(
                        f"{text}() takes {_FUNCS[text]} argument(s), got "
                        f"{len(args)}", pos)
                return FuncCall(text, tuple(args))
            if self.peek()[1] == "[":
                self.next()
                dx = self._offset()
                self.expect(",")
                dy = self._offset()
                self.expect("]")
                return Tap(text, dx, dy)
            return Tap(text, 0, 0)
        raise DslError(f"unexpected token {text!r}", pos)

    def _offset(self) -> int:
        sign = 1
        if self.peek()[1] == "-":
            self.next()
            sign = -1
        kind, text, pos = self.next()
        if kind != "num" or any(ch in text for ch in ".eE"):
            raise DslError("tap offsets must be integer literals", pos)
        return sign * int(text)


def parse_dsl(text: str) -> List[Assignment]:
    """Parse a __dsl block into assignments (one per output surface)."""
    return _Parser(text).program()


# ---------------------------------------------------------------------------
# analysis
# ---------------------------------------------------------------------------


def _collect_taps(node, out: Set[Tap]) -> None:
    if isinstance(node, Tap):
        out.add(node)
    elif isinstance(node, BinOp):
        _collect_taps(node.left, out)
        _collect_taps(node.right, out)
    elif isinstance(node, FuncCall):
        for arg in node.args:
            _collect_taps(arg, out)


@dataclass
class DslProgram:
    """A compiled __dsl block: the shred program plus its tiling contract."""

    program: Program
    source: str
    statements: List[Assignment]
    inputs: Set[str]
    outputs: List[str]
    elem: str = "ub"
    tile: Tuple[int, int] = (TILE_W, TILE_H)

    def bindings_for(self, width: int, height: int) -> List[Dict[str, float]]:
        """Per-shred privates covering a width x height output."""
        tw, th = self.tile
        if width % tw or height % th:
            raise DslError(
                f"output geometry {width}x{height} must be a multiple of "
                f"the {tw}x{th} DSL tile")
        return [
            {"bx": float(i * tw), "by": float(j * th)}
            for j in range(height // th)
            for i in range(width // tw)
        ]

    def reference(self, inputs: Dict[str, np.ndarray],
                  width: int, height: int) -> Dict[str, np.ndarray]:
        """Evaluate the DSL in numpy, mirroring the device's float32
        per-operation writeback and edge clamping — the bit-exact oracle.
        """
        env = {name: np.asarray(img, dtype=np.float64)
               for name, img in inputs.items()}
        store_type = DataType.from_suffix(self.elem)
        out: Dict[str, np.ndarray] = {}
        for stmt in self.statements:
            value = _f32(_eval(stmt.expr, env, width, height))
            out[stmt.target] = store_type.wrap(value)
        return out


def _f32(values):
    return np.asarray(np.asarray(values, dtype=np.float32), dtype=np.float64)


def _eval(node, env, width, height):
    if isinstance(node, Num):
        return np.full((height, width), _f32(node.value))
    if isinstance(node, Tap):
        img = env[node.surface]
        ys = np.clip(np.arange(height) + node.dy, 0, img.shape[0] - 1)
        xs = np.clip(np.arange(width) + node.dx, 0, img.shape[1] - 1)
        return img[np.ix_(ys, xs)]
    if isinstance(node, BinOp):
        a = _f32(_eval(node.left, env, width, height))
        b = _f32(_eval(node.right, env, width, height))
        if node.op == "+":
            return _f32(a + b)
        if node.op == "-":
            return _f32(a - b)
        if node.op == "*":
            return _f32(a * b)
        return _f32(a / b)
    if isinstance(node, FuncCall):
        args = [_f32(_eval(a, env, width, height)) for a in node.args]
        if node.name == "min":
            return _f32(np.minimum(*args))
        if node.name == "max":
            return _f32(np.maximum(*args))
        if node.name == "abs":
            return _f32(np.abs(args[0]))
        # clamp(e, lo, hi) compiles to max-then-min
        return _f32(np.minimum(_f32(np.maximum(args[0], args[1])), args[2]))
    raise DslError(f"unknown node {node!r}")


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------


class _RegPool:
    """Linear temp-register allocator over vr40..vr119."""

    def __init__(self, lo: int = 40, hi: int = 119):
        self.free = list(range(hi, lo - 1, -1))

    def alloc(self) -> int:
        if not self.free:
            raise DslError("expression too deep: out of temp registers")
        return self.free.pop()

    def release(self, reg: int) -> None:
        self.free.append(reg)


def compile_dsl(text: str, name: str = "dsl-block",
                elem: str = "ub", optimize: bool = False) -> DslProgram:
    """Compile a __dsl block into a GMA X3000 shred program.

    ``elem`` is the element-type suffix of every bound surface (all
    surfaces in one block share it): ``"ub"`` for pixel surfaces,
    ``"dw"`` for 32-bit integer arrays.  ``optimize`` runs the instruction
    scheduler (:func:`repro.isa.scheduler.schedule_program`) over the
    generated code — worthwhile on scoreboarded configurations or at low
    occupancy.
    """
    DataType.from_suffix(elem)  # validate early
    statements = parse_dsl(text)

    taps: Set[Tap] = set()
    for stmt in statements:
        _collect_taps(stmt.expr, taps)
    inputs = {tap.surface for tap in taps}
    outputs = []
    for stmt in statements:
        if stmt.target in outputs:
            raise DslError(f"surface {stmt.target!r} assigned twice")
        outputs.append(stmt.target)
    hazard = inputs & set(outputs)
    if hazard:
        raise DslError(
            f"surface(s) {sorted(hazard)} both read and written: cross-tile "
            f"read-after-write is not expressible in a single pass")

    lines: List[str] = []
    # per-shred scalar setup: unique x offsets
    dxs = sorted({tap.dx for tap in taps})
    dx_regs: Dict[int, str] = {}
    next_scalar = 3
    for dx in dxs:
        if dx == 0:
            dx_regs[dx] = "bx"
            continue
        reg = f"vr{next_scalar}"
        next_scalar += 1
        op = "add" if dx > 0 else "sub"
        lines.append(f"    {op}.1.dw {reg} = bx, {abs(dx)}")
        dx_regs[dx] = reg

    lines += [
        "    mov.1.dw vr1 = 0",
        "rowloop:",
        "    add.1.dw vr2 = by, vr1",
    ]
    # per-row scalar setup: unique y offsets
    dys = sorted({tap.dy for tap in taps})
    dy_regs: Dict[int, str] = {}
    for dy in dys:
        if dy == 0:
            dy_regs[dy] = "vr2"
            continue
        reg = f"vr{next_scalar}"
        next_scalar += 1
        op = "add" if dy > 0 else "sub"
        lines.append(f"    {op}.1.dw {reg} = vr2, {abs(dy)}")
        dy_regs[dy] = reg
    if next_scalar > 16:
        raise DslError("too many distinct tap offsets")

    # tap loads, one register each (vr16..vr39)
    tap_regs: Dict[Tap, str] = {}
    next_tap = 16
    for tap in sorted(taps, key=lambda t: (t.surface, t.dy, t.dx)):
        if next_tap >= 40:
            raise DslError("too many distinct taps (max 24)")
        reg = f"vr{next_tap}"
        next_tap += 1
        lines.append(
            f"    ldblk.{TILE_W}x1.{elem} {reg} = "
            f"({tap.surface}, {dx_regs[tap.dx]}, {dy_regs[tap.dy]})")
        tap_regs[tap] = reg

    pool = _RegPool()
    for stmt in statements:
        reg = _emit(stmt.expr, lines, tap_regs, pool)
        lines.append(
            f"    stblk.{TILE_W}x1.{elem} ({stmt.target}, bx, vr2) = vr{reg}")
        pool.release(reg)

    lines += [
        "    add.1.dw vr1 = vr1, 1",
        f"    cmp.lt.1.dw p1 = vr1, {TILE_H}",
        "    br p1, rowloop",
        "    end",
    ]
    source = "\n".join(lines)
    program = assemble(source, name=name)
    if optimize:
        from ..isa.scheduler import schedule_program

        program = schedule_program(program)
    return DslProgram(program=program, source=text, statements=statements,
                      inputs=inputs, outputs=outputs, elem=elem)


_BINOPS = {"+": "add", "-": "sub", "*": "mul", "/": "div"}


def _emit(node, lines: List[str], tap_regs: Dict[Tap, str],
          pool: _RegPool) -> int:
    w = TILE_W
    if isinstance(node, Num):
        reg = pool.alloc()
        lines.append(f"    mov.{w}.f vr{reg} = {node.value}")
        return reg
    if isinstance(node, Tap):
        # copy out of the tap cache so expressions can't clobber it
        reg = pool.alloc()
        lines.append(f"    mov.{w}.f vr{reg} = {tap_regs[node]}")
        return reg
    if isinstance(node, BinOp):
        a = _emit(node.left, lines, tap_regs, pool)
        b = _emit(node.right, lines, tap_regs, pool)
        lines.append(f"    {_BINOPS[node.op]}.{w}.f vr{a} = vr{a}, vr{b}")
        pool.release(b)
        return a
    if isinstance(node, FuncCall):
        if node.name == "abs":
            a = _emit(node.args[0], lines, tap_regs, pool)
            lines.append(f"    abs.{w}.f vr{a} = vr{a}")
            return a
        if node.name in ("min", "max"):
            a = _emit(node.args[0], lines, tap_regs, pool)
            b = _emit(node.args[1], lines, tap_regs, pool)
            lines.append(f"    {node.name}.{w}.f vr{a} = vr{a}, vr{b}")
            pool.release(b)
            return a
        # clamp(e, lo, hi)
        a = _emit(node.args[0], lines, tap_regs, pool)
        lo = _emit(node.args[1], lines, tap_regs, pool)
        hi = _emit(node.args[2], lines, tap_regs, pool)
        lines.append(f"    max.{w}.f vr{a} = vr{a}, vr{lo}")
        lines.append(f"    min.{w}.f vr{a} = vr{a}, vr{hi}")
        pool.release(lo)
        pool.release(hi)
        return a
    raise DslError(f"unknown node {node!r}")
