"""The CHI runtime (paper sections 4.2-4.4).

"The CHI runtime is a software library that translates the
programmer-specified OpenMP directives into primitives to create and
manage shreds that can carry out the parallel execution on the
heterogeneous multi-core target."

This module is what the pragma lowering targets: fork-join parallel
regions (:meth:`ChiRuntime.parallel`), the taskq/task work-queuing model
(:meth:`ChiRuntime.taskq`), the five Table 1 APIs, and a simulated-time
*timeline* that gives ``master_nowait`` its meaning — an asynchronous
region occupies device time that overlaps whatever the IA32 shred does
before calling :meth:`ParallelRegion.wait`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..cpu.ia32 import CpuWork
from ..errors import ChiError, DescriptorError, PragmaError
from ..exo.shred import ShredDescriptor
from ..fabric.device import DeviceRunReport, FabricRunResult
from ..fabric.dispatcher import (
    WorkItem,
    WorkStealingDispatcher,
    dependency_groups,
    drain_devices,
)
from ..gma.firmware import GmaRunResult
from ..isa.assembler import assemble
from ..isa.program import Program
from ..memory.surface import Surface
from .descriptors import AccessMode, DescriptorAttrib, SurfaceDescriptor
from .fatbinary import FatBinary
from .platform import ExoPlatform


@dataclass
class Timeline:
    """Simulated wall-clock of the main IA32 shred."""

    now: float = 0.0
    events: List[tuple] = field(default_factory=list)

    def host_busy(self, seconds: float, label: str = "host") -> None:
        self.events.append((self.now, seconds, label))
        self.now += seconds

    def async_span(self, seconds: float, label: str) -> float:
        """Register overlapped work; returns its completion time."""
        self.events.append((self.now, seconds, label))
        return self.now + seconds

    def wait_until(self, t: float) -> None:
        self.now = max(self.now, t)


@dataclass
class ParallelRegion:
    """Handle for one heterogeneous parallel construct.

    ``result`` is a :class:`~repro.gma.firmware.GmaRunResult` when the
    region ran on a single fabric device (the common case) or a
    :class:`~repro.fabric.device.FabricRunResult` when the dispatcher
    spread it across several; both expose the same aggregate counters.
    """

    runtime: "ChiRuntime"
    result: Union[GmaRunResult, FabricRunResult]
    gma_seconds: float
    completion_time: float
    master_nowait: bool
    waited: bool = False

    def wait(self) -> GmaRunResult:
        """Block the main IA32 shred until all heterogeneous shreds are
        done (the implied barrier, or the deferred one under
        ``master_nowait``)."""
        if not self.waited:
            self.runtime.timeline.wait_until(self.completion_time)
            self.waited = True
        return self.result


class TaskHandle:
    """Identifies one enqueued task for dependence declarations."""

    def __init__(self, shred: ShredDescriptor):
        self._shred = shred

    @property
    def shred_id(self) -> int:
        return self._shred.shred_id


class TaskQueue:
    """The ``taskq`` construct: producer-consumer shred enqueueing.

    The body of the ``with`` statement plays the root shred, which
    "sequentially executes the while or for loop within the taskq
    construct"; each :meth:`task` call enqueues one child shred, and the
    queue launches at scope exit.
    """

    def __init__(self, runtime: "ChiRuntime", target: str,
                 master_nowait: bool = False):
        self.runtime = runtime
        self.target = target
        self.master_nowait = master_nowait
        self._shreds: List[ShredDescriptor] = []
        self.region: Optional[ParallelRegion] = None

    def task(self, section: Union[int, str, Program], *,
             captureprivate: Optional[Dict[str, float]] = None,
             shared: Optional[Dict[str, object]] = None,
             depends: Sequence[TaskHandle] = ()) -> TaskHandle:
        """Enqueue one task; ``captureprivate`` values are copy-constructed
        at enqueue time (hence the eager ``dict(...)``)."""
        program = self.runtime._resolve_section(section, self.target)
        surfaces = self.runtime._resolve_shared(shared or {})
        shred = ShredDescriptor(
            program=program,
            bindings=dict(captureprivate or {}),
            surfaces=surfaces,
            depends_on=tuple(h.shred_id for h in depends),
        )
        self._shreds.append(shred)
        return TaskHandle(shred)

    def __enter__(self) -> "TaskQueue":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.region = self.runtime._launch(
                self._shreds, master_nowait=self.master_nowait,
                target=self.target)
        return False


class ChiRuntime:
    """The user-level runtime layer over one :class:`ExoPlatform`."""

    def __init__(self, platform: Optional[ExoPlatform] = None,
                 fatbinary: Optional[FatBinary] = None,
                 parallel_fabric: bool = False):
        self.platform = platform or ExoPlatform()
        self.fatbinary = fatbinary or FatBinary(name="chi-app")
        #: Drain multi-device regions on host worker threads (one per
        #: device).  Simulated time and results are unchanged; only the
        #: host wall-clock of the drain shrinks.  ``True`` lets the
        #: dispatcher fall back to serial for small drains (see
        #: :data:`~repro.fabric.dispatcher.PARALLEL_DRAIN_MIN_SHREDS`);
        #: ``"force"`` threads unconditionally.
        self.parallel_fabric = parallel_fabric
        self.timeline = Timeline()
        #: schedule-transform memo: id(program) + uniform bindings ->
        #: (source program kept alive, scheduled program, spec, trials).
        #: Returning the *same* transformed Program object across
        #: launches keeps the predecode cache warm.
        self._schedule_memo: Dict[tuple, tuple] = {}
        self._descriptors: List[SurfaceDescriptor] = []
        self._features: Dict[str, Dict[str, object]] = {}
        self._pershred_features: Dict[int, Dict[str, object]] = {}
        self.stats = RuntimeStats()

    # ------------------------------------------------------------------
    # Table 1: the CHI APIs
    # ------------------------------------------------------------------

    def chi_alloc_desc(self, target_isa: str, surface: Surface,
                       mode: AccessMode, width: Optional[int] = None,
                       height: Optional[int] = None) -> SurfaceDescriptor:
        """API #1: allocate a descriptor for a shared variable."""
        self._check_isa(target_isa)
        if width is not None and width != surface.width:
            raise DescriptorError(
                f"descriptor width {width} != surface width {surface.width}")
        if height is not None and height != surface.height:
            raise DescriptorError(
                f"descriptor height {height} != surface height "
                f"{surface.height}")
        desc = SurfaceDescriptor(surface=surface, mode=mode,
                                 target_isa=target_isa)
        self._descriptors.append(desc)
        return desc

    def chi_free_desc(self, target_isa: str, desc: SurfaceDescriptor) -> None:
        """API #2: deallocate an existing descriptor."""
        self._check_isa(target_isa)
        desc.check_alive()
        desc.freed = True

    def chi_modify_desc(self, target_isa: str, desc: SurfaceDescriptor,
                        attrib: DescriptorAttrib, value) -> None:
        """API #3: modify a descriptor's default attributes."""
        self._check_isa(target_isa)
        desc.modify(attrib, value)

    #: Feature names APIs #4/#5 understand natively ("An application can
    #: directly utilize new hardware features simply by making the
    #: appropriate call", section 4.4); unknown names are stored verbatim
    #: for application-defined use.  A tuple lists the accepted values;
    #: the ``"numeric"`` sentinel accepts any real number.
    KNOWN_FEATURES = {
        "sampler_filter": ("bilinear", "nearest"),
        "priority": "numeric",
    }

    def _validate_feature(self, feature: str, value) -> None:
        rule = self.KNOWN_FEATURES.get(feature)
        if rule is None:
            return
        if rule == "numeric":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ChiError(
                    f"feature {feature!r} needs a numeric value, "
                    f"got {value!r}")
        elif value not in rule:
            raise ChiError(
                f"feature {feature!r} accepts {rule}, got {value!r}")

    def chi_set_feature(self, target_isa: str, feature: str, value) -> None:
        """API #4: a global change applying to all exo-sequencer state."""
        self._check_isa(target_isa)
        self._validate_feature(feature, value)
        if feature == "sampler_filter":
            for fd in self.platform.fabric.devices_for(target_isa,
                                                       executing=True):
                gma = getattr(fd, "gma", None)
                if gma is None and hasattr(fd, "driver"):
                    gma = fd.driver.device
                if gma is not None:
                    gma.sampler.filter_mode = value
        self._features.setdefault(target_isa, {})[feature] = value

    def chi_set_feature_pershred(self, target_isa: str, shred_id: int,
                                 feature: str, value) -> None:
        """API #5: change an exo-sequencer's state for one shred.

        Values of known features are validated exactly as
        :meth:`chi_set_feature` validates them, so a mistyped per-shred
        priority fails here rather than silently ordering nothing.
        """
        self._check_isa(target_isa)
        self._validate_feature(feature, value)
        self._pershred_features.setdefault(shred_id, {})[feature] = value

    def feature(self, target_isa: str, feature: str, default=None):
        return self._features.get(target_isa, {}).get(feature, default)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------

    def compile_asm(self, asm_text: str, target_isa: str = "X3000",
                    name: str = "asm-block") -> int:
        """Assemble an inline-assembly block into a fat-binary section."""
        self._check_isa(target_isa)
        program = assemble(asm_text, name=name)
        return self.fatbinary.add_section(target_isa, program, asm_text)

    # ------------------------------------------------------------------
    # the OpenMP parallel extension (fork-join)
    # ------------------------------------------------------------------

    def parallel(self, section: Union[int, str, Program], *,
                 target: str = "X3000",
                 shared: Optional[Dict[str, object]] = None,
                 firstprivate: Optional[Dict[str, float]] = None,
                 private: Optional[Iterable[Dict[str, float]]] = None,
                 num_threads: Optional[int] = None,
                 master_nowait: bool = False) -> ParallelRegion:
        """``#pragma omp parallel target(...)``.

        ``private`` supplies one binding dict per shred (the per-iteration
        copy-constructed values); alternatively ``num_threads`` spawns that
        many shreds bound with ``tid``.  ``shared`` maps assembly symbol
        names to surfaces or descriptors.
        """
        program = self._resolve_section(section, target)
        surfaces = self._resolve_shared(shared or {})
        consts = dict(firstprivate or {})

        if private is None:
            if num_threads is None:
                raise PragmaError(
                    "parallel needs either private bindings or num_threads")
            bindings_list = [{"tid": float(i)} for i in range(num_threads)]
        else:
            bindings_list = [dict(b) for b in private]
            if num_threads is not None and num_threads != len(bindings_list):
                raise PragmaError(
                    f"num_threads({num_threads}) != number of private "
                    f"bindings ({len(bindings_list)})")
        program = self._apply_schedule(program, consts, bindings_list)
        self._check_symbols(program, surfaces, consts, bindings_list)

        shreds = [
            ShredDescriptor(program=program, bindings={**consts, **b},
                            surfaces=surfaces)
            for b in bindings_list
        ]
        return self._launch(shreds, master_nowait=master_nowait,
                            target=target)

    def taskq(self, target: str = "X3000",
              master_nowait: bool = False) -> TaskQueue:
        """``#pragma intel omp taskq target(...)``."""
        self._check_isa(target)
        return TaskQueue(self, target, master_nowait=master_nowait)

    # ------------------------------------------------------------------
    # host-side work (the main IA32 shred between constructs)
    # ------------------------------------------------------------------

    def run_host(self, work: CpuWork, fraction: float = 1.0,
                 label: str = "host") -> float:
        """Execute IA32-side work on the timeline; returns its seconds."""
        execution = self.platform.cpu.execute(work, fraction)
        self.timeline.host_busy(execution.seconds, label)
        self.stats.cpu_seconds += execution.seconds
        return execution.seconds

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _apply_schedule(self, program: Program,
                        consts: Dict[str, float],
                        bindings_list: List[Dict[str, float]]) -> Program:
        """Run the platform's schedule transform over a region's program.

        Loop bounds are resolved from the constants plus any binding that
        is *uniform* across the region's shreds.  Results are memoized by
        source-program identity so repeat launches reuse one transformed
        ``Program`` object (warm predecode cache).
        """
        spec = getattr(self.platform, "schedule", None)
        if spec is None:
            return program
        uniform = dict(consts)
        if bindings_list:
            for name, value in bindings_list[0].items():
                if all(b.get(name) == value for b in bindings_list[1:]):
                    uniform.setdefault(name, value)
        try:
            key = (id(program), tuple(sorted(uniform.items())))
        except TypeError:
            key = None
        if key is not None and key in self._schedule_memo:
            source, scheduled, name, trials = self._schedule_memo[key]
            if source is program:
                self.stats.note_schedule(name, 0,
                                         applied=scheduled is not program)
                return scheduled
        from ..isa.tuning import resolve_schedule
        scheduled, name, trials = resolve_schedule(program, spec, uniform)
        if key is not None:
            self._schedule_memo[key] = (program, scheduled, name, trials)
        self.stats.note_schedule(name, trials,
                                 applied=scheduled is not program)
        return scheduled

    def _launch(self, shreds: List[ShredDescriptor],
                master_nowait: bool, target: str = "X3000") -> ParallelRegion:
        platform = self.platform
        devices = platform.fabric.require(target, executing=True)
        # per-shred priorities (API #5) order the work queue: "the CHI
        # runtime allows programmers to carefully orchestrate shred
        # scheduling" (section 5.1).  Stable sort keeps the locality of
        # equal-priority neighbours.
        if self._pershred_features:
            shreds = sorted(
                shreds,
                key=lambda s: -float(self._pershred_features
                                     .get(s.shred_id, {}).get("priority", 0)))
        copy_seconds = 0.0
        if not platform.shared_virtual_memory:
            copy_seconds = self._data_copy_seconds(shreds)
            self.timeline.host_busy(copy_seconds, "data-copy")
        elif not platform.coherent:
            # release the working set to the device before SIGNAL
            flushed = platform.coherence.flush("cpu")
            flush_seconds = platform.bandwidth.flush_seconds(flushed)
            self.timeline.host_busy(flush_seconds, "cache-flush")
            self.stats.flush_seconds += flush_seconds

        atr_before = self._atr_counters(devices)
        if len(devices) == 1:
            reports = drain_devices([(devices[0], shreds)],
                                    parallel=self._drain_parallel())
            result = reports[0].merged_result()
        else:
            reports = self._dispatch_fabric(shreds, devices)
            result = FabricRunResult(reports=reports)
        for name, after in self._atr_counters(devices).items():
            before = atr_before.get(name, {})
            self.stats.note_atr(name, {k: v - before.get(k, 0)
                                       for k, v in after.items()})
        gma_seconds = max((r.seconds for r in reports), default=0.0)

        if not platform.shared_virtual_memory:
            # results come back by explicit copy as well
            pass  # outbound copy already included in _data_copy_seconds
        elif not platform.coherent:
            # the device commits its lines before releasing the semaphore
            platform.coherence.flush("gma")

        # the devices drain concurrently: the region spans the slowest
        completion = self.timeline.now
        for report in reports:
            label = ("gma-region" if len(reports) == 1
                     else f"gma-region:{report.device}")
            completion = max(
                completion,
                self.timeline.async_span(report.seconds, label))
        region = ParallelRegion(
            runtime=self, result=result, gma_seconds=gma_seconds,
            completion_time=completion, master_nowait=master_nowait)
        self.stats.regions += 1
        self.stats.shreds += len(shreds)
        self.stats.gma_seconds += gma_seconds
        self.stats.copy_seconds += copy_seconds
        self.stats.note_engine(result)
        for report in reports:
            self.stats.note_device(report.device, report.seconds,
                                   report.shreds)
        if reports:
            self.stats.note_drain(getattr(reports[0], "drain_mode", ""))
        if not master_nowait:
            region.wait()
        return region

    @staticmethod
    def _atr_counters(devices) -> Dict[str, Dict[str, int]]:
        """Cumulative per-device translation counters (GMA backends)."""
        out: Dict[str, Dict[str, int]] = {}
        for device in devices:
            gma = getattr(device, "gma", None)
            if gma is None:
                continue
            view = gma.view
            out[device.name] = {
                "tlb_hits": view.tlb.hits,
                "tlb_misses": view.tlb.misses,
                "gtt_walks": view.gtt_walks,
                "shootdowns": view.shootdowns_received,
            }
        return out

    def _dispatch_fabric(self, shreds: List[ShredDescriptor],
                         devices) -> List[DeviceRunReport]:
        """Spread one batch across several devices of the target ISA.

        Dependency-connected shreds travel together (each device's work
        queue resolves ``depends_on`` locally); whole groups are balanced
        by the work-stealing dispatcher using each backend's own cost
        estimate, so a driver-managed device that must copy its inputs
        bids higher than a shared-virtual-memory device for the same work.
        """
        groups = dependency_groups(shreds)
        items = [
            WorkItem(
                ident=index,
                costs={d.name: d.estimate_seconds(group) for d in devices},
                priority=max(
                    (float(self._pershred_features
                           .get(s.shred_id, {}).get("priority", 0))
                     for s in group), default=0.0),
                payload=group,
            )
            for index, group in enumerate(groups)
        ]
        dispatcher = WorkStealingDispatcher([d.name for d in devices])
        outcome = dispatcher.dispatch(items)
        assignments = [
            (device, [shred for item in outcome.items_on(device.name)
                      for shred in item.payload])
            for device in devices
        ]
        return drain_devices(assignments, parallel=self._drain_parallel())

    def _drain_parallel(self):
        """Drain mode for this platform: process workers trump threads."""
        if getattr(self.platform, "fabric_pool", None) is not None:
            return "process"
        return self.parallel_fabric

    def _data_copy_seconds(self, shreds: List[ShredDescriptor]) -> float:
        """Explicit copies for the no-shared-virtual-memory configuration:
        inputs to the device's address space, outputs back."""
        surfaces = {}
        for shred in shreds:
            surfaces.update(shred.surfaces)
        modes = {d.surface.name: d.mode for d in self._descriptors
                 if not d.freed}
        nbytes = 0
        for name, surf in surfaces.items():
            mode = modes.get(name, AccessMode.CHI_INOUT)
            if mode in (AccessMode.CHI_INPUT, AccessMode.CHI_INOUT):
                nbytes += surf.nbytes
            if mode in (AccessMode.CHI_OUTPUT, AccessMode.CHI_INOUT):
                nbytes += surf.nbytes
        self.stats.bytes_copied += nbytes
        return self.platform.bandwidth.copy_seconds(nbytes)

    def _resolve_section(self, section: Union[int, str, Program],
                         target: str) -> Program:
        self._check_isa(target)
        if isinstance(section, Program):
            return section
        if isinstance(section, int):
            sec = self.fatbinary.section(section)
            if sec.isa != target:
                raise PragmaError(
                    f"section {section} is {sec.isa} code but the pragma "
                    f"targets {target}")
            return self.fatbinary.program(section)
        if isinstance(section, str):
            return assemble(section, name="inline-asm")
        raise PragmaError(f"cannot resolve code section from {section!r}")

    def _resolve_shared(self, shared: Dict[str, object]) -> Dict[str, Surface]:
        out = {}
        for name, obj in shared.items():
            if isinstance(obj, SurfaceDescriptor):
                obj.check_alive()
                out[name] = obj.surface
            elif isinstance(obj, Surface):
                out[name] = obj
            else:
                raise ChiError(
                    f"shared variable {name!r} must be a Surface or "
                    f"SurfaceDescriptor, got {type(obj).__name__}")
        return out

    def _check_symbols(self, program: Program, surfaces: Dict[str, Surface],
                       consts: Dict[str, float],
                       bindings_list: List[Dict[str, float]]) -> None:
        missing_surfaces = program.surface_symbols() - set(surfaces)
        if missing_surfaces:
            raise PragmaError(
                f"assembly references surfaces {sorted(missing_surfaces)} "
                f"not provided by the shared/descriptor clauses")
        scalars = program.scalar_symbols() - {"__spawn_arg"}
        if not bindings_list:
            missing = scalars - set(consts)
            if missing:
                raise PragmaError(
                    f"assembly references symbols {sorted(missing)} not "
                    f"bound by private/firstprivate clauses")
        # every shred launches with its own private copy; validate each
        # binding dict, not just the first
        for index, bindings in enumerate(bindings_list):
            missing = scalars - set(consts) - set(bindings)
            if missing:
                raise PragmaError(
                    f"assembly references symbols {sorted(missing)} not "
                    f"bound by private/firstprivate clauses (shred {index})")

    def _check_isa(self, target: str) -> None:
        """A ``target(ISA)`` clause must resolve to at least one
        shred-executing device in the platform's fabric."""
        self.platform.fabric.require(target, executing=True)


@dataclass
class RuntimeStats:
    """Aggregate accounting across the runtime's lifetime.

    ``gma_seconds`` accumulates *region spans* (devices drain
    concurrently, so each region contributes its slowest device);
    ``device_seconds`` / ``device_shreds`` break the same work down per
    fabric device, where the busy times of a multi-device region sum.
    """

    regions: int = 0
    shreds: int = 0
    gma_seconds: float = 0.0
    cpu_seconds: float = 0.0
    copy_seconds: float = 0.0
    flush_seconds: float = 0.0
    bytes_copied: int = 0
    device_seconds: Dict[str, float] = field(default_factory=dict)
    device_shreds: Dict[str, int] = field(default_factory=dict)
    #: Per-device translation accounting: TLB hits/misses, GTT hardware
    #: walks, and shootdown broadcasts the device's view absorbed.
    device_atr: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Execution-engine accounting (the gang engine and its predecode
    #: cache): instructions retired while ganged, shreds that fell back
    #: to the scalar interpreter, and decode-cache hits/misses.
    gang_lanes_retired: int = 0
    scalar_fallbacks: int = 0
    predecode_hits: int = 0
    predecode_misses: int = 0
    #: Lockstep memory pipeline: lanes retired through the batched
    #: gather/scatter path, pages resolved by the vectorized translate,
    #: and pages served straight from the TLB's vector snapshot.
    batched_mem_lanes: int = 0
    batched_translations: int = 0
    tlb_vector_hits: int = 0
    #: Superblock trace fusion (``engine="fused"``): whole blocks
    #: retired by the fused executor, uniform branches chained
    #: block-to-block, and blocks compiled (first-run cost).
    fused_blocks_retired: int = 0
    trace_chains: int = 0
    fusion_compiles: int = 0
    #: Megaop tier (``engine="megaop"``): whole hot-trace traversals
    #: retired in one call, hot cycles promoted (compiled), and guard
    #: failures that deopted back to the fused loop.
    megaops_retired: int = 0
    megaop_compiles: int = 0
    megaop_deopts: int = 0
    #: Divergence repacking: reconvergence merges performed (sub-gangs
    #: re-admitted into one gang at a join) and the lane count they
    #: brought back; ``instructions_retired`` accumulates every engine
    #: region's retired instructions so ``gang_residency_pct`` can be
    #: derived at any aggregation level (percentages don't sum).
    gang_repacks: int = 0
    lanes_readmitted: int = 0
    instructions_retired: int = 0
    #: Fabric drain accounting: how many regions drained on worker
    #: threads vs serially (the dispatcher falls back to serial below
    #: ``PARALLEL_DRAIN_MIN_SHREDS`` per device even when asked to
    #: thread; this records what actually ran).
    drains_serial: int = 0
    drains_parallel: int = 0
    #: Regions drained on out-of-process fabric workers.
    drains_process: int = 0
    #: Serving-layer accounting (populated by
    #: :meth:`note_serving` when a :class:`~repro.serving.ExoServer`
    #: fronts the runtime): sessions opened, launches through the
    #: admission controller, and cross-launch gang coalescing.
    sessions_opened: int = 0
    launches_admitted: int = 0
    launches_rejected: int = 0
    gangs_coalesced: int = 0
    coalesced_lanes: int = 0
    #: Schedule-transform accounting (``ExoPlatform(schedule=...)``):
    #: the last applied schedule spec, regions whose program was actually
    #: rewritten, and auto-tuner candidates scored (cache hits add 0).
    schedule_name: str = ""
    schedules_applied: int = 0
    tuner_trials: int = 0

    def note_schedule(self, name: str, trials: int, applied: bool) -> None:
        if name:
            self.schedule_name = name
        self.tuner_trials += trials
        if applied:
            self.schedules_applied += 1

    def note_drain(self, mode: str) -> None:
        if mode == "process":
            self.drains_process += 1
        elif mode == "parallel":
            self.drains_parallel += 1
        elif mode == "serial":
            self.drains_serial += 1

    def note_serving(self, serving) -> None:
        """Fold a serving layer's counters in (``ServingStats`` shape)."""
        self.sessions_opened += serving.sessions_opened
        self.launches_admitted += serving.launches_admitted
        self.launches_rejected += serving.launches_rejected
        self.gangs_coalesced += serving.gangs_coalesced
        self.coalesced_lanes += serving.coalesced_lanes

    def note_device(self, device: str, seconds: float, shreds: int) -> None:
        self.device_seconds[device] = (
            self.device_seconds.get(device, 0.0) + seconds)
        self.device_shreds[device] = (
            self.device_shreds.get(device, 0) + shreds)

    def note_atr(self, device: str, counters: Dict[str, int]) -> None:
        """Accumulate one launch's translation-counter deltas."""
        bucket = self.device_atr.setdefault(device, {})
        for key, value in counters.items():
            bucket[key] = bucket.get(key, 0) + value

    def note_engine(self, result) -> None:
        """Accumulate one region's engine counters (``GmaRunResult`` and
        ``FabricRunResult`` both expose them; other backends may not)."""
        self.gang_lanes_retired += getattr(result, "gang_lanes_retired", 0)
        self.scalar_fallbacks += getattr(result, "scalar_fallbacks", 0)
        self.predecode_hits += getattr(result, "predecode_hits", 0)
        self.predecode_misses += getattr(result, "predecode_misses", 0)
        self.batched_mem_lanes += getattr(result, "batched_mem_lanes", 0)
        self.batched_translations += getattr(
            result, "batched_translations", 0)
        self.tlb_vector_hits += getattr(result, "tlb_vector_hits", 0)
        self.fused_blocks_retired += getattr(
            result, "fused_blocks_retired", 0)
        self.trace_chains += getattr(result, "trace_chains", 0)
        self.fusion_compiles += getattr(result, "fusion_compiles", 0)
        self.megaops_retired += getattr(result, "megaops_retired", 0)
        self.megaop_compiles += getattr(result, "megaop_compiles", 0)
        self.megaop_deopts += getattr(result, "megaop_deopts", 0)
        self.gang_repacks += getattr(result, "gang_repacks", 0)
        self.lanes_readmitted += getattr(result, "lanes_readmitted", 0)
        self.instructions_retired += getattr(result, "instructions", 0)

    @property
    def gang_residency_pct(self) -> float:
        """Share of retired instructions that retired while ganged."""
        if not self.instructions_retired:
            return 0.0
        return 100.0 * self.gang_lanes_retired / self.instructions_retired
