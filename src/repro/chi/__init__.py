"""CHI: C for Heterogeneous Integration (paper section 4).

The integrated programming environment: fat binaries with per-ISA code
sections, the OpenMP pragma extensions (fork-join ``parallel target`` and
producer-consumer ``taskq``/``task``), the Table 1 descriptor/feature
APIs, heterogeneous work scheduling, and the shred-level debugger.  The
miniature C front end that accepts the paper's pragma-extended source
lives in :mod:`repro.chi.frontend`.
"""

from .cooperative import CooperativeOutcome, run_cooperative
from .debugger import ChiDebugger, DebugSession, DebugStop, StopReason
from .descriptors import AccessMode, DescriptorAttrib, SurfaceDescriptor
from .dsl import DslError, DslProgram, compile_dsl
from .fatbinary import CodeSection, FatBinary
from .platform import ExoPlatform, HostAccessor
from .runtime import (
    ChiRuntime,
    ParallelRegion,
    RuntimeStats,
    TaskHandle,
    TaskQueue,
    Timeline,
)
from .scheduler import (
    PartitionOutcome,
    dynamic_partition,
    oracle_partition,
    static_partition,
)

__all__ = [
    "ChiRuntime",
    "run_cooperative",
    "CooperativeOutcome",
    "compile_dsl",
    "DslProgram",
    "DslError",
    "ExoPlatform",
    "HostAccessor",
    "FatBinary",
    "CodeSection",
    "AccessMode",
    "DescriptorAttrib",
    "SurfaceDescriptor",
    "ParallelRegion",
    "TaskQueue",
    "TaskHandle",
    "Timeline",
    "RuntimeStats",
    "PartitionOutcome",
    "static_partition",
    "oracle_partition",
    "dynamic_partition",
    "ChiDebugger",
    "DebugSession",
    "DebugStop",
    "StopReason",
]
