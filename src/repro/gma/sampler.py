"""The fixed-function texture sampler shared by all exo-sequencers.

"The exo-sequencers share access to specialized, fixed function hardware
that can execute performance-critical tasks, such as texture sampling and
scattering/gathering memory operations" (paper section 3.4).  AlphaBlend's
Figure 7 speedup comes largely from this unit: without it, the IA32 code
"has to emulate this behavior in software" (section 5.1).

Functionally the sampling itself is done by
:meth:`repro.memory.surface.Surface.sample_bilinear`; this class tracks
utilization so the timing model can bound device time by sampler
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class TextureSampler:
    """The shared sampler unit: filter mode + utilization counter.

    ``filter_mode`` is device state configurable through the Table 1 API
    (``chi_set_feature(X3000, "sampler_filter", ...)``): ``"bilinear"``
    (the default) or ``"nearest"`` (point sampling).
    """

    samples: int = 0
    filter_mode: str = "bilinear"

    def reset(self) -> None:
        self.samples = 0

    def cycles(self, throughput: float) -> float:
        """Device cycles the sampler needs for all recorded samples."""
        if throughput <= 0:
            raise ValueError("sampler throughput must be positive")
        return self.samples / throughput

    def fetch(self, surface, accessor, xs: np.ndarray,
              ys: np.ndarray) -> np.ndarray:
        """Sample under the configured filter mode."""
        self.samples += xs.size
        if self.filter_mode == "nearest":
            xi = np.clip(np.floor(xs + 0.5).astype(int), 0,
                         surface.width - 1)
            yi = np.clip(np.floor(ys + 0.5).astype(int), 0,
                         surface.height - 1)
            return np.array([
                surface.read_block(accessor, int(x), int(y), 1, 1)[0]
                for x, y in zip(xi, yi)
            ])
        return surface.sample_bilinear(accessor, xs, ys)
