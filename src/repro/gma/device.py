"""The GMA X3000 device: 8 EUs x 4 thread contexts = 32 exo-sequencers.

This ties the pieces together: the exoskeleton (signalling + ATR + CEH),
the device's TLB-translated view of the shared address space, the texture
sampler, the coherence point, the firmware and the work queue.  The public
entry point is :meth:`GmaDevice.run`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..errors import ExecutionFault
from ..exo.exoskeleton import Exoskeleton
from ..exo.sequencer import ExoSequencer
from ..exo.shred import ShredDescriptor
from ..memory.address_space import AddressSpace, SequencerView
from ..memory.cache import CoherencePoint
from ..memory.tlb import Tlb
from .firmware import EmulationFirmware, GmaRunResult
from .sampler import TextureSampler
from .timing import GmaTimingConfig
from .workqueue import WorkQueue


class GmaDevice:
    """The simulated Intel Graphics Media Accelerator X3000."""

    ISA = "X3000"

    #: Supported execution engines: "scalar" interprets each shred one
    #: instruction at a time; "gang" batches same-program launches across
    #: the shred axis (see :mod:`repro.gma.gang`), with scalar peel-off;
    #: "fused" adds superblock trace fusion on top of the gang engine
    #: (see :mod:`repro.gma.fusion`): straight-line regions retire as
    #: whole compiled blocks with uniform-branch trace chaining;
    #: "megaop" adds profile-guided trace promotion on top of fusion
    #: (see :mod:`repro.gma.megaop`): hot chained block cycles compile
    #: into single composed numpy expressions retiring whole trace
    #: traversals per Python call, deopting to the fused loop on any
    #: guard failure.
    ENGINES = ("scalar", "gang", "fused", "megaop")

    def __init__(self, space: AddressSpace,
                 exoskeleton: Optional[Exoskeleton] = None,
                 config: Optional[GmaTimingConfig] = None,
                 coherence: Optional[CoherencePoint] = None,
                 engine: str = "scalar",
                 megaop_threshold: Optional[int] = None):
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown GMA engine {engine!r} (choose from {self.ENGINES})")
        self.space = space
        config = config if config is not None else GmaTimingConfig()
        self.config = config
        self.engine = engine
        #: Chain traversals of one block cycle before megaop promotion
        #: (None -> :data:`repro.gma.megaop.PROMOTE_THRESHOLD`).
        self.megaop_threshold = megaop_threshold
        self.exoskeleton = exoskeleton or Exoskeleton(space)
        self.coherence = coherence or CoherencePoint(coherent=True)
        self.view = SequencerView(
            space, Tlb(capacity=config.tlb_capacity, name="gma-tlb"),
            name="gma")
        self.sampler = TextureSampler()
        self.firmware = EmulationFirmware(self)
        self.sequencers: List[ExoSequencer] = [
            ExoSequencer(name=f"exo-{eu}.{slot}", isa=self.ISA, eu=eu, slot=slot)
            for eu in range(config.num_eus)
            for slot in range(config.threads_per_eu)
        ]
        # populated by the firmware during a run
        self._mailboxes = {}
        self._live_contexts = {}
        self._spawn_queue: Optional[WorkQueue] = None
        self.touched_read_lines = set()
        self.touched_write_lines = set()

    # -- context switching -------------------------------------------------------

    def make_view(self, space: AddressSpace, name: str) -> SequencerView:
        """A sequencer view of ``space`` with this device's TLB geometry.

        Serving sessions keep one view per (session, device) pair so a
        context switch back to a session finds its translations warm;
        the view is registered with ``space`` on construction, so that
        session's shootdowns keep reaching it while it is unbound.
        """
        return SequencerView(
            space, Tlb(capacity=self.config.tlb_capacity, name=f"{name}-tlb"),
            name=name)

    def bind_context(self, space: AddressSpace, exoskeleton: Exoskeleton,
                     coherence: CoherencePoint, view: SequencerView) -> None:
        """Switch the device onto another tenant's context.

        Models a GPU context switch: the device's page-table view,
        exoskeleton (MISP/ATR/CEH endpoints) and coherence point are
        replaced wholesale.  The caller must serialize binds with runs —
        the device holds no lock of its own.
        """
        self.space = space
        self.exoskeleton = exoskeleton
        self.coherence = coherence
        self.view = view

    # -- execution ---------------------------------------------------------------

    def run(self, shreds: Iterable[ShredDescriptor],
            extra_bytes: int = 0, prepare_surfaces: bool = True) -> GmaRunResult:
        """Dispatch shreds (via SIGNAL) and run the queue to completion.

        ``extra_bytes`` models additional memory traffic sharing the
        device's bandwidth (the interleaved-flush overlap of section 5.2).

        ``prepare_surfaces`` models the CHI runtime step of section 4.6 —
        "Before forking the heterogeneous shreds, the CHI runtime inspects
        these descriptors and configures the accelerator appropriately":
        every bound surface's pages are validated into the device page
        table up front, so in-flight ATR proxies only happen for accesses
        outside the declared surfaces.
        """
        shreds = list(shreds)
        # line-granular demand-traffic accounting for this run (the device
        # cache: first touch of a 64-byte line is traffic, re-reads hit)
        self.touched_read_lines = set()
        self.touched_write_lines = set()
        pages_prepared = 0
        if prepare_surfaces:
            pages_prepared = self._prepare_surfaces(shreds)
        queue = WorkQueue()
        for i, shred in enumerate(shreds):
            target = self.sequencers[i % len(self.sequencers)].name
            self.exoskeleton.signal_dispatch(shred, target)
            queue.push(shred)
        result = self.firmware.run_queue(queue, extra_bytes=extra_bytes)
        result.pages_prepared = pages_prepared
        for i, run in enumerate(result.runs):
            self.sequencers[i % len(self.sequencers)].shreds_retired += 1
        return result

    def _prepare_surfaces(self, shreds) -> int:
        """Validate every bound surface's pages into the GTT (one batched
        proxy pass on the IA32 side, not a per-fault round trip)."""
        from ..memory.physical import PAGE_SHIFT

        missing = []
        seen = set()
        for shred in shreds:
            for surf in shred.surfaces.values():
                if id(surf) in seen:
                    continue
                seen.add(id(surf))
                first = surf.base >> PAGE_SHIFT
                last = (surf.base + surf.nbytes - 1) >> PAGE_SHIFT
                for vpn in range(first, last + 1):
                    if vpn not in self.view.gtt:
                        missing.append(vpn << PAGE_SHIFT)
        if not missing:
            return 0
        installed = self.exoskeleton.request_atr_batch(
            self.view, missing, write=True, source="firmware")
        return len(installed)

    def run_single(self, shred: ShredDescriptor) -> GmaRunResult:
        return self.run([shred])

    # -- services used by shred contexts ---------------------------------------------

    def deliver_register(self, source_id: int, target_id: int, reg: int,
                         values: np.ndarray) -> None:
        """Route a ``sendreg`` write: "one shred can write directly to
        another shred's register file" (section 3.4)."""
        ctx = self._live_contexts.get(target_id)
        if ctx is not None:
            ctx.regs.write_lanes(reg, np.asarray(values, dtype=np.float64))
            return
        if self._spawn_queue is not None and self._spawn_queue.is_done(target_id):
            raise ExecutionFault(
                f"sendreg from shred {source_id} to retired shred {target_id}")
        self._mailboxes.setdefault(target_id, []).append(
            (reg, np.asarray(values, dtype=np.float64)))

    def enqueue_spawn(self, parent: ShredDescriptor, arg: float) -> None:
        if self._spawn_queue is None:
            raise ExecutionFault("spawn outside a device run")
        child = parent.spawn_child(arg)
        self._spawn_queue.push(child)

    def flush_cache(self) -> int:
        """Flush the device-side cache (a shred-visible ``flush``)."""
        return self.coherence.flush("gma")

    # -- maintenance ---------------------------------------------------------------------

    def invalidate_tlb(self) -> None:
        self.view.tlb.invalidate()

    def reset_counters(self) -> None:
        self.sampler.reset()
        self.view.tlb.hits = 0
        self.view.tlb.misses = 0
        self.view.tlb.mru_hits = 0
        self.view.tlb.vector_hits = 0
        self.view.batched_translations = 0
