"""Timing configuration of the GMA X3000 device model.

Numbers are drawn from public facts about the Intel 965G Express platform
(paper references [12], [15]): 8 execution units, 4 hardware threads each,
~667 MHz clock, dual-channel DDR2 memory shared with the CPU.  Where the
paper gives no number we choose a representative one and document it; the
reproduced *shapes* (Figures 7, 8, 10) depend on ratios, not absolutes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GmaTimingConfig:
    """Static machine parameters of the simulated accelerator."""

    num_eus: int = 8
    threads_per_eu: int = 4
    frequency: float = 667e6  # Hz
    #: Bytes per cycle the device can move to/from main memory.  The
    #: 965G's shared DDR2-667 dual channel peaks at ~10.7 GB/s; the GMA
    #: sustains roughly 10 B/cycle at 667 MHz = ~6.7 GB/s — about 1.4x the
    #: CPU's streaming rate, which is exactly the ratio that makes the
    #: bandwidth-bound BOB kernel land at the paper's 1.41X.
    mem_bytes_per_cycle: float = 10.0
    #: Fixed-function sampler throughput: samples per cycle, device-wide.
    sampler_throughput: float = 8.0
    tlb_capacity: int = 32
    #: False models a scoreboard-less in-order pipe: the next instruction
    #: of a thread always waits out the previous result's latency (the
    #: fly-weight design the X3000's switch-on-stall compensates for).
    #: True models operand scoreboarding: only true dependences stall —
    #: the machine where compile-time instruction scheduling pays.
    scoreboard: bool = False
    #: Cycles charged to the faulting shred for one ATR proxy round trip
    #: (suspend, user-level interrupt, IA32 handler, transcode, resume).
    atr_penalty_cycles: int = 1500
    #: Cycles for one CEH round trip (exception shipping + emulation).
    ceh_penalty_cycles: int = 3000

    @property
    def num_sequencers(self) -> int:
        return self.num_eus * self.threads_per_eu

    def seconds(self, cycles: float) -> float:
        return cycles / self.frequency
