"""EU timing model: switch-on-stall multithreading over shred traces.

"The four exo-sequencers, physically implemented in each GMA X3000 core,
alternate fetching through fly-weight switch-on-stall multithreading.  As
each exo-sequencer fetches and retires instructions in-order, the core's
fine-grained thread multiplexing capability plays a critical role in
sustaining throughput performance" (paper section 3.4).

The model replays each shred's ``(issue, latency)`` trace: an EU issues
one instruction at a time (occupying the issue pipe for ``issue`` cycles);
the issuing context then becomes not-ready for ``latency`` cycles, during
which the EU issues from its other contexts.  Stall cycles are *exposed*
only when no context is ready — exactly the behaviour that makes abundant
shred-level parallelism the first-order performance factor on this device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .interpreter import ShredRun
from .timing import GmaTimingConfig


@dataclass
class EuReport:
    """Timing outcome for one EU."""

    cycles: float = 0.0
    busy_cycles: float = 0.0
    exposed_stall_cycles: float = 0.0

    @property
    def utilization(self) -> float:
        return self.busy_cycles / self.cycles if self.cycles else 0.0


@dataclass
class DeviceTiming:
    """Timing outcome for the whole device."""

    compute_cycles: float  # max over EUs of their finish time
    bandwidth_cycles: float  # memory-traffic lower bound
    sampler_cycles: float  # fixed-function unit lower bound
    eu_reports: List[EuReport] = field(default_factory=list)
    finish_times: Dict[int, float] = field(default_factory=dict)
    #: shred id -> (start cycle, finish cycle, eu, slot); feeds the
    #: Chrome-trace exporter in :mod:`repro.perf.trace`.
    spans: Dict[int, tuple] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.bandwidth_cycles,
                   self.sampler_cycles)

    @property
    def bound(self) -> str:
        """Which resource bounds execution: compute, bandwidth or sampler."""
        values = {
            "compute": self.compute_cycles,
            "bandwidth": self.bandwidth_cycles,
            "sampler": self.sampler_cycles,
        }
        return max(values, key=values.get)


class _Context:
    """One hardware thread context replaying its queue of shred traces."""

    __slots__ = ("queue", "slot", "qidx", "trace", "tidx", "ready_time",
                 "current", "start_time")

    def __init__(self, queue: List[ShredRun], slot: int = 0):
        self.queue = queue
        self.slot = slot
        self.qidx = 0
        self.trace: Optional[Sequence] = None
        self.tidx = 0
        self.ready_time = 0.0
        self.current: Optional[ShredRun] = None
        self.start_time = 0.0

    def has_work(self) -> bool:
        return self.trace is not None or self.qidx < len(self.queue)


def simulate_device(runs: Sequence[ShredRun], config: GmaTimingConfig,
                    not_before: Optional[Dict[int, float]] = None,
                    extra_bytes: int = 0) -> DeviceTiming:
    """Replay shred traces on the device and return its timing.

    ``not_before`` gives per-shred earliest start times (producer/consumer
    dependencies); ``extra_bytes`` adds memory traffic that competes for
    device bandwidth (e.g. overlapped cache flushing).
    """
    not_before = not_before or {}
    nctx = config.num_sequencers
    queues: List[List[ShredRun]] = [[] for _ in range(nctx)]
    # EU-major round robin: leftover shreds spread across EUs instead of
    # piling onto EU 0's thread contexts
    per_eu = config.threads_per_eu
    for i, run in enumerate(runs):
        eu = i % config.num_eus
        slot = (i // config.num_eus) % per_eu
        queues[eu * per_eu + slot].append(run)

    finish: Dict[int, float] = {}
    spans: Dict[int, tuple] = {}
    reports = []
    per_eu = config.threads_per_eu
    for eu in range(config.num_eus):
        ctxs = [
            _Context(queues[eu * per_eu + slot], slot)
            for slot in range(per_eu)
        ]
        report = _simulate_eu(ctxs, not_before, finish, spans, eu)
        reports.append(report)

    total_bytes = sum(r.bytes_total for r in runs) + extra_bytes
    bandwidth_cycles = total_bytes / config.mem_bytes_per_cycle
    total_samples = sum(r.sampler_samples for r in runs)
    sampler_cycles = total_samples / config.sampler_throughput
    compute_cycles = max((rep.cycles for rep in reports), default=0.0)
    return DeviceTiming(
        compute_cycles=compute_cycles,
        bandwidth_cycles=bandwidth_cycles,
        sampler_cycles=sampler_cycles,
        eu_reports=reports,
        finish_times=finish,
        spans=spans,
    )


def _simulate_eu(ctxs: List[_Context], not_before: Dict[int, float],
                 finish: Dict[int, float], spans: Dict[int, tuple],
                 eu_index: int) -> EuReport:
    populated = [ctx for ctx in ctxs if ctx.queue]
    if not populated:
        return EuReport()
    if len(populated) == 1:
        # one busy context: no interleaving is possible, so replay its
        # traces sequentially instead of event-stepping the full loop.
        # Cycle-exact with the general path (same stalls, spans, drain).
        return _drain_single_context(populated[0], not_before, finish,
                                     spans, eu_index)
    if not any(not_before.get(run.shred.shred_id, 0.0) > 0.0
               for ctx in populated for run in ctx.queue):
        # no dependency gates: activation always happens at the same
        # `now` as the finish that freed the context, so the per-step
        # activation scan of the general loop is dead weight
        report = _try_lockstep_closed_form(populated, finish, spans,
                                           eu_index)
        if report is not None:
            return report
        return _simulate_eu_ungated(ctxs, finish, spans, eu_index)
    now = 0.0
    busy = 0.0
    stall = 0.0
    rr = 0  # round-robin pointer for fairness among ready contexts
    n = len(ctxs)
    local_finish: List[float] = []

    while True:
        # activate queued shreds whose dependencies are satisfied
        for ctx in ctxs:
            if ctx.trace is None and ctx.qidx < len(ctx.queue):
                run = ctx.queue[ctx.qidx]
                start_gate = not_before.get(run.shred.shred_id, 0.0)
                if start_gate <= now:
                    ctx.current = run
                    ctx.trace = run.trace
                    ctx.tidx = 0
                    ctx.qidx += 1
                    ctx.ready_time = max(ctx.ready_time, now)
                    ctx.start_time = max(ctx.ready_time, now)

        # round-robin among ready contexts (fly-weight switch-on-stall):
        # the first ready context scanning from the rr pointer is exactly
        # the minimum of (index - rr) % n over all ready contexts
        ctx = None
        for k in range(n):
            i = rr + k
            if i >= n:
                i -= n
            cand = ctxs[i]
            if cand.trace is not None and cand.ready_time <= now:
                ctx = cand
                rr = i + 1 if i + 1 < n else 0
                break
        if ctx is not None:
            if ctx.tidx < len(ctx.trace):
                issue, latency = ctx.trace[ctx.tidx]
                ctx.tidx += 1
                now += issue
                busy += issue
                ctx.ready_time = now + latency
            if ctx.tidx >= len(ctx.trace):
                shred_id = ctx.current.shred.shred_id
                finish[shred_id] = ctx.ready_time
                spans[shred_id] = (ctx.start_time, ctx.ready_time,
                                   eu_index, ctx.slot)
                local_finish.append(ctx.ready_time)
                ctx.trace = None
                ctx.current = None
            continue

        # nothing ready: either stalled or waiting on a dependency gate
        candidates = []
        for ctx in ctxs:
            if ctx.trace is not None:
                candidates.append(ctx.ready_time)
            elif ctx.qidx < len(ctx.queue):
                run = ctx.queue[ctx.qidx]
                candidates.append(
                    max(now, not_before.get(run.shred.shred_id, 0.0)))
        if not candidates:
            break
        next_time = min(candidates)
        if next_time <= now:
            # dependency gate in the past but shred not yet activated:
            # loop back and activate without advancing time
            continue
        stall += next_time - now
        now = next_time

    # drain: in-flight latency of the last instructions extends past `now`
    end = max([now] + local_finish)
    return EuReport(cycles=end, busy_cycles=busy, exposed_stall_cycles=stall)


def _try_lockstep_closed_form(populated: List[_Context],
                              finish: Dict[int, float],
                              spans: Dict[int, tuple],
                              eu_index: int) -> Optional[EuReport]:
    """Closed-form schedule for gang-lockstep launches, or ``None``.

    When every populated context replays exactly one shred and all the
    traces are identical (the gang/fused/megaop engines retire the same
    instruction sequence on every shred), the switch-on-stall rotation
    is strict: context ``k`` always issues instruction ``i`` right after
    context ``k-1`` does.  If additionally no latency outlives the
    cover provided by the ``n-1`` peer issues between a context's turns
    — ``l[i] <= (n-1) * min(s[i], s[i+1])`` for every non-final
    instruction — then no stall is ever exposed and every event starts
    exactly when the previous one ends.  The whole schedule collapses
    to prefix sums: cycle-exact with the event loop, without stepping
    ``n * len(trace)`` events in Python.
    """
    n = len(populated)
    if any(len(ctx.queue) != 1 for ctx in populated):
        return None
    trace = populated[0].queue[0].trace
    steps = len(trace)
    if steps == 0:
        return None
    for ctx in populated[1:]:
        if ctx.queue[0].trace != trace:
            return None
    charges = np.asarray(trace, dtype=np.float64)
    issue = charges[:, 0]
    latency = charges[:, 1]
    if steps > 1 and not bool(
            np.all(latency[:-1]
                   <= (n - 1) * np.minimum(issue[:-1], issue[1:]))):
        return None
    total_issue = float(issue.sum())
    last_issue = float(issue[-1])
    last_latency = float(latency[-1])
    # context k's final issue ends after the full rotation of earlier
    # instructions (n * prefix) plus the k+1 final issues before its own
    prefix = n * (total_issue - last_issue)
    for k, ctx in enumerate(populated):
        run = ctx.queue[0]
        ctx.qidx = 1
        done = prefix + (k + 1) * last_issue + last_latency
        finish[run.shred.shred_id] = done
        spans[run.shred.shred_id] = (0.0, done, eu_index, ctx.slot)
    return EuReport(cycles=n * total_issue + last_latency,
                    busy_cycles=n * total_issue,
                    exposed_stall_cycles=0.0)


def _simulate_eu_ungated(ctxs: List[_Context], finish: Dict[int, float],
                         spans: Dict[int, tuple], eu_index: int) -> EuReport:
    """The general loop specialized for runs without dependency gates.

    Cycle-exact with :func:`_simulate_eu` when every ``not_before`` gate
    is 0: in that case the general loop activates a queued shred on the
    very iteration after its context frees, at the same ``now``, with
    ``ready_time`` (the previous trace's drain) already >= ``now`` — so
    activating eagerly here, at init and at each finish, is identical
    and the per-step activation scan disappears.
    """
    now = 0.0
    busy = 0.0
    stall = 0.0
    rr = 0
    n = len(ctxs)
    local_finish: List[float] = []
    live = 0
    for ctx in ctxs:
        if ctx.queue:
            ctx.current = ctx.queue[0]
            ctx.trace = ctx.current.trace
            ctx.tidx = 0
            ctx.qidx = 1
            ctx.ready_time = 0.0
            ctx.start_time = 0.0
            live += 1

    while live:
        ctx = None
        for k in range(n):
            i = rr + k
            if i >= n:
                i -= n
            cand = ctxs[i]
            if cand.trace is not None and cand.ready_time <= now:
                ctx = cand
                rr = i + 1 if i + 1 < n else 0
                break
        if ctx is None:
            next_time = min(c.ready_time for c in ctxs
                            if c.trace is not None)
            stall += next_time - now
            now = next_time
            continue
        trace = ctx.trace
        if ctx.tidx < len(trace):
            issue, latency = trace[ctx.tidx]
            ctx.tidx += 1
            now += issue
            busy += issue
            ctx.ready_time = now + latency
        if ctx.tidx >= len(trace):
            shred_id = ctx.current.shred.shred_id
            finish[shred_id] = ctx.ready_time
            spans[shred_id] = (ctx.start_time, ctx.ready_time,
                               eu_index, ctx.slot)
            local_finish.append(ctx.ready_time)
            if ctx.qidx < len(ctx.queue):
                # eager activation: the previous trace's drain
                # (ready_time >= now) gates the next shred's start
                ctx.current = ctx.queue[ctx.qidx]
                ctx.qidx += 1
                ctx.trace = ctx.current.trace
                ctx.tidx = 0
                ctx.start_time = ctx.ready_time if ctx.ready_time > now \
                    else now
            else:
                ctx.trace = None
                ctx.current = None
                live -= 1

    end = max([now] + local_finish)
    return EuReport(cycles=end, busy_cycles=busy, exposed_stall_cycles=stall)


def _drain_single_context(ctx: _Context, not_before: Dict[int, float],
                          finish: Dict[int, float], spans: Dict[int, tuple],
                          eu_index: int) -> EuReport:
    """Sequential replay of one context's queue (the only busy context).

    Mirrors the general loop exactly: every instruction's latency is an
    exposed stall (there is no peer context to cover it), except the last
    instruction of a shred, whose in-flight latency extends the shred's
    finish time instead.
    """
    now = 0.0
    busy = 0.0
    stall = 0.0
    local_finish: List[float] = []
    while ctx.qidx < len(ctx.queue):
        run = ctx.queue[ctx.qidx]
        ctx.qidx += 1
        gate = not_before.get(run.shred.shred_id, 0.0)
        if gate > now:
            stall += gate - now
            now = gate
        ctx.ready_time = max(ctx.ready_time, now)
        start = ctx.ready_time  # previous shred's drain gates this one
        if start > now:
            stall += start - now
            now = start
        end_ready = now
        trace = run.trace
        last = len(trace) - 1
        for t, (issue, latency) in enumerate(trace):
            now += issue
            busy += issue
            if t < last:
                stall += latency
                now += latency
            else:
                end_ready = now + latency
        shred_id = run.shred.shred_id
        finish[shred_id] = end_ready
        spans[shred_id] = (start, end_ready, eu_index, ctx.slot)
        local_finish.append(end_ready)
        ctx.ready_time = end_ready
    end = max([now] + local_finish)
    return EuReport(cycles=end, busy_cycles=busy, exposed_stall_cycles=stall)
