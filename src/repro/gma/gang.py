"""Gang-vectorized SIMT execution of one homogeneous shred batch.

When every queued shred runs the same :class:`~repro.isa.program.Program`
(the common kernel-launch case), the gang engine executes them in
lockstep: one numpy register file with a leading *shred axis* —
``V[shred, vreg, lane]`` / ``P[shred, preg, lane]`` — so each decoded
instruction applies to all active shreds in a single vectorized
operation instead of N scalar trips through ``semantics.execute``.

The scalar interpreter remains the reference semantics.  Anything the
gang cannot prove it can batch exactly is *peeled*: the affected shreds
leave the gang at the divergence point and are handed to
:class:`~repro.gma.interpreter.ShredInterpreter`, resuming on the same
register state (their lane views) and the same
:class:`~repro.gma.interpreter.ShredRun` record.  Peel triggers, per the
predecode ``batch_class``:

* **control** — END/NOP/FENCE and *uniform* branches stay ganged; a
  divergent branch keeps the majority side ganged and routes the rest
  through *divergence repacking* (see below) when the divergent region
  is provably pure, else peels them;
* **batch_mem** — loads, stores and sampler reads stay ganged: lane
  addresses are computed on the batched register file, translated in one
  vectorized call and moved with one numpy gather/scatter; any
  irregularity (a lane whose page misses, a non-uniform surface binding,
  out-of-range indices) abandons the batched attempt *before any state
  changes* and re-runs the instruction through the per-shred reference
  step below;
* **per_shred** — non-batchable memory shapes and sampler traffic
  execute through the scalar ``semantics.execute`` per shred while the
  gang stays resident; a ``TlbMiss`` peels the missing shred *and
  everything behind it in queue order*, and a CEH fault peels just the
  faulting shred;
* **alu** — one batched numpy step; a batch-level fault (divide-by-zero,
  float overflow, unresolvable symbol) re-runs the step per shred, which
  reproduces the architectural per-shred fault;
* **peel_all** — SPAWN peels every resident shred at the spawn point.

Divergence is a transient, not a death sentence.  Every divergable
branch carries its immediate post-dominator from predecode
(``PredecodedInstr.reconv``) plus a static purity bit
(``repackable``): when the region between the branch and the join
contains no ordered side effect (no ``peel_all`` instruction), the
losing side *parks* as a suspended sub-gang instead of peeling.  The
surviving majority compacts into a dense register-file pack (no holes:
batched steps stay full width) and runs to the join, where it suspends;
each parked sub-gang then runs its arm in lockstep the same way; when
the last one reports, all arrivals merge their register state back into
the lane slots and continue as one re-formed gang — *re-admission*
(counted by ``gang_repacks`` / ``lanes_readmitted``).  Ordering stays
scalar-identical because nothing order-dependent ever executes while
ganged (the lemma below): a suspended lane that *would* emit an ordered
side effect — SPAWN, an ATR service, a CEH proxy — still peels exactly
as before, either statically (the region is not ``repackable``) or
dynamically (the sub-gang's own peel rules fire mid-arm).

Peels are **deferred**: a peeled shred does not run at the peel point —
it is queued with its resume ip and executed to completion only after
the gang has fully drained, in shred queue order.  This is what keeps
globally-ordered side effects scalar-identical: nothing order-dependent
ever executes *while ganged* (an ATR miss peels before it is serviced, a
CEH-bound fault peels before the proxy round trip, SPAWN peels before
any child is enqueued), so every ATR service, CEH proxy and child
shred-id assignment happens in the deferred phase, in exactly the order
the scalar engine would produce.  The deferral is also self-correcting
for translation state: the device GTT only grows during a run, so an
access that succeeded in lockstep would also have hit in scalar order,
and a peeled shred that missed in lockstep re-executes its faulting
instruction against exactly the translations its queue predecessors
installed.

Accounting is bit-identical to scalar execution for race-free launches:
retired instructions go through the shared
:func:`~repro.gma.interpreter.account_instruction`, and the device
cache's order-dependent first-touch line charging is likewise deferred —
every access logs its span and the log replays per shred in queue order
after the gang drains, exactly as the scalar engine would have charged
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionFault, TlbMiss
from ..exo.shred import ShredDescriptor, ShredState
from ..isa import predecode, semantics
from ..isa.instructions import Effect
from ..isa.opcodes import Opcode
from ..isa.operands import (
    ImmOperand,
    PredOperand,
    RangeOperand,
    RegOperand,
    SymOperand,
)
from ..isa.registers import RegisterFile
from ..isa.types import DataType, NUM_PREGS, NUM_VREGS, VLEN
from ..memory.physical import PAGE_SHIFT
from ..memory.surface import TileMode
from .context import ShredContext
from .interpreter import (
    MAX_INSTRUCTIONS,
    ShredInterpreter,
    ShredRun,
    account_instruction,
    finish_run,
)


class GangLaneRegs(RegisterFile):
    """A RegisterFile whose storage is one shred's slice of the gang state.

    The batched engine reads and writes ``V``/``P`` directly; peeled
    shreds keep operating on the same memory through these views, so no
    state is copied at the divergence point.
    """

    def __init__(self, v_lane: np.ndarray, p_lane: np.ndarray):
        # bypass RegisterFile.__init__: storage is a view, not an alloc
        self.num_vregs = v_lane.shape[0]
        self.vlen = v_lane.shape[1]
        self._v = v_lane
        self._p = p_lane


class GangShredContext(ShredContext):
    """ShredContext that defers device-cache line charging.

    First-touch 64-byte-line charging is order dependent across shreds;
    under lockstep the interleaving differs from the scalar engine's
    queue-order execution.  Device-side spans are therefore logged and
    replayed per shred in queue order by :func:`_replay_charges`.  Proxy
    (CEH) accesses charge raw bytes immediately — they are order
    independent — exactly as the base class does.
    """

    def __init__(self, shred: ShredDescriptor, view, space, device):
        self.charge_log: List[Tuple[int, int, bool]] = []
        super().__init__(shred, view, space, device=device)

    def _charge_span(self, lo: int, nbytes: int, write: bool) -> None:
        if self.device is None or self.proxy_mode:
            super()._charge_span(lo, nbytes, write)
        else:
            self.charge_log.append((lo, nbytes, write))


@dataclass
class GangOutcome:
    """What one gang drain produced, in shred queue order."""

    runs: List[ShredRun] = field(default_factory=list)
    lanes_retired: int = 0    # instructions retired while gang resident
    scalar_fallbacks: int = 0  # shreds peeled to the scalar interpreter
    batched_mem_lanes: int = 0  # memory lanes retired through batch_mem
    batched_translations: int = 0  # pages resolved by vectorized translate
    tlb_vector_hits: int = 0  # pages served by the TLB's vector snapshot
    fused_blocks_retired: int = 0  # whole blocks retired by the fused path
    trace_chains: int = 0     # uniform branches chained block-to-block
    fusion_compiles: int = 0  # blocks compiled (first-run cost)
    megaops_retired: int = 0  # whole-trace traversals retired by megaops
    megaop_compiles: int = 0  # hot cycles promoted to megaops
    megaop_deopts: int = 0    # megaop guard failures (divergence/fault)
    gang_repacks: int = 0     # reconvergence merges that re-admitted lanes
    lanes_readmitted: int = 0  # suspended sub-gang lanes merged back


#: A surviving gang re-compacts into a dense pack only when it keeps at
#: most this fraction of the launch's lanes: small holes don't pay for
#: the copy (fancy-indexed rows on the root arrays are nearly as fast),
#: large holes do — and the pack shrinks with the survivor set.
REPACK_DENSITY = 0.75


@dataclass
class _JoinFrame:
    """One live reconvergence point, innermost last on the frame stack.

    ``parked`` holds suspended sub-gangs — ``(lanes, entry ip, mixed)``
    — waiting to run their divergent arm; ``arrived`` collects every
    lane that reached ``join``; ``readmitted`` counts arrivals that came
    in through a parked sub-gang (the re-admission the repack counters
    report).  ``mixed`` tracks whether arrivals span gangs with unequal
    per-lane instruction counts, which decides how the runaway cap must
    be checked afterwards.
    """

    join: int
    parked: List[Tuple[List[int], int, bool]] = field(default_factory=list)
    arrived: List[int] = field(default_factory=list)
    readmitted: int = 0
    sources: int = 0
    mixed: bool = False


def gang_eligible(device, shreds: Sequence[ShredDescriptor]) -> bool:
    """Can this batch run as one gang with scalar-identical results?"""
    if len(shreds) < 2:
        return False
    program = shreds[0].program
    if any(s.program is not program for s in shreds):
        return False
    if any(s.depends_on for s in shreds):
        return False
    entry = shreds[0].entry
    if any(s.entry != entry for s in shreds):
        return False
    coherence = getattr(device, "coherence", None)
    if coherence is not None and not coherence.coherent:
        # non-coherent runs track per-access dirty state whose order the
        # lockstep interleaving would change
        return False
    return predecode.lookup(program).gangable


def run_gang(device, shreds: Sequence[ShredDescriptor],
             mailboxes: Dict[int, list],
             live_contexts: Dict[int, ShredContext],
             fusion: bool = False, megaop: bool = False) -> GangOutcome:
    """Execute a homogeneous batch in lockstep; returns runs in order.

    With ``fusion`` enabled (``engine="fused"``), straight-line regions
    retire as whole compiled superblocks with uniform-branch trace
    chaining (:mod:`repro.gma.fusion`); anything the fused path cannot
    retire bit-identically drops back to this per-instruction loop.
    With ``megaop`` additionally enabled (``engine="megaop"``, which
    implies fusion), hot block cycles promote to compiled megaops
    (:mod:`repro.gma.megaop`) that retire whole trace traversals per
    dispatch, deopting to the fused tier at the precise ip on any guard
    failure.
    """
    program = shreds[0].program
    pre_prog = predecode.lookup(program)
    config = device.config
    exo = device.exoskeleton
    count = len(shreds)
    ninstr = len(program.instructions)

    V = np.zeros((count, NUM_VREGS, VLEN), dtype=np.float64)
    P = np.zeros((count, NUM_PREGS, VLEN), dtype=bool)

    ctxs: List[GangShredContext] = []
    recs: List[ShredRun] = []
    for i, shred in enumerate(shreds):
        ctx = GangShredContext(shred, device.view, device.space, device)
        ctx.regs = GangLaneRegs(V[i], P[i])
        ctx.regs.write_scalar(0, float(shred.shred_id))
        for reg, values in mailboxes.pop(shred.shred_id, []):
            ctx.regs.write_lanes(reg, np.asarray(values, dtype=np.float64))
        live_contexts[shred.shred_id] = ctx
        shred.state = ShredState.RUNNING
        ctxs.append(ctx)
        recs.append(ShredRun(shred=shred))

    outcome = GangOutcome(runs=recs)
    base_batched_translations = device.view.batched_translations
    base_vector_hits = device.view.tlb.vector_hits
    active: List[int] = list(range(count))
    #: Deferred peels: (shred index, resume ip), executed in queue order
    #: only after the gang drains.  Running a peeled shred at the peel
    #: point would let it reach order-dependent global state (ATR
    #: service, CEH proxies, SPAWN child ids) ahead of earlier-queue
    #: shreds that are still ganged.
    pending: List[Tuple[int, int]] = []
    #: Live reconvergence points.  A repackable divergence parks its
    #: losing side here as a suspended sub-gang; whichever gang reaches
    #: the innermost join is suspended in turn, until every sub-gang has
    #: reported and all arrivals merge back into one gang at the join.
    frames: List[_JoinFrame] = []
    ip = shreds[0].entry

    # Current gang register storage: the root arrays, or a dense pack
    # built by ``adopt`` (no holes, so batched steps stay full width).
    # ``lane_row`` maps shred index -> row of the current storage; None
    # means the root arrays, where the row *is* the shred index.  The
    # root arrays stay canonical for every lane outside the running gang
    # — peeled shreds execute through their GangLaneRegs views — so a
    # pack syncs out before a lane leaves the gang and syncs in after
    # scalar semantics touch a resident lane.
    gV, gP = V, P
    lane_row: Optional[Dict[int, int]] = None
    grows = np.arange(count, dtype=np.int64)
    #: Lane holding the gang's highest instruction count.  Resident
    #: lanes advance in lockstep, so the argmax only moves when gang
    #: membership changes; the runaway cap check stays O(1) per step.
    lead = 0
    from_parked = False   # is the current gang a re-activated sub-gang?
    gang_mixed = False    # unequal per-lane instruction counts?
    repack_pending = False

    def finish_one(i: int) -> None:
        finish_run(recs[i], config)
        shreds[i].state = ShredState.DONE
        live_contexts.pop(shreds[i].shred_id, None)

    def rebuild_rows() -> None:
        nonlocal grows, lead
        if lane_row is None:
            grows = np.asarray(active, dtype=np.int64)
        else:
            grows = np.asarray([lane_row[i] for i in active],
                               dtype=np.int64)
        lead = max(active, key=lambda i: recs[i].instructions)

    def sync_out(lanes: Sequence[int]) -> None:
        """Copy lanes' registers from the pack back to the root arrays."""
        if lane_row is None or not lanes:
            return
        rows = np.asarray([lane_row[i] for i in lanes])
        idx = np.asarray(lanes)
        V[idx] = gV[rows]
        P[idx] = gP[rows]

    def sync_in(lanes: Sequence[int]) -> None:
        """Refresh pack rows from the root arrays after scalar steps."""
        if lane_row is None or not lanes:
            return
        rows = np.asarray([lane_row[i] for i in lanes])
        idx = np.asarray(lanes)
        gV[rows] = V[idx]
        gP[rows] = P[idx]

    def adopt(lanes: Sequence[int], parked_origin: bool,
              mixed: bool) -> None:
        """Point the gang at ``lanes``, whose register state sits in the
        root arrays; compact into a dense pack when the survivor set is
        sparse enough that full-width batched steps pay for the copy."""
        nonlocal gV, gP, lane_row, from_parked, gang_mixed, repack_pending
        repack_pending = False
        from_parked = parked_origin
        gang_mixed = mixed
        if len(lanes) > REPACK_DENSITY * count:
            gV, gP = V, P
            lane_row = None
        else:
            idx = np.asarray(lanes)
            gV = V[idx]   # advanced indexing: a dense copy
            gP = P[idx]
            lane_row = {i: pos for pos, i in enumerate(lanes)}
        rebuild_rows()

    def defer(pairs: Sequence[Tuple[int, int]]) -> None:
        """Queue (shred index, resume ip) pairs for the deferred phase."""
        sync_out([i for i, _ in pairs])
        for pair in pairs:
            outcome.scalar_fallbacks += 1
            pending.append(pair)

    def diverge(branch_ip: int, exit_ip: int, lanes: List[int]) -> None:
        """Route a divergence's losing side.

        When the branch's divergent region is pure (a static ``reconv``
        join with no ordered side effects), the losers suspend as a
        sub-gang that will run the region in lockstep and be re-admitted
        at the join; the caller's surviving majority is re-compacted by
        the main loop (``repack_pending``).  Otherwise the losers take
        the deferred peel exactly as before — the ordering lemma of the
        module docstring only covers lanes that either stay ganged on
        pure work or retire through the deferred queue.
        """
        nonlocal repack_pending
        if not lanes:
            return
        pre = pre_prog.instrs[branch_ip]
        if pre.repackable and pre.reconv is not None:
            sync_out(active)  # snapshot every lane; survivors re-adopt
            frames.append(_JoinFrame(
                join=pre.reconv,
                parked=[(list(lanes), exit_ip, gang_mixed)]))
            repack_pending = True
        else:
            defer([(i, exit_ip) for i in lanes])

    def step_per_shred(rows: List[int]) -> Tuple[List[int], List[Tuple[int, int]]]:
        """One instruction through scalar semantics for each row.

        Returns (survivors, peel pairs).  A TlbMiss peels the missing
        shred — before the miss is serviced — and everything behind it
        in queue order; a CEH-bound fault peels just the faulting shred,
        before its proxy round trip.
        """
        survivors: List[int] = []
        faulted: List[int] = []
        trailing: List[int] = []
        for k, i in enumerate(rows):
            try:
                eff = semantics.execute(program, ip, ctxs[i])
            except TlbMiss:
                trailing = rows[k:]
                break
            except ExecutionFault:
                faulted.append(i)
                continue
            account_instruction(recs[i], pre_prog.instrs[ip].instr, eff,
                                config)
            outcome.lanes_retired += 1
            survivors.append(i)
        pairs = [(j, ip) for j in sorted(faulted + trailing)]
        return survivors, pairs

    if fusion:
        # deferred import: fusion's compiled steps reuse this module's
        # batched ALU datapath
        from .fusion import get_fused, run_fused
        fused, compiled = get_fused(program, pre_prog)
        outcome.fusion_compiles += compiled
    mega = None
    recorder = None
    if megaop and fusion:
        from .megaop import MegaSession, run_megaop
        mega = MegaSession(device, program, pre_prog, fused, outcome)
        recorder = mega.recorder
    # per-run symbol memo: bindings are frozen at spawn, so each shred's
    # symbol resolves once per run instead of once per read
    symcache: Dict[str, tuple] = {}

    try:
        while True:
            while frames and (not active or ip == frames[-1].join):
                # a gang reaching the innermost join suspends; parked
                # sub-gangs then run the divergent region one at a time;
                # once the last reports (or dies), every arrival merges
                # back into a single gang at the join: re-admission
                frame = frames[-1]
                if active:
                    sync_out(active)
                    frame.arrived.extend(active)
                    frame.sources += 1
                    frame.mixed |= gang_mixed
                    if from_parked:
                        frame.readmitted += len(active)
                    active = []
                if frame.parked:
                    lanes, entry, mixed = frame.parked.pop(0)
                    active = list(lanes)
                    ip = entry
                    adopt(active, parked_origin=True, mixed=mixed)
                    continue
                frames.pop()
                if frame.readmitted:
                    outcome.gang_repacks += 1
                    outcome.lanes_readmitted += frame.readmitted
                active = sorted(frame.arrived)
                ip = frame.join
                if active:
                    adopt(active, parked_origin=False,
                          mixed=frame.mixed or frame.sources > 1)
                    if recorder is not None:
                        # the merged gang is a fresh trace head: let the
                        # recorder profile (and the megaop tier promote)
                        # from the join instead of deopting for the rest
                        # of the launch
                        recorder.reset()
            if not active:
                break
            if repack_pending:
                repack_pending = False
                adopt(active, parked_origin=from_parked, mixed=gang_mixed)
            elif len(active) != len(grows):
                rebuild_rows()
            if ip >= ninstr:  # ran off the end: finish without accounting
                for i in active:
                    finish_one(i)
                active = []
                continue
            if recs[lead].instructions >= MAX_INSTRUCTIONS:
                # stop at the *most advanced* record — after re-admission
                # lane counts need not be uniform — and let the deferred
                # interpreters raise the runaway fault at each lane's
                # precise instruction
                defer([(i, ip) for i in active])
                active = []
                continue
            if mega is not None:
                mop = mega.ops.get(ip)
                if mop is not None and not (frames
                                            and frames[-1].join in mop.ips):
                    # (a megaop whose trace crosses the pending join must
                    # not dispatch: it would blast through the suspension
                    # point — the fused tier below stops there precisely)
                    stepped = run_megaop(mop, device, active, gV, gP, ctxs,
                                         recs, config, outcome, defer,
                                         symcache, rows=grows,
                                         diverge=diverge)
                    if stepped is not None:
                        # the recorder window is stale across a megaop
                        # (its traversals are not noted one by one)
                        recorder.reset()
                        ip, active = stepped
                        continue
            if fusion:
                fused_to = run_fused(fused, ip, active, gV, gP, ctxs, recs,
                                     config, outcome, defer, finish_one,
                                     symcache, recorder, rows=grows,
                                     diverge=diverge,
                                     stop_ip=(frames[-1].join if frames
                                              else None))
                if fused_to is not None:
                    ip, active = fused_to
                    continue
            pre = pre_prog.instrs[ip]
            cls = pre.batch_class
            if recorder is not None and cls != predecode.BATCH_MEM:
                # only batched memory retirements extend a recorded
                # trace; any other per-instruction handling breaks it
                recorder.reset()

            if cls == predecode.BATCH_CONTROL:
                op = pre.opcode
                if op is Opcode.END:
                    eff = Effect()
                    eff.ended = True
                    for i in active:
                        account_instruction(recs[i], pre.instr, eff, config)
                    outcome.lanes_retired += len(active)
                    for i in active:
                        finish_one(i)
                    active = []
                    continue
                if op in (Opcode.NOP, Opcode.FENCE):
                    eff = Effect()
                    for i in active:
                        account_instruction(recs[i], pre.instr, eff, config)
                    outcome.lanes_retired += len(active)
                    ip += 1
                    continue
                # JMP / BR with a predecoded target
                if op is Opcode.JMP and pre.instr.pred is None:
                    taken = np.ones(len(active), dtype=bool)
                else:
                    guard = pre.instr.pred
                    any_lane = gP[grows, guard.index, :].any(axis=1)
                    taken = ~any_lane if guard.negate else any_lane
                eff = Effect()  # trace entry is branch-direction independent
                for i in active:
                    account_instruction(recs[i], pre.instr, eff, config)
                outcome.lanes_retired += len(active)
                if taken.all():
                    ip = pre.target
                    continue
                if not taken.any():
                    ip += 1
                    continue
                # divergence: the majority stays ganged; the losers park
                # toward the reconvergence point when the region is pure,
                # else take the deferred peel
                taken_count = int(taken.sum())
                if taken_count * 2 == len(active):
                    keep_taken = bool(taken[0])
                else:
                    keep_taken = taken_count * 2 > len(active)
                stay_ip = pre.target if keep_taken else ip + 1
                exit_ip = ip + 1 if keep_taken else pre.target
                diverge(ip, exit_ip,
                        [i for pos, i in enumerate(active)
                         if bool(taken[pos]) != keep_taken])
                active = [i for pos, i in enumerate(active)
                          if bool(taken[pos]) == keep_taken]
                ip = stay_ip
                continue

            if cls == predecode.BATCH_PEEL:
                # SPAWN (and defensive cases): every resident shred peels
                # before the spawn executes, so the deferred queue-order
                # replay assigns child shred ids exactly as scalar would
                defer([(i, ip) for i in active])
                active = []
                continue

            if cls == predecode.BATCH_ALU:
                ok = False
                try:
                    ok = _apply_alu_batched(pre, grows, gV, gP, ctxs,
                                            active, symcache)
                except ExecutionFault:
                    ok = False  # re-run per shred for the precise fault
                if ok:
                    eff = Effect()
                    for i in active:
                        account_instruction(recs[i], pre.instr, eff, config)
                    outcome.lanes_retired += len(active)
                    ip += 1
                    continue
                # fall through to the per-shred reference step

            if cls == predecode.BATCH_MEM:
                ok = False
                try:
                    ok = _apply_mem_batched(device, pre, grows, gV, gP,
                                            ctxs, active, recs, config,
                                            outcome)
                except TlbMiss:
                    # some lane's page is unmapped: the per-shred
                    # reference step peels the miss in queue order
                    ok = False
                except ExecutionFault:
                    ok = False
                if ok:
                    if recorder is not None:
                        recorder.note(ip, "m")
                    ip += 1
                    continue
                # fall through to the per-shred reference step

            if recorder is not None:
                recorder.reset()
            # scalar semantics write through the lane views into the
            # root arrays, so a pack syncs out first and refreshes the
            # survivors' rows afterwards
            sync_out(active)
            survivors, pairs = step_per_shred(list(active))
            defer(pairs)
            sync_in(survivors)
            active = survivors
            ip += 1

        # deferred phase: every peeled shred now runs to completion in
        # queue order, so ATR services, CEH proxies and SPAWNs happen in
        # the exact global order the scalar engine produces
        for i, at_ip in sorted(pending):
            interp = ShredInterpreter(shreds[i], ctxs[i], exo, config,
                                      entry_ip=at_ip, run_record=recs[i])
            try:
                interp.run()
            finally:
                live_contexts.pop(shreds[i].shred_id, None)
    finally:
        for shred in shreds:
            live_contexts.pop(shred.shred_id, None)

    _replay_charges(device, ctxs, recs)
    outcome.batched_translations = (device.view.batched_translations
                                    - base_batched_translations)
    outcome.tlb_vector_hits = (device.view.tlb.vector_hits
                               - base_vector_hits)
    return outcome


# ---------------------------------------------------------------------------
# batched ALU datapath
# ---------------------------------------------------------------------------


def _read_batched(operand, rows: np.ndarray, n: int, V: np.ndarray,
                  P: np.ndarray, ctxs, active,
                  symcache: Optional[dict] = None) -> np.ndarray:
    """Batched equivalent of ``operand.read(ctx, n)``: (rows, n) float64."""
    if isinstance(operand, RegOperand):
        return V[rows, operand.reg, :n]
    if isinstance(operand, RangeOperand):
        if operand.count == n:  # one element (lane 0) per named register
            return V[rows, operand.start:operand.stop + 1, 0]
        block = V[rows, operand.start:operand.stop + 1, :]
        return block.reshape(len(rows), -1)[:, :n]
    if isinstance(operand, ImmOperand):
        return np.full((len(rows), n), operand.value, dtype=np.float64)
    if isinstance(operand, SymOperand):
        if symcache is not None:
            entry = symcache.get(operand.name)
            if entry is None:
                entry = (np.empty(len(ctxs), dtype=np.float64),
                         np.zeros(len(ctxs), dtype=bool))
                symcache[operand.name] = entry
            vals, filled = entry
            # the cache is indexed by shred; on a dense sub-gang pack
            # the rows are pack-relative, so gather by lane instead
            lanes = rows if V.shape[0] == len(ctxs) else np.asarray(active)
            if not filled[lanes].all():
                # resolve misses in queue order so an unbound symbol
                # faults on exactly the shred the scalar engine blames
                for i in active:
                    if not filled[i]:
                        vals[i] = ctxs[i].resolve_symbol(operand.name)
                        filled[i] = True
            return np.repeat(vals[lanes], n).reshape(len(rows), n)
        out = np.empty((len(rows), n), dtype=np.float64)
        for j, i in enumerate(active):
            out[j, :] = ctxs[i].resolve_symbol(operand.name)
        return out
    if isinstance(operand, PredOperand):
        return P[rows, operand.index, :n].astype(np.float64)
    raise ExecutionFault(f"operand {operand!r} is not gang-readable")


def _write_masked_batched(dst, rows: np.ndarray, values: np.ndarray,
                          mask: Optional[np.ndarray], ty: DataType, n: int,
                          V: np.ndarray, P: np.ndarray, ctxs, active,
                          prewrapped: bool = False) -> None:
    """Batched equivalent of ``semantics._write_masked``.

    ``prewrapped`` marks ``values`` as already narrowed by ``ty.wrap``;
    the unguarded writeback can then skip the (idempotent) re-wrap.  A
    guard mask blends in old register lanes, which the scalar path wraps
    at writeback, so masked writes always wrap.
    """
    if mask is not None:
        old = _read_batched(dst, rows, n, V, P, ctxs, active)
        values = np.where(mask, values, old)
        prewrapped = False
    # wrap-on-write, as Operand.write does
    wrapped = values if prewrapped else ty.wrap(values)
    if isinstance(dst, RegOperand):
        V[rows, dst.reg, :wrapped.shape[1]] = wrapped
        return
    # RangeOperand (predecode guarantees one of the two)
    if dst.count == n:
        V[rows, dst.start:dst.stop + 1, 0] = wrapped
        return
    nregs = dst.count
    padded = np.zeros((len(rows), nregs * VLEN), dtype=np.float64)
    padded[:, :wrapped.shape[1]] = wrapped
    V[rows, dst.start:dst.stop + 1, :] = padded.reshape(len(rows), nregs,
                                                        VLEN)


def _batched_guard_mask(instr, rows: np.ndarray, n: int,
                        P: np.ndarray) -> Optional[np.ndarray]:
    """Batched ``semantics._guard_mask``: (rows, n) bool or None."""
    if instr.pred is None or instr.opcode is Opcode.BR:
        return None
    width = min(n, VLEN)
    mask = P[rows, instr.pred.index, :width]
    if instr.pred.negate:
        mask = ~mask
    if n > width:
        reps = -(-n // width)
        mask = np.tile(mask, (1, reps))[:, :n]
    return mask


def _apply_alu_batched(pre, rows: np.ndarray, V: np.ndarray, P: np.ndarray,
                       ctxs, active,
                       symcache: Optional[dict] = None) -> bool:
    """One vectorized ALU step over every active shred.

    Returns False (writing nothing) when the step must be replayed per
    shred to reproduce a precise architectural fault; raises
    ExecutionFault for batch-level faults the caller treats the same way.
    """
    instr = pre.instr
    op = pre.opcode
    ty = instr.dtype
    n = instr.width
    mask = _batched_guard_mask(instr, rows, n, P)

    if op is Opcode.CMP:
        a = ty.wrap(_read_batched(instr.srcs[0], rows, n, V, P, ctxs,
                                  active, symcache))
        b = ty.wrap(_read_batched(instr.srcs[1], rows, n, V, P, ctxs,
                                  active, symcache))
        res = semantics._COMPARES[instr.cond](a, b)
        out = res[:, :VLEN] if n > VLEN else res
        idx = instr.dsts[0].index
        P[rows, idx, :out.shape[1]] = out
        P[rows, idx, out.shape[1]:] = False
        return True

    if op is Opcode.SEL:
        sel = P[rows, instr.srcs[0].index, :min(n, VLEN)]
        if n > VLEN:
            sel = np.tile(sel, (1, -(-n // VLEN)))[:, :n]
        a = _read_batched(instr.srcs[1], rows, n, V, P, ctxs, active,
                          symcache)
        b = _read_batched(instr.srcs[2], rows, n, V, P, ctxs, active,
                          symcache)
        _write_masked_batched(instr.dsts[0], rows, np.where(sel, a, b), mask,
                              ty, n, V, P, ctxs, active)
        return True

    if op is Opcode.ILV:
        half = n // 2
        a = _read_batched(instr.srcs[0], rows, half, V, P, ctxs, active,
                          symcache)
        b = _read_batched(instr.srcs[1], rows, half, V, P, ctxs, active,
                          symcache)
        out = np.empty((len(rows), n), dtype=np.float64)
        out[:, 0::2] = a
        out[:, 1::2] = b
        _write_masked_batched(instr.dsts[0], rows, out, mask, ty, n, V, P,
                              ctxs, active)
        return True

    srcs = [_read_batched(s, rows, n, V, P, ctxs, active, symcache)
            for s in instr.srcs]
    prewrapped = False
    with np.errstate(over="ignore", invalid="ignore"):
        result = semantics.execute_alu_batched(instr, srcs, ty, len(rows))
        if ty is DataType.F:
            # overflow is detected at single-precision writeback width;
            # any overflowing shred must take the architectural per-lane
            # fault
            narrowed = ty.wrap_unguarded(result)
            inf_rows = np.isinf(narrowed).any(axis=1)
            if bool(inf_rows.any()):
                # only now is the (costly) per-source finiteness check
                # needed: an inf produced from non-finite sources is a
                # pass-through, not an overflow
                finite = np.ones(len(rows), dtype=bool)
                for s in srcs:
                    finite &= np.isfinite(ty.wrap_unguarded(s)).all(axis=1)
                if bool((inf_rows & finite).any()):
                    return False
            # wrap is idempotent: reuse the narrowed result at writeback
            result = narrowed
            prewrapped = True
    if op in (Opcode.HADD, Opcode.HMAX):
        V[rows, instr.dsts[0].reg, :1] = result if prewrapped \
            else ty.wrap(result)  # lane 0, unmasked
        return True
    _write_masked_batched(instr.dsts[0], rows, result, mask, ty, n, V, P,
                          ctxs, active, prewrapped=prewrapped)
    return True


# ---------------------------------------------------------------------------
# batched memory datapath
# ---------------------------------------------------------------------------
#
# The lockstep memory step handles only the fully regular case: every
# active shred binds the same Surface descriptor, every lane index is in
# range, and every page the access touches already translates.  Anything
# else returns False (or lets TlbMiss/ExecutionFault propagate) *before
# mutating any state* — no register writes, no memory writes, no charge
# log entries, no accounting — and the caller falls through to
# step_per_shred, whose scalar semantics reproduce the precise
# architectural behaviour (queue-order ATR peels, per-shred faults,
# MemorySystemError crashes).  That ordering discipline is what keeps the
# fast path bit-identical: it only ever commits accesses that scalar
# execution would have completed without any globally-ordered side effect.


def _gang_surface(name, ctxs, active):
    """The surface every active shred binds under ``name``, as
    ``(reference, deltas)``.

    ``deltas`` is None when every shred binds the *same* Surface object
    (the single-launch case).  When shreds bind *different* descriptors
    — the cross-launch coalescing of the serving layer merges requests
    whose surfaces are distinct allocations — the batched path still
    applies if every binding is *congruent* with the reference (same
    width, height, pitch, tiling and dtype): the layout arithmetic of
    :meth:`~repro.memory.surface.Surface.element_addrs` is then
    identical up to the base, so a per-lane base delta broadcast onto
    the reference's addresses yields every lane's exact addresses.

    Returns ``(None, None)`` when any shred lacks the binding or binds
    a non-congruent surface (the per-shred reference step then reports
    the precise per-shred fault)."""
    ref = ctxs[active[0]].shred.surfaces.get(name)
    if ref is None:
        return None, None
    deltas = None
    for pos, i in enumerate(active[1:], start=1):
        surf = ctxs[i].shred.surfaces.get(name)
        if surf is ref:
            continue
        if (surf is None or surf.width != ref.width
                or surf.height != ref.height
                or surf.pitch != ref.pitch
                or surf.tiling is not ref.tiling
                or surf.dtype is not ref.dtype):
            return None, None
        if deltas is None:
            deltas = np.zeros(len(active), dtype=np.int64)
        deltas[pos] = surf.base - ref.base
    return ref, deltas


def _lane_bases(surf, deltas, count: int) -> np.ndarray:
    """Per-lane surface base addresses for deferred charge logging."""
    bases = np.full(count, surf.base, dtype=np.int64)
    if deltas is not None:
        bases += deltas
    return bases


def _type_ok(surf, ty: DataType) -> bool:
    """Mirror of ``ShredContext._check_type`` (False -> per-shred fault)."""
    return ty.size == surf.dtype.size and ty.is_float == surf.dtype.is_float


def _scalar_coord_batched(operand, offset: int, rows, V, P, ctxs, active):
    """Batched ``int(operand.read(ctx, 1)[0]) + offset``: one truncated
    integer per shred, or None when any lane is non-finite (``int()`` of
    nan/inf raises in the scalar path, so that path must replay it)."""
    raw = _read_batched(operand, rows, 1, V, P, ctxs, active)[:, 0]
    if not np.isfinite(raw).all():
        return None
    return np.trunc(raw).astype(np.int64) + offset


def _write_block_batched(dst, rows, values, ty: DataType, n: int,
                         V: np.ndarray) -> None:
    """Batched ldblk writeback: ``write_packed`` for ranges (zero-padding
    the trailing lanes of the last register), ``write_lanes`` for a
    single register (trailing lanes untouched)."""
    wrapped = ty.wrap(values)
    if isinstance(dst, RangeOperand):
        nregs = -(-n // VLEN)
        k = len(rows)
        padded = np.zeros((k, nregs * VLEN), dtype=np.float64)
        padded[:, :n] = wrapped
        V[rows, dst.start:dst.start + nregs, :] = padded.reshape(
            k, nregs, VLEN)
    else:  # RegOperand with n <= VLEN (predecode-checked)
        V[rows, dst.reg, :n] = wrapped


def _retire_mem(pre, eff, active, recs, config, outcome) -> bool:
    """Account one batched memory instruction for every active shred."""
    for i in active:
        account_instruction(recs[i], pre.instr, eff, config)
    outcome.lanes_retired += len(active)
    outcome.batched_mem_lanes += len(active)
    return True


def _apply_mem_batched(device, pre, rows: np.ndarray, V: np.ndarray,
                       P: np.ndarray, ctxs, active, recs, config,
                       outcome, account: bool = True) -> bool:
    """One lockstep memory step over every active shred.

    Returns True after committing the batched access and its accounting;
    False (with nothing mutated) to fall back to the per-shred reference
    step.  A ``TlbMiss`` from the vectorized translation propagates to
    the caller for the same fallback — translation happens before any
    writeback, so the abandoned attempt is side-effect free.

    ``account=False`` commits the data-path effects but skips the
    per-shred accounting — the megaop tier charges retired instructions
    in bulk from its precomputed trace entries instead.
    """
    instr = pre.instr
    op = pre.opcode
    ty = instr.dtype
    n = instr.width
    view = device.view
    phys = device.space.physical

    if op in (Opcode.LD, Opcode.ST):
        mem = instr.srcs[0]
        surf, deltas = _gang_surface(mem.surface, ctxs, active)
        if surf is None or not _type_ok(surf, ty):
            return False
        index = _scalar_coord_batched(mem.index, mem.offset, rows, V, P,
                                      ctxs, active)
        if index is None:
            return False
        if int(index.min()) < 0 or int(index.max()) + n > surf.nelems:
            return False  # scalar raises MemorySystemError per shred
        elems = index[:, None] + np.arange(n, dtype=np.int64)
        addrs = surf.element_addrs(elems % surf.width, elems // surf.width)
        if deltas is not None:
            addrs = addrs + deltas[:, None]
        esize = surf.esize
        bases = _lane_bases(surf, deltas, len(active))
        mask = _batched_guard_mask(instr, rows, n, P)

        if op is Opcode.LD:
            paddrs = view.translate_batch(addrs)
            values = phys.gather(paddrs, surf.dtype.np_dtype).astype(
                np.float64)
            _write_masked_batched(instr.dsts[0], rows, values, mask, ty, n,
                                  V, P, ctxs, active)
            for pos, i in enumerate(active):
                ctxs[i].charge_log.append(
                    (int(bases[pos]) + int(index[pos]) * esize,
                     n * esize, False))
            return (_retire_mem(pre, Effect(), active, recs, config,
                                outcome) if account else True)

        # ST
        values = ty.wrap(_read_batched(instr.srcs[1], rows, n, V, P, ctxs,
                                       active))
        if mask is not None and len(active) > 1:
            # the scalar masked store is a read-modify-write: a later
            # shred's old-value read sees earlier shreds' merged writes
            # when their ranges overlap, which one batched pre-read
            # cannot reproduce.  Lanes on different surfaces (distinct
            # allocations) never alias; only equal-base lanes can.
            if deltas is None:
                spans = np.sort(index)
                if (np.diff(spans) < n).any():
                    return False
            else:
                order = np.lexsort((index, deltas))
                same = deltas[order][1:] == deltas[order][:-1]
                if (same & (np.diff(index[order]) < n)).any():
                    return False
        paddrs = view.translate_batch(addrs, write=True)
        if mask is not None:
            old = phys.gather(paddrs, surf.dtype.np_dtype).astype(np.float64)
            values = np.where(mask, values, old)
            for pos, i in enumerate(active):
                ctxs[i].charge_log.append(
                    (int(bases[pos]) + int(index[pos]) * esize,
                     n * esize, False))
        phys.scatter(paddrs, np.asarray(values).astype(surf.dtype.np_dtype))
        for pos, i in enumerate(active):
            ctxs[i].charge_log.append(
                (int(bases[pos]) + int(index[pos]) * esize, n * esize, True))
        return (_retire_mem(pre, Effect(), active, recs, config,
                            outcome) if account else True)

    if op in (Opcode.LDBLK, Opcode.STBLK):
        blk = instr.srcs[0]
        surf, deltas = _gang_surface(blk.surface, ctxs, active)
        if surf is None or not _type_ok(surf, ty):
            return False
        x0 = _scalar_coord_batched(blk.x, 0, rows, V, P, ctxs, active)
        y0 = _scalar_coord_batched(blk.y, 0, rows, V, P, ctxs, active)
        if x0 is None or y0 is None:
            return False
        w, h = instr.block
        k = len(active)
        esize = surf.esize
        col = np.arange(w, dtype=np.int64)[None, None, :]
        row = np.arange(h, dtype=np.int64)[None, :, None]

        if op is Opcode.LDBLK:
            # edge-clamped grid: consecutive clipped columns cover every
            # element of read_block's contiguous clamped row reads, so
            # the translated footprint matches scalar exactly
            xs = np.clip(x0[:, None, None] + col, 0, surf.width - 1)
            ys = np.clip(y0[:, None, None] + row, 0, surf.height - 1)
            addrs = surf.element_addrs(xs, ys)
            if deltas is not None:
                addrs = addrs + deltas[:, None, None]
            paddrs = view.translate_batch(addrs)
            values = phys.gather(paddrs, surf.dtype.np_dtype).astype(
                np.float64).reshape(k, h * w)
            _write_block_batched(instr.dsts[0], rows, values, ty, n, V)
            # per-row charge spans, clamped as surface_read_block charges
            yy = np.clip(y0[:, None] + np.arange(h, dtype=np.int64), 0,
                         surf.height - 1)
            lo = surf.element_addrs(
                np.clip(x0, 0, surf.width - 1)[:, None], yy)
            hi = surf.element_addrs(
                np.clip(x0 + w - 1, 0, surf.width - 1)[:, None], yy) + esize
            if deltas is not None:
                lo = lo + deltas[:, None]
                hi = hi + deltas[:, None]
            span_lo = np.minimum(lo, hi - 1)
            span_sz = np.maximum(hi - lo, esize)
            for pos, i in enumerate(active):
                log = ctxs[i].charge_log
                for r in range(h):
                    log.append((int(span_lo[pos, r]),
                                int(span_sz[pos, r]), False))
            return (_retire_mem(pre, Effect(), active, recs, config,
                                outcome) if account else True)

        # STBLK: block stores never clamp — out of bounds is a fault
        if (int(x0.min()) < 0 or int(y0.min()) < 0
                or int(x0.max()) + w > surf.width
                or int(y0.max()) + h > surf.height):
            return False  # scalar raises MemorySystemError per shred
        src = instr.srcs[1]
        if isinstance(src, RangeOperand):
            nregs = -(-n // VLEN)
            values = V[rows, src.start:src.start + nregs, :].reshape(
                k, -1)[:, :n]
        else:
            values = V[rows, src.reg, :n]
        typed = np.asarray(ty.wrap(values), dtype=np.float64).reshape(
            k, h, w).astype(surf.dtype.np_dtype)
        xs = x0[:, None, None] + col
        ys = y0[:, None, None] + row
        addrs = surf.element_addrs(xs, ys)
        if deltas is not None:
            addrs = addrs + deltas[:, None, None]
        paddrs = view.translate_batch(addrs, write=True)
        # flattened scatter order is lane-major = shred queue order, so
        # duplicate addresses resolve last-writer-wins exactly as the
        # scalar engine's sequential per-shred stores do
        phys.scatter(paddrs, typed)
        yy = y0[:, None] + np.arange(h, dtype=np.int64)
        lo = surf.element_addrs(x0[:, None], yy)
        hi = surf.element_addrs((x0 + w - 1)[:, None], yy) + esize
        if deltas is not None:
            lo = lo + deltas[:, None]
            hi = hi + deltas[:, None]
        span_lo = np.minimum(lo, hi - 1)
        span_sz = np.maximum(hi - lo, esize)
        for pos, i in enumerate(active):
            log = ctxs[i].charge_log
            for r in range(h):
                log.append((int(span_lo[pos, r]),
                            int(span_sz[pos, r]), True))
        return (_retire_mem(pre, Effect(), active, recs, config,
                            outcome) if account else True)

    # SAMPLE
    blk = instr.srcs[0]
    surf, deltas = _gang_surface(blk.surface, ctxs, active)
    if surf is None:  # the sampler path performs no type check
        return False
    xs = _read_batched(blk.x, rows, n, V, P, ctxs, active)
    ys = _read_batched(blk.y, rows, n, V, P, ctxs, active)
    sampler = device.sampler
    if sampler.filter_mode == "nearest":
        xi = np.clip(np.floor(xs + 0.5).astype(np.int64), 0, surf.width - 1)
        yi = np.clip(np.floor(ys + 0.5).astype(np.int64), 0, surf.height - 1)
        addrs = surf.element_addrs(xi, yi)
        if deltas is not None:
            addrs = addrs + deltas[:, None]
        values = phys.gather(
            view.translate_batch(addrs),
            surf.dtype.np_dtype).astype(np.float64)
    else:  # bilinear, the exact arithmetic of Surface.sample_bilinear
        x0 = np.clip(np.floor(xs).astype(np.int64), 0, surf.width - 1)
        y0 = np.clip(np.floor(ys).astype(np.int64), 0, surf.height - 1)
        x1 = np.minimum(x0 + 1, surf.width - 1)
        y1 = np.minimum(y0 + 1, surf.height - 1)
        fx = np.clip(xs - x0, 0.0, 1.0)
        fy = np.clip(ys - y0, 0.0, 1.0)
        if surf.tiling is TileMode.LINEAR:
            # the scalar sampler's compact-footprint path reads whole
            # bounding boxes; demand a contiguous superset of every
            # lane's box so a page scalar would have faulted on faults
            # here too (and falls back to the exact per-shred path)
            lo = surf.element_addr(int(x0.min()), int(y0.min()))
            hi = surf.element_addr(int(x1.max()), int(y1.max())) + surf.esize
            if deltas is None:
                pages = np.arange(lo >> PAGE_SHIFT,
                                  ((hi - 1) >> PAGE_SHIFT) + 1,
                                  dtype=np.int64)
            else:
                # one box per distinct surface, translated in one call
                pages = np.unique(np.concatenate([
                    np.arange((lo + d) >> PAGE_SHIFT,
                              ((hi + d - 1) >> PAGE_SHIFT) + 1,
                              dtype=np.int64)
                    for d in np.unique(deltas)]))
            view.translate_batch(pages << PAGE_SHIFT)
        a00 = surf.element_addrs(x0, y0)
        a10 = surf.element_addrs(x1, y0)
        a01 = surf.element_addrs(x0, y1)
        a11 = surf.element_addrs(x1, y1)
        if deltas is not None:
            off = deltas[:, None]
            a00, a10 = a00 + off, a10 + off
            a01, a11 = a01 + off, a11 + off
        taps = view.gather(
            np.stack([a00, a10, a01, a11]),
            surf.dtype.np_dtype).astype(np.float64)
        p00, p10, p01, p11 = taps
        top = p00 + (p10 - p00) * fx
        bot = p01 + (p11 - p01) * fx
        values = top + (bot - top) * fy
    _write_masked_batched(instr.dsts[0], rows, values, None, ty, n, V, P,
                          ctxs, active)
    sampler.samples += len(active) * n
    if not account:
        return True
    eff = Effect()
    eff.used_sampler = True
    eff.bytes_read = n * ty.size
    return _retire_mem(pre, eff, active, recs, config, outcome)


# ---------------------------------------------------------------------------
# deferred first-touch line charging
# ---------------------------------------------------------------------------


def _replay_charges(device, ctxs: Sequence[GangShredContext],
                    recs: Sequence[ShredRun]) -> None:
    """Replay deferred device spans per shred in queue order.

    This reproduces the scalar engine's charging exactly: it walks each
    shred's complete access log against the device's first-touch line
    sets before moving to the next shred, which is the order the scalar
    engine executes in.
    """
    line = ShredContext._LINE
    for ctx, rec in zip(ctxs, recs):
        for lo, nbytes, write in ctx.charge_log:
            lines = device.touched_write_lines if write \
                else device.touched_read_lines
            first = lo // line
            last = (lo + max(nbytes, 1) - 1) // line
            fresh = [ln for ln in range(first, last + 1) if ln not in lines]
            lines.update(fresh)
            charge = len(fresh) * line
            if write:
                rec.bytes_written += charge
            else:
                rec.bytes_read += charge
        ctx.charge_log.clear()
