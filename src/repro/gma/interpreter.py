"""Functional interpreter for one shred, with ATR and CEH integration.

Each executed instruction contributes a ``(issue, latency)`` pair to the
shred's *trace*; the EU timing model (:mod:`repro.gma.eu`) later replays
traces under switch-on-stall multithreading.  Architectural events are
handled the EXO way:

* :class:`~repro.errors.TlbMiss` — suspend, ATR proxy round trip on the
  IA32 sequencer, retry the same instruction;
* :class:`~repro.errors.ExecutionFault` — suspend, CEH round trip, the
  IA32 handler emulates the instruction, resume after it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ExecutionFault, TlbMiss
from ..exo.exoskeleton import Exoskeleton
from ..exo.shred import ShredDescriptor, ShredState
from ..isa import semantics
from ..isa.opcodes import OpKind
from ..isa.types import VLEN
from .context import ShredContext
from .timing import GmaTimingConfig

#: Runaway-loop backstop shared by the scalar and gang engines.
MAX_INSTRUCTIONS = 2_000_000


@dataclass
class ShredRun:
    """The record of one shred's complete functional execution."""

    shred: ShredDescriptor
    trace: List[Tuple[int, int]] = field(default_factory=list)
    #: Per-trace-entry (uses, defs) register sets; None for proxy
    #: penalties.  Consumed by the scoreboard post-pass.
    trace_effects: List = field(default_factory=list)
    instructions: int = 0
    issue_cycles: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    sampler_samples: int = 0
    atr_events: int = 0
    ceh_events: int = 0
    spawned: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written


def trace_entry(instr) -> Tuple[int, int]:
    """The (issue, latency) trace entry one retired instruction adds.

    Static per instruction, so the fusion compiler
    (:mod:`repro.gma.fusion`) precomputes whole blocks of entries at
    compile time with the exact formulas the scalar path charges.
    """
    info = instr.info
    lanes_factor = max(1, -(-instr.width // VLEN))
    if info.kind is OpKind.MEMORY:
        # fixed setup plus one cycle per 16-element beat of transfer
        return info.issue + lanes_factor, info.latency
    if info.kind is OpKind.SAMPLER:
        return info.issue + lanes_factor, info.latency
    # the 16-lane datapath retires 16 elements per issue cycle
    return info.issue * lanes_factor, info.latency


def account_instruction(rec: ShredRun, instr, effect,
                        config: GmaTimingConfig) -> None:
    """Append one retired instruction to a run record.

    Shared by the scalar interpreter and the gang engine so the
    (issue, latency) trace and every counter accrue identically no matter
    which engine retired the instruction.
    """
    rec.instructions += 1
    issue, latency = trace_entry(instr)
    rec.trace.append((issue, latency))
    if config.scoreboard:
        rec.trace_effects.append(_instr_effects(instr))
    else:
        rec.trace_effects.append(None)
    rec.issue_cycles += issue
    rec.bytes_read += effect.bytes_read
    rec.bytes_written += effect.bytes_written
    if effect.used_sampler:
        rec.sampler_samples += instr.width
    rec.spawned += len(effect.spawned)


def finish_run(rec: ShredRun, config: GmaTimingConfig) -> None:
    """Apply end-of-run trace post-passes (the scoreboard rewrite)."""
    if config.scoreboard:
        rec.trace = _scoreboard_trace(rec.trace, rec.trace_effects)


class ShredInterpreter:
    """Drives one shred from entry to ``end``.

    ``entry_ip``/``run_record`` let the gang engine hand a diverged shred
    back to this reference interpreter mid-flight: execution resumes at
    the peel point and keeps accruing into the gang-started record.
    """

    def __init__(self, shred: ShredDescriptor, ctx: ShredContext,
                 exoskeleton: Exoskeleton, config: GmaTimingConfig,
                 max_instructions: int = MAX_INSTRUCTIONS,
                 entry_ip: Optional[int] = None,
                 run_record: Optional[ShredRun] = None):
        self.shred = shred
        self.ctx = ctx
        self.exoskeleton = exoskeleton
        self.config = config
        self.max_instructions = max_instructions
        self.ip = shred.entry if entry_ip is None else entry_ip
        self.run_record = run_record if run_record is not None \
            else ShredRun(shred=shred)
        self.finished = False

    @property
    def program(self):
        return self.shred.program

    def step(self) -> bool:
        """Execute one instruction (with any proxy round trips it needs).

        Returns True while the shred is still running.
        """
        if self.finished:
            return False
        program = self.program
        if self.ip >= len(program.instructions):
            self._finish()
            return False
        if self.run_record.instructions >= self.max_instructions:
            raise ExecutionFault(
                f"shred {self.shred.shred_id} exceeded "
                f"{self.max_instructions} instructions (runaway loop?)")

        instr = program.instructions[self.ip]
        effect = None
        while effect is None:
            try:
                effect = semantics.execute(program, self.ip, self.ctx)
            except TlbMiss as miss:
                self.shred.state = ShredState.SUSPENDED
                if len(miss.vaddrs) > 1:
                    # a multi-page access: coalesce every missing page
                    # into one batched proxy round trip (one penalty)
                    self.exoskeleton.request_atr_batch(
                        self.ctx.view, miss.vaddrs, write=True,
                        source=self.ctx.name)
                else:
                    self.exoskeleton.request_atr(
                        self.ctx.view, miss.vaddr, write=True,
                        source=self.ctx.name)
                self.run_record.atr_events += 1
                self.run_record.trace.append((self.config.atr_penalty_cycles, 0))
                self.run_record.trace_effects.append(None)
                self.shred.state = ShredState.RUNNING
            except ExecutionFault as fault:
                self.shred.state = ShredState.SUSPENDED
                effect = self.exoskeleton.request_ceh(
                    program, self.ip, self.ctx, fault, source=self.ctx.name)
                self.run_record.ceh_events += 1
                self.run_record.trace.append((self.config.ceh_penalty_cycles, 0))
                self.run_record.trace_effects.append(None)
                self.shred.state = ShredState.RUNNING

        self._account(instr, effect)
        if effect.ended:
            self._finish()
            return False
        self.ip = effect.next_ip if effect.next_ip is not None else self.ip + 1
        if self.ip >= len(program.instructions):
            self._finish()
            return False
        return True

    def run(self) -> ShredRun:
        """Run the shred to completion."""
        self.shred.state = ShredState.RUNNING
        while self.step():
            pass
        return self.run_record

    # -- internal ---------------------------------------------------------------

    def _account(self, instr, effect) -> None:
        account_instruction(self.run_record, instr, effect, self.config)

    def _finish(self) -> None:
        self.finished = True
        self.shred.state = ShredState.DONE
        finish_run(self.run_record, self.config)


# -- scoreboard post-pass ----------------------------------------------------

_effects_cache: dict = {}


def _instr_effects(instr):
    """(uses, defs) register sets, cached by instruction *value*.

    Instructions are frozen dataclasses, so equal instructions share one
    entry; keying by identity would break when CPython recycles object
    ids across programs.
    """
    key = instr
    cached = _effects_cache.get(key)
    if cached is None:
        from ..isa.scheduler import _effects

        eff = _effects(instr)
        # predicates share the dependence namespace, offset past registers
        uses = frozenset(eff.reg_uses) | frozenset(
            1000 + p for p in eff.pred_uses)
        defs = frozenset(eff.reg_defs) | frozenset(
            1000 + p for p in eff.pred_defs)
        cached = (uses, defs)
        _effects_cache[key] = cached
    return cached


def _scoreboard_trace(trace, effects):
    """Rewrite per-entry latencies so only true dependences stall.

    Entry i's latency becomes the wait instruction i+1 would incur for its
    operands under an operand scoreboard: max over its uses of the
    producing result's remaining latency at that point.
    """
    ready: dict = {}
    clock = 0
    waits = [0] * (len(trace) + 1)
    for i, ((issue, latency), eff) in enumerate(zip(trace, effects)):
        if eff is not None:
            uses, defs = eff
            wait = 0
            for reg in uses:
                t = ready.get(reg)
                if t is not None and t > clock:
                    wait = max(wait, t - clock)
            waits[i] = wait
            clock += wait + issue
            for reg in defs:
                ready[reg] = clock + latency
        else:
            clock += issue
    # attach each instruction's *successor* wait as its not-ready window
    out = []
    for i, (issue, _latency) in enumerate(trace):
        out.append((issue, waits[i + 1] if i + 1 < len(trace) else 0))
    # waits[i] stalls *before* instruction i; re-attach the first wait to a
    # synthetic leading bubble when present
    if waits[0]:
        out.insert(0, (waits[0], 0))
    return out
