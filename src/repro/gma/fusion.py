"""Superblock trace fusion for the gang engine.

The gang engine (PR 3/4) batches *lanes* per instruction but still pays
one Python dispatch round — batch-class switch, guard-mask build, one
``account_instruction`` call per shred — for every instruction.  On
ALU-bound kernels that dispatch is now the dominant host cost.  This
module amortizes it over whole straight-line regions:

* :func:`repro.isa.blocks.discover_blocks` finds the basic blocks once
  per program;
* :func:`get_fused` compiles each block once into a
  :class:`CompiledBlock` — the body's batched ALU steps back-to-back,
  the exact ``(issue, latency)`` trace entries and scoreboard effects
  precomputed at compile time (via the shared
  :func:`~repro.gma.interpreter.trace_entry` formulas), and the block's
  total issue-cycle charge pre-summed, so a fully retired block costs
  one ``list.extend`` per shred instead of ``ninstr`` accounting calls;
* :func:`run_fused` executes blocks, and *chains* through a terminating
  branch whenever it resolves identically across all active lanes (the
  common case for counted loops), memoizing the hot (block → successor)
  edge so a tight loop never re-probes the block table.

Compiled blocks live in the id-keyed
:class:`~repro.isa.predecode.PredecodeCache` alongside the predecode
entry and are evicted with it, so fused blocks never leak across CPython
id reuse.

**Determinism.**  Fusion never introduces a new fast path: the body
steps *are* the gang's ``_apply_alu_batched`` applied in program order,
and the per-block charge is the concatenation of exactly the per-
instruction charges (ALU and control effects move no bytes and touch no
sampler, so only ``trace`` / ``trace_effects`` / ``instructions`` /
``issue_cycles`` accrue — all order-insensitive appends).  Anything the
block cannot retire bit-identically — a batch-level ALU fault, a
divergent branch, a runaway-count boundary — charges only the
instructions already retired and returns control to the per-instruction
loop at the precise ip, where the existing deferred-peel machinery takes
over unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionFault
from ..isa import predecode
from ..isa.blocks import BasicBlock, discover_blocks
from ..isa.opcodes import Opcode
from ..isa.program import Program
from .gang import _apply_alu_batched
from .interpreter import (
    MAX_INSTRUCTIONS,
    ShredRun,
    _instr_effects,
    trace_entry,
)

#: Lazy successor-edge memo sentinel (None is a valid resolution).
_UNRESOLVED = object()


class CompiledBlock:
    """One basic block, compiled for back-to-back batched execution."""

    __slots__ = ("start", "end", "body_len", "ninstr", "steps", "term",
                 "term_ip", "target", "trace_entries", "effects", "nones",
                 "issue_total", "chain_taken", "chain_fall")

    def __init__(self, block: BasicBlock, pre_prog):
        self.start = block.start
        self.end = block.end
        self.body_len = block.body_len
        self.ninstr = block.ninstr
        #: Per body instruction: the predecoded ALU step, or None for
        #: the no-datapath controls (nop/fence).
        steps: List[Optional[object]] = []
        entries: List[Tuple[int, int]] = []
        effects: List[tuple] = []
        for ip in range(block.start, block.start + block.body_len):
            pre = pre_prog.instrs[ip]
            steps.append(pre if pre.batch_class == predecode.BATCH_ALU
                         else None)
            entries.append(trace_entry(pre.instr))
            effects.append(_instr_effects(pre.instr))
        if block.term is not None:
            term = pre_prog.instrs[block.term]
            entries.append(trace_entry(term.instr))
            effects.append(_instr_effects(term.instr))
        else:
            term = None
        self.steps = tuple(steps)
        self.term = term
        self.term_ip = block.term
        self.target = term.target if term is not None else None
        self.trace_entries = tuple(entries)
        self.effects = tuple(effects)
        self.nones = (None,) * len(entries)
        self.issue_total = sum(issue for issue, _latency in entries)
        self.chain_taken = _UNRESOLVED
        self.chain_fall = _UNRESOLVED


class FusedProgram:
    """Every compiled block of one program, keyed by leader ip."""

    __slots__ = ("blocks",)

    def __init__(self, blocks: Dict[int, CompiledBlock]):
        self.blocks = blocks


def get_fused(program: Program, pre_prog) -> Tuple[FusedProgram, int]:
    """The compiled blocks for ``program``, building them on first use.

    Returns ``(fused, newly_compiled)`` where ``newly_compiled`` counts
    blocks compiled by *this* call (0 on a cache hit) for the
    ``fusion_compiles`` counter.
    """
    fused = predecode.CACHE.lookup_fused(program)
    if fused is not None:
        return fused, 0
    blocks = discover_blocks(pre_prog, program.labels)
    compiled = {start: CompiledBlock(block, pre_prog)
                for start, block in blocks.items()}
    fused = FusedProgram(compiled)
    predecode.CACHE.store_fused(program, fused)
    return fused, len(compiled)


def _charge(block: CompiledBlock, upto: int, active: Sequence[int],
            recs: Sequence[ShredRun], config, outcome) -> None:
    """Charge ``upto`` retired instructions of this block to every
    active shred, in one extend per record.

    The entries are precomputed with the exact scalar formulas and
    concatenated in program order, so the resulting ``trace`` /
    ``trace_effects`` / ``instructions`` / ``issue_cycles`` are
    bit-identical to ``upto`` sequential ``account_instruction`` calls
    (ALU and control effects carry no bytes, sampler or spawn deltas).
    """
    if upto == 0:
        return
    if upto == block.ninstr:
        entries = block.trace_entries
        issue = block.issue_total
        effects = block.effects if config.scoreboard else block.nones
    else:
        entries = block.trace_entries[:upto]
        issue = sum(e[0] for e in entries)
        effects = (block.effects[:upto] if config.scoreboard
                   else block.nones[:upto])
    for i in active:
        rec = recs[i]
        rec.trace.extend(entries)
        rec.trace_effects.extend(effects)
        rec.instructions += upto
        rec.issue_cycles += issue
    outcome.lanes_retired += upto * len(active)


def run_fused(fused: FusedProgram, ip: int, active: List[int],
              V: np.ndarray, P: np.ndarray, ctxs, recs, config, outcome,
              defer, finish_one, symcache=None, recorder=None,
              rows=None, diverge=None, stop_ip=None):
    """Retire as many fused blocks as possible starting at ``ip``.

    Returns ``(next_ip, active)`` after making progress — the per-
    instruction loop resumes there (possibly with the gang already
    drained, ``active == []``) — or None when *zero* instructions were
    retired, so the caller's per-instruction path handles ``ip`` and
    forward progress is guaranteed.

    ``recorder`` (a :class:`repro.gma.megaop.TraceRecorder`) observes
    every uniformly resolved block exit — the megaop tier's promotion
    profile — and is reset by anything that breaks the trace.

    ``rows`` carries the gang's storage rows when ``V``/``P`` are a
    dense sub-gang pack (rows are then pack-relative, not shred
    indices); ``diverge`` routes a divergent branch's losing side
    (park-or-peel); ``stop_ip`` is the innermost pending reconvergence
    join — chaining never enters it, so the gang suspends there
    precisely.
    """
    progressed = False
    block = fused.blocks.get(ip)
    # ``active`` is invariant across chained blocks (divergence returns),
    # so the row index array is built once per call, not once per block
    if rows is None:
        rows = np.asarray(active)
    # re-admitted gangs need not hold uniform counts: budget from the
    # most advanced record so no lane retires past the runaway cap
    max_budget = MAX_INSTRUCTIONS - max(recs[i].instructions
                                        for i in active) if active else 0
    while True:
        if block is None:
            return (ip, active) if progressed else None
        # the per-instruction loop checks the runaway cap before every
        # instruction; a block of k only runs when all k checks pass
        if block.ninstr > max_budget:
            return (ip, active) if progressed else None
        max_budget -= block.ninstr

        failed_at = -1
        for j, step in enumerate(block.steps):
            if step is None:
                continue
            ok = False
            try:
                ok = _apply_alu_batched(step, rows, V, P, ctxs,
                                        active, symcache)
            except ExecutionFault:
                ok = False
            if not ok:
                failed_at = j
                break
        if failed_at >= 0:
            # steps 0..failed_at-1 committed exactly as the per-
            # instruction loop would have; the failing step wrote
            # nothing, so the loop re-runs it (and its per-shred
            # fallback) at the precise ip
            _charge(block, failed_at, active, recs, config, outcome)
            if recorder is not None:
                recorder.reset()
            resume = block.start + failed_at
            if failed_at == 0 and not progressed:
                return None
            return (resume, active)

        term = block.term
        if term is None:
            # boundary block: charge the body, fall through.  block.end
            # is either another leader (chain on) or a non-fusable ip
            # the per-instruction loop owns (next probe misses).
            _charge(block, block.body_len, active, recs, config, outcome)
            outcome.fused_blocks_retired += 1
            progressed = True
            if recorder is not None:
                recorder.note(block.start, "x")
            ip = block.end
            if ip == stop_ip:  # pending reconvergence join: suspend
                return (ip, active)
            if recorder is not None and recorder.promoted(ip):
                return (ip, active)
            succ = block.chain_fall
            if succ is _UNRESOLVED:
                succ = fused.blocks.get(ip)
                block.chain_fall = succ
            block = succ
            continue

        op = term.opcode
        if op is Opcode.END:
            _charge(block, block.ninstr, active, recs, config, outcome)
            outcome.fused_blocks_retired += 1
            if recorder is not None:
                recorder.reset()
            for i in active:
                finish_one(i)
            return (block.end, [])

        # JMP / BR with a predecoded target
        if op is Opcode.JMP and term.instr.pred is None:
            taken = np.ones(len(active), dtype=bool)
        else:
            guard = term.instr.pred
            any_lane = P[rows, guard.index, :].any(axis=1)
            taken = ~any_lane if guard.negate else any_lane
        # the branch's trace entry is direction independent: charge it
        # (with the body) for every active shred before any split
        _charge(block, block.ninstr, active, recs, config, outcome)
        outcome.fused_blocks_retired += 1
        progressed = True
        if taken.all():
            outcome.trace_chains += 1
            if recorder is not None:
                recorder.note(block.start, "t")
            ip = term.target
            if ip == stop_ip:  # pending reconvergence join: suspend
                return (ip, active)
            if recorder is not None and recorder.promoted(ip):
                return (ip, active)
            succ = block.chain_taken
            if succ is _UNRESOLVED:
                succ = fused.blocks.get(ip)
                block.chain_taken = succ
            block = succ
            continue
        if not taken.any():
            outcome.trace_chains += 1
            if recorder is not None:
                recorder.note(block.start, "f")
            ip = block.end
            if ip == stop_ip:  # pending reconvergence join: suspend
                return (ip, active)
            if recorder is not None and recorder.promoted(ip):
                return (ip, active)
            succ = block.chain_fall
            if succ is _UNRESOLVED:
                succ = fused.blocks.get(ip)
                block.chain_fall = succ
            block = succ
            continue

        # divergence: exactly the per-instruction loop's split — the
        # majority stays ganged, ties keep the lowest queue position's
        # outcome, the minority parks toward the reconvergence point or
        # defers at its exit ip
        if recorder is not None:
            recorder.reset()
        taken_count = int(taken.sum())
        if taken_count * 2 == len(active):
            keep_taken = bool(taken[0])
        else:
            keep_taken = taken_count * 2 > len(active)
        stay_ip = term.target if keep_taken else block.end
        exit_ip = block.end if keep_taken else term.target
        losers = [i for pos, i in enumerate(active)
                  if bool(taken[pos]) != keep_taken]
        if diverge is not None:
            diverge(block.term_ip, exit_ip, losers)
        else:
            defer([(i, exit_ip) for i in losers])
        active = [i for pos, i in enumerate(active)
                  if bool(taken[pos]) == keep_taken]
        return (stay_ip, active)
