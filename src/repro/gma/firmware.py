"""The emulation firmware: shred descriptors -> execution on the device.

"The emulation firmware is responsible for translating a shred
descriptor, which includes shred continuation information like instruction
and data pointers to the shared memory, into implementation-specific
hardware commands that the GMA X3000 exo-sequencers can consume and
execute.  The emulation layer hides all device-specific hardware details
from the programmer" (paper section 3.4).

The firmware runs the functional pass (every shred's instructions execute
through :mod:`repro.gma.interpreter`, in dependency-respecting queue
order) and then the timing pass (:func:`repro.gma.eu.simulate_device`,
iterated to a fixed point when producer-consumer dependencies gate shred
start times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..errors import ExecutionFault, SchedulingError
from ..exo.shred import ShredDescriptor
from ..isa import predecode
from .context import ShredContext
from .eu import DeviceTiming, simulate_device
from .gang import gang_eligible, run_gang
from .interpreter import ShredInterpreter, ShredRun
from .timing import GmaTimingConfig
from .workqueue import WorkQueue

#: Fixed-point iterations for dependency-gated timing.
_TIMING_ROUNDS = 4


@dataclass
class GmaRunResult:
    """Everything one device run produced."""

    runs: List[ShredRun] = field(default_factory=list)
    timing: DeviceTiming = None
    shreds_executed: int = 0
    instructions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    atr_events: int = 0
    ceh_events: int = 0
    spawned_shreds: int = 0
    pages_prepared: int = 0  # GTT entries validated at launch (section 4.6)
    gang_lanes_retired: int = 0   # instructions retired while ganged
    scalar_fallbacks: int = 0     # shreds executed by the scalar engine
    predecode_hits: int = 0       # decode-cache hits during this run
    predecode_misses: int = 0
    batched_mem_lanes: int = 0    # memory lanes retired in lockstep
    batched_translations: int = 0  # pages resolved by vectorized translate
    tlb_vector_hits: int = 0      # pages served by the TLB vector snapshot
    fused_blocks_retired: int = 0  # superblocks retired by the fused path
    trace_chains: int = 0         # uniform branches chained block-to-block
    fusion_compiles: int = 0      # blocks compiled during this run
    megaops_retired: int = 0      # whole-trace traversals retired by megaops
    megaop_compiles: int = 0      # hot cycles promoted to megaops
    megaop_deopts: int = 0        # megaop guard failures (divergence/fault)
    gang_repacks: int = 0         # reconvergence merges (sub-gangs re-admitted)
    lanes_readmitted: int = 0     # parked lanes merged back at a join

    @property
    def cycles(self) -> float:
        return self.timing.cycles if self.timing else 0.0

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def gang_residency_pct(self) -> float:
        """Share of retired instructions that retired while ganged."""
        if not self.instructions:
            return 0.0
        return 100.0 * self.gang_lanes_retired / self.instructions


class EmulationFirmware:
    """Executes work-queue contents on the device model."""

    def __init__(self, device):
        self.device = device

    def run_queue(self, queue: WorkQueue, extra_bytes: int = 0) -> GmaRunResult:
        """Drain the queue: functional execution + device timing."""
        result = GmaRunResult()
        mailboxes: Dict[int, list] = {}
        live_contexts: Dict[int, ShredContext] = {}
        self.device._mailboxes = mailboxes
        self.device._live_contexts = live_contexts
        self.device._spawn_queue = queue

        engine = getattr(self.device, "engine", "scalar")
        cache = predecode.CACHE
        hits_before, misses_before = cache.hits, cache.misses

        executed: List[ShredRun] = []
        ganged = engine in ("gang", "fused", "megaop")
        while len(queue):
            if ganged:
                batch = self._gang_batch(queue)
                if batch is not None:
                    outcome = run_gang(self.device, batch, mailboxes,
                                       live_contexts,
                                       fusion=engine in ("fused", "megaop"),
                                       megaop=engine == "megaop")
                    for shred in batch:
                        queue.mark_done(shred.shred_id)
                    executed.extend(outcome.runs)
                    result.gang_lanes_retired += outcome.lanes_retired
                    result.scalar_fallbacks += outcome.scalar_fallbacks
                    result.batched_mem_lanes += outcome.batched_mem_lanes
                    result.batched_translations += \
                        outcome.batched_translations
                    result.tlb_vector_hits += outcome.tlb_vector_hits
                    result.fused_blocks_retired += \
                        outcome.fused_blocks_retired
                    result.trace_chains += outcome.trace_chains
                    result.fusion_compiles += outcome.fusion_compiles
                    result.megaops_retired += outcome.megaops_retired
                    result.megaop_compiles += outcome.megaop_compiles
                    result.megaop_deopts += outcome.megaop_deopts
                    result.gang_repacks += outcome.gang_repacks
                    result.lanes_readmitted += outcome.lanes_readmitted
                    continue
            shred = queue.pop_ready()
            if shred is None:
                raise SchedulingError(
                    "work queue deadlock: pending shreds wait on "
                    "dependencies that never complete")
            run = self._execute_shred(shred, mailboxes, live_contexts)
            if ganged:
                result.scalar_fallbacks += 1
            executed.append(run)
            queue.mark_done(shred.shred_id)

        # per-run deltas; under a parallel multi-device drain the split
        # between devices is approximate (the cache and its counters are
        # process wide), the fleet total stays exact
        result.predecode_hits = cache.hits - hits_before
        result.predecode_misses = cache.misses - misses_before

        undelivered = {k: v for k, v in mailboxes.items() if v}
        if undelivered:
            raise ExecutionFault(
                f"sendreg values for shreds {sorted(undelivered)} were never "
                f"delivered (consumer missing or already retired)")

        result.runs = executed
        result.shreds_executed = len(executed)
        for run in executed:
            result.instructions += run.instructions
            result.bytes_read += run.bytes_read
            result.bytes_written += run.bytes_written
            result.atr_events += run.atr_events
            result.ceh_events += run.ceh_events
            result.spawned_shreds += run.spawned

        result.timing = self._timing_fixed_point(executed, extra_bytes)
        return result

    # -- functional pass ---------------------------------------------------------

    def _gang_batch(self, queue: WorkQueue):
        """The whole pending FIFO, when it can run as one gang."""
        pending = queue.pending()
        if not gang_eligible(self.device, pending):
            return None
        return [queue.pop_ready() for _ in range(len(pending))]

    def _execute_shred(self, shred: ShredDescriptor,
                       mailboxes: Dict[int, list],
                       live_contexts: Dict[int, ShredContext]) -> ShredRun:
        ctx = ShredContext(shred, self.device.view, self.device.space,
                           device=self.device)
        # deliver producer register writes that arrived before launch
        for reg, values in mailboxes.pop(shred.shred_id, []):
            ctx.regs.write_lanes(reg, np.asarray(values, dtype=np.float64))
        live_contexts[shred.shred_id] = ctx
        interp = ShredInterpreter(shred, ctx, self.device.exoskeleton,
                                  self.device.config)
        try:
            run = interp.run()
        finally:
            live_contexts.pop(shred.shred_id, None)
        return run

    # -- timing pass -----------------------------------------------------------------

    def _timing_fixed_point(self, runs: List[ShredRun],
                            extra_bytes: int) -> DeviceTiming:
        deps_exist = any(run.shred.depends_on for run in runs)
        not_before: Dict[int, float] = {}
        timing = simulate_device(runs, self.device.config,
                                 not_before=not_before,
                                 extra_bytes=extra_bytes)
        if not deps_exist:
            return timing
        for _ in range(_TIMING_ROUNDS):
            new_gates = {}
            for run in runs:
                if run.shred.depends_on:
                    new_gates[run.shred.shred_id] = max(
                        timing.finish_times.get(dep, 0.0)
                        for dep in run.shred.depends_on)
            if new_gates == not_before:
                break
            not_before = new_gates
            timing = simulate_device(runs, self.device.config,
                                     not_before=not_before,
                                     extra_bytes=extra_bytes)
        return timing
