"""Execution context binding one shred to the device and address space."""

from __future__ import annotations


import numpy as np

from ..errors import ExecutionFault
from ..isa.registers import RegisterFile
from ..isa.types import DataType
from ..memory.address_space import AddressSpace, SequencerView
from ..memory.surface import Surface
from ..exo.shred import ShredDescriptor


class ShredContext:
    """The :class:`~repro.isa.operands.ExecContext` for one GMA shred.

    Memory accesses normally go through the exo-sequencer's translated
    ``view`` (raising :class:`~repro.errors.TlbMiss` for ATR); when CEH
    flips ``proxy_mode`` on, accesses route through the IA32 sequencer's
    demand-paged address space instead, because the emulation is running
    *on* the IA32 core.
    """

    supports_double = False

    def __init__(self, shred: ShredDescriptor, view: SequencerView,
                 space: AddressSpace, device=None):
        self.shred = shred
        self.view = view
        self.space = space
        self.device = device
        self.regs = RegisterFile()
        self.proxy_mode = False
        self._read_charge = 0
        self._write_charge = 0
        # architectural convention: vr0 lane 0 carries the shred id so
        # kernels can self-identify (used by sendreg producer/consumer)
        self.regs.write_scalar(0, float(shred.shred_id))

    # -- demand-traffic accounting (device cache model) -------------------------
    #
    # The GMA's cache captures the heavy spatial overlap between
    # neighbouring shreds' block loads ("shreds accessing adjacent or
    # overlapping macroblocks are ordered closely together in the work
    # queue so as to take advantage of spatial and temporal localities",
    # section 5.1).  Demand traffic is therefore charged per 64-byte line
    # *first touched* during a device run, not per access.

    _LINE = 64

    def _charge_span(self, lo: int, nbytes: int, write: bool) -> None:
        if self.device is None or self.proxy_mode:
            # proxy accesses run on the IA32 side: raw bytes, no device
            # cache involvement
            charge = nbytes
        else:
            lines = self.device.touched_write_lines if write \
                else self.device.touched_read_lines
            first = lo // self._LINE
            last = (lo + max(nbytes, 1) - 1) // self._LINE
            fresh = [ln for ln in range(first, last + 1) if ln not in lines]
            lines.update(fresh)
            charge = len(fresh) * self._LINE
        if write:
            self._write_charge += charge
        else:
            self._read_charge += charge

    def pop_read_charge(self) -> int:
        charge = self._read_charge
        self._read_charge = 0
        return charge

    def pop_write_charge(self) -> int:
        charge = self._write_charge
        self._write_charge = 0
        return charge

    # -- accessor selection ---------------------------------------------------

    @property
    def accessor(self):
        return self.space if self.proxy_mode else self.view

    @property
    def name(self) -> str:
        return f"shred-{self.shred.shred_id}"

    # -- symbols ----------------------------------------------------------------

    def resolve_symbol(self, name: str) -> float:
        try:
            return float(self.shred.bindings[name])
        except KeyError:
            raise ExecutionFault(
                f"unbound symbol {name!r} in shred {self.shred.shred_id} "
                f"(bindings: {sorted(self.shred.bindings)})") from None

    def _surface(self, name: str) -> Surface:
        try:
            return self.shred.surfaces[name]
        except KeyError:
            raise ExecutionFault(
                f"no surface descriptor bound for {name!r} in shred "
                f"{self.shred.shred_id} (surfaces: "
                f"{sorted(self.shred.surfaces)})") from None

    # -- surface access ------------------------------------------------------------

    def surface_read(self, name: str, index: int, count: int,
                     ty: DataType) -> np.ndarray:
        surf = self._surface(name)
        self._check_type(surf, ty)
        self._coherence_read(surf, index, count)
        self._charge_span(surf.base + index * surf.esize,
                          count * surf.esize, write=False)
        return surf.read_linear(self.accessor, index, count)

    def surface_write(self, name: str, index: int, values: np.ndarray,
                      ty: DataType) -> None:
        surf = self._surface(name)
        self._check_type(surf, ty)
        surf.write_linear(self.accessor, index, values)
        self._charge_span(surf.base + index * surf.esize,
                          values.size * surf.esize, write=True)
        self._coherence_write(surf, index, values.size)

    def surface_read_block(self, name: str, x: int, y: int, w: int, h: int,
                           ty: DataType) -> np.ndarray:
        surf = self._surface(name)
        self._check_type(surf, ty)
        if self.device is not None and not self.proxy_mode:
            # conservative span: first byte of the block to its last byte
            x0 = min(max(x, 0), surf.width - 1)
            y0 = min(max(y, 0), surf.height - 1)
            x1 = min(max(x + w - 1, 0), surf.width - 1)
            y1 = min(max(y + h - 1, 0), surf.height - 1)
            lo = surf.element_addr(x0, y0)
            hi = surf.element_addr(x1, y1) + surf.esize
            self.device.coherence.check_read("gma", lo, max(hi - lo, 0))
        xl = min(max(x, 0), surf.width - 1)
        xr = min(max(x + w - 1, 0), surf.width - 1)
        for row in range(h):
            yy = min(max(y + row, 0), surf.height - 1)
            lo = surf.element_addr(xl, yy)
            hi = surf.element_addr(xr, yy) + surf.esize
            self._charge_span(min(lo, hi - 1), max(hi - lo, surf.esize),
                              write=False)
        return surf.read_block(self.accessor, x, y, w, h)

    def surface_write_block(self, name: str, x: int, y: int,
                            values: np.ndarray, w: int, h: int,
                            ty: DataType) -> None:
        surf = self._surface(name)
        self._check_type(surf, ty)
        surf.write_block(self.accessor, x, y, values, w, h)
        for row in range(h):
            lo = surf.element_addr(x, y + row)
            hi = surf.element_addr(x + w - 1, y + row) + surf.esize
            self._charge_span(min(lo, hi - 1), max(hi - lo, surf.esize),
                              write=True)
        addr = surf.element_addr(x, y)
        self._coherence_write_raw(addr, w * h * surf.esize)

    def sample(self, name: str, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        surf = self._surface(name)
        if self.device is not None:
            return self.device.sampler.fetch(surf, self.accessor, xs, ys)
        return surf.sample_bilinear(self.accessor, xs, ys)

    # -- device services ---------------------------------------------------------------

    def send_register(self, shred_id: int, reg: int, values: np.ndarray) -> None:
        if self.device is None:
            raise ExecutionFault("sendreg requires a device")
        self.device.deliver_register(self.shred.shred_id, shred_id, reg, values)

    def spawn_shred(self, arg: float) -> None:
        if self.device is None:
            raise ExecutionFault("spawn requires a device")
        self.device.enqueue_spawn(self.shred, arg)

    def flush_device_cache(self) -> None:
        if self.device is not None:
            self.device.flush_cache()

    # -- internal -----------------------------------------------------------------------

    def _check_type(self, surf: Surface, ty: DataType) -> None:
        if ty.size != surf.dtype.size or ty.is_float != surf.dtype.is_float:
            raise ExecutionFault(
                f"access type {ty.value} is incompatible with surface "
                f"{surf.name!r} of type {surf.dtype.value}")

    def _coherence_read(self, surf: Surface, index: int, count: int) -> None:
        if self.device is not None and not self.proxy_mode:
            addr = surf.base + index * surf.esize
            self.device.coherence.check_read("gma", addr, count * surf.esize)

    def _coherence_write(self, surf: Surface, index: int, count: int) -> None:
        self._coherence_write_raw(surf.base + index * surf.esize,
                                  count * surf.esize)

    def _coherence_write_raw(self, addr: int, nbytes: int) -> None:
        if self.device is not None and not self.proxy_mode:
            self.device.coherence.note_write("gma", addr, nbytes)
