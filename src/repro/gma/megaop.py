"""Tiered JIT: hot fused-trace cycles promoted to native numpy megaops.

The fused engine (:mod:`repro.gma.fusion`) retires whole superblocks in
one dispatch round and *chains* through uniform branches, but every
chained block still pays one Python trip per block — and every batched
ALU step inside it pays the generic operand decode, guard-mask build and
per-dtype overflow protocol.  This module adds the third tier: when the
chain counters identify a *hot cycle* (the same block-to-block path
traversed over and over, the shape of every counted loop), the whole
cycle compiles into one :class:`MegaOp` — a flat sequence of specialized
step closures with the operand slices, wrapped immediates and timing
charges precomputed — and execution retires *many complete traversals
per Python call*, charging the accounting in one bulk extend at exit.

Promotion is profile guided: a :class:`TraceRecorder` rides along with
the fused engine, noting each block exit (uniform-taken ``"t"``,
uniform-fall ``"f"``, fall-through ``"x"``) and each batched memory
retirement (``"m"``).  When the note stream revisits an ip, the window
between the two visits is a cycle; after ``megaop_threshold`` recorded
traversals of the *same* cycle it compiles.  Compiled megaops live in
the id-keyed :class:`~repro.isa.predecode.PredecodeCache` beside the
fused entry and are evicted with it.

**Determinism.**  A megaop never invents a new result: every specialized
step reproduces ``_apply_alu_batched``'s arithmetic exactly (same
float64 compute on wrapped sources, same float32 narrowing, same modular
integer wrap), memory steps *are* ``_apply_mem_batched`` with only the
accounting deferred, and the bulk charge concatenates exactly the
per-instruction ``(issue, latency)`` entries the scalar engine would
append.  Any guard failure — a divergent branch, a lane that would
overflow or fault, a TLB miss, the runaway cap — charges only the
instructions already retired and returns control at the precise ip, so
the fused/per-instruction/peel tiers reproduce the architectural
behaviour bit-identically.  The only deliberate conservatism: a
specialized float step deopts on *any* inf in the narrowed result (the
generic path then distinguishes pass-through infs from true overflow).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionFault, TlbMiss
from ..isa import predecode
from ..isa.opcodes import Opcode
from ..isa.operands import ImmOperand, PredOperand, RegOperand, SymOperand
from ..isa.semantics import _COMPARES
from ..isa.types import DataType, VLEN
from .gang import _apply_alu_batched, _apply_mem_batched, _read_batched
from .interpreter import MAX_INSTRUCTIONS, _instr_effects, trace_entry

#: Recorded traversals of one cycle before it compiles (the
#: ``--megaop-threshold`` knob overrides per device).
PROMOTE_THRESHOLD = 8
#: Recorder window cap: a cycle longer than this many block/mem events
#: never closes (it would not amortize its compile anyway).
MAX_CYCLE_STEPS = 64
#: Instruction cap per compiled cycle (keeps the per-exit charge tuples
#: and the runaway granularity bounded).
MAX_CYCLE_INSTRS = 512

#: Step codes in the executor's flat step tuples.
_ALU = 0
_MEM = 1
_BR = 2


class MegaEnv:
    """Per-call context threaded through specialized step closures."""

    __slots__ = ("rows", "active", "ctxs", "symcache", "syms")


class MegaOp:
    """One compiled hot cycle: steps plus pre-summed accounting."""

    __slots__ = ("head", "ninstr", "steps_entry", "steps_loop",
                 "trace_entries", "effects", "nones", "issue_total",
                 "issue_prefix", "mem_total", "mem_prefix",
                 "sampler_total", "sampler_prefix", "sbytes_total",
                 "sbytes_prefix", "ips")


class MegaCache:
    """Per-program promotion state, persistent across runs.

    Lives in the :class:`~repro.isa.predecode.PredecodeCache` beside the
    fused entry.  Mutated without a lock: concurrent fabric drains can at
    worst double-count a cycle or compile the same megaop twice, and
    both compiles are identical, so last-store-wins is benign.
    """

    __slots__ = ("counts", "ops", "dead")

    def __init__(self):
        #: (head ip, cycle) -> traversals recorded so far.
        self.counts: Dict[tuple, int] = {}
        #: head ip -> compiled MegaOp (probed every gang-loop iteration).
        self.ops: Dict[int, MegaOp] = {}
        #: cycles that failed to compile; never retried.
        self.dead: set = set()


class TraceRecorder:
    """Sliding window of block/mem exits; closes cycles on ip revisit."""

    __slots__ = ("session", "steps", "pos")

    def __init__(self, session: "MegaSession"):
        self.session = session
        self.steps: List[Tuple[int, str]] = []
        self.pos: Dict[int, int] = {}

    def reset(self) -> None:
        """Anything irregular (divergence, fault, peel, END) breaks the
        trace: the window restarts empty."""
        if self.steps:
            self.steps.clear()
            self.pos.clear()

    def note(self, ip: int, tag: str) -> None:
        """Record one event; a revisited ip closes the cycle since its
        previous visit and restarts the window at this occurrence."""
        p = self.pos.get(ip)
        steps = self.steps
        if p is None:
            if len(steps) >= MAX_CYCLE_STEPS:
                steps.clear()
                self.pos.clear()
            self.pos[ip] = len(steps)
            steps.append((ip, tag))
            return
        cycle = tuple(steps[p:])
        steps.clear()
        self.pos.clear()
        self.pos[ip] = 0
        steps.append((ip, tag))
        self.session.observe(ip, cycle)

    def promoted(self, ip: int) -> bool:
        """True when ``ip`` heads a compiled megaop — the fused loop
        yields control there so the gang loop can dispatch it."""
        return ip in self.session.ops


class MegaSession:
    """One run's view of the program's persistent promotion state."""

    __slots__ = ("cache", "ops", "threshold", "fused", "pre_prog",
                 "outcome", "recorder")

    def __init__(self, device, program, pre_prog, fused, outcome):
        cache = predecode.CACHE.lookup_megaops(program)
        if cache is None:
            cache = MegaCache()
            predecode.CACHE.store_megaops(program, cache)
        self.cache = cache
        self.ops = cache.ops
        threshold = getattr(device, "megaop_threshold", None)
        self.threshold = max(1, int(threshold if threshold is not None
                                    else PROMOTE_THRESHOLD))
        self.fused = fused
        self.pre_prog = pre_prog
        self.outcome = outcome
        self.recorder = TraceRecorder(self)

    def observe(self, head: int, cycle: tuple) -> None:
        cache = self.cache
        if head in cache.ops:
            return
        key = (head, cycle)
        if key in cache.dead:
            return
        count = cache.counts.get(key, 0) + 1
        if count < self.threshold:
            cache.counts[key] = count
            return
        cache.counts.pop(key, None)
        mop = compile_megaop(head, cycle, self.fused, self.pre_prog)
        if mop is None:
            cache.dead.add(key)
            return
        cache.ops[head] = mop
        self.outcome.megaop_compiles += 1

# ---------------------------------------------------------------------------
# cycle compiler
# ---------------------------------------------------------------------------


def _cycle_items(head: int, cycle: tuple, fused, pre_prog):
    """Flatten a recorded cycle into per-instruction items, validating
    the control-flow continuity the recording implies.

    Items: ``("alu", pre, ip)`` / ``("mem", pre, ip)`` /
    ``("pad", instr, ip)`` (nop/fence/unconditional jmp: charge only) /
    ``("br", pidx, negate, expect, taken_ip, fall_ip, instr, ip)``.
    Returns None when the cycle cannot compile (the caller marks it
    dead, so a bogus recording is at worst a lost promotion).
    """
    items: list = []
    count = len(pre_prog.instrs)
    for ci, (ip, tag) in enumerate(cycle):
        nxt = cycle[ci + 1][0] if ci + 1 < len(cycle) else head
        if tag == "m":
            if not 0 <= ip < count:
                return None
            pre = pre_prog.instrs[ip]
            if pre.batch_class != predecode.BATCH_MEM:
                return None
            if ip + 1 != nxt:
                return None
            items.append(("mem", pre, ip))
            continue
        block = fused.blocks.get(ip)
        if block is None:
            return None
        for j in range(block.body_len):
            bip = block.start + j
            stp = block.steps[j]
            if stp is not None:
                items.append(("alu", stp, bip))
            else:
                items.append(("pad", pre_prog.instrs[bip].instr, bip))
        if tag == "x":
            if block.term is not None or block.end != nxt:
                return None
            continue
        if tag not in ("t", "f"):
            return None
        term = block.term
        if term is None or term.opcode is Opcode.END:
            return None
        pred = term.instr.pred
        if term.opcode is Opcode.JMP and pred is None:
            # unconditional: a static edge, charged but never evaluated
            if tag != "t" or term.target != nxt:
                return None
            items.append(("pad", term.instr, block.term_ip))
            continue
        taken_ip, fall_ip = term.target, block.end
        expect = tag == "t"
        if (taken_ip if expect else fall_ip) != nxt:
            return None
        items.append(("br", pred.index, pred.negate, expect, taken_ip,
                      fall_ip, term.instr, block.term_ip))
    if not items or len(items) > MAX_CYCLE_INSTRS:
        return None
    return items


#: Value opcodes the specializer compiles natively.  Everything else
#: (SEL/ILV, guarded steps, range operands) falls back to the generic
#: batched datapath, which is still one call per instruction.
_BINOPS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.MIN: np.minimum,
    Opcode.MAX: np.maximum,
}


def _make_reader(operand, ty: DataType, n: int, known: dict):
    """A closure ``read(V, sl, env) -> (k, n) float64``, reproducing
    ``ty.wrap_unguarded(_read_batched(operand, ...))`` exactly.

    ``known`` maps reg -> (dtype, width) for registers whose current
    lane values are already wrapped for that dtype (written by an
    earlier specialized step); reads of those skip the idempotent
    re-wrap.  Returns None for operand kinds the specializer does not
    handle (the whole step then goes generic).
    """
    if isinstance(operand, RegOperand):
        reg = operand.reg
        have = known.get(reg)
        if ty is DataType.DF or (have is not None and have[0] is ty
                                 and have[1] >= n):
            def read(V, sl, env, reg=reg, n=n):
                return V[sl, reg, :n]
            return read
        wu = ty.wrap_unguarded

        def read(V, sl, env, reg=reg, n=n, wu=wu):
            return wu(V[sl, reg, :n])
        return read
    if isinstance(operand, ImmOperand):
        const = ty.wrap(np.full((1, n), operand.value, dtype=np.float64))

        def read(V, sl, env, const=const):
            return const
        return read
    if isinstance(operand, SymOperand):
        name = operand.name
        wu = ty.wrap_unguarded

        def read(V, sl, env, operand=operand, name=name, n=n, wu=wu):
            cached = env.syms.get(name)
            if cached is None:
                # resolved through the run's symcache in queue order, so
                # an unbound symbol faults on the shred scalar blames
                cached = wu(_read_batched(operand, env.rows, n, V, None,
                                          env.ctxs, env.active,
                                          env.symcache))
                env.syms[name] = cached
            return cached
        return read
    return None


def _make_writer(dst, ty: DataType, n: int):
    """A closure ``write(V, sl, res) -> bool`` matching the generic
    writeback: float32 narrowing with conservative inf deopt for ``f``,
    pass-through for ``df``, modular wrap for integers."""
    dreg = dst.reg
    if ty is DataType.F:
        def write(V, sl, res, dreg=dreg, n=n):
            out = res.astype(np.float32)
            if np.isinf(out).any():
                return False  # overflow OR pass-through: generic decides
            V[sl, dreg, :n] = out
            return True
        return write
    if ty is DataType.DF:
        def write(V, sl, res, dreg=dreg, n=n):
            V[sl, dreg, :n] = res
            return True
        return write
    wu = ty.wrap_unguarded

    def write(V, sl, res, dreg=dreg, n=n, wu=wu):
        V[sl, dreg, :n] = wu(res)
        return True
    return write


def _compile_alu_step(pre, known: dict):
    """Specialize one BATCH_ALU instruction against the current
    known-wrapped register map.

    Returns ``(step, update)``: ``step(V, P, sl, env) -> bool`` or None
    when the instruction must run through the generic datapath;
    ``update`` is ``(reg, dtype, width)`` for the register the step
    leaves wrapped, or None.
    """
    instr = pre.instr
    if instr.pred is not None:
        return None, None  # guarded: the generic path blends old lanes
    op = pre.opcode
    ty = instr.dtype
    n = instr.width

    if op is Opcode.CMP:
        dst = instr.dsts[0]
        if not isinstance(dst, PredOperand):
            return None, None
        ra = _make_reader(instr.srcs[0], ty, n, known)
        rb = _make_reader(instr.srcs[1], ty, n, known)
        if ra is None or rb is None:
            return None, None
        cmp = _COMPARES[instr.cond]
        idx = dst.index
        w = min(n, VLEN)

        def step(V, P, sl, env, ra=ra, rb=rb, cmp=cmp, idx=idx, w=w):
            res = cmp(ra(V, sl, env), rb(V, sl, env))
            P[sl, idx, :w] = res[:, :w]
            P[sl, idx, w:] = False
            return True
        return step, None

    dst = instr.dsts[0] if instr.dsts else None
    if not isinstance(dst, RegOperand):
        return None, None

    if op in (Opcode.HADD, Opcode.HMAX):
        ra = _make_reader(instr.srcs[0], ty, n, known)
        if ra is None:
            return None, None
        write = _make_writer(dst, ty, 1)

        if op is Opcode.HADD:
            def step(V, P, sl, env, ra=ra, write=write):
                return write(V, sl, ra(V, sl, env).sum(axis=1,
                                                       keepdims=True))
        else:
            def step(V, P, sl, env, ra=ra, write=write):
                return write(V, sl, ra(V, sl, env).max(axis=1,
                                                       keepdims=True))
        return step, (dst.reg, ty, 1)

    update = (dst.reg, ty, n)
    write = _make_writer(dst, ty, n)

    if op is Opcode.IOTA:
        # 0..n-1 is exact under every dtype's wrap (n <= VLEN < 127)
        const = ty.wrap(np.arange(n, dtype=np.float64))[None, :]

        def step(V, P, sl, env, dreg=dst.reg, n=n, const=const):
            V[sl, dreg, :n] = const
            return True
        return step, update

    readers = [_make_reader(s, ty, n, known) for s in instr.srcs]
    if any(r is None for r in readers):
        return None, None

    if op in (Opcode.MOV, Opcode.CVT):
        ra = readers[0]

        def step(V, P, sl, env, ra=ra, write=write):
            return write(V, sl, ra(V, sl, env))
        return step, update

    if op is Opcode.BCAST:
        ra = readers[0]

        def step(V, P, sl, env, ra=ra, write=write):
            return write(V, sl, ra(V, sl, env)[:, :1])
        return step, update

    if op is Opcode.ABS:
        ra = readers[0]

        def step(V, P, sl, env, ra=ra, write=write):
            return write(V, sl, np.abs(ra(V, sl, env)))
        return step, update

    if op is Opcode.NOT:
        ra = readers[0]
        maskval = (1 << (ty.size * 8)) - 1

        def step(V, P, sl, env, ra=ra, write=write, maskval=maskval):
            res = np.bitwise_xor(ra(V, sl, env).astype(np.int64),
                                 maskval).astype(np.float64)
            return write(V, sl, res)
        return step, update

    if op is Opcode.MAD:
        ra, rb, rc = readers

        def step(V, P, sl, env, ra=ra, rb=rb, rc=rc, write=write):
            return write(V, sl, ra(V, sl, env) * rb(V, sl, env)
                         + rc(V, sl, env))
        return step, update

    if len(readers) != 2:
        return None, None
    ra, rb = readers

    binop = _BINOPS.get(op)
    if binop is not None:
        def step(V, P, sl, env, ra=ra, rb=rb, binop=binop, write=write):
            return write(V, sl, binop(ra(V, sl, env), rb(V, sl, env)))
        return step, update

    if op is Opcode.AVG:
        if ty.is_float:
            def step(V, P, sl, env, ra=ra, rb=rb, write=write):
                return write(V, sl,
                             (ra(V, sl, env) + rb(V, sl, env)) / 2.0)
        else:
            def step(V, P, sl, env, ra=ra, rb=rb, write=write):
                return write(V, sl, np.floor(
                    (ra(V, sl, env) + rb(V, sl, env) + 1) / 2.0))
        return step, update

    if op is Opcode.DIV:
        is_float = ty.is_float

        def step(V, P, sl, env, ra=ra, rb=rb, write=write,
                 is_float=is_float):
            b = rb(V, sl, env)
            if (b == 0).any():
                return False  # scalar raises the per-lane fault
            res = ra(V, sl, env) / b
            return write(V, sl, res if is_float else np.trunc(res))
        return step, update

    if op is Opcode.SHL:
        def step(V, P, sl, env, ra=ra, rb=rb, write=write):
            res = np.trunc(ra(V, sl, env)) \
                * (2.0 ** np.trunc(rb(V, sl, env)))
            return write(V, sl, res)
        return step, update

    if op is Opcode.SHR:
        def step(V, P, sl, env, ra=ra, rb=rb, write=write):
            res = np.floor(np.trunc(ra(V, sl, env))
                           / (2.0 ** np.trunc(rb(V, sl, env))))
            return write(V, sl, res)
        return step, update

    if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
        bitop = {Opcode.AND: np.bitwise_and, Opcode.OR: np.bitwise_or,
                 Opcode.XOR: np.bitwise_xor}[op]

        def step(V, P, sl, env, ra=ra, rb=rb, bitop=bitop, write=write):
            res = bitop(ra(V, sl, env).astype(np.int64),
                        rb(V, sl, env).astype(np.int64)).astype(
                            np.float64)
            return write(V, sl, res)
        return step, update

    return None, None


def _generic_alu(pre):
    """Fallback: the gang's batched datapath, accounting deferred."""
    def step(V, P, sl, env, pre=pre):
        return _apply_alu_batched(pre, env.rows, V, P, env.ctxs,
                                  env.active, env.symcache)
    return step


def _emit_steps(items, known: dict):
    """One pass over the cycle: specialize each instruction against the
    evolving known-wrapped map, emitting executor step tuples."""
    steps = []
    for idx, item in enumerate(items):
        kind = item[0]
        if kind == "alu":
            pre, ip = item[1], item[2]
            fn, update = _compile_alu_step(pre, known)
            if fn is None:
                fn = _generic_alu(pre)
                # the generic path may write ranges/masked lanes: assume
                # nothing about register wrap state afterwards
                known.clear()
            elif update is not None:
                known[update[0]] = (update[1], update[2])
            steps.append((_ALU, fn, ip, idx))
        elif kind == "mem":
            known.clear()  # loads land via ty.wrap, but widths vary
            steps.append((_MEM, item[1], item[2], idx))
        elif kind == "br":
            steps.append((_BR, item[1], item[2], item[3], item[4],
                          item[5], idx, item[7]))
        # "pad": charge-only, no executor step
    return steps


def compile_megaop(head: int, cycle: tuple, fused, pre_prog):
    """Compile one recorded cycle, or None when it cannot promote."""
    items = _cycle_items(head, cycle, fused, pre_prog)
    if items is None:
        return None

    entries = []
    effects = []
    issue_prefix = [0]
    mem_prefix = [0]
    sampler_prefix = [0]
    sbytes_prefix = [0]
    for item in items:
        instr = item[6] if item[0] == "br" else (
            item[1].instr if item[0] in ("alu", "mem") else item[1])
        entry = trace_entry(instr)
        entries.append(entry)
        effects.append(_instr_effects(instr))
        issue_prefix.append(issue_prefix[-1] + entry[0])
        is_mem = item[0] == "mem"
        mem_prefix.append(mem_prefix[-1] + (1 if is_mem else 0))
        is_sample = is_mem and item[1].opcode is Opcode.SAMPLE
        sampler_prefix.append(sampler_prefix[-1]
                              + (instr.width if is_sample else 0))
        sbytes_prefix.append(
            sbytes_prefix[-1]
            + (instr.width * instr.dtype.size if is_sample else 0))

    known: dict = {}
    steps_entry = _emit_steps(items, known)
    after_first = dict(known)
    steps_loop = _emit_steps(items, known)
    if dict(known) != after_first:
        # the wrap-state map did not reach a fixpoint after one
        # traversal (cannot happen with the current update rules, but a
        # wrong skip would break bit-exactness, so fail safe)
        steps_loop = steps_entry

    mop = MegaOp()
    mop.head = head
    mop.ninstr = len(entries)
    mop.steps_entry = tuple(steps_entry)
    mop.steps_loop = tuple(steps_loop)
    mop.trace_entries = tuple(entries)
    mop.effects = tuple(effects)
    mop.nones = (None,) * len(entries)
    mop.issue_total = issue_prefix[-1]
    mop.issue_prefix = tuple(issue_prefix)
    mop.mem_total = mem_prefix[-1]
    mop.mem_prefix = tuple(mem_prefix)
    mop.sampler_total = sampler_prefix[-1]
    mop.sampler_prefix = tuple(sampler_prefix)
    mop.sbytes_total = sbytes_prefix[-1]
    mop.sbytes_prefix = tuple(sbytes_prefix)
    # every ip the trace retires: the gang loop refuses to dispatch a
    # megaop whose traversal would blast through a pending reconvergence
    # join, so suspended sub-gangs always merge at the precise ip
    mop.ips = frozenset(item[7] if item[0] == "br" else item[2]
                        for item in items)
    return mop

# ---------------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------------


def _charge_mega(mop: MegaOp, k: int, m: int, active: Sequence[int],
                 recs, config, outcome) -> None:
    """Bulk-charge ``k`` whole traversals plus an ``m``-instruction
    prefix: the exact concatenation of the per-instruction entries the
    scalar engine would append, in one extend per shred."""
    total = mop.ninstr * k + m
    if total == 0:
        return
    entries = mop.trace_entries * k + mop.trace_entries[:m]
    eff_src = mop.effects if config.scoreboard else mop.nones
    effects = eff_src * k + eff_src[:m]
    issue = mop.issue_total * k + mop.issue_prefix[m]
    sampler = mop.sampler_total * k + mop.sampler_prefix[m]
    sbytes = mop.sbytes_total * k + mop.sbytes_prefix[m]
    for i in active:
        rec = recs[i]
        rec.trace.extend(entries)
        rec.trace_effects.extend(effects)
        rec.instructions += total
        rec.issue_cycles += issue
        if sampler:
            rec.sampler_samples += sampler
        if sbytes:
            rec.bytes_read += sbytes
    outcome.lanes_retired += total * len(active)
    outcome.batched_mem_lanes += (mop.mem_total * k
                                  + mop.mem_prefix[m]) * len(active)


def run_megaop(mop: MegaOp, device, active: List[int], V: np.ndarray,
               P: np.ndarray, ctxs, recs, config, outcome, defer,
               symcache, rows=None,
               diverge=None) -> Optional[Tuple[int, List[int]]]:
    """Retire as many whole traversals of this cycle as possible.

    Returns ``(next_ip, active)`` after making progress, or None when
    zero instructions retired (the caller's fused/per-instruction path
    then owns the ip, guaranteeing forward progress).  Every exit
    charges exactly the retired instructions; a deopt resumes at the
    precise ip of the first uncommitted instruction.

    ``rows`` carries the gang's storage rows when ``V``/``P`` are a
    dense sub-gang pack (pack-relative, not shred indices); ``diverge``
    routes a divergent branch's losing side (park-or-peel) instead of
    deferring it straight to the scalar interpreter.
    """
    na = len(active)
    if rows is None:
        rows = np.asarray(active)
    sl = slice(None) if na == V.shape[0] else rows
    env = MegaEnv()
    env.rows = rows
    env.active = active
    env.ctxs = ctxs
    env.symcache = symcache
    env.syms = {}
    ninstr = mop.ninstr
    # re-admitted gangs need not hold uniform counts: budget from the
    # most advanced record so no lane retires past the runaway cap
    budget = MAX_INSTRUCTIONS - max(recs[i].instructions for i in active)
    steps = mop.steps_entry
    k = 0
    stop = None
    with np.errstate(over="ignore", invalid="ignore"):
        while True:
            if ninstr > budget:
                stop = ("runaway",)
                break
            for st in steps:
                code = st[0]
                if code == _ALU:
                    ok = False
                    try:
                        ok = st[1](V, P, sl, env)
                    except ExecutionFault:
                        ok = False
                    if not ok:
                        stop = ("deopt", st[2], st[3])
                        break
                elif code == _MEM:
                    ok = False
                    try:
                        ok = _apply_mem_batched(device, st[1], rows, V, P,
                                                ctxs, active, recs, config,
                                                outcome, account=False)
                    except (TlbMiss, ExecutionFault):
                        ok = False
                    if not ok:
                        stop = ("deopt", st[2], st[3])
                        break
                else:  # _BR: (code, pidx, negate, expect, taken, fall,
                    #        m, branch_ip)
                    any_lane = P[sl, st[1], :].any(axis=1)
                    taken = ~any_lane if st[2] else any_lane
                    nt = int(taken.sum())
                    if st[3]:
                        if nt == na:
                            continue  # on-trace: next step
                        stop = ("exit", st[5], st[6] + 1) if nt == 0 \
                            else ("div", taken, st)
                    else:
                        if nt == 0:
                            continue
                        stop = ("exit", st[4], st[6] + 1) if nt == na \
                            else ("div", taken, st)
                    break
            if stop is None:
                k += 1
                budget -= ninstr
                # steady state: registers this cycle wrote are known
                # wrapped, so reads skip the idempotent re-wrap
                steps = mop.steps_loop
                continue
            break

    tag = stop[0]
    if tag == "exit":
        # a uniform off-trace branch is a normal trace exit, not a deopt
        _charge_mega(mop, k, stop[2], active, recs, config, outcome)
        outcome.megaops_retired += k
        return (stop[1], active)
    if tag == "runaway":
        _charge_mega(mop, k, 0, active, recs, config, outcome)
        outcome.megaops_retired += k
        if k == 0:
            return None  # per-instruction loop owns the precise fault
        outcome.megaop_deopts += 1
        return (mop.head, active)
    if tag == "deopt":
        m = stop[2]
        _charge_mega(mop, k, m, active, recs, config, outcome)
        outcome.megaops_retired += k
        outcome.megaop_deopts += 1
        if k == 0 and m == 0:
            return None
        return (stop[1], active)

    # divergence: exactly the fused engine's split — majority stays
    # ganged, ties keep the lowest queue position's outcome, the
    # minority parks toward the reconvergence point or defers at its
    # exit ip.  The branch itself is charged (its trace entry is
    # direction independent).
    taken, st = stop[1], stop[2]
    _charge_mega(mop, k, st[6] + 1, active, recs, config, outcome)
    outcome.megaops_retired += k
    outcome.megaop_deopts += 1
    taken_count = int(taken.sum())
    if taken_count * 2 == na:
        keep_taken = bool(taken[0])
    else:
        keep_taken = taken_count * 2 > na
    stay_ip = st[4] if keep_taken else st[5]
    exit_ip = st[5] if keep_taken else st[4]
    losers = [i for pos, i in enumerate(active)
              if bool(taken[pos]) != keep_taken]
    if diverge is not None:
        diverge(st[7], exit_ip, losers)
    else:
        defer([(i, exit_ip) for i in losers])
    active = [i for pos, i in enumerate(active)
              if bool(taken[pos]) == keep_taken]
    return (stay_ip, active)
