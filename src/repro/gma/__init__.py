"""The GMA X3000 device model: functional + timing simulation.

8 execution units x 4 hardware threads = 32 exo-sequencers, in-order with
fly-weight switch-on-stall multithreading, wide SIMD, a shared texture
sampler, and a GTT-format TLB serviced through ATR.
"""

from .context import ShredContext
from .device import GmaDevice
from .eu import DeviceTiming, EuReport, simulate_device
from .firmware import EmulationFirmware, GmaRunResult
from .interpreter import ShredInterpreter, ShredRun
from .sampler import TextureSampler
from .timing import GmaTimingConfig
from .workqueue import WorkQueue

__all__ = [
    "GmaDevice",
    "GmaTimingConfig",
    "GmaRunResult",
    "EmulationFirmware",
    "ShredContext",
    "ShredInterpreter",
    "ShredRun",
    "DeviceTiming",
    "EuReport",
    "simulate_device",
    "TextureSampler",
    "WorkQueue",
]
