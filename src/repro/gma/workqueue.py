"""The software shred work queue in shared virtual memory.

"Once created, GMA X3000 shreds are scheduled in a software work queue in
shared virtual memory like POSIX threads.  The work queue can have a far
greater number of shreds than the number of GMA X3000 exo-sequencers"
(paper section 3.4).  Producer-consumer dependencies (the taskq model,
section 4.3) gate when a descriptor becomes ready.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Set

from ..errors import SchedulingError
from ..exo.shred import ShredDescriptor, ShredState


class WorkQueue:
    """FIFO of shred descriptors with dependency gating."""

    def __init__(self, shreds: Iterable[ShredDescriptor] = ()):
        self._pending: deque = deque()
        self._done: Set[int] = set()
        self.enqueued = 0
        for shred in shreds:
            self.push(shred)

    def push(self, shred: ShredDescriptor) -> None:
        shred.state = ShredState.QUEUED
        self._pending.append(shred)
        self.enqueued += 1

    def mark_done(self, shred_id: int) -> None:
        self._done.add(shred_id)

    def is_done(self, shred_id: int) -> bool:
        return shred_id in self._done

    def pending(self) -> List[ShredDescriptor]:
        """The queued descriptors in FIFO order (no state change)."""
        return list(self._pending)

    def pop_ready(self) -> Optional[ShredDescriptor]:
        """Next descriptor (FIFO) whose producers have all completed."""
        for _ in range(len(self._pending)):
            shred = self._pending.popleft()
            if all(dep in self._done for dep in shred.depends_on):
                return shred
            self._pending.append(shred)
        return None

    def drain_order(self) -> List[ShredDescriptor]:
        """Pop everything in dependency-respecting FIFO order.

        Raises :class:`~repro.errors.SchedulingError` on a dependency cycle
        or a dependency on a shred that is not in the queue.
        """
        out = []
        while self._pending:
            shred = self.pop_ready()
            if shred is None:
                stuck = [s.shred_id for s in self._pending]
                raise SchedulingError(
                    f"work queue deadlock: shreds {stuck} wait on "
                    f"dependencies that never complete")
            out.append(shred)
            self.mark_done(shred.shred_id)
        return out

    def __len__(self) -> int:
        return len(self._pending)
