"""Admission control and weighted fair dequeue across tenants.

Two layers of backpressure guard the device pool:

* **Per-session in-flight caps** (``SessionQuotas.max_inflight``) bound
  what any one tenant may have admitted at once.
* **A server-wide pending bound** (``max_pending`` requests queued but
  not yet dispatched), the serving analogue of the paper's bounded
  software work queue.  Under :attr:`~repro.fabric.queue.AdmissionPolicy.
  RAISE` an overflow raises :class:`~repro.errors.AdmissionRejected`
  carrying a ``retry_after`` estimate; under ``BLOCK`` the submitting
  client awaits capacity.

Dequeue order is *stride scheduling*: each session carries a virtual
time that advances by ``lanes / weight`` whenever its work is
dispatched, and the dispatcher always serves the lowest virtual time.
An idle session rejoins at the global virtual clock, so sleeping never
banks credit — the classic fix that keeps the schedule fair without
starving bursty tenants.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..fabric.queue import AdmissionPolicy

#: Floor for :meth:`AdmissionController.retry_after` before any batch has
#: been observed — a nominal 1 ms, never multiplied into the estimate.
UNSEEDED_RETRY_AFTER = 1e-3


class AdmissionController:
    """Bounded pending queue + weighted fair pick across sessions."""

    def __init__(self, policy=AdmissionPolicy.BLOCK,
                 max_pending: int = 256):
        self.policy = AdmissionPolicy.coerce(policy)
        self.max_pending = max_pending
        self.pending = 0
        self._queues: Dict[str, deque] = {}
        self._vtime: Dict[str, float] = {}
        self._vnow = 0.0
        # Min-heap of (vtime, session) candidates for pick(); stale
        # entries (vtime no longer current, or queue drained) are lazily
        # discarded.  Invariant: every backlogged session has exactly one
        # *current* entry — pushed when it goes from empty to backlogged
        # and re-pushed after each pop_batch that leaves a backlog.
        self._heap: List[Tuple[float, str]] = []
        # Service-time model for retry_after, charged per dispatched
        # *batch*: wall-clock per batch and requests per batch.  Dividing
        # wall by the request count instead (the old model) collapsed the
        # estimate under coalescing — an 8-way gang costs one drain, not
        # an 8x-cheaper drain per rider.
        self._batch_ewma = 0.0
        self._width_ewma = 1.0
        self._seeded = False

    # -- admission ----------------------------------------------------------

    def try_admit(self, session) -> Optional[str]:
        """``None`` when the launch may enter, else the refusal reason."""
        if session.inflight >= session.quotas.max_inflight:
            return (f"session {session.name!r} at max_inflight "
                    f"({session.quotas.max_inflight})")
        if self.pending >= self.max_pending:
            return f"server pending queue full ({self.max_pending})"
        return None

    def retry_after(self, slots: int) -> float:
        """How long an overflowing client should back off (seconds).

        The backlog the retry would sit behind, expressed in *batches*
        (pending requests over the observed coalescing width), times the
        EWMA wall-clock of one dispatched batch, spread over the device
        slots.  Coalescing-aware: eight requests that ride one gang cost
        one drain, and the estimate says so.
        """
        if not self._seeded:
            return UNSEEDED_RETRY_AFTER
        batches_ahead = max(
            (self.pending + 1) / max(self._width_ewma, 1.0), 1.0)
        return max(self._batch_ewma * batches_ahead / max(slots, 1),
                   UNSEEDED_RETRY_AFTER)

    def note_service(self, requests: int, wall: float) -> None:
        """Charge one dispatched batch: ``requests`` rode a drain that
        took ``wall`` host seconds (the whole batch, not per request)."""
        if requests <= 0:
            return
        if not self._seeded:
            self._batch_ewma = wall
            self._width_ewma = float(requests)
            self._seeded = True
        else:
            self._batch_ewma += 0.25 * (wall - self._batch_ewma)
            self._width_ewma += 0.25 * (requests - self._width_ewma)

    # -- queueing -----------------------------------------------------------

    def enqueue(self, request) -> None:
        name = request.session.name
        queue = self._queues.get(name)
        if queue is None:
            queue = self._queues[name] = deque()
        if not queue:
            # an idle session rejoins at the global clock: no banked credit
            self._vtime[name] = max(self._vtime.get(name, 0.0), self._vnow)
            heapq.heappush(self._heap, (self._vtime[name], name))
        queue.append(request)
        self.pending += 1

    def pick(self) -> Optional[str]:
        """The backlogged session with the lowest ``(vtime, name)``.

        O(log sessions) against the candidate heap instead of a linear
        scan over every session ever seen; the ordering — ties broken by
        session name — is exactly the scan's ``min``.
        """
        while self._heap:
            vt, name = self._heap[0]
            queue = self._queues.get(name)
            if not queue or self._vtime.get(name, 0.0) != vt:
                heapq.heappop(self._heap)  # drained or superseded
                continue
            return name
        return None

    def pop_batch(self, name: str, window: int,
                  coalescable=None) -> List:
        """Dequeue the session's head plus coalescable followers.

        ``coalescable(head, other)`` decides whether a queued follower
        may join the head's gang; at most ``window`` lanes leave the
        queue.  The session's virtual time is charged ``lanes / weight``
        — a coalesced batch is one dispatch but still ``lanes`` worth of
        service.
        """
        queue = self._queues[name]
        head = queue.popleft()
        batch = [head]
        lanes = len(head.shreds)
        if coalescable is not None:
            keep = deque()
            while queue:
                req = queue.popleft()
                if (lanes + len(req.shreds) <= window
                        and coalescable(head, req)):
                    batch.append(req)
                    lanes += len(req.shreds)
                else:
                    keep.append(req)
            queue.extend(keep)
        self.pending -= len(batch)
        weight = max(head.session.quotas.weight, 1e-9)
        self._vtime[name] = self._vtime.get(name, 0.0) + lanes / weight
        if queue:
            # still backlogged: re-enter the pick heap at the new vtime
            heapq.heappush(self._heap, (self._vtime[name], name))
        active = [self._vtime[n] for n, q in self._queues.items() if q]
        self._vnow = min(active) if active else self._vtime[name]
        return batch

    def backlog(self, name: str) -> int:
        queue = self._queues.get(name)
        return len(queue) if queue else 0
