"""Admission control and weighted fair dequeue across tenants.

Two layers of backpressure guard the device pool:

* **Per-session in-flight caps** (``SessionQuotas.max_inflight``) bound
  what any one tenant may have admitted at once.
* **A server-wide pending bound** (``max_pending`` requests queued but
  not yet dispatched), the serving analogue of the paper's bounded
  software work queue.  Under :attr:`~repro.fabric.queue.AdmissionPolicy.
  RAISE` an overflow raises :class:`~repro.errors.AdmissionRejected`
  carrying a ``retry_after`` estimate; under ``BLOCK`` the submitting
  client awaits capacity.

Dequeue order is *stride scheduling*: each session carries a virtual
time that advances by ``lanes / weight`` whenever its work is
dispatched, and the dispatcher always serves the lowest virtual time.
An idle session rejoins at the global virtual clock, so sleeping never
banks credit — the classic fix that keeps the schedule fair without
starving bursty tenants.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ..fabric.queue import AdmissionPolicy


class AdmissionController:
    """Bounded pending queue + weighted fair pick across sessions."""

    def __init__(self, policy=AdmissionPolicy.BLOCK,
                 max_pending: int = 256):
        self.policy = AdmissionPolicy.coerce(policy)
        self.max_pending = max_pending
        self.pending = 0
        self._queues: Dict[str, deque] = {}
        self._vtime: Dict[str, float] = {}
        self._vnow = 0.0
        # EWMA of per-request service wall-clock, for retry_after
        self._service_ewma = 0.0

    # -- admission ----------------------------------------------------------

    def try_admit(self, session) -> Optional[str]:
        """``None`` when the launch may enter, else the refusal reason."""
        if session.inflight >= session.quotas.max_inflight:
            return (f"session {session.name!r} at max_inflight "
                    f"({session.quotas.max_inflight})")
        if self.pending >= self.max_pending:
            return f"server pending queue full ({self.max_pending})"
        return None

    def retry_after(self, slots: int) -> float:
        """How long an overflowing client should back off (seconds).

        The EWMA of recent per-request service time, scaled by the queue
        the retry would sit behind, spread over the device slots.
        """
        per_request = self._service_ewma or 1e-3
        return per_request * (self.pending + 1) / max(slots, 1)

    def note_service(self, requests: int, wall: float) -> None:
        if requests <= 0:
            return
        sample = wall / requests
        if self._service_ewma == 0.0:
            self._service_ewma = sample
        else:
            self._service_ewma += 0.25 * (sample - self._service_ewma)

    # -- queueing -----------------------------------------------------------

    def enqueue(self, request) -> None:
        name = request.session.name
        queue = self._queues.get(name)
        if queue is None:
            queue = self._queues[name] = deque()
        if not queue:
            # an idle session rejoins at the global clock: no banked credit
            self._vtime[name] = max(self._vtime.get(name, 0.0), self._vnow)
        queue.append(request)
        self.pending += 1

    def pick(self) -> Optional[str]:
        """The backlogged session with the lowest virtual time."""
        best = None
        for name, queue in self._queues.items():
            if not queue:
                continue
            vt = self._vtime.get(name, 0.0)
            if best is None or (vt, name) < best:
                best = (vt, name)
        return best[1] if best else None

    def pop_batch(self, name: str, window: int,
                  coalescable=None) -> List:
        """Dequeue the session's head plus coalescable followers.

        ``coalescable(head, other)`` decides whether a queued follower
        may join the head's gang; at most ``window`` lanes leave the
        queue.  The session's virtual time is charged ``lanes / weight``
        — a coalesced batch is one dispatch but still ``lanes`` worth of
        service.
        """
        queue = self._queues[name]
        head = queue.popleft()
        batch = [head]
        lanes = len(head.shreds)
        if coalescable is not None:
            keep = deque()
            while queue:
                req = queue.popleft()
                if (lanes + len(req.shreds) <= window
                        and coalescable(head, req)):
                    batch.append(req)
                    lanes += len(req.shreds)
                else:
                    keep.append(req)
            queue.extend(keep)
        self.pending -= len(batch)
        weight = max(head.session.quotas.weight, 1e-9)
        self._vtime[name] = self._vtime.get(name, 0.0) + lanes / weight
        active = [self._vtime[n] for n, q in self._queues.items() if q]
        self._vnow = min(active) if active else self._vtime[name]
        return batch

    def backlog(self, name: str) -> int:
        queue = self._queues.get(name)
        return len(queue) if queue else 0
