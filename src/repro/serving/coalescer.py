"""Cross-launch gang formation: coalesce and demultiplex.

The four flat media kernels (AlphaBlend, BOB, ADVDI, ProcAmp) launch a
*single* shred per request at smoke geometry, so the gang engine never
engages for them — one lane is not a gang.  Under serving load, though,
many requests for the same kernel sit queued together.  The coalescer
merges same-program single-launch requests from one session into one
device batch; the firmware's existing ``gang_eligible`` check then sees
N same-program shreds and runs them in lockstep, with the congruent-
surface extension (:func:`repro.gma.gang._gang_surface`) handling each
request's distinct-but-identically-shaped surfaces via per-lane base
deltas.

Determinism scope: coalescing never crosses sessions (a device binds one
tenant's space and exoskeleton per drain), never reorders one session's
requests past each other in a batch (queue order is preserved), and the
demux hands every request exactly the :class:`~repro.gma.interpreter.
ShredRun` records its own shreds produced — bit-identical payloads and
counters to a solo run, because the gang engine itself is bit-identical
to the scalar interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import ServingError
from ..gma.firmware import GmaRunResult


def coalescable(head, other) -> bool:
    """May ``other`` join ``head``'s device batch as extra gang lanes?

    Mirrors :func:`repro.gma.gang.gang_eligible`'s launch-shape
    conditions: the *same program object* (predecode identity — sessions
    get this by building each kernel's program once), same entry point,
    and no cross-shred dependencies.  Same-session is implied: the
    admission controller only coalesces within one session's queue.
    """
    if other.session is not head.session:
        return False
    if not head.shreds or not other.shreds:
        return False
    program = head.shreds[0].program
    entry = head.shreds[0].entry
    for shred in list(head.shreds) + list(other.shreds):
        if shred.program is not program or shred.entry != entry:
            return False
        if shred.depends_on:
            return False
    return True


def demux(requests: Sequence, merged: GmaRunResult) -> Dict[int, List]:
    """Split a coalesced batch's runs back out per request.

    Returns ``{request.ident: [ShredRun, ...]}`` in the merged result's
    retirement order.  Shreds spawned on-device attribute to the request
    that owns their ancestor (``parent_id`` chains upward).

    Attribution is resolved against the *complete* run list, not in
    retirement order: under a gang drain a spawned child can retire
    before its parent (children queue behind the whole gang, but a
    multi-sub-batch drain or nested spawns interleave generations), so a
    single forward walk that assumes parent-before-child misattributes
    or outright fails on exactly the coalesced nested-spawn batches the
    coalescer exists for.
    """
    # pass 1: every shred that ran, by id -> its parent (None for roots)
    parent: Dict[int, object] = {}
    for run in merged.runs:
        parent[run.shred.shred_id] = run.shred.parent_id
    owner: Dict[int, int] = {}
    for request in requests:
        for shred in request.shreds:
            owner[shred.shred_id] = request.ident

    def resolve(shred_id: int) -> int:
        ident = owner.get(shred_id)
        if ident is not None:
            return ident
        chain = []
        node = shred_id
        while node is not None and node not in owner:
            if node in chain:
                raise ServingError(
                    f"parent_id cycle at shred {node} while attributing "
                    f"shred {shred_id}")
            chain.append(node)
            node = parent.get(node)
        if node is None:
            raise ServingError(
                f"cannot attribute shred {shred_id} to a request")
        ident = owner[node]
        for walked in chain:  # memoize the whole chain
            owner[walked] = ident
        return ident

    # pass 2: attribute every run, preserving retirement order
    out: Dict[int, List] = {request.ident: [] for request in requests}
    for run in merged.runs:
        out[resolve(run.shred.shred_id)].append(run)
    return out
