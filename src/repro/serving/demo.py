"""A small self-contained serving demo: two tenants, mixed kernels.

Used by ``chirun --serve`` and ``examples/serving_demo.py``.  Starts an
:class:`~repro.serving.ExoServer`, opens two sessions with different
fair-share weights, replays a short mixed-kernel trace from each, then
prints per-tenant stats and the server's coalescing counters.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from ..kernels import kernel_by_abbrev
from .server import ExoServer
from .session import SessionQuotas
from .workload import TenantWorkload

#: Tenant name -> (kernel abbreviations replayed round-robin, weight).
DEFAULT_TENANTS = {
    "tenant-a": (["AlphaBlend", "ProcAmp"], 2.0),
    "tenant-b": (["BOB", "ADVDI"], 1.0),
}


async def _client(server: ExoServer, session, kernels: List[str],
                  requests: int, verify: bool) -> None:
    workloads = [TenantWorkload(session, kernel_by_abbrev(abbrev))
                 for abbrev in kernels]
    launches = []
    for i in range(requests):
        workload = workloads[i % len(workloads)]
        launch = workload.new_launch()
        launches.append((workload, launch))
    results = await asyncio.gather(*[
        server.submit(session, launch.program, bindings=launch.bindings,
                      surfaces=launch.surfaces)
        for _, launch in launches
    ])
    if verify:
        for (_, launch), _result in zip(launches, results):
            launch.verify(session)


async def serve_demo(tenants: Optional[Dict] = None, requests: int = 6,
                     devices: int = 2, engine: str = "gang",
                     verify: bool = True,
                     fabric_workers: int = 0) -> ExoServer:
    """Run the demo trace; returns the stopped server for inspection."""
    tenants = tenants or DEFAULT_TENANTS
    async with ExoServer(num_devices=devices, engine=engine,
                         fabric_workers=fabric_workers) as server:
        sessions = {
            name: server.open_session(
                name, SessionQuotas(weight=weight, max_inflight=requests,
                                    max_surfaces=8 * requests,
                                    max_surface_bytes=64 << 20))
            for name, (_, weight) in tenants.items()
        }
        await asyncio.gather(*[
            _client(server, sessions[name], kernels, requests, verify)
            for name, (kernels, _) in tenants.items()
        ])
        for session in sessions.values():
            server.close_session(session)
    return server


def run_serving_demo(requests: int = 6, devices: int = 2,
                     engine: str = "gang", verify: bool = True,
                     out=print, fabric_workers: int = 0) -> ExoServer:
    """Synchronous wrapper: run the demo and print a report."""
    server = asyncio.run(serve_demo(requests=requests, devices=devices,
                                    engine=engine, verify=verify,
                                    fabric_workers=fabric_workers))
    stats = server.stats
    out("serving demo: "
        f"{stats.sessions_opened} sessions, "
        f"{stats.launches_admitted} launches admitted, "
        f"{stats.launches_completed} completed, "
        f"{stats.batches_dispatched} batches "
        f"({stats.gangs_coalesced} coalesced, "
        f"{stats.coalesced_lanes} lanes)")
    for name in sorted(server.sessions):
        session = server.sessions[name]
        s = session.stats()
        out(f"  {name}: {s['completed']}/{s['launches']} launches, "
            f"{s['shreds_executed']} shreds, "
            f"{s['instructions']} instructions, "
            f"{s['gma_seconds'] * 1e3:.3f} ms simulated")
    if verify:
        out("  outputs verified bit-identical to kernel references")
    return server
