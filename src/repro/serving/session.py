"""Tenant sessions: isolated address spaces plus resource quotas.

Each session owns a full :class:`~repro.memory.address_space.AddressSpace`
backed by the server's one shared :class:`~repro.memory.physical.
PhysicalMemory` — the shape Hechtman & Sorin evaluate for coherent shared
virtual memory: tenants share DRAM, never mappings.  Shootdowns from one
tenant's ``free``/``protect`` therefore reach only the device views
registered with *that* tenant's space; other tenants' translations stay
warm.  Each session also owns an :class:`~repro.exo.exoskeleton.
Exoskeleton` (so ATR/CEH proxy traffic and the shared translation cache
are per-tenant) and a coherence point.

Control-plane methods (``alloc_surface``, ``free_surface``, ``close``)
run on the server's event-loop thread; only device drains leave it, and
those touch the session solely through the view handed to the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import QuotaExceeded, SessionClosed
from ..exo.exoskeleton import Exoskeleton
from ..isa.types import DataType
from ..memory.address_space import AddressSpace, SequencerView
from ..memory.cache import CoherencePoint
from ..memory.surface import Surface, TileMode


@dataclass(frozen=True)
class SessionQuotas:
    """Per-tenant resource limits, fixed at session open.

    ``weight`` is the tenant's share under weighted fair dequeue: a
    weight-2 tenant drains twice the lanes of a weight-1 tenant under
    contention (stride scheduling in the admission controller).
    """

    max_surfaces: int = 64
    max_surface_bytes: int = 16 << 20
    max_descriptors: int = 512
    max_inflight: int = 8
    weight: float = 1.0


class Session:
    """One tenant's isolated slice of the serving platform."""

    def __init__(self, server, name: str,
                 quotas: Optional[SessionQuotas] = None):
        self.server = server
        self.name = name
        self.quotas = quotas or SessionQuotas()
        self.space = AddressSpace(physical=server.physical)
        self.exoskeleton = Exoskeleton(self.space)
        self.coherence = CoherencePoint(coherent=True)
        self.surfaces: Dict[str, Surface] = {}
        self.surface_bytes = 0
        self.closed = False
        #: Per-device-slot sequencer views, created lazily on first
        #: dispatch to that slot and kept for the session's lifetime so
        #: a context switch back finds warm translations.
        self._views: Dict[str, SequencerView] = {}
        # admission state
        self.inflight = 0  # launches admitted, not yet completed
        self.descriptors_inflight = 0
        # lifetime accounting, reported by the demo/bench harnesses
        self.launches = 0
        self.completed = 0
        self.rejected = 0
        self.shreds_executed = 0
        self.instructions = 0
        self.gma_seconds = 0.0

    # -- surfaces (the tenant data plane) ----------------------------------

    def alloc_surface(self, name: str, width: int, height: int,
                      dtype: DataType, pitch: int = 0,
                      tiling: TileMode = TileMode.LINEAR) -> Surface:
        """Allocate a surface in this session's space, quota-checked."""
        self._check_open()
        if name in self.surfaces:
            raise QuotaExceeded(
                f"session {self.name!r}: surface {name!r} already exists")
        if len(self.surfaces) >= self.quotas.max_surfaces:
            raise QuotaExceeded(
                f"session {self.name!r}: surface quota "
                f"({self.quotas.max_surfaces}) exhausted")
        surf = Surface(name=name, base=0, width=width, height=height,
                       dtype=dtype, pitch=pitch, tiling=tiling)
        if self.surface_bytes + surf.nbytes > self.quotas.max_surface_bytes:
            raise QuotaExceeded(
                f"session {self.name!r}: surface byte quota "
                f"({self.quotas.max_surface_bytes}) exhausted")
        surf.base = self.space.alloc(surf.nbytes)
        self.surfaces[name] = surf
        self.surface_bytes += surf.nbytes
        return surf

    def free_surface(self, name: str) -> None:
        """Free a surface; shootdowns reach only this session's views."""
        self._check_open()
        surf = self.surfaces.pop(name, None)
        if surf is None:
            raise QuotaExceeded(
                f"session {self.name!r}: no surface {name!r}")
        self.space.free(surf.base)
        self.surface_bytes -= surf.nbytes

    # -- device views (the shootdown domain) -------------------------------

    def view_for(self, slot) -> SequencerView:
        """This session's sequencer view of device ``slot``.

        Created on the event-loop thread (registration with the space is
        not thread safe); the drain worker only *uses* the view.
        """
        view = self._views.get(slot.name)
        if view is None:
            view = slot.gma.make_view(
                self.space, f"{slot.name}:{self.name}")
            self._views[slot.name] = view
        return view

    # -- admission bookkeeping ---------------------------------------------

    def charge_descriptors(self, count: int) -> None:
        if (self.descriptors_inflight + count
                > self.quotas.max_descriptors):
            raise QuotaExceeded(
                f"session {self.name!r}: descriptor quota "
                f"({self.quotas.max_descriptors}) exhausted with "
                f"{self.descriptors_inflight} in flight")
        self.descriptors_inflight += count

    def release_descriptors(self, count: int) -> None:
        self.descriptors_inflight -= count

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise SessionClosed(f"session {self.name!r} is closed")

    def stats(self) -> dict:
        return {
            "session": self.name,
            "launches": self.launches,
            "completed": self.completed,
            "rejected": self.rejected,
            "shreds_executed": self.shreds_executed,
            "instructions": self.instructions,
            "gma_seconds": self.gma_seconds,
            "surfaces": len(self.surfaces),
            "surface_bytes": self.surface_bytes,
        }
