"""EXOCHI as a service: an async multi-tenant serving layer.

The paper's exoskeleton multiplexes shreds from many applications onto
shared heterogeneous sequencers; this package gives that claim a
measurable surface.  Many concurrent clients each open a
:class:`Session` — its own isolated :class:`~repro.memory.address_space.
AddressSpace` over one shared :class:`~repro.memory.physical.
PhysicalMemory`, with surface/descriptor quotas — submit kernel launches
to an :class:`ExoServer`, and await results.

Requests pass an admission controller (per-tenant in-flight caps,
weighted fair dequeue, reject-with-retry-after under the RAISE policy)
layered on the existing :class:`~repro.fabric.queue.DeviceWorkQueue`
backpressure, then reach a dispatcher that performs *cross-launch gang
formation*: same-program single-shred launches from different queued
requests coalesce into one gang so the gang/fused engines engage.
Per-tenant demux keeps every request's outputs and per-shred counters
bit-identical to solo execution.
"""

from .admission import AdmissionController
from .coalescer import coalescable, demux
from .server import (DeviceSlot, ExoServer, LaunchRequest, LaunchResult,
                     ServingStats)
from .session import Session, SessionQuotas
from .workload import TenantWorkload

__all__ = [
    "AdmissionController",
    "coalescable",
    "demux",
    "DeviceSlot",
    "ExoServer",
    "LaunchRequest",
    "LaunchResult",
    "ServingStats",
    "Session",
    "SessionQuotas",
    "TenantWorkload",
]
