"""The asyncio front-end: sessions in, launch results out.

``ExoServer`` owns a pool of :class:`~repro.gma.device.GmaDevice` slots
over one shared :class:`~repro.memory.physical.PhysicalMemory`.  Clients
open sessions, submit launches, and ``await`` results; a single
dispatch loop matches queued work to free device slots under the
admission controller's weighted fair pick, coalescing same-program
launches into gangs (:mod:`repro.serving.coalescer`) before the drain.

Threading model: all control-plane state (sessions, admission queues,
stats) lives on the event-loop thread.  Only the device drain runs on a
worker thread, and each slot's ``busy`` flag guarantees one drain per
device at a time; a drain touches only that slot's device, the batch's
session (space/exoskeleton/coherence, via ``bind_context``), and that
session's per-slot view — so concurrent drains for *different* sessions
on *different* devices never share mutable state except the physical
frame pool, whose allocator is only exercised from the loop thread
(surfaces are allocated at submit time, not during drains; demand-paged
first touches during a drain are serviced through the session's own
exoskeleton and page table).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..chi.runtime import RuntimeStats
from ..errors import AdmissionRejected, ServingError
from ..exo.shred import ShredDescriptor
from ..fabric.device import DeviceRunReport
from ..fabric.queue import AdmissionPolicy, DeviceWorkQueue
from ..fabric.workers import ProcessDeviceWorker, ProcessWorkerPool
from ..gma.device import GmaDevice
from ..gma.timing import GmaTimingConfig
from ..memory.address_space import AddressSpace
from ..memory.physical import PhysicalMemory
from .admission import AdmissionController
from .coalescer import coalescable, demux
from .session import Session, SessionQuotas

_request_ids = itertools.count(1)


@dataclass
class LaunchRequest:
    """One client launch, queued until a device slot picks it up."""

    ident: int
    session: Session
    shreds: List[ShredDescriptor]
    entry: int
    future: asyncio.Future
    submitted: float


@dataclass
class LaunchResult:
    """What one launch produced, demultiplexed back out of its batch."""

    session: str
    request: int
    shreds: int
    instructions: int
    bytes_read: int
    bytes_written: int
    atr_events: int
    ceh_events: int
    sampler_samples: int
    spawned: int
    device: str
    seconds: float        # simulated drain seconds of the whole batch
    wall_seconds: float   # host wall-clock of the whole batch drain
    coalesced_lanes: int  # lanes in the batch this launch rode in
    coalesced_requests: int  # requests in that batch (1 = solo)
    runs: List = field(default_factory=list)


@dataclass
class ServingStats:
    """Server-lifetime counters (flow into ``RuntimeStats`` and traces)."""

    sessions_opened: int = 0
    sessions_closed: int = 0
    launches_admitted: int = 0
    launches_rejected: int = 0
    launches_completed: int = 0
    gangs_coalesced: int = 0   # batches that merged >= 2 requests
    coalesced_lanes: int = 0   # lanes dispatched in such batches
    batches_dispatched: int = 0
    shreds_executed: int = 0
    device_seconds: float = 0.0


class DeviceSlot:
    """One GMA device plus its admission queue and busy flag.

    A slot is either *local* (``gma`` is a live in-process device) or
    *remote* (``gma`` is ``None`` and ``worker`` is the
    :class:`~repro.fabric.workers.ProcessDeviceWorker` hosting the
    device); ``engine`` and ``config`` are carried explicitly so traces
    and drains never need to reach through a device that may not be in
    this process.
    """

    def __init__(self, name: str, gma: Optional[GmaDevice],
                 queue: DeviceWorkQueue,
                 worker: Optional[ProcessDeviceWorker] = None,
                 engine: str = "gang",
                 config: Optional[GmaTimingConfig] = None):
        self.name = name
        self.gma = gma
        self.queue = queue
        self.worker = worker
        self.engine = gma.engine if gma is not None else engine
        self.config = gma.config if gma is not None else config
        self.busy = False


class ExoServer:
    """Async multi-tenant front-end over a pool of GMA devices."""

    def __init__(self, num_devices: int = 2, engine: str = "gang",
                 queue_depth: Optional[int] = None,
                 admission_policy=AdmissionPolicy.BLOCK,
                 max_pending: int = 256, coalesce_window: int = 32,
                 gma_config: Optional[GmaTimingConfig] = None,
                 physical: Optional[PhysicalMemory] = None,
                 fabric_workers: int = 0,
                 megaop_threshold: Optional[int] = None):
        """``fabric_workers=N`` places the device slots on N child
        processes over shared-memory physical frames (round-robin), so
        concurrent tenant drains stop contending on the GIL.  The server
        then owns worker lifetime: :meth:`stop` reaps the pool and the
        segment, and the server cannot be started again afterwards.
        ``megaop_threshold`` overrides the megaop tier's promotion
        threshold on every device slot (see :mod:`repro.gma.megaop`)."""
        self.fabric_pool: Optional[ProcessWorkerPool] = None
        self._owns_physical = False
        if fabric_workers and physical is None:
            physical = PhysicalMemory(backing="shared")
            self._owns_physical = True
        self.physical = physical or PhysicalMemory()
        #: The space idle devices sit bound to between tenant drains.
        self._idle_space = AddressSpace(physical=self.physical)
        self.engine = engine
        self.policy = AdmissionPolicy.coerce(admission_policy)
        self.coalesce_window = coalesce_window
        config = gma_config or GmaTimingConfig()
        depth = queue_depth or config.num_sequencers * 4

        # device queues always BLOCK: overload is absorbed by the
        # admission controller up front, not by a drain-time error
        def _queue(i):
            return DeviceWorkQueue(depth=depth,
                                   policy=AdmissionPolicy.BLOCK,
                                   name=f"gma{i}-queue")

        if fabric_workers:
            self.fabric_pool = ProcessWorkerPool(
                self.physical, fabric_workers, gma_config=config,
                engine=engine, megaop_threshold=megaop_threshold)
            self.slots = [
                DeviceSlot(name=f"gma{i}", gma=None, queue=_queue(i),
                           worker=self.fabric_pool.worker_for(i),
                           engine=engine, config=config)
                for i in range(num_devices)
            ]
        else:
            self.slots = [
                DeviceSlot(name=f"gma{i}",
                           gma=GmaDevice(self._idle_space, config=config,
                                         engine=engine,
                                         megaop_threshold=megaop_threshold),
                           queue=_queue(i))
                for i in range(num_devices)
            ]
        self.admission = AdmissionController(policy=self.policy,
                                             max_pending=max_pending)
        self.sessions: Dict[str, Session] = {}
        self.stats = ServingStats()
        self._rstats = RuntimeStats()
        #: One record per dispatched batch, consumed by
        #: :func:`repro.perf.trace.serving_trace_events`.
        self.trace_log: List[dict] = []
        self._started = time.perf_counter()
        self._running = False
        self._wakeup: Optional[asyncio.Event] = None
        self._capacity: Optional[asyncio.Condition] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._inflight_batches: set = set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "ExoServer":
        if self._running:
            return self
        self._running = True
        self._wakeup = asyncio.Event()
        self._capacity = asyncio.Condition()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._wakeup.set()
        await self._dispatcher
        if self._inflight_batches:
            await asyncio.gather(*self._inflight_batches,
                                 return_exceptions=True)
        if self.fabric_pool is not None:
            self.fabric_pool.close()
            self.fabric_pool = None
        if self._owns_physical:
            self._owns_physical = False
            self.physical.close()

    async def __aenter__(self) -> "ExoServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- sessions -----------------------------------------------------------

    def open_session(self, name: str,
                     quotas: Optional[SessionQuotas] = None) -> Session:
        if name in self.sessions and not self.sessions[name].closed:
            raise ServingError(f"session {name!r} already open")
        session = Session(self, name, quotas)
        if self.fabric_pool is not None:
            # arm cross-process shootdown forwarding for this tenant's
            # space before any of its pages can reach a worker's TLB
            self.fabric_pool.adopt_space(session.space)
        self.sessions[name] = session
        self.stats.sessions_opened += 1
        return session

    def close_session(self, session: Session) -> None:
        session.close()
        self.stats.sessions_closed += 1

    # -- the client API -----------------------------------------------------

    async def submit(self, session: Session, program,
                     bindings: Optional[Sequence[dict]] = None,
                     surfaces: Optional[dict] = None,
                     shreds: Optional[Sequence[ShredDescriptor]] = None,
                     entry: int = 0) -> LaunchResult:
        """Launch shreds on behalf of ``session`` and await the result.

        Either pass prebuilt ``shreds`` or let the server build one
        descriptor per entry of ``bindings`` against ``surfaces``.
        Raises :class:`~repro.errors.QuotaExceeded` when the launch would
        blow the session's descriptor quota (always an error), and
        :class:`~repro.errors.AdmissionRejected` with ``retry_after``
        when the server is overloaded under the RAISE policy; under
        BLOCK the caller waits for capacity instead.
        """
        session._check_open()
        if shreds is None:
            shreds = [
                ShredDescriptor(program=program, bindings=dict(b),
                                surfaces=dict(surfaces or {}), entry=entry)
                for b in (bindings or [{}])
            ]
        else:
            shreds = list(shreds)
        session.charge_descriptors(len(shreds))
        try:
            while True:
                reason = self.admission.try_admit(session)
                if reason is None:
                    break
                if self.policy is AdmissionPolicy.RAISE:
                    session.rejected += 1
                    self.stats.launches_rejected += 1
                    self._rstats.launches_rejected += 1
                    raise AdmissionRejected(
                        reason,
                        retry_after=self.admission.retry_after(
                            len(self.slots)))
                async with self._capacity:
                    await self._capacity.wait()
                session._check_open()
        except BaseException:
            session.release_descriptors(len(shreds))
            raise

        request = LaunchRequest(
            ident=next(_request_ids), session=session, shreds=shreds,
            entry=entry, future=asyncio.get_running_loop().create_future(),
            submitted=time.perf_counter())
        session.inflight += 1
        session.launches += 1
        self.stats.launches_admitted += 1
        self._rstats.launches_admitted += 1
        # enqueue before the first await so a burst of submits from one
        # client task lands in the queue back to back — that adjacency is
        # what the coalescer feeds on
        self.admission.enqueue(request)
        self._wakeup.set()
        try:
            return await request.future
        finally:
            session.inflight -= 1
            session.release_descriptors(len(shreds))
            async with self._capacity:
                self._capacity.notify_all()

    # -- dispatch -----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while self._running:
            await self._wakeup.wait()
            self._wakeup.clear()
            self._pump()

    def _pump(self) -> None:
        """Assign queued work to free device slots (loop thread only)."""
        for slot in self.slots:
            if slot.busy:
                continue
            name = self.admission.pick()
            if name is None:
                return
            requests = self.admission.pop_batch(
                name, self.coalesce_window, coalescable=coalescable)
            session = requests[0].session
            # remote slots keep their views worker-side, per (space,
            # device); only local devices need a parent-side view
            view = session.view_for(slot) if slot.gma is not None else None
            slot.busy = True
            task = asyncio.create_task(
                self._run_batch(slot, session, view, requests))
            self._inflight_batches.add(task)
            task.add_done_callback(self._inflight_batches.discard)

    async def _run_batch(self, slot: DeviceSlot, session: Session,
                         view, requests: List[LaunchRequest]) -> None:
        loop = asyncio.get_running_loop()
        try:
            report = await loop.run_in_executor(
                None, self._drain, slot, session, view, requests)
        except Exception as exc:
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(exc)
            slot.busy = False
            self._wakeup.set()
            return
        merged = report.merged_result()
        lanes = sum(len(r.shreds) for r in requests)
        self.stats.batches_dispatched += 1
        self.stats.shreds_executed += merged.shreds_executed
        self.stats.device_seconds += report.seconds
        if len(requests) > 1:
            self.stats.gangs_coalesced += 1
            self.stats.coalesced_lanes += lanes
            self._rstats.gangs_coalesced += 1
            self._rstats.coalesced_lanes += lanes
        self._rstats.regions += 1
        self._rstats.shreds += merged.shreds_executed
        self._rstats.gma_seconds += report.seconds
        self._rstats.note_engine(merged)
        self._rstats.note_device(slot.name, report.seconds, report.shreds)
        self.trace_log.append({
            "slot": slot.name,
            "worker": report.worker,
            "session": session.name,
            "start": requests[0].submitted - self._started,
            "wall_seconds": report.wall_seconds,
            "seconds": report.seconds,
            "requests": len(requests),
            "lanes": lanes,
            "coalesced": len(requests) > 1,
        })
        per_request = demux(requests, merged)
        for request in requests:
            runs = per_request[request.ident]
            result = LaunchResult(
                session=session.name, request=request.ident,
                shreds=len(runs),
                instructions=sum(r.instructions for r in runs),
                bytes_read=sum(r.bytes_read for r in runs),
                bytes_written=sum(r.bytes_written for r in runs),
                atr_events=sum(r.atr_events for r in runs),
                ceh_events=sum(r.ceh_events for r in runs),
                sampler_samples=sum(r.sampler_samples for r in runs),
                spawned=sum(r.spawned for r in runs),
                device=slot.name, seconds=report.seconds,
                wall_seconds=report.wall_seconds,
                coalesced_lanes=lanes, coalesced_requests=len(requests),
                runs=runs)
            session.completed += 1
            session.shreds_executed += result.shreds
            session.instructions += result.instructions
            session.gma_seconds += report.seconds
            self.stats.launches_completed += 1
            if not request.future.done():
                request.future.set_result(result)
        self.admission.note_service(len(requests), report.wall_seconds)
        slot.busy = False
        self._wakeup.set()

    def _drain(self, slot: DeviceSlot, session: Session, view,
               requests: List[LaunchRequest]) -> DeviceRunReport:
        """Worker thread: context-switch the device and run the batch.

        For a remote slot the context switch happens inside the worker
        process (it keeps one mirror space + view per tenant); this
        thread just feeds the pipe and blocks for the report.
        """
        shreds = [shred for request in requests for shred in request.shreds]
        t0 = time.perf_counter()
        if slot.worker is not None:
            batches = slot.queue.admit(shreds)
            results = []
            seconds = 0.0
            for batch in batches:
                part = slot.worker.launch(slot.name, session.space, batch)
                results.extend(part.results)
                seconds += part.seconds
            report = DeviceRunReport(
                device=slot.name, isa=GmaDevice.ISA, seconds=seconds,
                shreds=len(shreds), results=results, config=slot.config,
                sub_batches=max(len(batches), 1), worker=slot.worker.name)
            report.wall_seconds = time.perf_counter() - t0
            return report
        slot.gma.bind_context(session.space, session.exoskeleton,
                              session.coherence, view)
        batches = slot.queue.admit(shreds)
        results = []
        seconds = 0.0
        for batch in batches:
            result = slot.gma.run(batch)
            results.append(result)
            seconds += slot.gma.config.seconds(result.cycles)
        report = DeviceRunReport(
            device=slot.name, isa=slot.gma.ISA, seconds=seconds,
            shreds=len(shreds), results=results, config=slot.gma.config,
            sub_batches=max(len(batches), 1))
        report.wall_seconds = time.perf_counter() - t0
        return report

    # -- reporting ----------------------------------------------------------

    def runtime_stats(self) -> RuntimeStats:
        """The server's work, in ``RuntimeStats`` shape (for traces/CLI)."""
        self._rstats.sessions_opened = self.stats.sessions_opened
        return self._rstats
