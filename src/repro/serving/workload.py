"""Tenant-side helpers: turn a media kernel into serving launches.

A :class:`TenantWorkload` assembles the kernel's program **once** per
session and reuses it for every launch — program-object identity is what
both the predecode cache and the cross-launch coalescer key on, exactly
as a real service would reuse one uploaded kernel binary across
requests.  Each launch gets fresh surfaces (quota-checked through the
session), its own input frame, and the reference output to verify
against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..kernels.base import Geometry, MediaKernel
from ..kernels.harness import build_program
from ..perf.study import SMOKE_GEOMETRIES
from .session import Session

_launch_ids = itertools.count(1)


@dataclass
class PreparedLaunch:
    """One request's program, descriptor inputs, and expected outputs."""

    ident: int
    program: object
    bindings: List[dict]
    surfaces: Dict[str, object]
    expected: Dict[str, np.ndarray] = field(default_factory=dict)

    def verify(self, session: Session) -> None:
        """Compare every output surface against the kernel reference."""
        for name, want in self.expected.items():
            got = self.surfaces[name].download(session.space)
            np.testing.assert_array_equal(
                got, np.asarray(want),
                err_msg=f"launch {self.ident}: output {name!r} diverged")


class TenantWorkload:
    """Generates launches of one kernel inside one session."""

    def __init__(self, session: Session, kernel: MediaKernel,
                 geom: Optional[Geometry] = None, seed: int = 0):
        self.session = session
        self.kernel = kernel
        self.geom = geom or SMOKE_GEOMETRIES[kernel.abbrev]
        kernel.check_geometry(self.geom)
        self.seed = seed
        self.program = build_program(kernel, self.geom)
        self.consts = kernel.constants(self.geom)
        self._sequence = 0

    def new_launch(self) -> PreparedLaunch:
        """Fresh surfaces + frame-0 inputs + reference for one request."""
        ident = next(_launch_ids)
        self._sequence += 1
        surfaces = {}
        for spec in self.kernel.surface_specs(self.geom):
            surfaces[spec.name] = self.session.alloc_surface(
                f"{self.kernel.abbrev}-{ident}:{spec.name}",
                spec.width, spec.height, spec.dtype)
        inputs = self.kernel.make_frame_inputs(
            self.geom, 0, self.seed + self._sequence)
        for name, image in inputs.items():
            surfaces[name].upload(self.session.space, np.asarray(image))
        expected, _ = self.kernel.reference_frame(self.geom, inputs, {})
        bindings = [{**self.consts, **b}
                    for b in self.kernel.shred_bindings(self.geom)]
        return PreparedLaunch(ident=ident, program=self.program,
                              bindings=bindings, surfaces=surfaces,
                              expected={k: np.asarray(v)
                                        for k, v in expected.items()})

    def release(self, launch: PreparedLaunch) -> None:
        """Free a completed launch's surfaces (returns quota headroom)."""
        for name in launch.surfaces:
            self.session.free_surface(
                f"{self.kernel.abbrev}-{launch.ident}:{name}")
