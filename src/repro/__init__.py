"""repro — a reproduction of EXOCHI (Wang et al., PLDI 2007).

EXOCHI is two coupled systems for programming heterogeneous multi-cores:

* **EXO** (:mod:`repro.exo`) exposes accelerator cores as
  application-managed MIMD sequencer resources sharing the process's
  virtual address space, via the MISP exoskeleton (user-level SIGNAL and
  interrupts), Address Translation Remapping and Collaborative Exception
  Handling.
* **CHI** (:mod:`repro.chi`) is the C-with-pragmas programming
  environment: accelerator inline assembly compiled into multi-ISA fat
  binaries, OpenMP ``parallel target`` / ``taskq`` / ``task`` extensions,
  descriptor APIs and a shred-level debugger.

The hardware the paper prototyped on is simulated here: an Intel GMA
X3000-class accelerator (:mod:`repro.gma`, 8 EUs x 4 threads, wide SIMD,
switch-on-stall multithreading) over a full memory substrate
(:mod:`repro.memory`: page tables in two incompatible formats, TLBs,
caches, surfaces) next to an IA32 host model (:mod:`repro.cpu`).  The ten
Table 2 media kernels live in :mod:`repro.kernels` and the evaluation
harness for Figures 7/8/10 in :mod:`repro.perf`.

Quickstart::

    from repro import ChiRuntime, ExoPlatform, Surface, DataType, AccessMode

    rt = ChiRuntime(ExoPlatform())
    a = Surface.alloc(rt.platform.space, "A", 64, 1, DataType.DW)
    ...
    section = rt.compile_asm(asm_text)
    rt.parallel(section, shared={"A": a, ...},
                private=[{"i": i} for i in range(8)])

or compile one of the paper's C listings directly::

    from repro.chi.frontend import run_source
    result = run_source(open("examples/figure6.c").read())
"""

from .chi import (
    AccessMode,
    ChiDebugger,
    ChiRuntime,
    DescriptorAttrib,
    ExoPlatform,
    FatBinary,
    SurfaceDescriptor,
)
from .errors import ReproError
from .exo import Exoskeleton, ShredDescriptor
from .gma import GmaDevice, GmaTimingConfig
from .isa import DataType, Program, assemble, disassemble
from .kernels import ALL_KERNELS, Geometry, kernel_by_abbrev, run_kernel_on_gma
from .memory import AddressSpace, Surface, TileMode
from .perf import MemoryModel, measure_kernel, run_suite

__version__ = "1.0.0"

__all__ = [
    "ChiRuntime",
    "ExoPlatform",
    "ChiDebugger",
    "FatBinary",
    "AccessMode",
    "DescriptorAttrib",
    "SurfaceDescriptor",
    "Exoskeleton",
    "ShredDescriptor",
    "GmaDevice",
    "GmaTimingConfig",
    "assemble",
    "disassemble",
    "Program",
    "DataType",
    "AddressSpace",
    "Surface",
    "TileMode",
    "ALL_KERNELS",
    "Geometry",
    "kernel_by_abbrev",
    "run_kernel_on_gma",
    "MemoryModel",
    "measure_kernel",
    "run_suite",
    "ReproError",
    "__version__",
]
