"""The IA32 host sequencer's execution cost model.

The paper's CPU baselines are "compiled with the enhanced version of the
Intel C++ Compiler using the most aggressive optimization settings",
SSE-optimized and in several cases IPP-backed (section 5).  We cannot run
IA32 machine code, so each media kernel supplies a :class:`CpuWork`
estimate — pixels processed, *calibrated* SSE-path cycles per pixel (each
kernel documents its derivation), and bytes streamed — and this model
turns it into time exactly the way the GMA model does: compute-bound or
bandwidth-bound, whichever is slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .timing import CpuTimingConfig


@dataclass(frozen=True)
class CpuWork:
    """One kernel invocation's cost parameters on the IA32 sequencer."""

    pixels: int
    cycles_per_pixel: float
    bytes_touched: int

    def __post_init__(self):
        if self.pixels < 0 or self.cycles_per_pixel < 0 or self.bytes_touched < 0:
            raise ValueError("CpuWork parameters must be non-negative")


@dataclass(frozen=True)
class CpuExecution:
    """Timing outcome of executing a :class:`CpuWork` on the host."""

    compute_cycles: float
    bandwidth_cycles: float
    seconds: float

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.bandwidth_cycles)

    @property
    def bound(self) -> str:
        return ("bandwidth" if self.bandwidth_cycles > self.compute_cycles
                else "compute")


class Ia32Cpu:
    """Cost-model execution of kernels on the OS-managed sequencer."""

    def __init__(self, config: Optional[CpuTimingConfig] = None):
        self.config = config if config is not None else CpuTimingConfig()

    def execute(self, work: CpuWork, fraction: float = 1.0) -> CpuExecution:
        """Time for this sequencer to process ``fraction`` of the work."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        compute = work.pixels * work.cycles_per_pixel * fraction
        bandwidth = work.bytes_touched * fraction / self.config.mem_bytes_per_cycle
        cycles = max(compute, bandwidth)
        return CpuExecution(
            compute_cycles=compute,
            bandwidth_cycles=bandwidth,
            seconds=self.config.seconds(cycles),
        )
