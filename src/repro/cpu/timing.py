"""Timing configuration of the IA32 host model (Intel Core 2 Duo)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuTimingConfig:
    """Static machine parameters of the simulated IA32 sequencer.

    The evaluation uses one core of a Core 2 Duo (the paper's kernels are
    single-threaded on the CPU side, with the OpenMP host loop of Figure 6
    the exception).  2.33 GHz is the Santa Rosa-era T7600's clock.
    ``mem_bytes_per_cycle`` reflects sustained single-core streaming
    bandwidth (~4.7 GB/s), well under the platform peak.
    """

    frequency: float = 2.33e9
    sse_lanes_32bit: int = 4  # 128-bit SSE = 4 x 32-bit lanes
    mem_bytes_per_cycle: float = 2.0
    num_cores: int = 2  # present but unused: kernels pin one core

    def seconds(self, cycles: float) -> float:
        return cycles / self.frequency
