"""The IA32 host sequencer: execution cost model of the Core 2 Duo side."""

from .ia32 import CpuExecution, CpuWork, Ia32Cpu
from .timing import CpuTimingConfig

__all__ = ["Ia32Cpu", "CpuWork", "CpuExecution", "CpuTimingConfig"]
