"""IA32 two-level page tables, with real bit-packed entry formats.

The entry layout follows the classic IA32 non-PAE format: a page directory
of 1024 entries, each pointing at a page table of 1024 entries, covering a
32-bit virtual space with 4 KiB pages.

ATR (paper section 3.2) hinges on the fact that the accelerator's TLB
*cannot* consume these entries: "the internal TLB of the Intel GMA X3000
assumes the industry standard GPU driver-oriented page table format, which
is different from the IA32 page table formats."  The GPU-format entries
live in :mod:`repro.memory.gtt`; :func:`repro.exo.atr.transcode_pte`
converts between them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtectionFault, TranslationFault
from .physical import PAGE_SHIFT

# IA32 PTE bit positions (non-PAE)
PTE_PRESENT = 1 << 0
PTE_WRITABLE = 1 << 1
PTE_USER = 1 << 2
PTE_WRITE_THROUGH = 1 << 3
PTE_CACHE_DISABLE = 1 << 4
PTE_ACCESSED = 1 << 5
PTE_DIRTY = 1 << 6

_DIR_ENTRIES = 1024
_TABLE_ENTRIES = 1024


def make_pte(pfn: int, writable: bool = True, user: bool = True,
             cache_disable: bool = False) -> int:
    """Pack an IA32 page-table entry."""
    pte = (pfn << PAGE_SHIFT) | PTE_PRESENT
    if writable:
        pte |= PTE_WRITABLE
    if user:
        pte |= PTE_USER
    if cache_disable:
        pte |= PTE_CACHE_DISABLE
    return pte


def pte_pfn(pte: int) -> int:
    return pte >> PAGE_SHIFT


@dataclass(frozen=True)
class Translation:
    """The result of a successful page-table walk."""

    vpn: int
    pfn: int
    writable: bool
    cache_disable: bool


class IA32PageTable:
    """A two-level IA32 page table for one process address space."""

    def __init__(self):
        self._directory: dict = {}  # dir index -> list of 1024 PTE ints

    def map(self, vpn: int, pfn: int, writable: bool = True,
            cache_disable: bool = False) -> None:
        """Install a mapping for virtual page ``vpn``."""
        di, ti = self._split(vpn)
        table = self._directory.setdefault(di, [0] * _TABLE_ENTRIES)
        table[ti] = make_pte(pfn, writable=writable, cache_disable=cache_disable)

    def unmap(self, vpn: int) -> None:
        di, ti = self._split(vpn)
        table = self._directory.get(di)
        if table is None or not table[ti] & PTE_PRESENT:
            raise TranslationFault(vpn << PAGE_SHIFT)
        table[ti] = 0

    def entry(self, vpn: int) -> int:
        """The raw PTE for ``vpn`` (0 if not present)."""
        di, ti = self._split(vpn)
        table = self._directory.get(di)
        return table[ti] if table is not None else 0

    def walk(self, vpn: int, write: bool = False) -> Translation:
        """Walk the tables; raises :class:`TranslationFault` if unmapped.

        Sets the accessed/dirty bits the way the hardware walker would.
        """
        di, ti = self._split(vpn)
        table = self._directory.get(di)
        if table is None or not table[ti] & PTE_PRESENT:
            raise TranslationFault(vpn << PAGE_SHIFT, write=write)
        pte = table[ti]
        if write and not pte & PTE_WRITABLE:
            raise ProtectionFault(vpn << PAGE_SHIFT, write=True)
        pte |= PTE_ACCESSED
        if write:
            pte |= PTE_DIRTY
        table[ti] = pte
        return Translation(
            vpn=vpn,
            pfn=pte_pfn(pte),
            writable=bool(pte & PTE_WRITABLE),
            cache_disable=bool(pte & PTE_CACHE_DISABLE),
        )

    def mapped_vpns(self) -> list:
        out = []
        for di, table in self._directory.items():
            for ti, pte in enumerate(table):
                if pte & PTE_PRESENT:
                    out.append((di << 10) | ti)
        return sorted(out)

    @staticmethod
    def _split(vpn: int) -> tuple:
        if not 0 <= vpn < _DIR_ENTRIES * _TABLE_ENTRIES:
            raise TranslationFault(vpn << PAGE_SHIFT)
        return vpn >> 10, vpn & 0x3FF
