"""Physical memory: a flat frame-granular byte store with an allocator."""

from __future__ import annotations

import numpy as np

from ..errors import OutOfPhysicalMemory

#: Page/frame size in bytes (IA32 4 KiB pages).
PAGE_SIZE = 4096
PAGE_SHIFT = 12


class PhysicalMemory:
    """Byte-addressable physical memory divided into 4 KiB frames.

    Both the IA32 sequencer and the GMA exo-sequencers resolve virtual
    addresses to offsets in this single store — that is what makes the
    shared *virtual* address space of EXO yield shared *physical* data.
    """

    def __init__(self, size: int = 256 * 1024 * 1024):
        if size % PAGE_SIZE:
            raise ValueError(f"physical size must be a multiple of {PAGE_SIZE}")
        self.size = size
        self.num_frames = size // PAGE_SIZE
        self._data = np.zeros(size, dtype=np.uint8)
        self._next_frame = 0
        self._free_frames: list = []

    # -- frame allocation -----------------------------------------------------

    def alloc_frame(self) -> int:
        """Allocate one frame; returns the physical frame number (PFN)."""
        if self._free_frames:
            return self._free_frames.pop()
        if self._next_frame >= self.num_frames:
            raise OutOfPhysicalMemory(
                f"all {self.num_frames} physical frames are in use")
        pfn = self._next_frame
        self._next_frame += 1
        return pfn

    def free_frame(self, pfn: int) -> None:
        if not 0 <= pfn < self.num_frames:
            raise ValueError(f"PFN {pfn} out of range")
        self._data[pfn * PAGE_SIZE : (pfn + 1) * PAGE_SIZE] = 0
        self._free_frames.append(pfn)

    @property
    def frames_in_use(self) -> int:
        return self._next_frame - len(self._free_frames)

    # -- byte access ------------------------------------------------------------

    def read(self, paddr: int, count: int) -> np.ndarray:
        """Read ``count`` raw bytes at physical address ``paddr``."""
        self._check(paddr, count)
        return self._data[paddr : paddr + count]

    def write(self, paddr: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        self._check(paddr, data.size)
        self._data[paddr : paddr + data.size] = data

    def view(self, paddr: int, count: int) -> np.ndarray:
        """A mutable view (no copy) of physical bytes — fast path for
        page-contained typed accesses."""
        self._check(paddr, count)
        return self._data[paddr : paddr + count]

    # -- batched access ---------------------------------------------------------

    def gather(self, paddrs: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Read one ``dtype`` element at each physical address in ``paddrs``.

        The fancy-indexed fast path requires every address to be aligned
        to the element size; unaligned batches fall back to per-element
        reads.  Returns an array with the shape of ``paddrs``.
        """
        dtype = np.dtype(dtype)
        paddrs = np.asarray(paddrs, dtype=np.int64)
        if paddrs.size == 0:
            return np.empty(paddrs.shape, dtype=dtype)
        lo = int(paddrs.min())
        hi = int(paddrs.max())
        if lo < 0 or hi + dtype.itemsize > self.size:
            raise ValueError(
                f"physical access [{lo:#x}, {hi + dtype.itemsize:#x}) out of range")
        if dtype.itemsize == 1:
            return self._data[paddrs].view(dtype)
        if not (paddrs % dtype.itemsize).any():
            return self._data.view(dtype)[paddrs // dtype.itemsize]
        out = np.empty(paddrs.size, dtype=dtype)
        flat = paddrs.reshape(-1)
        for i in range(flat.size):
            p = int(flat[i])
            out[i] = self._data[p : p + dtype.itemsize].view(dtype)[0]
        return out.reshape(paddrs.shape)

    def scatter(self, paddrs: np.ndarray, values: np.ndarray) -> None:
        """Write one typed element at each physical address in ``paddrs``.

        Duplicate addresses resolve last-writer-wins in flattened (C)
        order, which is exactly the shred queue order the gang engine
        feeds them in.
        """
        paddrs = np.asarray(paddrs, dtype=np.int64)
        values = np.asarray(values)
        dtype = values.dtype
        if paddrs.size == 0:
            return
        lo = int(paddrs.min())
        hi = int(paddrs.max())
        if lo < 0 or hi + dtype.itemsize > self.size:
            raise ValueError(
                f"physical access [{lo:#x}, {hi + dtype.itemsize:#x}) out of range")
        if dtype.itemsize == 1:
            self._data[paddrs.reshape(-1)] = values.reshape(-1).view(np.uint8)
            return
        if not (paddrs % dtype.itemsize).any():
            self._data.view(dtype)[paddrs.reshape(-1) // dtype.itemsize] = \
                values.reshape(-1)
            return
        flat_p = paddrs.reshape(-1)
        flat_v = values.reshape(-1)
        for i in range(flat_p.size):
            p = int(flat_p[i])
            self._data[p : p + dtype.itemsize] = \
                flat_v[i : i + 1].view(np.uint8)

    def _check(self, paddr: int, count: int) -> None:
        if paddr < 0 or paddr + count > self.size:
            raise ValueError(
                f"physical access [{paddr:#x}, {paddr + count:#x}) out of range")
