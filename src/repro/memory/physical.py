"""Physical memory: a flat frame-granular byte store with an allocator.

Two backings are supported:

* ``"local"`` (default) — a private numpy array, the single-process
  configuration every earlier layer was built on;
* ``"shared"`` — the same byte store over a
  :class:`multiprocessing.shared_memory.SharedMemory` segment, so fabric
  worker *processes* can attach the identical frames.  The creating
  process owns the segment (``close()`` unlinks it); workers attach with
  :meth:`PhysicalMemory.attach` and only detach on close.  The frame
  *allocator* stays parent-side authoritative: children never call
  ``alloc_frame``/``free_frame`` — their demand faults are proxied back
  to the owner over the worker pipe (see :mod:`repro.fabric.workers`).
"""

from __future__ import annotations

import threading

import numpy as np

from ..errors import MemorySystemError, OutOfPhysicalMemory

#: Page/frame size in bytes (IA32 4 KiB pages).
PAGE_SIZE = 4096
PAGE_SHIFT = 12


class PhysicalMemory:
    """Byte-addressable physical memory divided into 4 KiB frames.

    Both the IA32 sequencer and the GMA exo-sequencers resolve virtual
    addresses to offsets in this single store — that is what makes the
    shared *virtual* address space of EXO yield shared *physical* data.
    """

    def __init__(self, size: int = 256 * 1024 * 1024,
                 backing: str = "local", name: str | None = None):
        if size % PAGE_SIZE:
            raise ValueError(f"physical size must be a multiple of {PAGE_SIZE}")
        self.size = size
        self.num_frames = size // PAGE_SIZE
        self.backing = backing
        self._shm = None
        self._owns_shm = False
        if backing == "local":
            self._data = np.zeros(size, dtype=np.uint8)
        elif backing == "shared":
            from multiprocessing import shared_memory

            self._shm = shared_memory.SharedMemory(
                create=True, size=size, name=name)
            self._owns_shm = True
            self._data = np.ndarray((size,), dtype=np.uint8,
                                    buffer=self._shm.buf)
            self._data[:] = 0
        else:
            raise ValueError(
                f"unknown physical backing {backing!r} "
                f"(choose 'local' or 'shared')")
        self._next_frame = 0
        self._free_frames: list = []
        # Serving drains and fault proxies can allocate from several host
        # threads at once; the allocator's free-list push/pop must not race.
        self._alloc_lock = threading.Lock()

    @classmethod
    def attach(cls, name: str, size: int) -> "PhysicalMemory":
        """Attach to an existing shared segment created by another process.

        The attached instance never unlinks the segment — lifetime belongs
        to the creator.  Its frame allocator starts empty and must not be
        used: frames are owned by the creating process's allocator.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name, create=False)
        if shm.size < size:
            shm.close()
            raise MemorySystemError(
                f"shared segment {name!r} is {shm.size} bytes, "
                f"need {size}")
        self = cls.__new__(cls)
        self.size = size
        self.num_frames = size // PAGE_SIZE
        self.backing = "shared"
        self._shm = shm
        self._owns_shm = False
        self._data = np.ndarray((size,), dtype=np.uint8, buffer=shm.buf)
        self._next_frame = 0
        self._free_frames = []
        self._alloc_lock = threading.Lock()
        return self

    @property
    def shm_name(self) -> str | None:
        """The shared segment's name (``None`` for local backing)."""
        return self._shm.name if self._shm is not None else None

    def close(self) -> None:
        """Detach from the shared segment (and unlink it if we created it).

        Idempotent; a no-op for local backing.  After close the byte store
        is unusable — every view into the segment is released first so the
        mapping can actually be torn down.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        self._data = np.zeros(0, dtype=np.uint8)
        shm.close()
        if self._owns_shm:
            self._owns_shm = False
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def unlink(self) -> None:
        """Force-remove the shared segment from the system.

        Normally :meth:`close` on the owner does this; ``unlink`` exists
        for cleanup paths that must reap a segment whose owner died.
        """
        if self._shm is None:
            return
        self._owns_shm = False  # close() must not double-unlink
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    # -- frame allocation -----------------------------------------------------

    def alloc_frame(self) -> int:
        """Allocate one frame; returns the physical frame number (PFN)."""
        with self._alloc_lock:
            if self._free_frames:
                return self._free_frames.pop()
            if self._next_frame >= self.num_frames:
                raise OutOfPhysicalMemory(
                    f"all {self.num_frames} physical frames are in use")
            pfn = self._next_frame
            self._next_frame += 1
            return pfn

    def free_frame(self, pfn: int) -> None:
        if not 0 <= pfn < self.num_frames:
            raise ValueError(f"PFN {pfn} out of range")
        self._data[pfn * PAGE_SIZE : (pfn + 1) * PAGE_SIZE] = 0
        with self._alloc_lock:
            self._free_frames.append(pfn)

    @property
    def frames_in_use(self) -> int:
        return self._next_frame - len(self._free_frames)

    # -- byte access ------------------------------------------------------------

    def read(self, paddr: int, count: int) -> np.ndarray:
        """Read ``count`` raw bytes at physical address ``paddr``."""
        self._check(paddr, count)
        return self._data[paddr : paddr + count]

    def write(self, paddr: int, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        self._check(paddr, data.size)
        self._data[paddr : paddr + data.size] = data

    def view(self, paddr: int, count: int) -> np.ndarray:
        """A mutable view (no copy) of physical bytes — fast path for
        page-contained typed accesses."""
        self._check(paddr, count)
        return self._data[paddr : paddr + count]

    # -- batched access ---------------------------------------------------------

    def gather(self, paddrs: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Read one ``dtype`` element at each physical address in ``paddrs``.

        The fancy-indexed fast path requires every address to be aligned
        to the element size; unaligned batches fall back to per-element
        reads.  Returns an array with the shape of ``paddrs``.
        """
        dtype = np.dtype(dtype)
        paddrs = np.asarray(paddrs, dtype=np.int64)
        if paddrs.size == 0:
            return np.empty(paddrs.shape, dtype=dtype)
        lo = int(paddrs.min())
        hi = int(paddrs.max())
        if lo < 0 or hi + dtype.itemsize > self.size:
            raise ValueError(
                f"physical access [{lo:#x}, {hi + dtype.itemsize:#x}) out of range")
        if dtype.itemsize == 1:
            return self._data[paddrs].view(dtype)
        if not (paddrs % dtype.itemsize).any():
            return self._data.view(dtype)[paddrs // dtype.itemsize]
        out = np.empty(paddrs.size, dtype=dtype)
        flat = paddrs.reshape(-1)
        for i in range(flat.size):
            p = int(flat[i])
            out[i] = self._data[p : p + dtype.itemsize].view(dtype)[0]
        return out.reshape(paddrs.shape)

    def scatter(self, paddrs: np.ndarray, values: np.ndarray) -> None:
        """Write one typed element at each physical address in ``paddrs``.

        Duplicate addresses resolve last-writer-wins in flattened (C)
        order, which is exactly the shred queue order the gang engine
        feeds them in.
        """
        paddrs = np.asarray(paddrs, dtype=np.int64)
        values = np.asarray(values)
        dtype = values.dtype
        if paddrs.size == 0:
            return
        lo = int(paddrs.min())
        hi = int(paddrs.max())
        if lo < 0 or hi + dtype.itemsize > self.size:
            raise ValueError(
                f"physical access [{lo:#x}, {hi + dtype.itemsize:#x}) out of range")
        if dtype.itemsize == 1:
            self._data[paddrs.reshape(-1)] = values.reshape(-1).view(np.uint8)
            return
        if not (paddrs % dtype.itemsize).any():
            self._data.view(dtype)[paddrs.reshape(-1) // dtype.itemsize] = \
                values.reshape(-1)
            return
        flat_p = paddrs.reshape(-1)
        flat_v = values.reshape(-1)
        for i in range(flat_p.size):
            p = int(flat_p[i])
            self._data[p : p + dtype.itemsize] = \
                flat_v[i : i + 1].view(np.uint8)

    def _check(self, paddr: int, count: int) -> None:
        if paddr < 0 or paddr + count > self.size:
            raise ValueError(
                f"physical access [{paddr:#x}, {paddr + count:#x}) out of range")
