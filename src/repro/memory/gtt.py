"""GPU driver-oriented page-table entries (GTT format).

The accelerator's TLB consumes entries in the "industry standard GPU
driver-oriented page table format" (paper section 3.2), which is
deliberately *different* from the IA32 format in :mod:`repro.memory.paging`:

.. code-block:: none

    bit  0      valid
    bits 2..3   memory type (0 = uncached, 1 = write-combining, 2 = write-back)
    bits 4..27  physical frame number

ATR transcodes IA32 PTEs into this layout before inserting them into the
exo-sequencer's TLB, so both sequencers resolve the same virtual page to
the same physical frame despite incompatible table formats.
"""

from __future__ import annotations

import enum

from ..errors import EncodingError

GTT_VALID = 1 << 0
_MEMTYPE_SHIFT = 2
_MEMTYPE_MASK = 0x3
_PFN_SHIFT = 4
_PFN_MASK = (1 << 24) - 1


class GttMemType(enum.IntEnum):
    UNCACHED = 0
    WRITE_COMBINING = 1
    WRITE_BACK = 2


def make_gtt_entry(pfn: int, memtype: GttMemType = GttMemType.WRITE_BACK) -> int:
    """Pack a GTT entry."""
    if pfn > _PFN_MASK:
        raise EncodingError(f"PFN {pfn} does not fit the GTT entry format")
    return GTT_VALID | (int(memtype) << _MEMTYPE_SHIFT) | (pfn << _PFN_SHIFT)


def gtt_valid(entry: int) -> bool:
    return bool(entry & GTT_VALID)


def gtt_pfn(entry: int) -> int:
    return (entry >> _PFN_SHIFT) & _PFN_MASK


def gtt_memtype(entry: int) -> GttMemType:
    return GttMemType((entry >> _MEMTYPE_SHIFT) & _MEMTYPE_MASK)


def gtt_valid_array(entries):
    """Vectorized :func:`gtt_valid` over an int64 array of entries."""
    return (entries & GTT_VALID).astype(bool)


def gtt_pfn_array(entries):
    """Vectorized :func:`gtt_pfn` over an int64 array of entries."""
    return (entries >> _PFN_SHIFT) & _PFN_MASK
